#include <gtest/gtest.h>

#include <algorithm>

#include "ir/graph_algos.h"
#include "ir/parser.h"
#include "sched/mii.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace qvliw {
namespace {

TEST(ResMii, CountsPerFuKind) {
  // 3 loads+1 store on 1 L/S unit -> ResMII 4.
  const Loop loop = kernel_by_name("stencil3");
  const MachineConfig m = MachineConfig::single_cluster_machine(3);
  EXPECT_EQ(res_mii(loop, m), 4);
}

TEST(ResMii, ScalesWithFus) {
  const Loop loop = kernel_by_name("stencil3");  // 4 mem, 2 add, 1 mul
  EXPECT_EQ(res_mii(loop, MachineConfig::single_cluster_machine(6)), 2);   // 2 L/S
  EXPECT_EQ(res_mii(loop, MachineConfig::single_cluster_machine(12)), 1);  // 4 L/S
}

TEST(ResMii, InfeasibleWhenKindMissing) {
  MachineConfig m = MachineConfig::single_cluster_machine(6);
  m.clusters[0].fus(FuKind::kCopy) = 0;
  Loop loop = parse_loop("loop t { x = load X[i]; c = copy x; store Y[i], c; }");
  EXPECT_EQ(res_mii(loop, m), 0);
}

TEST(ResMii, AtLeastOne) {
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  EXPECT_EQ(res_mii(loop, MachineConfig::single_cluster_machine(18)), 1);
}

TEST(RecMii, OneWithoutRecurrence) {
  const Loop loop = kernel_by_name("daxpy");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_EQ(rec_mii(graph), 1);
}

TEST(RecMii, AccumulatorIsItsLatency) {
  const Loop loop = kernel_by_name("dot");  // fadd self-loop, latency 2
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_EQ(rec_mii(graph), 2);
}

TEST(RecMii, SecondOrderRecurrenceAveragesOverDistance) {
  // rec2: circuit y -> ay -> y latency fmul(3)+fadd(2)+fadd... check >= 3.
  const Loop loop = kernel_by_name("rec2");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  const int rec = rec_mii(graph);
  EXPECT_GE(rec, 3);
  // Cross-check against explicit circuit enumeration.
  int bound = 1;
  for (const Circuit& c : elementary_circuits(graph)) bound = std::max(bound, c.min_ii());
  EXPECT_EQ(rec, bound);
}

TEST(RecMii, DivRecurrence) {
  const Loop loop = kernel_by_name("geo_decay");  // div(8) + fadd(2) circuit
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_EQ(rec_mii(graph), 10);
}

TEST(RecMii, MemoryCarriedRecurrence) {
  const Loop loop = kernel_by_name("lk11_partial_sum");
  // Circuit: store -> (mem flow, dist 1) -> load(2) -> fadd(2) -> store:
  // latencies 1 + 2 + 2 = 5 over distance 1.
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_EQ(rec_mii(graph), 5);
}

TEST(RecMii, MatchesCircuitEnumerationOnSyntheticLoops) {
  SynthConfig config;
  config.loops = 40;
  config.seed = 7;
  for (const Loop& loop : synthesize_suite(config)) {
    const Ddg graph = Ddg::build(loop, LatencyModel::classic());
    const auto circuits = elementary_circuits(graph, 20000);
    if (circuits.size() >= 20000) continue;  // enumeration truncated; skip
    int bound = 1;
    for (const Circuit& c : circuits) bound = std::max(bound, c.min_ii());
    EXPECT_EQ(rec_mii(graph), bound) << loop.name;
  }
}

TEST(Mii, CombinesBounds) {
  const Loop loop = kernel_by_name("dot");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  // On 3 FUs: 3 mem ops on 1 L/S -> ResMII 3; RecMII 2 -> MII 3.
  const MiiInfo small = compute_mii(loop, graph, MachineConfig::single_cluster_machine(3));
  EXPECT_TRUE(small.feasible);
  EXPECT_EQ(small.res_mii, 3);
  EXPECT_EQ(small.rec_mii, 2);
  EXPECT_EQ(small.mii, 3);
  // On 12 FUs the recurrence dominates.
  const MiiInfo big = compute_mii(loop, graph, MachineConfig::single_cluster_machine(12));
  EXPECT_EQ(big.res_mii, 1);
  EXPECT_EQ(big.mii, 2);
}

TEST(Mii, InfeasibleMachineReported) {
  MachineConfig m = MachineConfig::single_cluster_machine(6);
  m.clusters[0].fus(FuKind::kCopy) = 0;
  const Loop loop = parse_loop("loop t { x = load X[i]; c = copy x; store Y[i], c; }");
  const Ddg graph = Ddg::build(loop, m.latency);
  EXPECT_FALSE(compute_mii(loop, graph, m).feasible);
}

TEST(Mii, ClusteredUsesMachineWideTotals) {
  const Loop loop = kernel_by_name("stencil3");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  const MiiInfo clustered = compute_mii(loop, graph, MachineConfig::clustered_machine(4));
  const MiiInfo single = compute_mii(loop, graph, MachineConfig::single_cluster_machine(12));
  EXPECT_EQ(clustered.res_mii, single.res_mii);
}

}  // namespace
}  // namespace qvliw
