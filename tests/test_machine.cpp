#include <gtest/gtest.h>

#include "machine/machine.h"
#include "support/diagnostics.h"

namespace qvliw {
namespace {

TEST(Fu, OpcodeMapping) {
  EXPECT_EQ(fu_for(Opcode::kLoad), FuKind::kLS);
  EXPECT_EQ(fu_for(Opcode::kStore), FuKind::kLS);
  EXPECT_EQ(fu_for(Opcode::kAdd), FuKind::kAdd);
  EXPECT_EQ(fu_for(Opcode::kFSub), FuKind::kAdd);
  EXPECT_EQ(fu_for(Opcode::kMul), FuKind::kMul);
  EXPECT_EQ(fu_for(Opcode::kDiv), FuKind::kMul);
  EXPECT_EQ(fu_for(Opcode::kFDiv), FuKind::kMul);
  EXPECT_EQ(fu_for(Opcode::kCopy), FuKind::kCopy);
  EXPECT_EQ(fu_for(Opcode::kMove), FuKind::kCopy);
}

TEST(Fu, Names) {
  EXPECT_EQ(fu_kind_name(FuKind::kLS), "L/S");
  EXPECT_EQ(fu_kind_name(FuKind::kCopy), "COPY");
  EXPECT_TRUE(is_compute_fu(FuKind::kMul));
  EXPECT_FALSE(is_compute_fu(FuKind::kCopy));
}

TEST(Cluster, PaperCluster) {
  const ClusterConfig c = ClusterConfig::paper_cluster();
  EXPECT_EQ(c.fus(FuKind::kLS), 1);
  EXPECT_EQ(c.fus(FuKind::kAdd), 1);
  EXPECT_EQ(c.fus(FuKind::kMul), 1);
  EXPECT_EQ(c.fus(FuKind::kCopy), 1);
  EXPECT_EQ(c.private_queues, 8);
}

TEST(Machine, SingleClusterTwelveIsBalanced) {
  const MachineConfig m = MachineConfig::single_cluster_machine(12);
  EXPECT_EQ(m.cluster_count(), 1);
  EXPECT_TRUE(m.single_cluster());
  EXPECT_EQ(m.fu_count(0, FuKind::kLS), 4);
  EXPECT_EQ(m.fu_count(0, FuKind::kAdd), 4);
  EXPECT_EQ(m.fu_count(0, FuKind::kMul), 4);
  EXPECT_EQ(m.fu_count(0, FuKind::kCopy), 4);
  EXPECT_EQ(m.total_compute_fus(), 12);
}

TEST(Machine, SingleClusterFourFuMix) {
  const MachineConfig m = MachineConfig::single_cluster_machine(4);
  EXPECT_EQ(m.fu_count(0, FuKind::kLS), 2);
  EXPECT_EQ(m.fu_count(0, FuKind::kAdd), 1);
  EXPECT_EQ(m.fu_count(0, FuKind::kMul), 1);
  EXPECT_EQ(m.fu_count(0, FuKind::kCopy), 2);  // ceil(4/3)
  EXPECT_EQ(m.total_compute_fus(), 4);
}

TEST(Machine, SingleClusterRejectsTiny) {
  EXPECT_THROW((void)MachineConfig::single_cluster_machine(2), Error);
}

TEST(Machine, ClusteredShape) {
  const MachineConfig m = MachineConfig::clustered_machine(4);
  EXPECT_EQ(m.cluster_count(), 4);
  EXPECT_FALSE(m.single_cluster());
  EXPECT_EQ(m.total_compute_fus(), 12);
  EXPECT_EQ(m.total_fus(FuKind::kCopy), 4);
  EXPECT_EQ(m.segment.queues_per_segment, 8);
  EXPECT_EQ(m.topology_kind, TopologyKind::kRing);
}

TEST(Machine, ClusteredRejectsOne) {
  EXPECT_THROW((void)MachineConfig::clustered_machine(1), Error);
}

TEST(Ring, DistanceOnFourRing) {
  const MachineConfig m = MachineConfig::clustered_machine(4);
  EXPECT_EQ(m.distance(0, 0), 0);
  EXPECT_EQ(m.distance(0, 1), 1);
  EXPECT_EQ(m.distance(0, 2), 2);
  EXPECT_EQ(m.distance(0, 3), 1);  // wraps
  EXPECT_EQ(m.distance(3, 0), 1);
}

TEST(Ring, DistanceOnSixRing) {
  const MachineConfig m = MachineConfig::clustered_machine(6);
  EXPECT_EQ(m.distance(0, 3), 3);
  EXPECT_EQ(m.distance(1, 5), 2);
  EXPECT_EQ(m.distance(5, 1), 2);
}

TEST(Ring, Adjacency) {
  const MachineConfig m = MachineConfig::clustered_machine(5);
  EXPECT_TRUE(m.adjacent(0, 0));
  EXPECT_TRUE(m.adjacent(0, 1));
  EXPECT_TRUE(m.adjacent(0, 4));
  EXPECT_FALSE(m.adjacent(0, 2));
  EXPECT_FALSE(m.adjacent(0, 3));
}

TEST(Ring, NextHop) {
  const MachineConfig m = MachineConfig::clustered_machine(6);
  EXPECT_EQ(m.next_hop(0, 2), 1);
  EXPECT_EQ(m.next_hop(0, 5), 5);   // counter-clockwise is shorter
  EXPECT_EQ(m.next_hop(0, 3), 1);   // tie -> clockwise
  EXPECT_THROW((void)m.next_hop(2, 2), Error);
}

TEST(Machine, MeshShape) {
  const MachineConfig m = MachineConfig::mesh_machine(3, 3);
  EXPECT_EQ(m.cluster_count(), 9);
  EXPECT_EQ(m.topology_kind, TopologyKind::kMesh);
  EXPECT_EQ(m.name, "mesh-3x3x3fu");
  EXPECT_EQ(m.distance(0, 8), 4);  // corner to corner, Manhattan
  EXPECT_TRUE(m.adjacent(4, 1));
  EXPECT_FALSE(m.adjacent(0, 4));  // diagonal
}

TEST(Machine, CrossbarShape) {
  const MachineConfig m = MachineConfig::crossbar_machine(4);
  EXPECT_EQ(m.topology_kind, TopologyKind::kCrossbar);
  EXPECT_EQ(m.name, "xbar-4x3fu");
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) EXPECT_TRUE(m.adjacent(a, b));
  }
}

TEST(Machine, TopologyMachineFactorsMeshes) {
  EXPECT_EQ(MachineConfig::topology_machine(TopologyKind::kMesh, 9).name, "mesh-3x3x3fu");
  EXPECT_EQ(MachineConfig::topology_machine(TopologyKind::kMesh, 6).name, "mesh-2x3x3fu");
  EXPECT_EQ(MachineConfig::topology_machine(TopologyKind::kMesh, 7).name, "mesh-1x7x3fu");
  EXPECT_EQ(MachineConfig::topology_machine(TopologyKind::kRing, 4).name, "ring-4x3fu");
  EXPECT_EQ(MachineConfig::topology_machine(TopologyKind::kCrossbar, 4).name, "xbar-4x3fu");
}

TEST(Machine, ValidateCatchesBadMeshDims) {
  MachineConfig m = MachineConfig::mesh_machine(2, 3);
  m.mesh_rows = 3;  // 3x3 != 6 clusters
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, SignatureSeparatesTopologies) {
  // Same cluster/segment resources, different interconnects: the sweep
  // cache must never serve a ring artifact to a mesh machine.
  const auto ring = MachineConfig::clustered_machine(4);
  const auto mesh = MachineConfig::mesh_machine(2, 2);
  const auto wide = MachineConfig::mesh_machine(1, 4);
  const auto xbar = MachineConfig::crossbar_machine(4);
  EXPECT_NE(ring.signature(), mesh.signature());
  EXPECT_NE(ring.signature(), xbar.signature());
  EXPECT_NE(mesh.signature(), xbar.signature());
  EXPECT_NE(mesh.signature(), wide.signature());
}

TEST(Machine, ValidateCatchesMissingFuKind) {
  MachineConfig m = MachineConfig::single_cluster_machine(6);
  m.clusters[0].fus(FuKind::kMul) = 0;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, ValidateCatchesZeroQueues) {
  MachineConfig m = MachineConfig::single_cluster_machine(6);
  m.clusters[0].private_queues = 0;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, ValidateCatchesEmpty) {
  MachineConfig m;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, FuCountsAcrossSizes) {
  for (int n = 3; n <= 18; ++n) {
    const MachineConfig m = MachineConfig::single_cluster_machine(n);
    EXPECT_EQ(m.total_compute_fus(), n) << n;
    EXPECT_GE(m.fu_count(0, FuKind::kLS), 1);
    EXPECT_GE(m.fu_count(0, FuKind::kAdd), 1);
    EXPECT_GE(m.fu_count(0, FuKind::kMul), 1);
  }
}

TEST(Machine, TwelveFuSingleMatchesFourClusters) {
  // The paper compares 4 clusters (12 FUs) against a single-cluster 12-FU
  // machine; per-kind totals must match for the comparison to be fair.
  const MachineConfig single = MachineConfig::single_cluster_machine(12);
  const MachineConfig clustered = MachineConfig::clustered_machine(4);
  for (int k = 0; k < kNumFuKinds - 1; ++k) {
    EXPECT_EQ(single.total_fus(static_cast<FuKind>(k)), clustered.total_fus(static_cast<FuKind>(k)));
  }
}

}  // namespace
}  // namespace qvliw
