#include <gtest/gtest.h>

#include "machine/machine.h"
#include "support/diagnostics.h"

namespace qvliw {
namespace {

TEST(Fu, OpcodeMapping) {
  EXPECT_EQ(fu_for(Opcode::kLoad), FuKind::kLS);
  EXPECT_EQ(fu_for(Opcode::kStore), FuKind::kLS);
  EXPECT_EQ(fu_for(Opcode::kAdd), FuKind::kAdd);
  EXPECT_EQ(fu_for(Opcode::kFSub), FuKind::kAdd);
  EXPECT_EQ(fu_for(Opcode::kMul), FuKind::kMul);
  EXPECT_EQ(fu_for(Opcode::kDiv), FuKind::kMul);
  EXPECT_EQ(fu_for(Opcode::kFDiv), FuKind::kMul);
  EXPECT_EQ(fu_for(Opcode::kCopy), FuKind::kCopy);
  EXPECT_EQ(fu_for(Opcode::kMove), FuKind::kCopy);
}

TEST(Fu, Names) {
  EXPECT_EQ(fu_kind_name(FuKind::kLS), "L/S");
  EXPECT_EQ(fu_kind_name(FuKind::kCopy), "COPY");
  EXPECT_TRUE(is_compute_fu(FuKind::kMul));
  EXPECT_FALSE(is_compute_fu(FuKind::kCopy));
}

TEST(Cluster, PaperCluster) {
  const ClusterConfig c = ClusterConfig::paper_cluster();
  EXPECT_EQ(c.fus(FuKind::kLS), 1);
  EXPECT_EQ(c.fus(FuKind::kAdd), 1);
  EXPECT_EQ(c.fus(FuKind::kMul), 1);
  EXPECT_EQ(c.fus(FuKind::kCopy), 1);
  EXPECT_EQ(c.private_queues, 8);
}

TEST(Machine, SingleClusterTwelveIsBalanced) {
  const MachineConfig m = MachineConfig::single_cluster_machine(12);
  EXPECT_EQ(m.cluster_count(), 1);
  EXPECT_TRUE(m.single_cluster());
  EXPECT_EQ(m.fu_count(0, FuKind::kLS), 4);
  EXPECT_EQ(m.fu_count(0, FuKind::kAdd), 4);
  EXPECT_EQ(m.fu_count(0, FuKind::kMul), 4);
  EXPECT_EQ(m.fu_count(0, FuKind::kCopy), 4);
  EXPECT_EQ(m.total_compute_fus(), 12);
}

TEST(Machine, SingleClusterFourFuMix) {
  const MachineConfig m = MachineConfig::single_cluster_machine(4);
  EXPECT_EQ(m.fu_count(0, FuKind::kLS), 2);
  EXPECT_EQ(m.fu_count(0, FuKind::kAdd), 1);
  EXPECT_EQ(m.fu_count(0, FuKind::kMul), 1);
  EXPECT_EQ(m.fu_count(0, FuKind::kCopy), 2);  // ceil(4/3)
  EXPECT_EQ(m.total_compute_fus(), 4);
}

TEST(Machine, SingleClusterRejectsTiny) {
  EXPECT_THROW((void)MachineConfig::single_cluster_machine(2), Error);
}

TEST(Machine, ClusteredShape) {
  const MachineConfig m = MachineConfig::clustered_machine(4);
  EXPECT_EQ(m.cluster_count(), 4);
  EXPECT_FALSE(m.single_cluster());
  EXPECT_EQ(m.total_compute_fus(), 12);
  EXPECT_EQ(m.total_fus(FuKind::kCopy), 4);
  EXPECT_EQ(m.ring.queues_per_direction, 8);
}

TEST(Machine, ClusteredRejectsOne) {
  EXPECT_THROW((void)MachineConfig::clustered_machine(1), Error);
}

TEST(Ring, DistanceOnFourRing) {
  const MachineConfig m = MachineConfig::clustered_machine(4);
  EXPECT_EQ(m.ring_distance(0, 0), 0);
  EXPECT_EQ(m.ring_distance(0, 1), 1);
  EXPECT_EQ(m.ring_distance(0, 2), 2);
  EXPECT_EQ(m.ring_distance(0, 3), 1);  // wraps
  EXPECT_EQ(m.ring_distance(3, 0), 1);
}

TEST(Ring, DistanceOnSixRing) {
  const MachineConfig m = MachineConfig::clustered_machine(6);
  EXPECT_EQ(m.ring_distance(0, 3), 3);
  EXPECT_EQ(m.ring_distance(1, 5), 2);
  EXPECT_EQ(m.ring_distance(5, 1), 2);
}

TEST(Ring, Adjacency) {
  const MachineConfig m = MachineConfig::clustered_machine(5);
  EXPECT_TRUE(m.adjacent(0, 0));
  EXPECT_TRUE(m.adjacent(0, 1));
  EXPECT_TRUE(m.adjacent(0, 4));
  EXPECT_FALSE(m.adjacent(0, 2));
  EXPECT_FALSE(m.adjacent(0, 3));
}

TEST(Ring, ClockwiseDistance) {
  const MachineConfig m = MachineConfig::clustered_machine(4);
  EXPECT_EQ(m.clockwise_distance(0, 3), 3);
  EXPECT_EQ(m.clockwise_distance(3, 0), 1);
  EXPECT_EQ(m.clockwise_distance(2, 2), 0);
}

TEST(Ring, StepToward) {
  const MachineConfig m = MachineConfig::clustered_machine(6);
  EXPECT_EQ(m.step_toward(0, 2), 1);
  EXPECT_EQ(m.step_toward(0, 5), 5);   // counter-clockwise is shorter
  EXPECT_EQ(m.step_toward(0, 3), 1);   // tie -> clockwise
  EXPECT_THROW((void)m.step_toward(2, 2), Error);
}

TEST(Machine, ValidateCatchesMissingFuKind) {
  MachineConfig m = MachineConfig::single_cluster_machine(6);
  m.clusters[0].fus(FuKind::kMul) = 0;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, ValidateCatchesZeroQueues) {
  MachineConfig m = MachineConfig::single_cluster_machine(6);
  m.clusters[0].private_queues = 0;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, ValidateCatchesEmpty) {
  MachineConfig m;
  EXPECT_THROW(m.validate(), Error);
}

TEST(Machine, FuCountsAcrossSizes) {
  for (int n = 3; n <= 18; ++n) {
    const MachineConfig m = MachineConfig::single_cluster_machine(n);
    EXPECT_EQ(m.total_compute_fus(), n) << n;
    EXPECT_GE(m.fu_count(0, FuKind::kLS), 1);
    EXPECT_GE(m.fu_count(0, FuKind::kAdd), 1);
    EXPECT_GE(m.fu_count(0, FuKind::kMul), 1);
  }
}

TEST(Machine, TwelveFuSingleMatchesFourClusters) {
  // The paper compares 4 clusters (12 FUs) against a single-cluster 12-FU
  // machine; per-kind totals must match for the comparison to be fair.
  const MachineConfig single = MachineConfig::single_cluster_machine(12);
  const MachineConfig clustered = MachineConfig::clustered_machine(4);
  for (int k = 0; k < kNumFuKinds - 1; ++k) {
    EXPECT_EQ(single.total_fus(static_cast<FuKind>(k)), clustered.total_fus(static_cast<FuKind>(k)));
  }
}

}  // namespace
}  // namespace qvliw
