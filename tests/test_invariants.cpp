#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/interp.h"
#include "workload/kernels.h"
#include "xform/copy_insert.h"
#include "xform/invariants.h"

namespace qvliw {
namespace {

TEST(Invariants, ImmediateStrategyIsNoop) {
  const Loop loop = kernel_by_name("daxpy");
  const Loop out = materialize_invariants(loop, InvariantStrategy::kImmediate);
  EXPECT_EQ(out.op_count(), loop.op_count());
}

TEST(Invariants, RecirculateAddsOneCopyPerUsedInvariant) {
  const Loop loop = kernel_by_name("fir4");  // c0..c3 all used
  const Loop out = materialize_invariants(loop, InvariantStrategy::kRecirculate);
  EXPECT_EQ(out.op_count(), loop.op_count() + 4);
  // The recirculating copies sit at the top and read themselves at @1.
  for (int v = 0; v < 4; ++v) {
    const Op& op = out.ops[static_cast<std::size_t>(v)];
    EXPECT_EQ(op.opcode, Opcode::kCopy);
    EXPECT_EQ(op.args[0].value_op, v);
    EXPECT_EQ(op.args[0].distance, 1);
    EXPECT_EQ(op.init_invariant, v);
  }
}

TEST(Invariants, UnusedInvariantsNotMaterialised) {
  const Loop loop = parse_loop("loop t { invariant a, b; x = load X[i]; s = fmul x, a; store Y[i], s; }");
  const Loop out = materialize_invariants(loop, InvariantStrategy::kRecirculate);
  EXPECT_EQ(out.op_count(), loop.op_count() + 1);  // only `a` is used
}

TEST(Invariants, NoInvariantOperandsRemain) {
  const Loop loop = kernel_by_name("lk1_hydro");
  const Loop out = materialize_invariants(loop, InvariantStrategy::kRecirculate);
  for (const Op& op : out.ops) {
    for (const Operand& arg : op.args) {
      EXPECT_NE(arg.kind, Operand::Kind::kInvariant);
    }
  }
}

TEST(Invariants, RecirculationPreservesSemantics) {
  for (const char* name : {"daxpy", "fir4", "rec2", "lk1_hydro", "interp"}) {
    const Loop loop = kernel_by_name(name);
    const Loop out = materialize_invariants(loop, InvariantStrategy::kRecirculate);
    const InterpResult a = interpret(loop, 20, 0x5eed);
    const InterpResult b = interpret(out, 20, 0x5eed);
    EXPECT_TRUE(a.memory == b.memory) << name;
  }
}

TEST(Invariants, ComposesWithCopyInsertion) {
  // After recirculation an invariant's copy has its consumers + the
  // self-loop; copy insertion must split fan-out while keeping live-in
  // bindings, so semantics survive the composition.
  for (const char* name : {"fir4", "lk1_hydro", "interp"}) {
    const Loop loop = kernel_by_name(name);
    const Loop recirculated = materialize_invariants(loop, InvariantStrategy::kRecirculate);
    const Loop final_loop = insert_copies(recirculated).loop;
    EXPECT_TRUE(fanout_legal(final_loop)) << name;
    const InterpResult a = interpret(loop, 20, 0x77);
    const InterpResult b = interpret(final_loop, 20, 0x77);
    EXPECT_TRUE(a.memory == b.memory) << name;
  }
}

TEST(Invariants, LoopWithoutInvariantsUntouched) {
  const Loop loop = kernel_by_name("vadd");
  const Loop out = materialize_invariants(loop, InvariantStrategy::kRecirculate);
  EXPECT_EQ(out.op_count(), loop.op_count());
}

}  // namespace
}  // namespace qvliw
