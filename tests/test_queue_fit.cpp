// Queue-capacity-constrained scheduling: the pipeline escalates the II
// until the allocation fits the machine's configured queue counts/depths.
#include <gtest/gtest.h>

#include "harness/pipeline.h"
#include "qrf/queue_alloc.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace qvliw {
namespace {

TEST(QueueFit, GenerousMachineNeedsNoRetries) {
  MachineConfig machine = MachineConfig::single_cluster_machine(6, 32);
  machine.clusters[0].queue_depth = 64;
  PipelineOptions options;
  options.enforce_queue_limits = true;
  const LoopResult r = run_pipeline(kernel_by_name("daxpy"), machine, options);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.fits_machine_queues);
  EXPECT_EQ(r.queue_fit_retries, 0);
}

TEST(QueueFit, TightQueueCountForcesLargerII) {
  // fir4 wants 7 queues at its natural II; a 6-queue file forces a larger
  // II at which more lifetimes become Q-compatible.
  MachineConfig tight = MachineConfig::single_cluster_machine(6, 6);
  PipelineOptions relaxed;
  const LoopResult natural = run_pipeline(kernel_by_name("fir4"),
                                          MachineConfig::single_cluster_machine(6, 32), relaxed);
  ASSERT_TRUE(natural.ok);
  ASSERT_GT(natural.total_queues, 6);  // the premise of the test

  PipelineOptions options;
  options.enforce_queue_limits = true;
  const LoopResult fitted = run_pipeline(kernel_by_name("fir4"), tight, options);
  ASSERT_TRUE(fitted.ok) << fitted.failure;
  EXPECT_TRUE(fitted.fits_machine_queues);
  EXPECT_GT(fitted.queue_fit_retries, 0);
  EXPECT_GT(fitted.ii, natural.ii);
  EXPECT_LE(fitted.total_queues, 6);
}

TEST(QueueFit, SomeLoopsNeedSpillCode) {
  // fir8's copy tree produces many same-phase lifetimes; no II fits it in
  // a 6-queue file — exactly the case the paper reserves for spill code.
  MachineConfig tight = MachineConfig::single_cluster_machine(6, 6);
  PipelineOptions options;
  options.enforce_queue_limits = true;
  const LoopResult r = run_pipeline(kernel_by_name("fir8"), tight, options);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("queues"), std::string::npos);
}

TEST(QueueFit, WithoutEnforcementOnlyReports) {
  MachineConfig tight = MachineConfig::single_cluster_machine(6, 6);
  PipelineOptions options;  // enforcement off
  const LoopResult r = run_pipeline(kernel_by_name("fir8"), tight, options);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_FALSE(r.fits_machine_queues);
  EXPECT_EQ(r.queue_fit_retries, 0);
}

TEST(QueueFit, ImpossibleBudgetFailsCleanly) {
  MachineConfig impossible = MachineConfig::single_cluster_machine(6, 1);
  impossible.clusters[0].queue_depth = 1;
  PipelineOptions options;
  options.enforce_queue_limits = true;
  options.queue_fit_attempts = 4;
  const LoopResult r = run_pipeline(kernel_by_name("fir8"), impossible, options);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.failure.empty());
}

TEST(QueueFit, FittedSchedulesStillSimulate) {
  MachineConfig tight = MachineConfig::single_cluster_machine(6, 8);
  PipelineOptions options;
  options.enforce_queue_limits = true;
  options.simulate = true;
  options.sim_trip = 24;
  for (const char* name : {"fir4", "cmul_acc", "stencil3_reuse"}) {
    const LoopResult r = run_pipeline(kernel_by_name(name), tight, options);
    ASSERT_TRUE(r.ok) << name << ": " << r.failure;
    EXPECT_TRUE(r.sim_ok) << name;
    EXPECT_TRUE(r.fits_machine_queues) << name;
  }
}

TEST(QueueFit, ClusteredMachineEnforcement) {
  MachineConfig ring = MachineConfig::clustered_machine(4);
  // The paper's 8-queue private files with a tighter depth.
  for (auto& cluster : ring.clusters) cluster.queue_depth = 4;
  ring.segment.queue_depth = 4;
  PipelineOptions options;
  options.scheduler = SchedulerKind::kClustered;
  options.enforce_queue_limits = true;
  options.simulate = true;
  options.sim_trip = 20;
  SynthConfig config;
  config.loops = 8;
  config.seed = 321;
  for (const Loop& loop : synthesize_suite(config)) {
    const LoopResult r = run_pipeline(loop, ring, options);
    if (!r.ok) continue;  // a tight budget may be genuinely unsatisfiable
    EXPECT_TRUE(r.fits_machine_queues) << loop.name;
    EXPECT_TRUE(r.sim_ok) << loop.name;
  }
}

TEST(QueueFit, HigherIiNeverNeedsMoreQueues) {
  // Monotonicity sanity: allocating the same loop at II and II+4 should
  // not increase the queue demand (longer interval, less overlap).
  const Loop loop = kernel_by_name("fir8");
  const MachineConfig machine = MachineConfig::single_cluster_machine(6, 32);
  PipelineOptions base;
  const LoopResult natural = run_pipeline(loop, machine, base);
  ASSERT_TRUE(natural.ok);
  PipelineOptions slowed;
  slowed.ims.start_ii = natural.ii + 4;
  const LoopResult slower = run_pipeline(loop, machine, slowed);
  ASSERT_TRUE(slower.ok);
  EXPECT_LE(slower.total_queues, natural.total_queues + 1);
}

}  // namespace
}  // namespace qvliw
