#include <gtest/gtest.h>

#include <algorithm>

#include "ir/memdep.h"
#include "ir/parser.h"

namespace qvliw {
namespace {

bool has_dep(const std::vector<MemDep>& deps, int src, int dst, int distance, MemDepKind kind) {
  return std::any_of(deps.begin(), deps.end(), [&](const MemDep& d) {
    return d.src == src && d.dst == dst && d.distance == distance && d.kind == kind;
  });
}

TEST(MemDep, NoDepsBetweenDistinctArrays) {
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  EXPECT_TRUE(memory_dependences(loop).empty());
}

TEST(MemDep, LoadLoadNeverConstrains) {
  const Loop loop = parse_loop("loop t { a = load X[i]; b = load X[i]; s = fadd a, b; store Y[i], s; }");
  for (const MemDep& d : memory_dependences(loop)) {
    EXPECT_TRUE(loop.ops[static_cast<std::size_t>(d.src)].opcode == Opcode::kStore ||
                loop.ops[static_cast<std::size_t>(d.dst)].opcode == Opcode::kStore);
  }
}

TEST(MemDep, SameIterationFlowInProgramOrder) {
  // store X[i] then load X[i]: flow at distance 0.
  const Loop loop = parse_loop("loop t { a = load Y[i]; store X[i], a; b = load X[i]; store Z[i], b; }");
  const auto deps = memory_dependences(loop);
  EXPECT_TRUE(has_dep(deps, 1, 2, 0, MemDepKind::kFlow));
}

TEST(MemDep, SameIterationAntiInProgramOrder) {
  // load X[i] then store X[i]: anti at distance 0.
  const Loop loop = parse_loop("loop t { b = load X[i]; store X[i], b; }");
  const auto deps = memory_dependences(loop);
  EXPECT_TRUE(has_dep(deps, 0, 1, 0, MemDepKind::kAnti));
}

TEST(MemDep, CarriedFlowFromStoreToLaterLoad) {
  // store X[i]; load X[i-1] reads the element stored 1 iteration earlier.
  const Loop loop = parse_loop("loop t { xm = load X[i-1]; y = load Y[i]; s = fadd xm, y; store X[i], s; }");
  const auto deps = memory_dependences(loop);
  // store (op 3, offset 0) -> load (op 0, offset -1): distance 1 flow.
  EXPECT_TRUE(has_dep(deps, 3, 0, 1, MemDepKind::kFlow));
}

TEST(MemDep, CarriedAntiFromLoadAhead) {
  // load X[i+1] is overwritten by next iteration's store X[i]: anti dist 1.
  const Loop loop = parse_loop("loop t { a = load X[i+1]; store X[i], a; }");
  const auto deps = memory_dependences(loop);
  EXPECT_TRUE(has_dep(deps, 0, 1, 1, MemDepKind::kAnti));
}

TEST(MemDep, OutputDependence) {
  const Loop loop = parse_loop("loop t { a = load Y[i]; store X[i], a; store X[i], a; }");
  const auto deps = memory_dependences(loop);
  EXPECT_TRUE(has_dep(deps, 1, 2, 0, MemDepKind::kOutput));
}

TEST(MemDep, CarriedOutputDependence) {
  const Loop loop = parse_loop("loop t { a = load Y[i]; store X[i+1], a; store X[i], a; }");
  const auto deps = memory_dependences(loop);
  // store X[i+1] touches what store X[i] touches 1 iteration later:
  // src = op2 (offset 0), dst = op1 (offset +1)? No: op1 writes element
  // i+1, op2 writes element i; element k is written by op1 at iteration
  // k-1 and by op2 at iteration k, so op1 -> op2 with distance 1.
  EXPECT_TRUE(has_dep(deps, 1, 2, 1, MemDepKind::kOutput));
}

TEST(MemDep, StrideDivisibilityFilters) {
  Loop loop = parse_loop("loop t { stride 2; a = load X[i+1]; store X[i], a; }");
  // offsets differ by 1, stride 2: never the same element.
  EXPECT_TRUE(memory_dependences(loop).empty());
}

TEST(MemDep, StrideDividesGivesDistance) {
  Loop loop = parse_loop("loop t { a = load X[i-2]; b = load Y[i]; s = fadd a, b; store X[i], s; }");
  loop.stride = 2;
  const auto deps = memory_dependences(loop);
  // store offset 0 vs load offset -2: distance (0-(-2))/2 = 1.
  EXPECT_TRUE(has_dep(deps, 3, 0, 1, MemDepKind::kFlow));
}

TEST(MemDep, MaxDistanceCap) {
  const Loop loop = parse_loop("loop t { a = load X[i-40]; store X[i], a; }");
  EXPECT_TRUE(has_dep(memory_dependences(loop, 64), 1, 0, 40, MemDepKind::kFlow));
  EXPECT_TRUE(memory_dependences(loop, 10).empty());
}

TEST(MemDep, DistancesNeverNegative) {
  const Loop loop = parse_loop(
      "loop t { a = load X[i-2]; b = load X[i+2]; s = fadd a, b; store X[i+1], s; store X[i-1], s; }");
  for (const MemDep& d : memory_dependences(loop)) {
    EXPECT_GE(d.distance, 0);
  }
}

}  // namespace
}  // namespace qvliw
