#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"

namespace qvliw {
namespace {

// --- diagnostics -----------------------------------------------------------

TEST(Diagnostics, CheckPassesOnTrue) { EXPECT_NO_THROW(check(true, "fine")); }

TEST(Diagnostics, CheckThrowsWithMessage) {
  try {
    check(false, "broken precondition");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "broken precondition");
  }
}

TEST(Diagnostics, FailAtIncludesLocation) {
  try {
    fail_at("file.cpp", 42, "boom");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("file.cpp:42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

// --- strings ----------------------------------------------------------------

TEST(Strings, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("x=", 3, ", y=", 2.5), "x=3, y=2.5");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
}

TEST(Strings, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(0.952, 1), "95.2%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcde", 3), "abcde");
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-3, 5);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedrespectsZeroWeights) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted(weights), 1u);
}

TEST(Rng, WeightedRoughProportions) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0};
  int hits = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    if (rng.weighted(weights) == 1) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.75, 0.05);
}

TEST(Rng, PickAndShuffle) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5};
  for (int i = 0; i < 20; ++i) {
    const int v = rng.pick(items);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 5);
  }
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(21);
  Rng child = a.fork();
  // Child stream should not replay the parent stream.
  Rng b(21);
  (void)b.next();  // parent consumed one draw to fork
  EXPECT_NE(child.next(), b.next());
}

TEST(Rng, Hash64Stable) {
  EXPECT_EQ(hash64(42), hash64(42));
  EXPECT_NE(hash64(42), hash64(43));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// --- stats --------------------------------------------------------------------

TEST(Stats, OnlineBasics) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Stats, MeanAndGeomean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW((void)geomean({1.0, 0.0}), Error);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> values = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 25.0);
}

TEST(Stats, FractionAtMost) {
  const std::vector<int> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_at_most(values, 2), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_most(values, 0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_at_most(values, 9), 1.0);
}

TEST(Stats, HistogramBinsAndCumulative) {
  Histogram h(0.0, 10.0, 5);
  for (double v : {0.5, 1.5, 3.0, 9.9, 11.0, -1.0}) h.add(v);  // clamped edges
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 3u);  // 0.5, 1.5, -1.0
  EXPECT_EQ(h.bin_count(1), 1u);  // 3.0
  EXPECT_EQ(h.bin_count(4), 2u);  // 9.9, 11.0
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 1.0);
  EXPECT_NEAR(h.cumulative_fraction(0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

// --- table ---------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("b"), 3.14159});
  std::ostringstream os;
  t.render(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), Error);
}

TEST(Table, CsvEscaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Table, CsvRendering) {
  TextTable t({"k", "v"});
  t.add_row({std::string("x,y"), std::int64_t{1}});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(), "k,v\n\"x,y\",1\n");
}

// --- parallel ---------------------------------------------------------------------

TEST(Parallel, CoversAllIndicesExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, ZeroCountIsNoop) {
  bool ran = false;
  parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Parallel, PropagatesException) {
  EXPECT_THROW(
      parallel_for(16, [](std::size_t i) {
        if (i == 7) throw Error("worker failed");
      }),
      Error);
}

TEST(Parallel, WorkerCountPositive) { EXPECT_GE(worker_count(), 1u); }

TEST(Parallel, GrainedCoversAllIndicesExactlyOnce) {
  const std::size_t n = 1003;  // not a multiple of the grain
  std::vector<std::atomic<int>> hits(n);
  parallel_for_grained(n, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, ExceptionOnCallerChunkStillDrainsOthers) {
  // Grain 1: the throwing index kills only its own chunk; every other
  // index still runs and the join completes before the rethrow.
  const std::size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  EXPECT_THROW(parallel_for_grained(n, 1,
                                    [&](std::size_t i) {
                                      if (i == 0) throw Error("caller-chunk failure");
                                      hits[i].fetch_add(1);
                                    }),
               Error);
  for (std::size_t i = 1; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, MultipleExceptionsRethrowFirstCaptured) {
  EXPECT_THROW(parallel_for(256, [](std::size_t i) {
                 if (i % 2 == 0) throw Error("even index failed");
               }),
               Error);
}

TEST(Parallel, RngStreamsAreDeterministic) {
  const std::size_t n = 200;
  auto draw = [&] {
    std::vector<std::uint64_t> values(n);
    parallel_for_rng(n, 99, [&](std::size_t i, Rng& rng) { values[i] = rng.next(); });
    return values;
  };
  const auto first = draw();
  const auto second = draw();
  EXPECT_EQ(first, second);
  // Distinct chunks use distinct streams: values are not all equal.
  std::set<std::uint64_t> unique(first.begin(), first.end());
  EXPECT_GT(unique.size(), n / 2);
}

TEST(Parallel, RngZeroCountIsNoop) {
  bool ran = false;
  parallel_for_rng(0, 1, [&](std::size_t, Rng&) { ran = true; });
  EXPECT_FALSE(ran);
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, ExplicitWorkerCountCoversAllIndices) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  const std::size_t n = 257;  // not a multiple of any grain
  std::vector<std::atomic<int>> hits(n);
  parallel_for_on(pool, n, 1, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, RunsChunksConcurrently) {
  // Four workers (three pool threads + the caller) can hold four grain-1
  // chunks in flight at once: each chunk spins until all four have
  // started.  A pool that failed to fan out would deadlock here (caught
  // by the test timeout), not pass by accident.
  ThreadPool pool(4);
  std::atomic<int> started{0};
  parallel_for_on(pool, 4, 1, [&](std::size_t) {
    started.fetch_add(1);
    while (started.load() < 4) std::this_thread::yield();
  });
  EXPECT_EQ(started.load(), 4);
}

TEST(ThreadPool, PropagatesExceptionAndStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for_on(pool, 64, 1,
                               [](std::size_t i) {
                                 if (i == 13) throw Error("chunk failed");
                               }),
               Error);
  // The pool survives a failed job: the next job runs to completion.
  std::vector<std::atomic<int>> hits(64);
  parallel_for_on(pool, hits.size(), 1, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, NestedFanOutRunsInline) {
  // A body that itself calls parallel_for must not deadlock waiting for
  // pool threads that are all busy running the outer job: nested
  // fan-outs run inline on the calling worker.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(32 * 8);
  parallel_for_on(pool, 32, 1, [&](std::size_t outer) {
    parallel_for(8, [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SingleWorkerPoolRunsSerially) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<int> hits(100, 0);  // no atomics needed: serial by contract
  parallel_for_on(pool, hits.size(), 1, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, ForkedChildDegradesToCallerDraining) {
  // A forked child inherits the pool object but none of its threads; a
  // run() in the child must complete (caller drains every chunk) rather
  // than wait forever on workers that do not exist.
  (void)ThreadPool::shared();  // ensure the shared pool predates the fork
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    std::atomic<std::size_t> sum{0};
    parallel_for(100, [&](std::size_t i) { sum.fetch_add(i + 1); });
    _exit(sum.load() == 5050 ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child exited " << status;
}

// --- bounded channel --------------------------------------------------------

TEST(BoundedChannel, FifoWithinCapacity) {
  BoundedChannel<int> channel(4);
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  EXPECT_TRUE(channel.push(3));
  int v = 0;
  EXPECT_TRUE(channel.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(channel.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(channel.pop(v));
  EXPECT_EQ(v, 3);
}

TEST(BoundedChannel, CloseDrainsThenReportsEmpty) {
  BoundedChannel<int> channel(4);
  EXPECT_TRUE(channel.push(7));
  channel.close();
  EXPECT_FALSE(channel.push(8));  // rejected after close
  int v = 0;
  EXPECT_TRUE(channel.pop(v));  // buffered value still drains
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(channel.pop(v));  // closed and empty
}

TEST(BoundedChannel, BackPressuredProducerPreservesOrder) {
  // Capacity 2 forces the producer to block on a slow consumer; every
  // value must still arrive exactly once, in order.
  BoundedChannel<int> channel(2);
  constexpr int kValues = 500;
  std::thread producer([&] {
    for (int i = 0; i < kValues; ++i) ASSERT_TRUE(channel.push(int{i}));
    channel.close();
  });
  std::vector<int> received;
  int v = 0;
  while (channel.pop(v)) received.push_back(v);
  producer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kValues));
  for (int i = 0; i < kValues; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i) << i;
}

TEST(Rng, HashBytesStableAndSensitive) {
  const std::uint64_t empty = hash_bytes("");
  EXPECT_EQ(empty, hash_bytes(""));  // deterministic
  EXPECT_EQ(hash_bytes("daxpy"), hash_bytes("daxpy"));
  EXPECT_NE(hash_bytes("daxpy"), hash_bytes("daxpz"));
  EXPECT_NE(hash_bytes("ab"), hash_bytes("ba"));
  EXPECT_NE(hash_bytes(""), hash_bytes(std::string_view("\0", 1)));
}

TEST(ArtifactStore, RoundTripAndMiss) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "qvliw_test_artifacts";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root.string());

  std::string blob;
  EXPECT_FALSE(store.load(42, blob));

  store.save(42, "hello artifacts");
  ASSERT_TRUE(store.load(42, blob));
  EXPECT_EQ(blob, "hello artifacts");

  // Overwrite is atomic-rename install of the new bytes.
  store.save(42, "v2");
  ASSERT_TRUE(store.load(42, blob));
  EXPECT_EQ(blob, "v2");

  // Distinct keys land in distinct files, including across the top-byte
  // fan-out directories.
  store.save(0xaa00000000000001ULL, "high");
  ASSERT_TRUE(store.load(0xaa00000000000001ULL, blob));
  EXPECT_EQ(blob, "high");
  ASSERT_TRUE(store.load(42, blob));
  EXPECT_EQ(blob, "v2");
  std::filesystem::remove_all(root);
}

TEST(ArtifactStore, BinaryBlobSurvives) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "qvliw_test_artifacts_bin";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root.string());

  BlobWriter writer;
  writer.put_u64(0x0123456789abcdefULL);
  writer.put_i64(-7);
  writer.put_i32(-123456);
  writer.put_bool(true);
  writer.put_string(std::string("nul\0inside", 10));
  store.save(7, writer.take());

  std::string blob;
  ASSERT_TRUE(store.load(7, blob));
  BlobReader reader(blob);
  EXPECT_EQ(reader.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.get_i64(), -7);
  EXPECT_EQ(reader.get_i32(), -123456);
  EXPECT_TRUE(reader.get_bool());
  EXPECT_EQ(reader.get_string(), std::string("nul\0inside", 10));
  EXPECT_TRUE(reader.exhausted());
  std::filesystem::remove_all(root);
}

TEST(ArtifactStore, StatsInventoriesEntriesTempFilesAndVersions) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "qvliw_test_artifacts_stats";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root.string());

  // Empty (even missing) store: all-zero stats.
  const ArtifactStoreStats empty = store.stats();
  EXPECT_EQ(empty.entries, 0u);
  EXPECT_EQ(empty.entry_bytes, 0u);
  EXPECT_TRUE(empty.versions.empty());

  store.save(42, "hello");                       // 5 bytes
  store.save(0xaa00000000000001ULL, "world!!");  // 7 bytes, another fan-out dir
  store.save(0xaa00000000000002ULL, "x");        // 1 byte, same fan-out dir
  store.mark_version(2);
  store.mark_version(2);  // idempotent
  store.mark_version(1);

  // A temp file a killed writer left behind.
  {
    std::ofstream stray(root / "aa" / "deadbeef.qart.tmp.1234.5");
    stray << "partial";
  }

  const ArtifactStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.entry_bytes, 13u);
  EXPECT_EQ(stats.fanout_dirs, 2u);
  EXPECT_EQ(stats.temp_files, 1u);
  EXPECT_EQ(stats.temp_bytes, 7u);
  ASSERT_EQ(stats.versions.size(), 2u);
  EXPECT_EQ(stats.versions[0], 1u);
  EXPECT_EQ(stats.versions[1], 2u);
  std::filesystem::remove_all(root);
}

TEST(ArtifactStore, TruncatedBlobThrows) {
  BlobWriter writer;
  writer.put_u64(99);
  const std::string bytes = writer.take();

  BlobReader truncated(std::string_view(bytes).substr(0, 4));
  EXPECT_THROW((void)truncated.get_u64(), Error);

  // A string whose declared length exceeds the remaining bytes.
  BlobWriter lying;
  lying.put_u64(1000);  // length prefix with no payload
  const std::string lie = lying.take();
  BlobReader reader(lie);
  EXPECT_THROW((void)reader.get_string(), Error);
}

TEST(ArtifactStore, RequireExhaustedRejectsTrailingBytes) {
  // A longer (future-format) entry must not silently decode as a valid
  // shorter one: every decode site ends with require_exhausted, which
  // only accepts a fully consumed blob.
  BlobWriter writer;
  writer.put_u64(7);
  writer.put_bool(true);  // the "extra" trailing field a v+1 format adds
  const std::string bytes = writer.take();

  BlobReader reader(bytes);
  EXPECT_EQ(reader.get_u64(), 7u);
  EXPECT_THROW(reader.require_exhausted("entry"), Error);
  EXPECT_TRUE(reader.get_bool());
  reader.require_exhausted("entry");  // all consumed: no throw
}

TEST(ArtifactStore, MemoisedLoadSurvivesDiskEviction) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "qvliw_test_artifacts_memo";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root.string());

  store.save(99, "memoised bytes");
  std::filesystem::remove_all(root);  // disk copy gone; the index serves it
  std::string blob;
  ASSERT_TRUE(store.load(99, blob));
  EXPECT_EQ(blob, "memoised bytes");

  // A fresh store object has no index: the miss goes to (absent) disk.
  const ArtifactStore cold(root.string());
  EXPECT_FALSE(cold.load(99, blob));
}

TEST(ArtifactStore, MissesAreReprobedSoCrossProcessFillsAppear) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "qvliw_test_artifacts_reprobe";
  std::filesystem::remove_all(root);
  const ArtifactStore reader(root.string());

  std::string blob;
  EXPECT_FALSE(reader.load(5, blob));  // a miss must not be memoised

  // Another process (simulated by a second store object) installs the
  // entry; the same reader's next probe finds it on disk.
  const ArtifactStore writer(root.string());
  writer.save(5, "filled elsewhere");
  ASSERT_TRUE(reader.load(5, blob));
  EXPECT_EQ(blob, "filled elsewhere");
  std::filesystem::remove_all(root);
}

// One ArtifactStore shared by every worker thread of a sweep: hammer
// load/save on overlapping keys from many threads.  All writers write
// the same payload per key, so any successful load must return exactly
// that payload — a torn read, stale index entry, or data race under TSan
// fails the test.
TEST(ArtifactStore, ConcurrentThreadedLoadsAndSavesAreCoherent) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "qvliw_test_artifacts_threads";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root.string());

  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kRounds = 40;
  const auto payload = [](int key) {
    std::string bytes(256 + static_cast<std::size_t>(key), static_cast<char>('a' + key % 26));
    bytes += "|k" + std::to_string(key);
    return bytes;
  };

  std::atomic<int> bad_loads{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int key = 0; key < kKeys; ++key) {
          if ((t + round + key) % 3 == 0) {
            store.save(static_cast<std::uint64_t>(key), payload(key));
          } else {
            std::string blob;
            if (store.load(static_cast<std::uint64_t>(key), blob) && blob != payload(key)) {
              bad_loads.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad_loads.load(), 0);

  for (int key = 0; key < kKeys; ++key) {
    std::string blob;
    ASSERT_TRUE(store.load(static_cast<std::uint64_t>(key), blob)) << key;
    EXPECT_EQ(blob, payload(key)) << key;
  }
  std::filesystem::remove_all(root);
}

// Sharded sweeps point several *processes* at one store directory, so
// temp-file names must be unique across processes, not just threads —
// a collision would interleave two writers' bytes before the atomic
// rename.  Fork real concurrent writer processes hammering the same
// keys and require every surviving value to be exactly one writer's
// complete payload.
TEST(ArtifactStore, MultiProcessWritersNeverInterleave) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "qvliw_test_artifacts_multiproc";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root.string());

  constexpr int kWriters = 4;
  constexpr int kKeys = 16;
  constexpr int kRounds = 25;
  // Payload per (writer, key): long enough that a torn write would be
  // visible, fully reconstructible by the parent for validation.
  const auto payload = [](int writer, int key) {
    std::string bytes;
    bytes.reserve(2048 + static_cast<std::size_t>(key));
    for (int b = 0; b < 2048 + key; ++b) {
      bytes.push_back(static_cast<char>('A' + writer));
    }
    bytes += "|w" + std::to_string(writer) + "|k" + std::to_string(key);
    return bytes;
  };

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: rewrite every key repeatedly, racing its siblings.
      for (int round = 0; round < kRounds; ++round) {
        for (int key = 0; key < kKeys; ++key) {
          store.save(static_cast<std::uint64_t>(key), payload(w, key));
        }
      }
      _exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  for (int key = 0; key < kKeys; ++key) {
    std::string blob;
    ASSERT_TRUE(store.load(static_cast<std::uint64_t>(key), blob)) << key;
    bool matches_one_writer = false;
    for (int w = 0; w < kWriters; ++w) {
      if (blob == payload(w, key)) {
        matches_one_writer = true;
        break;
      }
    }
    EXPECT_TRUE(matches_one_writer)
        << "key " << key << " holds interleaved bytes (size " << blob.size() << ")";
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace qvliw
