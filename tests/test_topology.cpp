#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "machine/machine.h"
#include "machine/topology.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"

namespace qvliw {
namespace {

std::vector<Topology> sample_topologies() {
  return {Topology::ring(1),     Topology::ring(2),     Topology::ring(3),
          Topology::ring(4),     Topology::ring(7),     Topology::mesh(1, 1),
          Topology::mesh(1, 5),  Topology::mesh(2, 2),  Topology::mesh(3, 3),
          Topology::mesh(3, 4),  Topology::crossbar(1), Topology::crossbar(2),
          Topology::crossbar(4), Topology::crossbar(6)};
}

TEST(Topology, KindNamesRoundTrip) {
  for (const TopologyKind kind :
       {TopologyKind::kRing, TopologyKind::kMesh, TopologyKind::kCrossbar}) {
    const auto parsed = parse_topology_kind(topology_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_topology_kind("torus").has_value());
  EXPECT_FALSE(parse_topology_kind("").has_value());
}

TEST(Topology, DistanceIsAMetric) {
  for (const Topology& t : sample_topologies()) {
    const int k = t.cluster_count();
    for (int a = 0; a < k; ++a) {
      EXPECT_EQ(t.distance(a, a), 0) << t.kind_name() << " k=" << k;
      for (int b = 0; b < k; ++b) {
        EXPECT_EQ(t.distance(a, b), t.distance(b, a)) << t.kind_name() << " " << a << "," << b;
        EXPECT_EQ(t.distance(a, b) == 0, a == b);
        // adjacent() deliberately includes a == b: a value never needs a
        // segment to stay in its own cluster.
        EXPECT_EQ(t.adjacent(a, b), t.distance(a, b) <= 1);
      }
    }
  }
}

TEST(Topology, MeshTriangleInequality) {
  const Topology t = Topology::mesh(3, 4);
  const int k = t.cluster_count();
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      for (int c = 0; c < k; ++c) {
        EXPECT_LE(t.distance(a, c), t.distance(a, b) + t.distance(b, c));
      }
    }
  }
}

TEST(Topology, NextHopLiesOnAShortestPath) {
  for (const Topology& t : sample_topologies()) {
    const int k = t.cluster_count();
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        if (a == b) continue;
        const int hop = t.next_hop(a, b);
        EXPECT_TRUE(t.adjacent(a, hop)) << t.kind_name() << " " << a << "->" << b;
        EXPECT_EQ(t.distance(hop, b), t.distance(a, b) - 1)
            << t.kind_name() << " " << a << "->" << b;
      }
    }
  }
}

TEST(Topology, RingNextHopPrefersClockwiseOnTies) {
  const Topology t = Topology::ring(6);
  EXPECT_EQ(t.next_hop(0, 3), 1);  // distance 3 both ways: clockwise wins
  EXPECT_EQ(t.next_hop(0, 5), 5);
  EXPECT_THROW((void)t.next_hop(2, 2), Error);
}

TEST(Topology, CrossbarAllPairsAdjacent) {
  const Topology t = Topology::crossbar(6);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(t.adjacent(a, b));
      EXPECT_EQ(t.next_hop(a, b), b);
    }
  }
}

TEST(Topology, SegmentsEnumerateEveryAdjacentOrderedPairOnce) {
  for (const Topology& t : sample_topologies()) {
    const int k = t.cluster_count();
    int linked_pairs = 0;
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        if (t.distance(a, b) == 1) ++linked_pairs;
      }
    }
    ASSERT_EQ(t.segment_count(), linked_pairs) << t.kind_name() << " k=" << k;
    for (int s = 0; s < t.segment_count(); ++s) {
      const Segment seg = t.segment(s);
      EXPECT_EQ(t.distance(seg.src, seg.dst), 1) << t.kind_name() << " s=" << s;
      EXPECT_EQ(t.segment_between(seg.src, seg.dst), s) << t.kind_name() << " s=" << s;
    }
  }
}

TEST(Topology, SegmentBetweenNonAdjacentIsAbsent) {
  EXPECT_EQ(Topology::ring(5).segment_between(0, 2), -1);
  EXPECT_EQ(Topology::ring(5).segment_between(1, 1), -1);
  EXPECT_EQ(Topology::mesh(2, 2).segment_between(0, 3), -1);
  EXPECT_EQ(Topology::crossbar(3).segment_between(2, 2), -1);
}

TEST(Topology, DegenerateRings) {
  const Topology solo = Topology::ring(1);
  EXPECT_EQ(solo.segment_count(), 0);
  EXPECT_EQ(solo.distance(0, 0), 0);

  // Two clusters share one physical link per direction; both segments are
  // "clockwise" and there is no distinct counter-clockwise id space.
  const Topology pair = Topology::ring(2);
  EXPECT_EQ(pair.segment_count(), 2);
  EXPECT_EQ(pair.segment(0).src, 0);
  EXPECT_EQ(pair.segment(0).dst, 1);
  EXPECT_EQ(pair.segment(1).src, 1);
  EXPECT_EQ(pair.segment(1).dst, 0);
  EXPECT_EQ(pair.segment_name(0), "ring-cw[0]");
  EXPECT_EQ(pair.segment_name(1), "ring-cw[1]");
}

TEST(Topology, SegmentNames) {
  const Topology ring = Topology::ring(4);
  EXPECT_EQ(ring.segment_name(0), "ring-cw[0]");
  EXPECT_EQ(ring.segment_name(3), "ring-cw[3]");
  EXPECT_EQ(ring.segment_name(4), "ring-ccw[0]");
  EXPECT_EQ(ring.segment_name(7), "ring-ccw[3]");
  const Topology mesh = Topology::mesh(2, 2);
  EXPECT_EQ(mesh.segment_name(0), "mesh[0->1]");
  const Topology xbar = Topology::crossbar(3);
  EXPECT_EQ(xbar.segment_name(0), "xbar[0->1]");
  EXPECT_EQ(xbar.segment_name(5), "xbar[2->1]");
  EXPECT_THROW((void)ring.segment_name(8), Error);
}

// --- machine codec versioning ---------------------------------------------

/// Bytes of `machine` serialized at codec version 1: today's layout with
/// the topology suffix (kind + mesh dims, three i32s) chopped off.
std::string v1_machine_bytes(const MachineConfig& machine) {
  BlobWriter out;
  serialize_machine(out, machine);
  std::string bytes = out.take();
  BlobWriter suffix;
  suffix.put_i32(static_cast<std::int32_t>(machine.topology_kind));
  suffix.put_i32(machine.mesh_rows);
  suffix.put_i32(machine.mesh_cols);
  const std::size_t suffix_size = suffix.take().size();
  bytes.resize(bytes.size() - suffix_size);
  return bytes;
}

TEST(MachineCodec, V1BlobDecodesAsRing) {
  const MachineConfig machine = MachineConfig::clustered_machine(3);
  const std::string bytes = v1_machine_bytes(machine);
  BlobReader reader(bytes);
  const MachineConfig copy = deserialize_machine(reader, 1);
  reader.require_exhausted("machine v1");
  EXPECT_EQ(copy.topology_kind, TopologyKind::kRing);
  EXPECT_EQ(copy.signature(), machine.signature());
}

TEST(MachineCodec, V2RoundTripsEveryTopology) {
  for (const MachineConfig& machine :
       {MachineConfig::clustered_machine(4), MachineConfig::mesh_machine(2, 3),
        MachineConfig::crossbar_machine(4)}) {
    BlobWriter out;
    serialize_machine(out, machine);
    const std::string bytes = out.take();
    BlobReader reader(bytes);
    const MachineConfig copy = deserialize_machine(reader);
    reader.require_exhausted("machine v2");
    EXPECT_EQ(copy.topology_kind, machine.topology_kind);
    EXPECT_EQ(copy.mesh_rows, machine.mesh_rows);
    EXPECT_EQ(copy.mesh_cols, machine.mesh_cols);
    EXPECT_EQ(copy.name, machine.name);
    EXPECT_EQ(copy.signature(), machine.signature());
  }
}

TEST(MachineCodec, RejectsBadTopologyKind) {
  std::string bytes = v1_machine_bytes(MachineConfig::clustered_machine(3));
  BlobWriter suffix;
  suffix.put_i32(7);  // no such TopologyKind
  suffix.put_i32(0);
  suffix.put_i32(0);
  bytes += suffix.take();
  BlobReader reader(bytes);
  EXPECT_THROW((void)deserialize_machine(reader), Error);
}

TEST(MachineCodec, RejectsMeshDimsThatDoNotCoverClusters) {
  std::string bytes = v1_machine_bytes(MachineConfig::mesh_machine(2, 3));
  BlobWriter suffix;
  suffix.put_i32(static_cast<std::int32_t>(TopologyKind::kMesh));
  suffix.put_i32(2);
  suffix.put_i32(5);  // 2x5 != 6 clusters
  bytes += suffix.take();
  BlobReader reader(bytes);
  EXPECT_THROW((void)deserialize_machine(reader), Error);
}

TEST(MachineCodec, RejectsUnknownVersion) {
  BlobWriter out;
  serialize_machine(out, MachineConfig::clustered_machine(2));
  const std::string bytes = out.take();
  {
    BlobReader reader(bytes);
    EXPECT_THROW((void)deserialize_machine(reader, 0), Error);
  }
  {
    BlobReader reader(bytes);
    EXPECT_THROW((void)deserialize_machine(reader, kMachineCodecVersion + 1), Error);
  }
}

}  // namespace
}  // namespace qvliw
