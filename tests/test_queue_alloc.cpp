#include <gtest/gtest.h>

#include "cluster/partition.h"
#include "ir/parser.h"
#include "qrf/qcompat.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

QueueAllocation allocate_kernel(const char* name, int fus, ImsResult* out_sched = nullptr,
                                Loop* out_loop = nullptr) {
  const Loop loop = insert_copies(kernel_by_name(name)).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  EXPECT_TRUE(r.ok) << r.failure;
  if (out_sched != nullptr) *out_sched = r;
  if (out_loop != nullptr) *out_loop = loop;
  return allocate_queues(loop, graph, machine, r.schedule);
}

/// Invariant: all queue members pairwise compatible, in push order.
void expect_valid_allocation(const QueueAllocation& allocation) {
  for (const AllocatedQueue& queue : allocation.queues) {
    for (std::size_t a = 0; a < queue.members.size(); ++a) {
      const Lifetime& la = allocation.lifetimes[static_cast<std::size_t>(queue.members[a])];
      EXPECT_EQ(la.domain, queue.domain);
      for (std::size_t b = a + 1; b < queue.members.size(); ++b) {
        const Lifetime& lb = allocation.lifetimes[static_cast<std::size_t>(queue.members[b])];
        EXPECT_TRUE(q_compatible(la, lb, allocation.ii))
            << "queue with incompatible members " << queue.members[a] << "," << queue.members[b];
      }
    }
  }
  // Every lifetime assigned exactly once.
  std::vector<int> seen(allocation.lifetimes.size(), 0);
  for (const AllocatedQueue& queue : allocation.queues) {
    for (int member : queue.members) ++seen[static_cast<std::size_t>(member)];
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "lifetime " << i;
    EXPECT_GE(allocation.queue_of[i], 0);
  }
}

TEST(QueueAlloc, DaxpyAllocatesValidly) {
  const QueueAllocation a = allocate_kernel("daxpy", 3);
  expect_valid_allocation(a);
  EXPECT_GT(a.total_queues(), 0);
  EXPECT_GT(a.max_positions(), 0);
}

TEST(QueueAlloc, AllKernelsValidOnSeveralMachines) {
  for (const Loop& source : kernel_corpus()) {
    for (int fus : {3, 6, 12}) {
      const Loop loop = insert_copies(source).loop;
      const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
      const Ddg graph = Ddg::build(loop, machine.latency);
      const ImsResult r = ims_schedule(loop, graph, machine);
      ASSERT_TRUE(r.ok) << source.name;
      const QueueAllocation a = allocate_queues(loop, graph, machine, r.schedule);
      expect_valid_allocation(a);
    }
  }
}

TEST(QueueAlloc, SyntheticSweepValid) {
  SynthConfig config;
  config.loops = 30;
  config.seed = 99;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  for (const Loop& source : synthesize_suite(config)) {
    const Loop loop = insert_copies(source).loop;
    const Ddg graph = Ddg::build(loop, machine.latency);
    const ImsResult r = ims_schedule(loop, graph, machine);
    ASSERT_TRUE(r.ok) << source.name;
    const QueueAllocation a = allocate_queues(loop, graph, machine, r.schedule);
    expect_valid_allocation(a);
  }
}

TEST(QueueAlloc, SingleClusterHasOnlyPrivateQueues) {
  const QueueAllocation a = allocate_kernel("fir4", 6);
  for (const AllocatedQueue& q : a.queues) {
    EXPECT_EQ(q.domain.kind, QueueDomain::Kind::kPrivate);
    EXPECT_EQ(q.domain.index, 0);
  }
  EXPECT_EQ(a.max_private_queues(), a.total_queues());
  EXPECT_EQ(a.max_segment_queues(), 0);
}

TEST(QueueAlloc, OccupancyPositiveAndBounded) {
  ImsResult sched;
  Loop loop;
  const QueueAllocation a = allocate_kernel("fir8", 6, &sched, &loop);
  for (const AllocatedQueue& q : a.queues) {
    EXPECT_GE(q.max_occupancy, 1);
    // A queue's occupancy is at most the sum of member instance maxima.
    int bound = 0;
    for (int member : q.members) {
      const Lifetime& lt = a.lifetimes[static_cast<std::size_t>(member)];
      bound += max_live_instances(lt.push, lt.pop, a.ii);
    }
    EXPECT_LE(q.max_occupancy, bound);
  }
}

TEST(QueueAlloc, CapacityViolationsDetected) {
  ImsResult sched;
  Loop loop;
  QueueAllocation a = allocate_kernel("fir8", 3, &sched, &loop);
  MachineConfig tiny = MachineConfig::single_cluster_machine(3);
  tiny.clusters[0].private_queues = 1;  // absurdly small
  const auto violations = a.capacity_violations(tiny);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("queues"), std::string::npos);
}

TEST(QueueAlloc, DepthViolationDetected) {
  ImsResult sched;
  Loop loop;
  QueueAllocation a = allocate_kernel("fir8", 3, &sched, &loop);
  MachineConfig shallow = MachineConfig::single_cluster_machine(3);
  shallow.clusters[0].queue_depth = 1;
  bool depth_mentioned = false;
  for (const auto& v : a.capacity_violations(shallow)) {
    if (v.find("depth") != std::string::npos) depth_mentioned = true;
  }
  EXPECT_TRUE(depth_mentioned);
}

TEST(QueueAlloc, GenerousMachineFits) {
  QueueAllocation a = allocate_kernel("daxpy", 6);
  MachineConfig machine = MachineConfig::single_cluster_machine(6, 32);
  machine.clusters[0].queue_depth = 64;
  EXPECT_TRUE(a.capacity_violations(machine).empty());
}

TEST(QueueAlloc, ClusteredDomainsSeparated) {
  // Partitioned schedule on a 4-cluster ring: lifetimes must land in
  // private or adjacent-segment domains only, and stay pairwise compatible
  // per domain.
  const Loop loop = insert_copies(kernel_by_name("fir4")).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = partition_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok) << r.failure;
  const QueueAllocation a = allocate_queues(loop, graph, machine, r.schedule);
  expect_valid_allocation(a);
  EXPECT_EQ(a.total_queues(),
            [&] {
              int total = 0;
              for (const AllocatedQueue& q : a.queues) {
                (void)q;
                ++total;
              }
              return total;
            }());
}

TEST(QueueAlloc, DomainQueueCount) {
  const QueueAllocation a = allocate_kernel("vadd", 6);
  const QueueDomain d{QueueDomain::Kind::kPrivate, 0};
  EXPECT_EQ(a.domain_queue_count(d), a.total_queues());
  EXPECT_EQ(a.domain_queue_count({QueueDomain::Kind::kSegment, 0}), 0);
}

}  // namespace
}  // namespace qvliw
