// Golden equivalence of the SoA/CSR dependence-graph mirror and the fused
// copy-insertion path against the pointer-chasing originals.
//
// DdgFlat must be a bit-faithful mirror of Ddg: identical edge ids, field
// values, and per-node adjacency order, over the workload suite (plain and
// copy-inserted forms) and under randomized latency models.  The fused
// insert_copies_with_graph must reproduce the exact loop of insert_copies
// and the exact edge list of Ddg::build on that loop — the invariant that
// lets the pipeline skip the quadratic memdep recomputation.
#include <gtest/gtest.h>

#include "ir/ddg.h"
#include "ir/parser.h"
#include "support/rng.h"
#include "workload/suite.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

Suite small_suite() {
  SynthConfig config;
  config.loops = 120;
  return full_suite(config);
}

/// Asserts `flat` mirrors `graph` exactly: fields, ids, adjacency order.
void expect_flat_mirrors(const Ddg& graph, const DdgFlat& flat, const std::string& name) {
  ASSERT_EQ(flat.node_count, graph.node_count()) << name;
  ASSERT_EQ(flat.edge_count(), graph.edge_count()) << name;
  for (int e = 0; e < graph.edge_count(); ++e) {
    const DepEdge& edge = graph.edge(e);
    const std::size_t i = static_cast<std::size_t>(e);
    ASSERT_EQ(flat.src[i], edge.src) << name << " edge " << e;
    ASSERT_EQ(flat.dst[i], edge.dst) << name << " edge " << e;
    ASSERT_EQ(flat.latency[i], edge.latency) << name << " edge " << e;
    ASSERT_EQ(flat.distance[i], edge.distance) << name << " edge " << e;
    ASSERT_EQ(flat.kind[i], edge.kind) << name << " edge " << e;
    ASSERT_EQ(flat.dst_arg[i], edge.dst_arg) << name << " edge " << e;
    ASSERT_EQ(flat.is_value_flow(e), edge.is_value_flow()) << name << " edge " << e;
  }
  for (int n = 0; n < graph.node_count(); ++n) {
    const std::vector<int>& out = graph.out_edges(n);
    const std::vector<int>& in = graph.in_edges(n);
    const DdgFlat::IdRange fout = flat.out(n);
    const DdgFlat::IdRange fin = flat.in(n);
    ASSERT_EQ(fout.end() - fout.begin(), static_cast<std::ptrdiff_t>(out.size()))
        << name << " node " << n;
    ASSERT_EQ(fin.end() - fin.begin(), static_cast<std::ptrdiff_t>(in.size()))
        << name << " node " << n;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(fout.begin()[i], out[i]) << name << " node " << n << " out slot " << i;
    }
    for (std::size_t i = 0; i < in.size(); ++i) {
      ASSERT_EQ(fin.begin()[i], in[i]) << name << " node " << n << " in slot " << i;
    }
  }
}

void expect_same_edges(const Ddg& a, const Ddg& b, const std::string& name) {
  ASSERT_EQ(a.node_count(), b.node_count()) << name;
  ASSERT_EQ(a.edge_count(), b.edge_count()) << name;
  for (int e = 0; e < a.edge_count(); ++e) {
    const DepEdge& x = a.edge(e);
    const DepEdge& y = b.edge(e);
    ASSERT_EQ(x.src, y.src) << name << " edge " << e;
    ASSERT_EQ(x.dst, y.dst) << name << " edge " << e;
    ASSERT_EQ(x.latency, y.latency) << name << " edge " << e;
    ASSERT_EQ(x.distance, y.distance) << name << " edge " << e;
    ASSERT_EQ(x.kind, y.kind) << name << " edge " << e;
    ASSERT_EQ(x.dst_arg, y.dst_arg) << name << " edge " << e;
  }
}

TEST(DdgFlat, MirrorsSuiteGraphs) {
  for (const Loop& loop : small_suite().loops) {
    const Ddg graph = Ddg::build(loop, LatencyModel::classic());
    expect_flat_mirrors(graph, DdgFlat::from(graph), loop.name);
  }
}

TEST(DdgFlat, MirrorsCopyInsertedGraphs) {
  for (const Loop& loop : small_suite().loops) {
    const Loop rewritten = insert_copies(loop).loop;
    const Ddg graph = Ddg::build(rewritten, LatencyModel::classic());
    expect_flat_mirrors(graph, DdgFlat::from(graph), loop.name);
  }
}

TEST(DdgFlat, MirrorsUnderRandomLatencyModels) {
  Rng rng(0x5eedULL);
  const Suite suite = small_suite();
  for (int trial = 0; trial < 8; ++trial) {
    LatencyModel lat = LatencyModel::classic();
    for (int& l : lat.latency) l = rng.uniform_int(1, 9);
    for (std::size_t i = trial % 7; i < suite.loops.size(); i += 7) {
      const Ddg graph = Ddg::build(suite.loops[i], lat);
      expect_flat_mirrors(graph, DdgFlat::from(graph), suite.loops[i].name);
    }
  }
}

TEST(DdgFlat, MirrorsEmptyAndSingleNodeGraphs) {
  expect_flat_mirrors(Ddg(0), DdgFlat::from(Ddg(0)), "empty");
  const Loop one = parse_loop("loop t { s = fadd s@1, 2; }");
  const Ddg graph = Ddg::build(one, LatencyModel::classic());
  expect_flat_mirrors(graph, DdgFlat::from(graph), "self-dependence");
}

TEST(BuildFrom, FusedCopyInsertMatchesColdRebuild) {
  for (const CopyTreeShape shape : {CopyTreeShape::kBalanced, CopyTreeShape::kChain}) {
    for (const Loop& loop : small_suite().loops) {
      const CopyInsertResult cold = insert_copies(loop, shape);
      const Ddg cold_graph = Ddg::build(cold.loop, LatencyModel::classic());
      const CopyInsertWithGraph fused =
          insert_copies_with_graph(loop, LatencyModel::classic(), shape);
      ASSERT_EQ(fused.rewrite.loop.content_hash(), cold.loop.content_hash()) << loop.name;
      ASSERT_EQ(fused.rewrite.copies_added, cold.copies_added) << loop.name;
      ASSERT_EQ(fused.rewrite.op_map, cold.op_map) << loop.name;
      expect_same_edges(cold_graph, fused.graph, loop.name);
    }
  }
}

TEST(BuildFrom, MatchesBuildOnUntouchedLoop) {
  // build_from with the memdeps build() itself would compute must agree
  // with build() — exercised here through the fused path on loops that
  // need no copies at all (op_map is the identity, memdeps map to
  // themselves).
  const Loop loop = parse_loop(
      "loop t { x = load X[i]; y = fmul x, 3; store Y[i], y; s = fadd s@1, 2; }");
  ASSERT_TRUE(fanout_legal(loop));
  const CopyInsertWithGraph fused = insert_copies_with_graph(loop, LatencyModel::classic());
  ASSERT_EQ(fused.rewrite.copies_added, 0);
  expect_same_edges(Ddg::build(loop, LatencyModel::classic()), fused.graph, loop.name);
}

}  // namespace
}  // namespace qvliw
