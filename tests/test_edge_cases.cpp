// Edge-case coverage across modules: degenerate graphs, boundary
// configurations, and formatting corners not exercised elsewhere.
#include <gtest/gtest.h>

#include <sstream>

#include "ir/graph_algos.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "sim/codegen.h"
#include "support/diagnostics.h"
#include "support/table.h"
#include "workload/kernels.h"
#include "xform/copy_insert.h"
#include "xform/unroll.h"

namespace qvliw {
namespace {

TEST(GraphEdges, EmptyGraphAlgorithms) {
  const Ddg graph(0);
  EXPECT_EQ(scc_count(graph), 0);
  EXPECT_FALSE(has_positive_cycle(graph, 1));
  EXPECT_TRUE(elementary_circuits(graph).empty());
  EXPECT_TRUE(height_priority(graph, 1).empty());
}

TEST(GraphEdges, AcyclicGraphHasNoCircuits) {
  const Loop loop = kernel_by_name("daxpy");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_TRUE(elementary_circuits(graph).empty());
}

TEST(GraphEdges, ParallelEdgesBetweenSameNodes) {
  // Two edges u->v with different distances must both constrain.
  Ddg graph(2);
  graph.add_edge({0, 1, 5, 0, DepKind::kFlow, -1});
  graph.add_edge({1, 0, 1, 1, DepKind::kFlow, -1});
  graph.add_edge({1, 0, 9, 2, DepKind::kFlow, -1});
  // Circuit A: 5+1 over distance 1 -> 6; circuit B: 5+9 over 2 -> 7.
  EXPECT_TRUE(has_positive_cycle(graph, 6));
  EXPECT_FALSE(has_positive_cycle(graph, 7));
}

TEST(ParserEdges, NegativeImmediateFirstOperand) {
  const Loop loop = parse_loop("loop t { s = add -5, 3; store X[i], s; }");
  EXPECT_EQ(loop.ops[0].args[0].imm, -5);
}

TEST(ParserEdges, StoreOfImmediate) {
  const Loop loop = parse_loop("loop t { store X[i], 42; }");
  EXPECT_EQ(loop.ops[0].args[0].kind, Operand::Kind::kImmediate);
  EXPECT_EQ(loop.ops[0].args[0].imm, 42);
}

TEST(ParserEdges, StoreOfInvariantAndIndex) {
  const Loop loop = parse_loop("loop t { invariant a; store X[i], a; store Y[i], i+3; }");
  EXPECT_EQ(loop.ops[0].args[0].kind, Operand::Kind::kInvariant);
  EXPECT_EQ(loop.ops[1].args[0].kind, Operand::Kind::kIndex);
  EXPECT_EQ(loop.ops[1].args[0].index_offset, 3);
}

TEST(PrinterEdges, MoveAndCopyRoundTrip) {
  const Loop loop =
      parse_loop("loop t { x = load X[i]; c = copy x; m = move c; store Y[i], m; }");
  const Loop again = parse_loop(to_text(loop));
  EXPECT_EQ(again.ops[1].opcode, Opcode::kCopy);
  EXPECT_EQ(again.ops[2].opcode, Opcode::kMove);
}

TEST(ScheduleEdges, SingleOpLoop) {
  const Loop loop = parse_loop("loop t { store X[i], 7; }");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ii, 1);
  EXPECT_EQ(r.schedule.stage_count(), 1);
}

TEST(ScheduleEdges, NoValueFlowMeansNoQueues) {
  const Loop loop = parse_loop("loop t { store X[i], 7; store Y[i], i; }");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, r.schedule);
  EXPECT_EQ(allocation.total_queues(), 0);
  EXPECT_EQ(allocation.max_positions(), 0);
}

TEST(CodegenEdges, SingleStageKernelHasEmptyRamp) {
  const Loop loop = parse_loop("loop t { store X[i], 7; }");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, r.schedule);
  const VliwProgram program = generate_program(loop, graph, machine, r.schedule, allocation);
  EXPECT_TRUE(program.prologue.empty());
  EXPECT_TRUE(program.epilogue.empty());
  EXPECT_EQ(program.kernel.size(), 1u);
  const std::string listing = format_program(program, machine);
  EXPECT_NE(listing.find("(empty)"), std::string::npos);
}

TEST(UnrollEdges, UnrollSingleStoreLoop) {
  const Loop loop = parse_loop("loop t { trip 12; store X[i], i; }");
  const Loop u = unroll(loop, 4);
  EXPECT_EQ(u.op_count(), 4);
  EXPECT_EQ(u.trip_hint, 3);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(u.ops[static_cast<std::size_t>(k)].mem_offset, k);
    EXPECT_EQ(u.ops[static_cast<std::size_t>(k)].args[0].index_offset, k);
  }
}

TEST(CopyEdges, StoreOnlyLoopUntouched) {
  const Loop loop = parse_loop("loop t { store X[i], 1; }");
  EXPECT_EQ(insert_copies(loop).copies_added, 0);
}

TEST(TableEdges, RealDigitsControl) {
  TextTable table({"v"});
  table.set_real_digits(4);
  table.add_row({3.14159265});
  std::ostringstream os;
  table.render(os);
  EXPECT_NE(os.str().find("3.1416"), std::string::npos);
}

TEST(MachineEdges, ThreeFuMachineIsPaperCluster) {
  const MachineConfig m = MachineConfig::single_cluster_machine(3);
  EXPECT_EQ(m.fu_count(0, FuKind::kLS), 1);
  EXPECT_EQ(m.fu_count(0, FuKind::kAdd), 1);
  EXPECT_EQ(m.fu_count(0, FuKind::kMul), 1);
  EXPECT_EQ(m.fu_count(0, FuKind::kCopy), 1);
}

TEST(QueueAllocEdges, LongDistanceSelfLoopDepth) {
  // An 8-deep delay line keeps ~8 instances resident in one queue chain.
  const Loop loop = insert_copies(kernel_by_name("fir8")).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, r.schedule);
  int total_positions = 0;
  for (const AllocatedQueue& q : allocation.queues) total_positions += q.max_occupancy;
  EXPECT_GE(total_positions, 8);
}

}  // namespace
}  // namespace qvliw
