#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "harness/shard.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "workload/suite.h"

namespace qvliw {
namespace {

// The perf_micro-shaped sweep: one clustered machine, heuristic x budget
// back ends sharing a front prefix, so warm-start ladders form.
std::vector<SweepPoint> ladder_points() {
  std::vector<SweepPoint> points;
  const MachineConfig ring = MachineConfig::clustered_machine(4);
  for (const ClusterHeuristic heuristic :
       {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance}) {
    for (const int budget : {6, 12}) {
      SweepPoint point{cat(cluster_heuristic_name(heuristic), "-", budget), ring, {}};
      point.options.unroll = true;
      point.options.scheduler = SchedulerKind::kClustered;
      point.options.heuristic = heuristic;
      point.options.ims.budget_ratio = budget;
      points.push_back(point);
    }
  }
  return points;
}

SweepShard run_shard(const std::vector<Loop>& loops, const std::vector<SweepPoint>& points,
                     SweepOptions options, int shard_count, int shard_index, ShardAxis axis) {
  options.shard_count = shard_count;
  options.shard_index = shard_index;
  options.shard_axis = axis;
  SweepShard shard;
  shard.header.shard_count = shard_count;
  shard.header.shard_index = shard_index;
  shard.header.axis = axis;
  shard.header.loops = loops.size();
  shard.header.points = points.size();
  shard.header.config_hash = sweep_config_hash(loops, points);
  shard.result = SweepRunner(options).run(loops, points);
  return shard;
}

TEST(Shard, EveryCellOwnedByExactlyOneShard) {
  for (const ShardAxis axis : {ShardAxis::kLoops, ShardAxis::kPoints}) {
    for (const int count : {1, 2, 3, 5}) {
      for (std::size_t i = 0; i < 11; ++i) {
        for (std::size_t p = 0; p < 7; ++p) {
          int owners = 0;
          for (int s = 0; s < count; ++s) {
            if (shard_owns(axis, count, s, i, p)) ++owners;
          }
          EXPECT_EQ(owners, 1) << shard_axis_name(axis) << " " << count << " " << i << "," << p;
        }
      }
    }
  }
  EXPECT_THROW((void)shard_owns(ShardAxis::kLoops, 0, 0, 0, 0), Error);
  EXPECT_THROW((void)shard_owns(ShardAxis::kLoops, 2, 2, 0, 0), Error);
  EXPECT_THROW((void)shard_owns(ShardAxis::kLoops, 2, -1, 0, 0), Error);
}

TEST(Shard, CodecRoundTripsEverything) {
  const Suite suite = small_suite(5, 41);
  const std::vector<SweepPoint> points = ladder_points();
  const SweepShard shard =
      run_shard(suite.loops, points, SweepOptions{}, 2, 1, ShardAxis::kLoops);

  const std::string bytes = encode_sweep_shard(shard);
  const SweepShard copy = decode_sweep_shard(bytes);

  EXPECT_EQ(copy.header.shard_count, shard.header.shard_count);
  EXPECT_EQ(copy.header.shard_index, shard.header.shard_index);
  EXPECT_EQ(copy.header.axis, shard.header.axis);
  EXPECT_EQ(copy.header.loops, shard.header.loops);
  EXPECT_EQ(copy.header.points, shard.header.points);
  EXPECT_EQ(copy.header.config_hash, shard.header.config_hash);
  EXPECT_EQ(copy.result.pipelines, shard.result.pipelines);
  EXPECT_EQ(copy.result.wall_seconds, shard.result.wall_seconds);
  EXPECT_EQ(copy.result.cache.front_probes, shard.result.cache.front_probes);
  EXPECT_EQ(copy.result.cache.warm_hits, shard.result.cache.warm_hits);
  ASSERT_EQ(copy.result.stage_totals.size(), shard.result.stage_totals.size());
  for (std::size_t t = 0; t < shard.result.stage_totals.size(); ++t) {
    EXPECT_EQ(copy.result.stage_totals[t].stage, shard.result.stage_totals[t].stage);
    EXPECT_EQ(copy.result.stage_totals[t].seconds, shard.result.stage_totals[t].seconds);
  }
  EXPECT_EQ(sweep_result_fingerprint(copy.result), sweep_result_fingerprint(shard.result));
  // The full codec also carries provenance (effort stats, stage times).
  ASSERT_EQ(copy.result.by_point.size(), shard.result.by_point.size());
  for (std::size_t p = 0; p < shard.result.by_point.size(); ++p) {
    for (std::size_t i = 0; i < shard.result.by_point[p].size(); ++i) {
      const LoopResult& a = copy.result.by_point[p][i];
      const LoopResult& b = shard.result.by_point[p][i];
      EXPECT_EQ(a.sched_stats.placements, b.sched_stats.placements);
      EXPECT_EQ(a.warm_started, b.warm_started);
      EXPECT_EQ(a.stage_times.size(), b.stage_times.size());
    }
  }
}

TEST(Shard, DecodeRejectsTrailingBytesAndBadMagic) {
  const Suite suite = small_suite(3, 43);
  const std::vector<SweepPoint> points = ladder_points();
  const SweepShard shard =
      run_shard(suite.loops, points, SweepOptions{}, 1, 0, ShardAxis::kLoops);
  const std::string bytes = encode_sweep_shard(shard);

  EXPECT_THROW((void)decode_sweep_shard(bytes + "x"), Error);
  EXPECT_THROW((void)decode_sweep_shard(bytes.substr(0, bytes.size() - 1)), Error);
  std::string corrupt = bytes;
  corrupt[0] = static_cast<char>(corrupt[0] ^ 1);  // magic mismatch
  EXPECT_THROW((void)decode_sweep_shard(corrupt), Error);
}

// The tentpole golden test: the merged N-shard sweep is bit-identical to
// the single-process sweep — cold and warm, on both shard axes — with the
// cells stitched from the shard that owns them and the accounting summed.
TEST(Shard, MergedShardsBitIdenticalToSingleProcess) {
  const Suite suite = small_suite(9, 47);
  const std::vector<SweepPoint> points = ladder_points();

  for (const bool warm : {false, true}) {
    SweepOptions options;
    options.warm_start = warm;
    const SweepResult single = SweepRunner(options).run(suite.loops, points);
    const std::string want = sweep_result_fingerprint(single);

    for (const ShardAxis axis : {ShardAxis::kLoops, ShardAxis::kPoints}) {
      for (const int count : {2, 3}) {
        std::vector<SweepShard> shards;
        std::uint64_t cells = 0;
        for (int s = 0; s < count; ++s) {
          shards.push_back(run_shard(suite.loops, points, options, count, s, axis));
          cells += shards.back().result.pipelines;
        }
        EXPECT_EQ(cells, suite.loops.size() * points.size());

        const SweepResult merged = merge_sweep_shards(std::move(shards));
        const std::string where =
            cat(warm ? "warm" : "cold", " ", shard_axis_name(axis), " x", count);
        EXPECT_EQ(sweep_result_fingerprint(merged), want) << where;
        EXPECT_EQ(merged.pipelines, single.pipelines) << where;
        // Loop-axis shards keep whole loops (caches and ladders intact),
        // so even the cache accounting reassembles exactly.
        if (axis == ShardAxis::kLoops) {
          EXPECT_EQ(merged.cache.front_probes, single.cache.front_probes) << where;
          EXPECT_EQ(merged.cache.front_hits, single.cache.front_hits) << where;
          EXPECT_EQ(merged.cache.warm_probes, single.cache.warm_probes) << where;
          EXPECT_EQ(merged.cache.warm_hits, single.cache.warm_hits) << where;
        }
      }
    }
  }
}

TEST(Shard, MergeRejectsInconsistentShardSets) {
  const Suite suite = small_suite(4, 53);
  const std::vector<SweepPoint> points = ladder_points();
  SweepOptions options;

  std::vector<SweepShard> shards;
  shards.push_back(run_shard(suite.loops, points, options, 2, 0, ShardAxis::kLoops));
  shards.push_back(run_shard(suite.loops, points, options, 2, 1, ShardAxis::kLoops));

  // Missing shard.
  EXPECT_THROW((void)merge_sweep_shards({shards[0]}), Error);
  // Duplicate index.
  EXPECT_THROW((void)merge_sweep_shards({shards[0], shards[0]}), Error);
  // Mismatched partition.
  {
    std::vector<SweepShard> mixed = shards;
    mixed[1].header.axis = ShardAxis::kPoints;
    EXPECT_THROW((void)merge_sweep_shards(std::move(mixed)), Error);
  }
  // Mismatched sweep identity.
  {
    std::vector<SweepShard> mixed = shards;
    mixed[1].header.config_hash ^= 1;
    EXPECT_THROW((void)merge_sweep_shards(std::move(mixed)), Error);
  }
  // The untampered pair merges fine.
  const SweepResult merged = merge_sweep_shards(std::move(shards));
  EXPECT_EQ(merged.pipelines, suite.loops.size() * points.size());
}

TEST(Shard, MergeRejectsOutOfRangeShardIndex) {
  const Suite suite = small_suite(4, 149);
  const std::vector<SweepPoint> points = ladder_points();
  std::vector<SweepShard> shards;
  shards.push_back(run_shard(suite.loops, points, SweepOptions{}, 2, 0, ShardAxis::kLoops));
  shards.push_back(run_shard(suite.loops, points, SweepOptions{}, 2, 1, ShardAxis::kLoops));
  // A hand-constructed (never-decoded) shard with a rogue index used to
  // index the duplicate-tracking vector out of bounds; now it is a clear
  // diagnostic.
  shards[1].header.shard_index = 5;
  try {
    (void)merge_sweep_shards(std::move(shards));
    FAIL() << "merge should reject an out-of-range shard index";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos) << e.what();
  }
}

// The double-count regression: shard sets whose members hold more cells
// than their partition slice owns must be rejected, not silently summed.
TEST(Shard, MergeRejectsOverlappingShardData) {
  const Suite suite = small_suite(4, 151);
  const std::vector<SweepPoint> points = ladder_points();

  // An unsharded run relabelled as one slice of a 2-way partition: its
  // pipelines count (and its cells) cover the whole cross product.
  SweepShard relabelled;
  relabelled.header.shard_count = 2;
  relabelled.header.shard_index = 0;
  relabelled.header.axis = ShardAxis::kLoops;
  relabelled.header.loops = suite.loops.size();
  relabelled.header.points = points.size();
  relabelled.header.config_hash = sweep_config_hash(suite.loops, points);
  relabelled.result = SweepRunner().run(suite.loops, points);
  const SweepShard genuine =
      run_shard(suite.loops, points, SweepOptions{}, 2, 1, ShardAxis::kLoops);
  try {
    (void)merge_sweep_shards({relabelled, genuine});
    FAIL() << "merge should reject a shard holding the whole sweep";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("double-count"), std::string::npos) << e.what();
  }

  // A genuine slice with one stray cell outside its partition (pipelines
  // still consistent): also rejected.
  SweepShard tampered =
      run_shard(suite.loops, points, SweepOptions{}, 2, 0, ShardAxis::kLoops);
  ASSERT_GE(suite.loops.size(), 2u);
  tampered.result.by_point[0][1] = relabelled.result.by_point[0][1];  // loop 1: shard 1's cell
  try {
    (void)merge_sweep_shards({tampered, genuine});
    FAIL() << "merge should reject a cell outside the shard's slice";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("outside its partition"), std::string::npos)
        << e.what();
  }
}

TEST(Shard, ConfigHashSeparatesSweeps) {
  const Suite a = small_suite(4, 61);
  const Suite b = small_suite(4, 67);
  const std::vector<SweepPoint> points = ladder_points();
  EXPECT_NE(sweep_config_hash(a.loops, points), sweep_config_hash(b.loops, points));

  std::vector<SweepPoint> fewer(points.begin(), points.end() - 1);
  EXPECT_NE(sweep_config_hash(a.loops, points), sweep_config_hash(a.loops, fewer));
}

}  // namespace
}  // namespace qvliw