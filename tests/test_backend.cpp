// Scheduler-backend registry: round-trip and diagnostics, golden
// equivalence of registry dispatch against the legacy SchedulerKind
// switch, cache-key contribution separation, and warm-start properties
// (final II never worse than cold, seeds verified before adoption).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "cluster/route.h"
#include "harness/pipeline.h"
#include "sched/backend.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

ScheduleRequest request_for(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                            ClusterHeuristic heuristic, int budget_ratio) {
  ScheduleRequest request;
  request.loop = &loop;
  request.graph = &graph;
  request.machine = &machine;
  request.heuristic = heuristic;
  request.ims.budget_ratio = budget_ratio;
  return request;
}

void expect_same_schedule(const Schedule& a, const Schedule& b, const std::string& where) {
  ASSERT_EQ(a.op_count(), b.op_count()) << where;
  ASSERT_EQ(a.ii(), b.ii()) << where;
  for (int op = 0; op < a.op_count(); ++op) {
    ASSERT_EQ(a.scheduled(op), b.scheduled(op)) << where << " op " << op;
    if (a.scheduled(op)) EXPECT_TRUE(a.place(op) == b.place(op)) << where << " op " << op;
  }
}

void expect_same_ims(const ImsResult& a, const ImsResult& b, const std::string& where) {
  EXPECT_EQ(a.ok, b.ok) << where;
  EXPECT_EQ(a.failure, b.failure) << where;
  EXPECT_EQ(a.ii, b.ii) << where;
  EXPECT_EQ(a.mii.feasible, b.mii.feasible) << where;
  EXPECT_EQ(a.mii.mii, b.mii.mii) << where;
  EXPECT_EQ(a.stats.placements, b.stats.placements) << where;
  EXPECT_EQ(a.stats.evictions, b.stats.evictions) << where;
  EXPECT_EQ(a.stats.ii_attempts, b.stats.ii_attempts) << where;
  if (a.ok && b.ok) expect_same_schedule(a.schedule, b.schedule, where);
}

TEST(BackendRegistry, BuiltinsRegisteredAndEnumLooksThemUp) {
  const std::vector<std::string> names = SchedulerRegistry::instance().names();
  for (const char* expected : {"single-cluster", "clustered", "clustered-moves"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
    EXPECT_NE(SchedulerRegistry::instance().find(expected), nullptr) << expected;
  }
  for (const SchedulerKind kind :
       {SchedulerKind::kSingleCluster, SchedulerKind::kClustered,
        SchedulerKind::kClusteredMoves}) {
    EXPECT_EQ(scheduler_backend(kind).name(), scheduler_kind_name(kind));
    EXPECT_EQ(find_scheduler_backend(kind, ""), &scheduler_backend(kind));
  }
  EXPECT_FALSE(scheduler_backend(SchedulerKind::kClusteredMoves).consumes_cached_mii());
  EXPECT_FALSE(scheduler_backend(SchedulerKind::kClusteredMoves).supports_warm_start());
  EXPECT_TRUE(scheduler_backend(SchedulerKind::kClustered).consumes_cached_mii());
}

TEST(BackendRegistry, UnknownNameDiagnosticListsRegisteredBackends) {
  EXPECT_EQ(SchedulerRegistry::instance().find("no-such-backend"), nullptr);
  EXPECT_EQ(find_scheduler_backend(SchedulerKind::kClustered, "no-such-backend"), nullptr);
  try {
    (void)SchedulerRegistry::instance().require("no-such-backend");
    FAIL() << "require() accepted an unknown backend";
  } catch (const Error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no-such-backend"), std::string::npos) << message;
    EXPECT_NE(message.find("single-cluster"), std::string::npos) << message;
    EXPECT_NE(message.find("clustered-moves"), std::string::npos) << message;
  }
}

TEST(BackendRegistry, DuplicateNameRejected) {
  class Dup final : public SchedulerBackend {
   public:
    [[nodiscard]] std::string_view name() const override { return "single-cluster"; }
    [[nodiscard]] ScheduleOutcome schedule(const ScheduleRequest&) const override { return {}; }
  };
  EXPECT_THROW(SchedulerRegistry::instance().add(std::make_unique<Dup>()), Error);
}

/// A registrable external backend: classic IMS under a new name, with a
/// distinctive cache-key contribution.  Stands in for the SMT-style
/// reference scheduler the registry seam is built for.
class EchoBackend final : public SchedulerBackend {
 public:
  explicit EchoBackend(std::string name, std::uint64_t salt) : name_(std::move(name)), salt_(salt) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint64_t cache_key(ClusterHeuristic, const ImsOptions&) const override {
    return salt_;
  }
  [[nodiscard]] ScheduleOutcome schedule(const ScheduleRequest& request) const override {
    ScheduleOutcome outcome;
    outcome.ims = ims_schedule(*request.loop, *request.graph, *request.machine, request.ims,
                               nullptr, request.seed);
    return outcome;
  }

 private:
  std::string name_;
  std::uint64_t salt_;
};

TEST(BackendRegistry, CustomBackendRunsThroughThePipeline) {
  SchedulerRegistry::instance().add(std::make_unique<EchoBackend>("test-echo", 0x71u));

  const Loop loop = kernel_by_name("dot");
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);

  PipelineOptions via_enum;
  PipelineOptions via_name;
  via_name.backend = "test-echo";
  const LoopResult enum_result = run_pipeline(loop, machine, via_enum);
  const LoopResult name_result = run_pipeline(loop, machine, via_name);

  ASSERT_TRUE(enum_result.ok) << enum_result.failure;
  ASSERT_TRUE(name_result.ok) << name_result.failure;
  EXPECT_EQ(enum_result.ii, name_result.ii);
  EXPECT_EQ(enum_result.backend, "single-cluster");
  EXPECT_EQ(name_result.backend, "test-echo");

  PipelineOptions bad;
  bad.backend = "not-a-backend";
  const LoopResult bad_result = run_pipeline(loop, machine, bad);
  EXPECT_FALSE(bad_result.ok);
  EXPECT_NE(bad_result.failure.find("unknown scheduler backend"), std::string::npos)
      << bad_result.failure;
  EXPECT_NE(bad_result.failure.find("not-a-backend"), std::string::npos) << bad_result.failure;
}

// The pre-registry ScheduleStage hard-coded this switch; registry
// dispatch must reproduce it bit for bit across the kernel corpus.
TEST(BackendGolden, RegistryDispatchMatchesLegacySwitch) {
  const MachineConfig single = MachineConfig::single_cluster_machine(6);
  const MachineConfig ring = MachineConfig::clustered_machine(4);

  for (const Loop& source : kernel_corpus()) {
    const Loop loop = insert_copies(source).loop;
    for (const int budget : {4, 6}) {
      {
        const Ddg graph = Ddg::build(loop, single.latency);
        ScheduleRequest request =
            request_for(loop, graph, single, ClusterHeuristic::kAffinity, budget);
        const ScheduleOutcome outcome =
            scheduler_backend(SchedulerKind::kSingleCluster).schedule(request);
        EXPECT_FALSE(outcome.rewrote);
        expect_same_ims(outcome.ims, ims_schedule(loop, graph, single, request.ims),
                        "single/" + source.name);
      }
      {
        const Ddg graph = Ddg::build(loop, ring.latency);
        ScheduleRequest request =
            request_for(loop, graph, ring, ClusterHeuristic::kLoadBalance, budget);
        const ScheduleOutcome outcome =
            scheduler_backend(SchedulerKind::kClustered).schedule(request);
        EXPECT_FALSE(outcome.rewrote);
        PartitionOptions popts;
        popts.heuristic = ClusterHeuristic::kLoadBalance;
        popts.ims = request.ims;
        expect_same_ims(outcome.ims, partition_schedule(loop, graph, ring, popts),
                        "clustered/" + source.name);
      }
      {
        const Ddg graph = Ddg::build(loop, ring.latency);
        ScheduleRequest request =
            request_for(loop, graph, ring, ClusterHeuristic::kAffinity, budget);
        const ScheduleOutcome outcome =
            scheduler_backend(SchedulerKind::kClusteredMoves).schedule(request);
        PartitionOptions popts;
        popts.heuristic = ClusterHeuristic::kAffinity;
        popts.ims = request.ims;
        const RouteResult routed = partition_with_moves(loop, ring, popts);
        EXPECT_EQ(outcome.rewrote, routed.ok) << source.name;
        if (routed.ok) {
          expect_same_ims(outcome.ims, routed.ims, "moves/" + source.name);
          EXPECT_EQ(outcome.moves_added, routed.moves_added) << source.name;
          EXPECT_EQ(outcome.rewritten_loop.content_hash(), routed.loop.content_hash())
              << source.name;
        } else {
          EXPECT_EQ(outcome.ims.failure, routed.failure) << source.name;
        }
      }
    }
  }
}

TEST(BackendKeys, ContributionsNeverAlias) {
  const ImsOptions ims;
  const auto& single = scheduler_backend(SchedulerKind::kSingleCluster);
  const auto& clustered = scheduler_backend(SchedulerKind::kClustered);
  const auto& moves = scheduler_backend(SchedulerKind::kClusteredMoves);

  // Distinct backends never share a slot.
  const std::uint64_t s = single.cache_key(ClusterHeuristic::kAffinity, ims);
  const std::uint64_t c = clustered.cache_key(ClusterHeuristic::kAffinity, ims);
  const std::uint64_t m = moves.cache_key(ClusterHeuristic::kAffinity, ims);
  EXPECT_NE(s, c);
  EXPECT_NE(s, m);
  EXPECT_NE(c, m);

  // The partitioned backends fold the heuristic (it changes the
  // schedule); the single-cluster backend ignores it (it does not).
  EXPECT_NE(clustered.cache_key(ClusterHeuristic::kAffinity, ims),
            clustered.cache_key(ClusterHeuristic::kLoadBalance, ims));
  EXPECT_EQ(single.cache_key(ClusterHeuristic::kAffinity, ims),
            single.cache_key(ClusterHeuristic::kLoadBalance, ims));

  // The II window changes reachable schedules and is folded; the budget
  // is the ladder axis and is not.
  ImsOptions limited = ims;
  limited.ii_limit = 7;
  EXPECT_NE(clustered.cache_key(ClusterHeuristic::kAffinity, ims),
            clustered.cache_key(ClusterHeuristic::kAffinity, limited));
  ImsOptions budgeted = ims;
  budgeted.budget_ratio = 12;
  EXPECT_EQ(clustered.cache_key(ClusterHeuristic::kAffinity, ims),
            clustered.cache_key(ClusterHeuristic::kAffinity, budgeted));
}

// Warm-start property over randomized loops and machines: offering the
// smaller budget's accepted schedule as a seed never worsens the final
// II, and the result always verifies clean.
TEST(WarmStart, NeverWorseThanColdOnRandomizedMachines) {
  int warm_installs = 0;
  for (const std::uint64_t seed : {3u, 17u}) {
    SynthConfig config;
    config.loops = 12;
    config.seed = seed;
    for (const Loop& source : synthesize_suite(config)) {
      const Loop loop = insert_copies(source).loop;
      for (const int clusters : {2, 4}) {
        const MachineConfig machine = MachineConfig::clustered_machine(clusters);
        const Ddg graph = Ddg::build(loop, machine.latency);

        PartitionOptions small;
        small.ims.budget_ratio = 3;
        const ImsResult cold_small = partition_schedule(loop, graph, machine, small);
        if (!cold_small.ok) continue;

        PartitionOptions large = small;
        large.ims.budget_ratio = 12;
        const ImsResult cold_large = partition_schedule(loop, graph, machine, large);
        const WarmStartSeed warm_seed{cold_small.schedule, cold_small.ii};
        const ImsResult warm = partition_schedule(loop, graph, machine, large, &warm_seed);

        ASSERT_TRUE(warm.ok) << loop.name << ": " << warm.failure;
        ASSERT_TRUE(cold_large.ok) << loop.name << ": " << cold_large.failure;
        EXPECT_LE(warm.ii, cold_large.ii) << loop.name;
        // On an ascending-budget ladder the warm run is outcome-identical.
        EXPECT_EQ(warm.ii, cold_large.ii) << loop.name;
        expect_same_schedule(warm.schedule, cold_large.schedule, loop.name);
        EXPECT_TRUE(verify_schedule(loop, graph, machine, warm.schedule).empty()) << loop.name;
        if (warm.warm_started) ++warm_installs;
      }
    }
  }
  EXPECT_GT(warm_installs, 0);
}

TEST(WarmStart, InvalidSeedsAreIgnored) {
  const Loop dot = insert_copies(kernel_by_name("dot")).loop;
  const Loop daxpy = insert_copies(kernel_by_name("daxpy")).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const Ddg dot_graph = Ddg::build(dot, machine.latency);
  const Ddg daxpy_graph = Ddg::build(daxpy, machine.latency);

  PartitionOptions options;
  const ImsResult cold = partition_schedule(dot, dot_graph, machine, options);
  ASSERT_TRUE(cold.ok) << cold.failure;

  // A seed from a different loop (op counts differ) must be ignored.
  const ImsResult other = partition_schedule(daxpy, daxpy_graph, machine, options);
  ASSERT_TRUE(other.ok) << other.failure;
  const WarmStartSeed foreign{other.schedule, other.ii};
  const ImsResult warm_foreign = partition_schedule(dot, dot_graph, machine, options, &foreign);
  EXPECT_FALSE(warm_foreign.warm_started);
  expect_same_ims(warm_foreign, cold, "foreign seed");

  // An incomplete schedule fails verification and must be ignored.
  WarmStartSeed corrupted{cold.schedule, cold.ii};
  corrupted.schedule.clear(0);
  const ImsResult warm_corrupted =
      partition_schedule(dot, dot_graph, machine, options, &corrupted);
  EXPECT_FALSE(warm_corrupted.warm_started);
  expect_same_ims(warm_corrupted, cold, "incomplete seed");

  // A seed whose claimed II disagrees with its schedule must be ignored.
  const WarmStartSeed lying{cold.schedule, cold.ii + 1};
  const ImsResult warm_lying = partition_schedule(dot, dot_graph, machine, options, &lying);
  EXPECT_FALSE(warm_lying.warm_started);
  expect_same_ims(warm_lying, cold, "ii-mismatched seed");

  // The genuine seed, by contrast, is adopted.
  const WarmStartSeed genuine{cold.schedule, cold.ii};
  const ImsResult warm_genuine = partition_schedule(dot, dot_graph, machine, options, &genuine);
  EXPECT_TRUE(warm_genuine.warm_started);
  EXPECT_EQ(warm_genuine.ii, cold.ii);
  expect_same_schedule(warm_genuine.schedule, cold.schedule, "genuine seed");
}

}  // namespace
}  // namespace qvliw
