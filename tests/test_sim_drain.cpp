// Regression tests for epilogue drain semantics.
//
// A lifetime of distance d leaves d unconsumed tail instances in its
// queue; if another lifetime shares that queue, those tails would block
// its pops at the end of a finite trip.  The simulator models the
// epilogue's discarding reads (drain pops); these tests pin the exact
// loop shape that originally exposed the problem plus the boundary cases.
#include <gtest/gtest.h>

#include "harness/pipeline.h"
#include "ir/parser.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "sim/vliwsim.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

/// The distilled shape: a distance-2 flow (v2 reads v6_c0@2) whose queue
/// is shared with a zero-residency flow; without drain pops the dist-2
/// tail blocks the later lifetime's pops at the end of the run.
constexpr const char* kBlockedQueueLoop = R"(
  loop drain_regression {
    invariant c0, c1, c2, c3;
    trip 122;
    v0 = load A0[i+2];
    v1 = load A0[i-2];
    v2 = fmul v6_c0@2, v0;
    v2_c0 = copy v2;
    v2_c1 = copy v2_c0;
    v3 = fadd v1, v2_c1;
    v3_c0 = copy v3;
    v4 = fadd v2_c1, v3_c0;
    v4_c0 = copy v4;
    v5 = sub v4_c0, v2_c0;
    v6 = fadd v5, v3_c0;
    v6_c0 = copy v6;
    v7 = fadd v6_c0, 8;
    v7_c0 = copy v7;
    v8 = fadd v7_c0, v4_c0;
    store A0[i+1], v7_c0;
  }
)";

TEST(SimDrain, RegressionLoopSimulates) {
  const Loop loop = parse_loop(kBlockedQueueLoop);
  const MachineConfig machine = MachineConfig::single_cluster_machine(4);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(sched.ok) << sched.failure;
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  for (long long trip : {1, 2, 3, 8, 24, 122}) {
    const CheckedSim r =
        simulate_and_check(loop, graph, machine, sched.schedule, allocation, trip);
    EXPECT_TRUE(r.ok) << "trip " << trip << ": " << r.failure;
  }
}

TEST(SimDrain, PopCountIncludesDrains) {
  // Every pushed instance is eventually popped: kernel pops + drain pops
  // + leftover live-ins... with drains, pops == pushes exactly, because
  // each push (real or live-in) has exactly one consumer instance
  // (real or drain).
  const Loop loop = insert_copies(kernel_by_name("dot")).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(sched.ok);
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  const SimResult r = simulate(loop, graph, machine, sched.schedule, allocation, 30);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.pops, r.pushes);
}

TEST(SimDrain, TripShorterThanDistance) {
  // x@7 with trip 2: most consumer instances read live-ins, and most
  // pushed instances are drained.
  const Loop loop = insert_copies(kernel_by_name("fir8")).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(sched.ok);
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  const CheckedSim r = simulate_and_check(loop, graph, machine, sched.schedule, allocation, 2);
  EXPECT_TRUE(r.ok) << r.failure;
}

TEST(SimDrain, PipelineLevelRegressionSweep) {
  // The original trigger: synthetic loops on a narrow machine, simulated
  // at a trip that ends mid-pattern.
  SynthConfig config;
  config.loops = 10;
  config.seed = 101;
  config.max_ops = 40;
  PipelineOptions options;
  options.simulate = true;
  options.sim_trip = 24;
  const MachineConfig machine = MachineConfig::single_cluster_machine(4);
  for (const Loop& loop : synthesize_suite(config)) {
    const LoopResult r = run_pipeline(loop, machine, options);
    ASSERT_TRUE(r.ok) << loop.name << ": " << r.failure;
    EXPECT_TRUE(r.sim_ok) << loop.name;
  }
}

}  // namespace
}  // namespace qvliw
