#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/eval.h"
#include "sim/interp.h"
#include "sim/memory.h"
#include "support/diagnostics.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

TEST(Eval, ArithmeticSemantics) {
  EXPECT_EQ(eval_arith(Opcode::kAdd, 2, 3), 5);
  EXPECT_EQ(eval_arith(Opcode::kSub, 2, 3), -1);
  EXPECT_EQ(eval_arith(Opcode::kMul, -4, 3), -12);
  EXPECT_EQ(eval_arith(Opcode::kDiv, 7, 2), 3);
  EXPECT_EQ(eval_arith(Opcode::kDiv, 7, 0), 0);  // guarded
  EXPECT_EQ(eval_arith(Opcode::kDiv, std::numeric_limits<std::int64_t>::min(), -1),
            std::numeric_limits<std::int64_t>::min());
  // Float flavours share integer semantics.
  EXPECT_EQ(eval_arith(Opcode::kFAdd, 2, 3), eval_arith(Opcode::kAdd, 2, 3));
  EXPECT_EQ(eval_arith(Opcode::kFMul, 5, 7), eval_arith(Opcode::kMul, 5, 7));
  EXPECT_THROW((void)eval_arith(Opcode::kLoad, 1, 2), Error);
}

TEST(Eval, WrappingIsDefined) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(eval_arith(Opcode::kAdd, big, 1), std::numeric_limits<std::int64_t>::min());
}

TEST(Eval, DeterministicInits) {
  EXPECT_EQ(initial_array_value(1, 0, 5), initial_array_value(1, 0, 5));
  EXPECT_NE(initial_array_value(1, 0, 5), initial_array_value(1, 0, 6));
  EXPECT_NE(initial_array_value(1, 0, 5), initial_array_value(2, 0, 5));
  EXPECT_EQ(invariant_value(9, 1), invariant_value(9, 1));
  EXPECT_NE(invariant_value(9, 1), invariant_value(9, 2));
}

TEST(Memory, LoadStoreRoundTrip) {
  MemoryImage mem(2, 100, 42);
  mem.store(1, 50, 12345);
  EXPECT_EQ(mem.load(1, 50), 12345);
  // Pads are addressable on both sides.
  mem.store(0, -3, 7);
  EXPECT_EQ(mem.load(0, -3), 7);
  mem.store(0, 100 + 10, 8);
  EXPECT_EQ(mem.load(0, 110), 8);
  EXPECT_THROW((void)mem.load(0, -MemoryImage::kPad - 1), Error);
  EXPECT_THROW((void)mem.load(2, 0), Error);
}

TEST(Memory, EqualityAndDifference) {
  MemoryImage a(1, 50, 7);
  MemoryImage b(1, 50, 7);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.first_difference(b).first, -1);
  b.store(0, 13, 999999);
  EXPECT_FALSE(a == b);
  const auto [array, index] = a.first_difference(b);
  EXPECT_EQ(array, 0);
  EXPECT_EQ(index, 13);
}

TEST(Interp, VcopyMovesData) {
  const Loop loop = kernel_by_name("vcopy");
  const InterpResult r = interpret(loop, 10, 3);
  for (long long i = 0; i < 10; ++i) {
    EXPECT_EQ(r.memory.load(1, i), initial_array_value(3, 0, i)) << i;
  }
  EXPECT_EQ(r.ops_executed, 2 * 10);
}

TEST(Interp, DaxpyComputes) {
  const Loop loop = kernel_by_name("daxpy");
  const std::uint64_t seed = 11;
  const InterpResult r = interpret(loop, 8, seed);
  const std::int64_t a = invariant_value(seed, 0);
  for (long long i = 0; i < 8; ++i) {
    const std::int64_t x = initial_array_value(seed, 0, i);
    const std::int64_t y = initial_array_value(seed, 1, i);
    EXPECT_EQ(r.memory.load(1, i), eval_arith(Opcode::kAdd, eval_arith(Opcode::kMul, x, a), y));
  }
}

TEST(Interp, AccumulatorStartsAtZero) {
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const InterpResult r = interpret(loop, 4, 5);
  std::int64_t acc = 0;
  for (long long i = 0; i < 4; ++i) {
    acc = eval_arith(Opcode::kAdd, acc, initial_array_value(5, 0, i));
    EXPECT_EQ(r.memory.load(1, i), acc) << i;
  }
}

TEST(Interp, DeepHistory) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x@3, 1; store Y[i], s; }");
  const InterpResult r = interpret(loop, 6, 9);
  for (long long i = 0; i < 6; ++i) {
    const std::int64_t expected =
        i >= 3 ? initial_array_value(9, 0, i - 3) + 1 : 1;  // init history is 0
    EXPECT_EQ(r.memory.load(1, i), expected) << i;
  }
}

TEST(Interp, IndexOperand) {
  const Loop loop = parse_loop("loop t { s = add i+2, 10; store Y[i], s; }");
  const InterpResult r = interpret(loop, 5, 1);
  for (long long i = 0; i < 5; ++i) EXPECT_EQ(r.memory.load(0, i), i + 12);
}

TEST(Interp, StrideScalesIndexAndMemory) {
  Loop loop = parse_loop("loop t { stride 2; s = add i, 0; store Y[i], s; }");
  const InterpResult r = interpret(loop, 5, 1);
  for (long long j = 0; j < 5; ++j) EXPECT_EQ(r.memory.load(0, 2 * j), 2 * j);
}

TEST(Interp, MemoryCarriedRecurrence) {
  const Loop loop = kernel_by_name("lk11_partial_sum");
  const std::uint64_t seed = 13;
  const InterpResult r = interpret(loop, 6, seed);
  // x[k] = x[k-1] + y[k]; x[-1] is the initial pad value.
  std::int64_t prev = initial_array_value(seed, 0, -1);
  for (long long k = 0; k < 6; ++k) {
    prev = eval_arith(Opcode::kAdd, prev, initial_array_value(seed, 1, k));
    EXPECT_EQ(r.memory.load(0, k), prev) << k;
  }
}

TEST(Interp, SameSeedSameResult) {
  const Loop loop = kernel_by_name("cmul_acc");
  const InterpResult a = interpret(loop, 20, 123);
  const InterpResult b = interpret(loop, 20, 123);
  EXPECT_TRUE(a.memory == b.memory);
  const InterpResult c = interpret(loop, 20, 124);
  EXPECT_FALSE(a.memory == c.memory);
}

TEST(Interp, WholeCorpusRuns) {
  for (const Loop& loop : kernel_corpus()) {
    EXPECT_NO_THROW((void)interpret(loop, 16, 0xfeed)) << loop.name;
  }
}

TEST(Interp, TripValidation) {
  const Loop loop = kernel_by_name("vcopy");
  EXPECT_THROW((void)interpret(loop, 0, 1), Error);
}

}  // namespace
}  // namespace qvliw
