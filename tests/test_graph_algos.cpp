#include <gtest/gtest.h>

#include <algorithm>

#include "ir/graph_algos.h"
#include "ir/parser.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

Ddg chain(int n, int latency = 1) {
  Ddg graph(n);
  for (int v = 0; v + 1 < n; ++v) graph.add_edge({v, v + 1, latency, 0, DepKind::kFlow, -1});
  return graph;
}

TEST(Scc, ChainIsAllSingletons) {
  const Ddg graph = chain(5);
  EXPECT_EQ(scc_count(graph), 5);
  const auto ids = scc_ids(graph);
  std::vector<int> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Scc, CycleIsOneComponent) {
  Ddg graph = chain(4);
  graph.add_edge({3, 0, 1, 1, DepKind::kFlow, -1});
  EXPECT_EQ(scc_count(graph), 1);
  const auto ids = scc_ids(graph);
  EXPECT_EQ(ids[0], ids[3]);
}

TEST(Scc, TwoCyclesPlusIsolated) {
  Ddg graph(5);
  graph.add_edge({0, 1, 1, 0, DepKind::kFlow, -1});
  graph.add_edge({1, 0, 1, 1, DepKind::kFlow, -1});
  graph.add_edge({2, 3, 1, 0, DepKind::kFlow, -1});
  graph.add_edge({3, 2, 1, 1, DepKind::kFlow, -1});
  EXPECT_EQ(scc_count(graph), 3);
  const auto ids = scc_ids(graph);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[2], ids[3]);
  EXPECT_NE(ids[0], ids[2]);
  EXPECT_NE(ids[4], ids[0]);
}

TEST(Scc, SelfLoop) {
  Ddg graph(2);
  graph.add_edge({0, 0, 2, 1, DepKind::kFlow, -1});
  EXPECT_EQ(scc_count(graph), 2);
}

TEST(PositiveCycle, AcyclicNeverPositive) {
  const Ddg graph = chain(6, 10);
  for (int ii = 1; ii <= 4; ++ii) EXPECT_FALSE(has_positive_cycle(graph, ii));
}

TEST(PositiveCycle, SelfLoopThreshold) {
  Ddg graph(1);
  graph.add_edge({0, 0, 5, 2, DepKind::kFlow, -1});  // needs II >= ceil(5/2) = 3
  EXPECT_TRUE(has_positive_cycle(graph, 1));
  EXPECT_TRUE(has_positive_cycle(graph, 2));
  EXPECT_FALSE(has_positive_cycle(graph, 3));
  EXPECT_FALSE(has_positive_cycle(graph, 10));
}

TEST(PositiveCycle, LongCycleThreshold) {
  // Cycle latency 7, distance 2 -> needs II >= 4.
  Ddg graph(3);
  graph.add_edge({0, 1, 3, 0, DepKind::kFlow, -1});
  graph.add_edge({1, 2, 3, 1, DepKind::kFlow, -1});
  graph.add_edge({2, 0, 1, 1, DepKind::kFlow, -1});
  EXPECT_TRUE(has_positive_cycle(graph, 3));
  EXPECT_FALSE(has_positive_cycle(graph, 4));
}

TEST(Circuits, FindsSelfLoop) {
  Ddg graph(2);
  graph.add_edge({0, 0, 4, 1, DepKind::kFlow, -1});
  const auto circuits = elementary_circuits(graph);
  ASSERT_EQ(circuits.size(), 1u);
  EXPECT_EQ(circuits[0].latency_sum, 4);
  EXPECT_EQ(circuits[0].distance_sum, 1);
  EXPECT_EQ(circuits[0].min_ii(), 4);
}

TEST(Circuits, FindsAllElementaryCircuits) {
  // Two overlapping cycles: 0->1->0 and 0->1->2->0.
  Ddg graph(3);
  graph.add_edge({0, 1, 1, 0, DepKind::kFlow, -1});
  graph.add_edge({1, 0, 1, 1, DepKind::kFlow, -1});
  graph.add_edge({1, 2, 1, 0, DepKind::kFlow, -1});
  graph.add_edge({2, 0, 1, 1, DepKind::kFlow, -1});
  const auto circuits = elementary_circuits(graph);
  EXPECT_EQ(circuits.size(), 2u);
}

TEST(Circuits, MaxCircuitsBound) {
  // Complete-ish digraph on 6 nodes has many circuits; the bound caps it.
  Ddg graph(6);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a != b) graph.add_edge({a, b, 1, 1, DepKind::kFlow, -1});
    }
  }
  const auto circuits = elementary_circuits(graph, 10);
  EXPECT_EQ(circuits.size(), 10u);
}

TEST(Circuits, RecMiiMatchesCircuitMax) {
  // On real kernels: max over circuits of min_ii == smallest feasible II.
  for (const char* name : {"dot", "rec1", "rec2", "horner", "cmul_acc", "lk5_tridiag"}) {
    const Loop loop = kernel_by_name(name);
    const Ddg graph = Ddg::build(loop, LatencyModel::classic());
    const auto circuits = elementary_circuits(graph);
    ASSERT_FALSE(circuits.empty()) << name;
    int bound = 1;
    for (const Circuit& c : circuits) bound = std::max(bound, c.min_ii());
    EXPECT_TRUE(has_positive_cycle(graph, bound - 1) || bound == 1) << name;
    EXPECT_FALSE(has_positive_cycle(graph, bound)) << name;
  }
}

TEST(Height, SinkIsZero) {
  const Ddg graph = chain(3, 2);
  const auto h = height_priority(graph, 1);
  EXPECT_EQ(h[2], 0);
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(h[0], 4);
}

TEST(Height, BackEdgeDiscountedByII) {
  Ddg graph(2);
  graph.add_edge({0, 1, 3, 0, DepKind::kFlow, -1});
  graph.add_edge({1, 0, 1, 1, DepKind::kFlow, -1});
  // At II=4: h(1) = max(0, h(0) + 1 - 4) = 0; h(0) = 3.
  const auto h = height_priority(graph, 4);
  EXPECT_EQ(h[1], 0);
  EXPECT_EQ(h[0], 3);
}

TEST(Height, NeverNegative) {
  const Loop loop = kernel_by_name("rec2");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  for (int h : height_priority(graph, 8)) EXPECT_GE(h, 0);
}

}  // namespace
}  // namespace qvliw
