// Randomized fuzz oracle cross-checking the static verifier against the
// cycle-accurate simulator (sim/vliwsim).
//
// Two directions, over synthesized loops x randomized machines:
//
//   1. Completeness: artifacts the pipeline produced — and the simulator
//      already proved correct in SimStage — must be verifier-clean.  A
//      violation here is a verifier false positive.
//   2. Soundness: a *mutated* schedule the verifier accepts (with queues
//      reallocated for it) must still simulate bit-identically to the
//      reference interpreter.  A divergence here means the verifier
//      missed a legality rule the hardware model enforces.
//
// Pair count defaults to 500 (QVLIW_FUZZ_PAIRS overrides).  Divergences
// are reported as repros: the loop in parseable DSL text, the machine
// shape, the mutation, and the smallest failing trip count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/stage.h"
#include "ir/printer.h"
#include "machine/fu.h"
#include "qrf/queue_alloc.h"
#include "sim/vliwsim.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"
#include "verify/verify.h"
#include "workload/synth.h"

namespace qvliw {
namespace {

int fuzz_pairs() {
  if (const char* env = std::getenv("QVLIW_FUZZ_PAIRS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 500;
}

/// A machine the generators never hand the pipeline: random cluster
/// count, FU mix, queue counts/depths and latency model, structurally
/// valid by construction.
MachineConfig random_machine(Rng& rng) {
  const int clusters = rng.uniform_int(1, 4);
  MachineConfig machine;
  if (clusters == 1) {
    machine = MachineConfig::single_cluster_machine(3 * rng.uniform_int(1, 4));
  } else {
    machine = MachineConfig::clustered_machine(clusters);
    machine.segment.queues_per_segment = 4 << rng.uniform_int(0, 1);
    machine.segment.queue_depth = 8 << rng.uniform_int(0, 1);
  }
  for (ClusterConfig& cluster : machine.clusters) {
    cluster.fus(FuKind::kLS) = rng.uniform_int(1, 2);
    cluster.fus(FuKind::kAdd) = rng.uniform_int(1, 2);
    cluster.fus(FuKind::kMul) = rng.uniform_int(1, 2);
    cluster.fus(FuKind::kCopy) = rng.uniform_int(1, 2);
    cluster.private_queues = 8 << rng.uniform_int(0, 2);
    cluster.queue_depth = 8 << rng.uniform_int(0, 1);
  }
  if (rng.chance(0.25)) machine.latency = LatencyModel::unit();
  machine.name = cat("fuzz-", clusters, "c");
  machine.validate();
  return machine;
}

std::string describe_machine(const MachineConfig& machine) {
  std::string out = cat(machine.name, " [");
  for (int c = 0; c < machine.cluster_count(); ++c) {
    const ClusterConfig& cluster = machine.cluster(c);
    out += cat(c == 0 ? "" : " | ", cluster.fus(FuKind::kLS), "L/S ", cluster.fus(FuKind::kAdd),
               "A ", cluster.fus(FuKind::kMul), "M ", cluster.fus(FuKind::kCopy), "C q",
               cluster.private_queues, "x", cluster.queue_depth);
  }
  return out + cat("] ring q", machine.segment.queues_per_segment, "x", machine.segment.queue_depth);
}

/// Smallest trip count (from a short ladder) still failing the checked
/// simulation — the "minimized" part of a divergence repro.
long long minimize_failing_trip(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                                const Schedule& schedule, const QueueAllocation& allocation) {
  for (const long long trip : {1LL, 2LL, 3LL, 4LL, 6LL, 12LL}) {
    if (!simulate_and_check(loop, graph, machine, schedule, allocation, trip).ok) return trip;
  }
  return 12;
}

std::string repro(const char* kind, const Loop& loop, const MachineConfig& machine,
                  const Schedule& schedule, const std::string& detail) {
  return cat("[", kind, "] machine ", describe_machine(machine), ", II ", schedule.ii(), "\n",
             detail, "\nloop:\n", to_text(loop));
}

/// One random single-placement edit.  Most mutants are illegal (the
/// verifier must say so); the occasional still-legal one feeds the
/// soundness direction.
void mutate_schedule(Rng& rng, Schedule& schedule, const MachineConfig& machine) {
  const int op = rng.uniform_int(0, schedule.op_count() - 1);
  Placement placement = schedule.place(op);
  switch (rng.uniform_int(0, 2)) {
    case 0:
      placement.cycle = std::max(0, placement.cycle + rng.uniform_int(-3, 3));
      break;
    case 1:
      placement.cluster = rng.uniform_int(0, machine.cluster_count() - 1);
      break;
    default:
      placement.fu = rng.uniform_int(0, 2);
      break;
  }
  schedule.set(op, placement);
}

TEST(VerifyFuzz, ValidatorVerdictsMatchTheSimulator) {
  const int pairs = fuzz_pairs();
  SynthConfig config;
  config.loops = std::min(pairs, 200);
  config.seed = 0xF122;
  const std::vector<Loop> pool = synthesize_suite(config);
  Rng rng(0xFE57);

  int compiled = 0;
  int mutants = 0;
  int mutants_legal = 0;
  std::vector<std::string> divergences;

  for (int p = 0; p < pairs && divergences.size() < 5; ++p) {
    const Loop& source = pool[static_cast<std::size_t>(p) % pool.size()];
    const MachineConfig machine = random_machine(rng);
    PipelineOptions options;
    if (machine.cluster_count() > 1) options.scheduler = SchedulerKind::kClustered;

    PipelineContext ctx(source, machine, options);
    run_stages(ctx, full_stage_plan());
    if (!ctx.result.ok) continue;  // many pairs are simply unschedulable
    ++compiled;

    // Direction 1: sim-proven pipeline artifacts must verify clean.
    const VerifyReport clean =
        verify_artifacts(ctx.loop, *ctx.graph, machine, ctx.sched.schedule, &ctx.allocation,
                         /*check_fanout=*/true, ctx.result.fits_machine_queues);
    if (!clean.ok()) {
      divergences.push_back(repro("false-positive", ctx.loop, machine, ctx.sched.schedule,
                                  cat("verifier rejects a sim-correct artifact: ",
                                      clean.summary())));
      continue;
    }

    // Direction 2: a verifier-accepted mutant must still simulate
    // correctly.
    Schedule mutant = ctx.sched.schedule;
    mutate_schedule(rng, mutant, machine);
    ++mutants;
    VerifyReport verdict = verify_ddg(ctx.loop, *ctx.graph, machine.latency);
    verdict.merge(verify_modulo_schedule(ctx.loop, *ctx.graph, machine, mutant));
    verdict.merge(verify_routing(ctx.loop, *ctx.graph, machine, mutant, /*check_fanout=*/true));
    QueueAllocation reallocated;
    bool allocated = false;
    if (mutant.complete()) {
      try {
        reallocated = allocate_queues(ctx.loop, *ctx.graph, machine, mutant);
        allocated = true;
      } catch (const Error&) {
        // The allocator refuses (non-adjacent flow); the verifier must
        // have refused too — checked below via verdict.ok().
      }
    }
    if (allocated) {
      verdict.merge(verify_queue_allocation(ctx.loop, *ctx.graph, machine, mutant, reallocated,
                                            /*must_fit=*/false));
    }
    if (!verdict.ok()) continue;  // verifier rejected the mutant: nothing to cross-check

    ++mutants_legal;
    if (!allocated) {
      divergences.push_back(repro("no-allocation", ctx.loop, machine, mutant,
                                  "verifier accepted a mutant the queue allocator rejects"));
      continue;
    }
    const CheckedSim sim =
        simulate_and_check(ctx.loop, *ctx.graph, machine, mutant, reallocated, 12);
    if (!sim.ok) {
      const long long trip =
          minimize_failing_trip(ctx.loop, *ctx.graph, machine, mutant, reallocated);
      divergences.push_back(repro("false-negative", ctx.loop, machine, mutant,
                                  cat("verifier-accepted mutant fails simulation at trip ",
                                      trip, ": ", sim.failure)));
    }
  }

  std::string all;
  for (const std::string& d : divergences) all += d + "\n\n";
  EXPECT_TRUE(divergences.empty()) << all;
  // The oracle only means something if it exercised both directions.
  EXPECT_GT(compiled, pairs / 10) << "too few pairs compiled; fuzz coverage collapsed";
  EXPECT_GT(mutants, 0);
  std::cout << "[fuzz] " << pairs << " pairs, " << compiled << " compiled, " << mutants
            << " mutants (" << mutants_legal << " verifier-legal)\n";
}

}  // namespace
}  // namespace qvliw
