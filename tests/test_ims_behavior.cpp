// Behavioural tests of IMS internals: eviction traffic, budget effects,
// forced placement, and the II ladder.
#include <gtest/gtest.h>

#include "cluster/partition.h"
#include "ir/parser.h"
#include "sched/ims.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

TEST(ImsBehavior, PressureCausesEvictionsSomewhere) {
  // Across a sweep of tight clustered schedules, force-and-evict must
  // actually fire (height priority alone cannot satisfy ring adjacency
  // for every loop).
  SynthConfig config;
  config.loops = 20;
  config.seed = 555;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  int evictions = 0;
  for (const Loop& source : synthesize_suite(config)) {
    const Loop loop = insert_copies(source).loop;
    const Ddg graph = Ddg::build(loop, machine.latency);
    PartitionOptions options;
    const ImsResult r = partition_schedule(loop, graph, machine, options);
    if (r.ok) evictions += r.stats.evictions;
  }
  EXPECT_GT(evictions, 0);
}

TEST(ImsBehavior, StarvedBudgetFailsThenGenerousSucceeds) {
  const Loop loop = kernel_by_name("fir8");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);

  ImsOptions starved;
  starved.budget_ratio = 1;
  starved.max_ii_attempts = 1;
  starved.ii_limit = 7;  // at the resource bound, ratio 1 cannot converge
  const ImsResult fail = ims_schedule(loop, graph, machine, starved);

  ImsOptions generous;
  generous.budget_ratio = 6;
  const ImsResult pass = ims_schedule(loop, graph, machine, generous);
  ASSERT_TRUE(pass.ok);
  // The generous run must do at least as well as any starved run could.
  if (fail.ok) {
    EXPECT_LE(pass.ii, fail.ii);
  }
}

TEST(ImsBehavior, AttemptCapRespected) {
  const Loop loop = kernel_by_name("fir8");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  ImsOptions options;
  options.budget_ratio = 1;  // likely to fail several IIs
  options.max_ii_attempts = 3;
  const ImsResult r = ims_schedule(loop, graph, machine, options);
  EXPECT_LE(r.stats.ii_attempts, 3);
}

TEST(ImsBehavior, LadderStopsAtFirstWorkingIi) {
  // With plentiful resources the first II attempt (at MII) must succeed.
  const Loop loop = kernel_by_name("daxpy");
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.stats.ii_attempts, 1);
  EXPECT_EQ(r.ii, r.mii.mii);
}

TEST(ImsBehavior, HigherStartIiGivesMoreSlack) {
  // Scheduling far above MII should succeed with zero evictions: every op
  // finds a free slot in its first window.
  const Loop loop = kernel_by_name("fir4");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  ImsOptions options;
  options.start_ii = 16;
  const ImsResult r = ims_schedule(loop, graph, machine, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ii, 16);
  EXPECT_EQ(r.stats.evictions, 0);
}

TEST(ImsBehavior, SchedulesRespectPriorityShape) {
  // The height-priority rule schedules the critical recurrence first; the
  // achieved II of rec2 equals RecMII even on a tight machine.
  const Loop loop = kernel_by_name("rec2");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ii, r.mii.mii);
}

TEST(ImsBehavior, DeterministicAcrossRuns) {
  SynthConfig config;
  config.loops = 10;
  config.seed = 77;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  for (const Loop& loop : synthesize_suite(config)) {
    const Ddg graph = Ddg::build(loop, machine.latency);
    const ImsResult a = ims_schedule(loop, graph, machine);
    const ImsResult b = ims_schedule(loop, graph, machine);
    ASSERT_EQ(a.ok, b.ok) << loop.name;
    if (!a.ok) continue;
    EXPECT_EQ(a.ii, b.ii) << loop.name;
    for (int op = 0; op < loop.op_count(); ++op) {
      EXPECT_EQ(a.schedule.place(op), b.schedule.place(op)) << loop.name << " op " << op;
    }
  }
}

TEST(ImsBehavior, MemEdgesConstrainScheduleEvenWithFreeFus) {
  // lk11: the store->load memory circuit forces II=5 even on 18 FUs.
  const Loop loop = kernel_by_name("lk11_partial_sum");
  const MachineConfig machine = MachineConfig::single_cluster_machine(18);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ii, 5);
}

}  // namespace
}  // namespace qvliw
