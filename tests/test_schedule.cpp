#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sched/reservation.h"
#include "sched/schedule.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "verify/verify.h"

namespace qvliw {
namespace {

Loop two_op_loop() { return parse_loop("loop t { x = load X[i]; store Y[i], x; }"); }

std::vector<std::string> messages_for(const VerifyReport& report, VerifyRule rule) {
  std::vector<std::string> out;
  for (const VerifyDiagnostic& d : report.diagnostics) {
    if (d.rule == rule) out.push_back(d.message);
  }
  return out;
}

TEST(Schedule, BasicAccessors) {
  Schedule s(3, 2);
  EXPECT_EQ(s.ii(), 2);
  EXPECT_EQ(s.op_count(), 3);
  EXPECT_FALSE(s.scheduled(0));
  EXPECT_FALSE(s.complete());
  s.set(0, {4, 0, 0});
  EXPECT_TRUE(s.scheduled(0));
  EXPECT_EQ(s.cycle(0), 4);
  s.set(1, {1, 0, 0});
  s.set(2, {7, 0, 0});
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.max_cycle(), 7);
  s.clear(2);
  EXPECT_FALSE(s.complete());
}

TEST(Schedule, StageCount) {
  Schedule s(2, 3);
  s.set(0, {0, 0, 0});
  s.set(1, {2, 0, 0});
  EXPECT_EQ(s.stage_count(), 1);  // cycles 0..2 fit in one stage of II=3
  s.set(1, {3, 0, 0});
  EXPECT_EQ(s.stage_count(), 2);
  s.set(1, {8, 0, 0});
  EXPECT_EQ(s.stage_count(), 3);
}

TEST(Schedule, TotalCyclesModel) {
  const Loop loop = two_op_loop();
  Schedule s(2, 2);
  s.set(0, {0, 0, 0});  // load, latency 2 -> completes at 2
  s.set(1, {2, 0, 0});  // store, latency 1 -> completes at 3
  // span = max(0+2, 2+1) = 3; trip 10 -> 9*2 + 3 = 21.
  EXPECT_EQ(s.total_cycles(loop, LatencyModel::classic(), 10), 21);
}

TEST(Schedule, RangeChecks) {
  Schedule s(1, 1);
  EXPECT_THROW((void)s.scheduled(5), Error);
  EXPECT_THROW(s.set(0, {-1, 0, 0}), Error);
  EXPECT_THROW((void)s.place(0), Error);  // not scheduled yet
}

TEST(DependenceValidation, DetectsViolation) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x, 1; store Y[i], s; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  Schedule s(3, 4);
  s.set(0, {0, 0, 0});
  s.set(1, {1, 0, 0});  // too early: needs >= 2 (load latency)
  s.set(2, {5, 0, 0});
  const MachineConfig m = MachineConfig::single_cluster_machine(3);
  const auto violations =
      messages_for(verify_modulo_schedule(loop, graph, m, s), VerifyRule::kSchedDependence);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("flow"), std::string::npos);
}

TEST(DependenceValidation, LoopCarriedSlackCounts) {
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  Schedule s(3, 2);
  s.set(0, {0, 0, 0});
  s.set(1, {2, 0, 0});  // self edge: 2 >= 2 + 2 - 2*1 = 2 OK
  s.set(2, {4, 0, 0});
  const MachineConfig m = MachineConfig::single_cluster_machine(6);
  EXPECT_FALSE(verify_modulo_schedule(loop, graph, m, s).has_rule(VerifyRule::kSchedDependence));
  Schedule bad(3, 1);  // II=1 below RecMII: self edge needs 2 <= 1
  bad.set(0, {0, 0, 0});
  bad.set(1, {2, 0, 0});
  bad.set(2, {4, 0, 0});
  EXPECT_TRUE(verify_modulo_schedule(loop, graph, m, bad).has_rule(VerifyRule::kSchedDependence));
}

TEST(DependenceValidation, ReportsUnscheduled) {
  const Loop loop = two_op_loop();
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  Schedule s(2, 1);
  s.set(0, {0, 0, 0});
  const MachineConfig m = MachineConfig::single_cluster_machine(3);
  EXPECT_TRUE(verify_modulo_schedule(loop, graph, m, s).has_rule(VerifyRule::kSchedIncomplete));
}

TEST(ResourceValidation, DetectsDoubleBooking) {
  const Loop loop = parse_loop("loop t { a = load X[i]; b = load Y[i]; s = fadd a, b; store Z[i], s; }");
  const MachineConfig m = MachineConfig::single_cluster_machine(3);  // 1 L/S
  Schedule s(4, 2);
  s.set(0, {0, 0, 0});
  s.set(1, {2, 0, 0});  // slot 0 again on the same L/S instance
  s.set(2, {4, 0, 0});
  s.set(3, {6, 0, 0});
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  const auto violations =
      messages_for(verify_modulo_schedule(loop, graph, m, s), VerifyRule::kSchedResource);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("double-book"), std::string::npos);
}

TEST(ResourceValidation, AcceptsDistinctInstances) {
  const Loop loop = parse_loop("loop t { a = load X[i]; b = load Y[i]; s = fadd a, b; store Z[i], s; }");
  const MachineConfig m = MachineConfig::single_cluster_machine(6);  // 2 L/S
  Schedule s(4, 2);
  s.set(0, {0, 0, 0});
  s.set(1, {0, 0, 1});  // second instance
  s.set(2, {2, 0, 0});
  s.set(3, {5, 0, 0});  // store on the L/S at the other modulo slot
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  const VerifyReport report = verify_modulo_schedule(loop, graph, m, s);
  EXPECT_FALSE(report.has_rule(VerifyRule::kSchedResource));
  EXPECT_FALSE(report.has_rule(VerifyRule::kSchedPlacement));
}

TEST(ResourceValidation, DetectsBadFuIndex) {
  const Loop loop = two_op_loop();
  const MachineConfig m = MachineConfig::single_cluster_machine(3);
  Schedule s(2, 2);
  s.set(0, {0, 0, 5});  // L/S instance 5 does not exist
  s.set(1, {2, 0, 0});
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_TRUE(verify_modulo_schedule(loop, graph, m, s).has_rule(VerifyRule::kSchedPlacement));
}

TEST(ResourceValidation, DetectsBadCluster) {
  const Loop loop = two_op_loop();
  const MachineConfig m = MachineConfig::single_cluster_machine(3);
  Schedule s(2, 2);
  s.set(0, {0, 3, 0});
  s.set(1, {2, 0, 0});
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_TRUE(verify_modulo_schedule(loop, graph, m, s).has_rule(VerifyRule::kSchedPlacement));
}

TEST(Reservation, PlaceFindRemove) {
  const MachineConfig m = MachineConfig::single_cluster_machine(6);  // 2 per kind
  ReservationTable table(m, 3);
  EXPECT_EQ(table.instances(0, FuKind::kLS), 2);
  EXPECT_EQ(table.find_free(0, FuKind::kLS, 4), 0);  // slot 1
  table.place(0, FuKind::kLS, 0, 4, 7);
  EXPECT_EQ(table.occupant(0, FuKind::kLS, 0, 1), 7);  // same modulo slot
  EXPECT_EQ(table.find_free(0, FuKind::kLS, 1), 1);
  table.place(0, FuKind::kLS, 1, 1, 8);
  EXPECT_EQ(table.find_free(0, FuKind::kLS, 7), -1);  // slot 1 full
  EXPECT_EQ(table.used_slots(0, FuKind::kLS), 2);
  table.remove(0, FuKind::kLS, 0, 4, 7);
  EXPECT_EQ(table.find_free(0, FuKind::kLS, 1), 0);
}

TEST(UsefulOps, ExcludesCopiesAndMoves) {
  const Loop loop =
      parse_loop("loop t { x = load X[i]; c = copy x; m = move c; store Y[i], m; }");
  EXPECT_EQ(useful_op_count(loop), 2);
}

TEST(Ipc, StaticAndDynamic) {
  const Loop loop = two_op_loop();
  Schedule s(2, 2);
  s.set(0, {0, 0, 0});
  s.set(1, {2, 0, 0});
  EXPECT_DOUBLE_EQ(static_ipc(loop, s), 1.0);  // 2 useful ops / II 2
  // trip 100: cycles = 99*2 + 3 = 201; IPC = 200/201.
  EXPECT_NEAR(dynamic_ipc(loop, LatencyModel::classic(), s, 100), 200.0 / 201.0, 1e-12);
}

TEST(FormatKernel, MentionsOpsAndStages) {
  const Loop loop = two_op_loop();
  const MachineConfig m = MachineConfig::single_cluster_machine(3);
  Schedule s(2, 2);
  s.set(0, {0, 0, 0});
  s.set(1, {3, 0, 0});
  const std::string text = format_kernel(loop, m, s);
  EXPECT_NE(text.find("II=2"), std::string::npos);
  EXPECT_NE(text.find("x(s0)"), std::string::npos);
  EXPECT_NE(text.find("st#1(s1)"), std::string::npos);
}

TEST(ScheduleCodec, RoundTripsPlacementsAndHoles) {
  Schedule schedule(4, 3);
  schedule.set(0, {0, 0, 0});
  schedule.set(1, {5, 1, 2});
  schedule.set(3, {2, 0, 1});  // op 2 deliberately unscheduled

  BlobWriter writer;
  serialize_schedule(writer, schedule);
  const std::string bytes = writer.take();

  BlobReader reader(bytes);
  const Schedule copy = deserialize_schedule(reader);
  reader.require_exhausted("schedule");
  ASSERT_EQ(copy.op_count(), schedule.op_count());
  EXPECT_EQ(copy.ii(), schedule.ii());
  for (int op = 0; op < schedule.op_count(); ++op) {
    ASSERT_EQ(copy.scheduled(op), schedule.scheduled(op)) << op;
    if (schedule.scheduled(op)) {
      EXPECT_EQ(copy.place(op), schedule.place(op)) << op;
    }
  }
}

TEST(ScheduleCodec, RejectsMalformedBlobs) {
  Schedule schedule(2, 2);
  schedule.set(0, {0, 0, 0});
  schedule.set(1, {1, 0, 1});
  BlobWriter writer;
  serialize_schedule(writer, schedule);
  const std::string bytes = writer.take();

  // Truncation anywhere throws instead of producing a partial schedule.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    BlobReader reader(std::string_view(bytes).substr(0, cut));
    EXPECT_THROW((void)deserialize_schedule(reader), Error) << cut;
  }

  // A structurally invalid payload (II < 1) is rejected even when the
  // byte count is right.
  BlobWriter bad;
  bad.put_i32(0);  // II
  bad.put_i32(0);  // op count
  const std::string bad_bytes = bad.take();
  BlobReader reader(bad_bytes);
  EXPECT_THROW((void)deserialize_schedule(reader), Error);
}

}  // namespace
}  // namespace qvliw
