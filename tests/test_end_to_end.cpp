// Whole-pipeline property tests over synthetic loops: transform, schedule,
// allocate, simulate, and demand bit-identical memory against the
// sequential reference — across single-cluster, clustered, and routed
// configurations, with and without unrolling.
#include <gtest/gtest.h>

#include "harness/pipeline.h"
#include "workload/suite.h"
#include "workload/synth.h"

namespace qvliw {
namespace {

struct EndToEndCase {
  SchedulerKind scheduler;
  bool unroll;
  bool clustered_machine;
  int machine_size;  // FUs or clusters
  std::uint64_t seed;
};

class EndToEnd : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EndToEnd, SimulationMatchesReference) {
  const EndToEndCase param = GetParam();
  const MachineConfig machine = param.clustered_machine
                                    ? MachineConfig::clustered_machine(param.machine_size)
                                    : MachineConfig::single_cluster_machine(param.machine_size);
  SynthConfig config;
  config.loops = 12;
  config.seed = param.seed;
  config.max_ops = 40;

  PipelineOptions options;
  options.scheduler = param.scheduler;
  options.unroll = param.unroll;
  options.max_unroll = 4;
  options.simulate = true;
  options.sim_trip = 24;

  int simulated = 0;
  for (const Loop& loop : synthesize_suite(config)) {
    const LoopResult r = run_pipeline(loop, machine, options);
    ASSERT_TRUE(r.ok) << loop.name << ": " << r.failure;
    EXPECT_TRUE(r.sim_ok) << loop.name << ": " << r.failure;
    EXPECT_GE(r.ii, r.mii) << loop.name;
    ++simulated;
  }
  EXPECT_EQ(simulated, config.loops);
}

INSTANTIATE_TEST_SUITE_P(
    PipelineMatrix, EndToEnd,
    ::testing::Values(
        EndToEndCase{SchedulerKind::kSingleCluster, false, false, 4, 101},
        EndToEndCase{SchedulerKind::kSingleCluster, false, false, 12, 102},
        EndToEndCase{SchedulerKind::kSingleCluster, true, false, 6, 103},
        EndToEndCase{SchedulerKind::kSingleCluster, true, false, 12, 104},
        EndToEndCase{SchedulerKind::kClustered, false, true, 2, 105},
        EndToEndCase{SchedulerKind::kClustered, false, true, 4, 106},
        EndToEndCase{SchedulerKind::kClustered, true, true, 4, 107},
        EndToEndCase{SchedulerKind::kClustered, false, true, 5, 108},
        EndToEndCase{SchedulerKind::kClusteredMoves, false, true, 5, 109},
        EndToEndCase{SchedulerKind::kClusteredMoves, false, true, 6, 110},
        EndToEndCase{SchedulerKind::kClusteredMoves, true, true, 6, 111}),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      std::string name;
      switch (info.param.scheduler) {
        case SchedulerKind::kSingleCluster:
          name = "single";
          break;
        case SchedulerKind::kClustered:
          name = "clustered";
          break;
        case SchedulerKind::kClusteredMoves:
          name = "moves";
          break;
      }
      name += std::to_string(info.param.machine_size);
      if (info.param.unroll) name += "_unrolled";
      name += "_seed" + std::to_string(info.param.seed);
      return name;
    });

TEST(EndToEndKernels, CorpusThroughFullPipelineOnRing) {
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  PipelineOptions options;
  options.scheduler = SchedulerKind::kClustered;
  options.simulate = true;
  options.sim_trip = 24;
  const Suite suite = small_suite(0);
  for (const Loop& loop : suite.loops) {
    const LoopResult r = run_pipeline(loop, machine, options);
    ASSERT_TRUE(r.ok) << loop.name << ": " << r.failure;
    EXPECT_TRUE(r.sim_ok) << loop.name;
  }
}

TEST(EndToEndKernels, RecirculatedInvariantsAcrossClusters) {
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  PipelineOptions options;
  options.scheduler = SchedulerKind::kClustered;
  options.invariants = InvariantStrategy::kRecirculate;
  options.simulate = true;
  options.sim_trip = 20;
  SynthConfig config;
  config.loops = 8;
  config.seed = 900;
  for (const Loop& loop : synthesize_suite(config)) {
    const LoopResult r = run_pipeline(loop, machine, options);
    ASSERT_TRUE(r.ok) << loop.name << ": " << r.failure;
    EXPECT_TRUE(r.sim_ok) << loop.name;
  }
}

TEST(EndToEndKernels, UnrolledTripDivisibilityHandled) {
  // Pipeline simulates the unrolled loop with its own trip_hint; memory
  // equality is checked against the unrolled reference, so any factor is
  // safe regardless of divisibility.
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  PipelineOptions options;
  options.unroll = true;
  options.forced_unroll = 3;
  options.simulate = true;
  SynthConfig config;
  config.loops = 6;
  config.seed = 901;
  for (const Loop& loop : synthesize_suite(config)) {
    const LoopResult r = run_pipeline(loop, machine, options);
    ASSERT_TRUE(r.ok) << loop.name << ": " << r.failure;
    EXPECT_EQ(r.unroll_factor, 3);
    EXPECT_TRUE(r.sim_ok) << loop.name;
  }
}

}  // namespace
}  // namespace qvliw
