#include <gtest/gtest.h>

#include "cluster/route.h"
#include "sched/schedule.h"
#include "sim/interp.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

TEST(Route, SucceedsWhereStrictAlreadyWorks) {
  const Loop loop = insert_copies(kernel_by_name("daxpy")).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const RouteResult r = partition_with_moves(loop, machine);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.moves_added, 0);  // no moves needed
  EXPECT_EQ(r.rounds, 1);
}

TEST(Route, FinalScheduleIsCommLegal) {
  for (const char* name : {"fir8", "cmul_acc", "wide8", "chain12"}) {
    const Loop loop = insert_copies(kernel_by_name(name)).loop;
    const MachineConfig machine = MachineConfig::clustered_machine(6);
    const RouteResult r = partition_with_moves(loop, machine);
    ASSERT_TRUE(r.ok) << name << ": " << r.failure;
    const Ddg graph = Ddg::build(r.loop, machine.latency);
    EXPECT_TRUE(communication_violations(graph, machine, r.ims.schedule).empty()) << name;
  }
}

TEST(Route, MovesPreserveSemantics) {
  for (const char* name : {"fir8", "cmul_acc"}) {
    const Loop loop = insert_copies(kernel_by_name(name)).loop;
    const MachineConfig machine = MachineConfig::clustered_machine(6);
    const RouteResult r = partition_with_moves(loop, machine);
    ASSERT_TRUE(r.ok) << name;
    const InterpResult a = interpret(loop, 20, 0x99);
    const InterpResult b = interpret(r.loop, 20, 0x99);
    EXPECT_TRUE(a.memory == b.memory) << name;
  }
}

TEST(Route, SyntheticSweepOnSixClusters) {
  SynthConfig config;
  config.loops = 15;
  config.seed = 4321;
  const MachineConfig machine = MachineConfig::clustered_machine(6);
  int succeeded = 0;
  for (const Loop& source : synthesize_suite(config)) {
    const Loop loop = insert_copies(source).loop;
    const RouteResult r = partition_with_moves(loop, machine);
    if (!r.ok) continue;
    ++succeeded;
    const Ddg graph = Ddg::build(r.loop, machine.latency);
    EXPECT_TRUE(communication_violations(graph, machine, r.ims.schedule).empty()) << source.name;
    EXPECT_TRUE(verify_schedule(r.loop, graph, machine, r.ims.schedule).empty()) << source.name;
  }
  // The router should rescue nearly everything on 6 clusters.
  EXPECT_GE(succeeded, 13);
}

TEST(Route, ReportsFailureGracefully) {
  // An impossible II limit forces clean failure.
  const Loop loop = insert_copies(kernel_by_name("fir8")).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(6);
  PartitionOptions options;
  options.ims.ii_limit = 1;  // below MII
  const RouteResult r = partition_with_moves(loop, machine, options);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.failure.empty());
}

}  // namespace
}  // namespace qvliw
