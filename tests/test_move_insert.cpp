#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/interp.h"
#include "support/diagnostics.h"
#include "xform/move_insert.h"

namespace qvliw {
namespace {

TEST(MoveInsert, SingleHopSplitsEdge) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x, 1; store Y[i], s; }");
  const MoveInsertResult r = insert_move_chain(loop, 1, 0, 1);
  EXPECT_EQ(r.moves_added, 1);
  EXPECT_EQ(r.loop.op_count(), 4);
  // The move reads x; the add reads the move.
  const int move = r.op_map[1] - 1;  // emitted right after the producer
  EXPECT_EQ(r.loop.ops[static_cast<std::size_t>(move)].opcode, Opcode::kMove);
  const Op& add = r.loop.ops[static_cast<std::size_t>(r.op_map[1])];
  EXPECT_EQ(add.args[0].value_op, move);
}

TEST(MoveInsert, MultiHopChains) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x, 1; store Y[i], s; }");
  const MoveInsertResult r = insert_move_chain(loop, 1, 0, 3);
  EXPECT_EQ(r.moves_added, 3);
  EXPECT_EQ(r.loop.op_count(), 6);
  EXPECT_NO_THROW(r.loop.validate());
}

TEST(MoveInsert, PreservesSemantics) {
  const Loop loop = parse_loop(
      "loop t { x = load X[i]; s = fadd x, 1; u = fmul s, 3; store Y[i], u; }");
  const MoveInsertResult r = insert_move_chain(loop, 2, 0, 2);
  const InterpResult a = interpret(loop, 16, 1);
  const InterpResult b = interpret(r.loop, 16, 1);
  EXPECT_TRUE(a.memory == b.memory);
}

TEST(MoveInsert, LoopCarriedEdgePreservesDistance) {
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const MoveInsertResult r = insert_move_chain(loop, 1, 0, 1);  // the acc@1 operand
  EXPECT_EQ(r.moves_added, 1);
  const Op& acc = r.loop.ops[static_cast<std::size_t>(r.op_map[1])];
  EXPECT_EQ(acc.args[0].distance, 1);
  const InterpResult a = interpret(loop, 16, 2);
  const InterpResult b = interpret(r.loop, 16, 2);
  EXPECT_TRUE(a.memory == b.memory);
}

TEST(MoveInsert, OtherUsesUntouched) {
  const Loop loop = parse_loop(
      "loop t { x = load X[i]; c = copy x; a = fadd c, 1; b = fadd c, 2; store Y[i], a; store Z[i], b; }");
  const MoveInsertResult r = insert_move_chain(loop, 2, 0, 1);  // only a's read of c
  const Op& b_op = r.loop.ops[static_cast<std::size_t>(r.op_map[3])];
  EXPECT_EQ(b_op.args[0].value_op, r.op_map[1]);  // still reads the copy directly
}

TEST(MoveInsert, RejectsNonValueOperand) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x, 1; store Y[i], s; }");
  EXPECT_THROW((void)insert_move_chain(loop, 1, 1, 1), Error);  // immediate operand
}

TEST(MoveInsert, RejectsBadArguments) {
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  EXPECT_THROW((void)insert_move_chain(loop, 9, 0, 1), Error);
  EXPECT_THROW((void)insert_move_chain(loop, 1, 5, 1), Error);
  EXPECT_THROW((void)insert_move_chain(loop, 1, 0, 0), Error);
}

}  // namespace
}  // namespace qvliw
