// Unit and mutation tests for the static legality verifier (src/verify).
//
// The mutation tests are the point: take a known-good artifact set from
// the real pipeline, corrupt it in one targeted way, and require the
// verifier to reject it with a diagnostic naming the violated rule.
#include <gtest/gtest.h>

#include "harness/stage.h"
#include "harness/sweep.h"
#include "ir/parser.h"
#include "machine/fu.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "verify/verify.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

/// Full-pipeline artifacts for one loop + machine, kept alive for
/// mutation (run_pipeline alone discards everything but the result).
struct Artifacts {
  Loop loop;
  std::shared_ptr<const Ddg> graph;
  MachineConfig machine;
  Schedule schedule{0, 1};
  QueueAllocation allocation;
  bool fits = false;
};

Artifacts prepare(const Loop& source, const MachineConfig& machine,
                  PipelineOptions options = {}) {
  PipelineContext ctx(source, machine, options);
  run_stages(ctx, full_stage_plan());
  EXPECT_TRUE(ctx.result.ok) << ctx.result.failure;
  Artifacts a;
  a.loop = ctx.loop;
  a.graph = ctx.graph;
  a.machine = machine;
  a.schedule = ctx.sched.schedule;
  a.allocation = ctx.allocation;
  a.fits = ctx.result.fits_machine_queues;
  return a;
}

Artifacts prepare_clustered(const Loop& source, int clusters) {
  PipelineOptions options;
  options.scheduler = SchedulerKind::kClustered;
  return prepare(source, MachineConfig::clustered_machine(clusters), options);
}

TEST(Verify, CleanSingleClusterArtifactsPass) {
  const Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  const VerifyReport report =
      verify_artifacts(a.loop, *a.graph, a.machine, a.schedule, &a.allocation,
                       /*check_fanout=*/true, a.fits);
  EXPECT_TRUE(report.ok()) << report.summary(0);
}

TEST(Verify, CleanClusteredArtifactsPass) {
  const Artifacts a = prepare_clustered(kernel_by_name("daxpy"), 4);
  const VerifyReport report =
      verify_artifacts(a.loop, *a.graph, a.machine, a.schedule, &a.allocation,
                       /*check_fanout=*/true, a.fits);
  EXPECT_TRUE(report.ok()) << report.summary(0);
}

// --- pass 1: DDG ----------------------------------------------------------

TEST(VerifyDdg, CleanGraphPasses) {
  const Loop loop = kernel_by_name("daxpy");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_TRUE(verify_ddg(loop, graph, LatencyModel::classic()).ok());
}

TEST(VerifyDdg, TamperedFlowLatencyCaught) {
  const Loop loop = kernel_by_name("daxpy");
  const Ddg real = Ddg::build(loop, LatencyModel::classic());
  Ddg forged(loop.op_count());
  bool tampered = false;
  for (const DepEdge& edge : real.edges()) {
    DepEdge copy = edge;
    if (!tampered && copy.is_value_flow()) {
      copy.latency += 1;  // claim the producer is one cycle slower
      tampered = true;
    }
    forged.add_edge(copy);
  }
  ASSERT_TRUE(tampered);
  const VerifyReport report = verify_ddg(loop, forged, LatencyModel::classic());
  EXPECT_TRUE(report.has_rule(VerifyRule::kDdgFlow)) << report.summary(0);
}

TEST(VerifyDdg, DroppedMemoryEdgeCaught) {
  // load X[i] then store X[i]: one anti dependence the graph must carry.
  const Loop loop = parse_loop("loop t { x = load X[i]; store X[i], x; }");
  const Ddg real = Ddg::build(loop, LatencyModel::classic());
  Ddg forged(loop.op_count());
  bool dropped = false;
  for (const DepEdge& edge : real.edges()) {
    if (!dropped && !edge.is_value_flow()) {
      dropped = true;  // forget the memory ordering constraint
      continue;
    }
    forged.add_edge(edge);
  }
  ASSERT_TRUE(dropped);
  const VerifyReport report = verify_ddg(loop, forged, LatencyModel::classic());
  EXPECT_TRUE(report.has_rule(VerifyRule::kDdgMem)) << report.summary(0);
  EXPECT_NE(report.summary(0).find("missing"), std::string::npos);
}

// --- pass 2: schedule mutations -------------------------------------------

TEST(VerifyScheduleMutation, ShiftedCycleBreaksDependence) {
  const Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  // Drag a consumer to its producer's own cycle across a latency-carrying
  // same-iteration edge.
  int edge_index = -1;
  for (int e = 0; e < a.graph->edge_count(); ++e) {
    const DepEdge& edge = a.graph->edge(e);
    if (edge.distance == 0 && edge.latency > 0 && edge.src != edge.dst) {
      edge_index = e;
      break;
    }
  }
  ASSERT_GE(edge_index, 0);
  const DepEdge& edge = a.graph->edge(edge_index);
  Schedule bad = a.schedule;
  Placement placement = bad.place(edge.dst);
  placement.cycle = bad.cycle(edge.src);
  bad.set(edge.dst, placement);
  const VerifyReport report = verify_modulo_schedule(a.loop, *a.graph, a.machine, bad);
  EXPECT_TRUE(report.has_rule(VerifyRule::kSchedDependence)) << report.summary(0);
}

TEST(VerifyScheduleMutation, DoubleBookedSlotCaught) {
  const Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  // Park one op on another same-class op's FU instance, II cycles later:
  // the same modulo slot.
  int first = -1;
  int second = -1;
  for (int i = 0; i < a.loop.op_count() && second < 0; ++i) {
    for (int j = i + 1; j < a.loop.op_count(); ++j) {
      if (fu_for(a.loop.ops[static_cast<std::size_t>(i)].opcode) ==
          fu_for(a.loop.ops[static_cast<std::size_t>(j)].opcode)) {
        first = i;
        second = j;
        break;
      }
    }
  }
  ASSERT_GE(second, 0);
  Schedule bad = a.schedule;
  Placement clash = bad.place(first);
  clash.cycle += bad.ii();
  bad.set(second, clash);
  const VerifyReport report = verify_modulo_schedule(a.loop, *a.graph, a.machine, bad);
  EXPECT_TRUE(report.has_rule(VerifyRule::kSchedResource)) << report.summary(0);
  EXPECT_NE(report.summary(0).find("double-book"), std::string::npos);
}

// --- pass 3: routing ------------------------------------------------------

TEST(VerifyRouting, MissingCopyTreeCaught) {
  // Two consumers of one load with no copy tree: the queue fan-out
  // discipline is violated exactly as if a copy had been dropped.
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x, x; store Y[i], s; }");
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  Schedule schedule(loop.op_count(), 2);
  schedule.set(0, {0, 0, 0});
  schedule.set(1, {2, 0, 0});
  schedule.set(2, {4, 0, 0});
  const VerifyReport strict = verify_routing(loop, graph, machine, schedule,
                                             /*check_fanout=*/true);
  EXPECT_TRUE(strict.has_rule(VerifyRule::kRouteFanout)) << strict.summary(0);
  EXPECT_TRUE(verify_routing(loop, graph, machine, schedule, /*check_fanout=*/false).ok());
}

TEST(VerifyRouting, NonAdjacentFlowCaught) {
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const Ddg graph = Ddg::build(loop, machine.latency);
  Schedule schedule(loop.op_count(), 2);
  schedule.set(0, {0, 0, 0});
  schedule.set(1, {2, 2, 0});  // two ring hops away from its producer
  const VerifyReport report = verify_routing(loop, graph, machine, schedule,
                                             /*check_fanout=*/true);
  EXPECT_TRUE(report.has_rule(VerifyRule::kRouteAdjacency)) << report.summary(0);
}

// --- pass 4: queue-RF mutations -------------------------------------------

TEST(VerifyQueueMutation, TamperedLifetimeCaught) {
  Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  ASSERT_FALSE(a.allocation.lifetimes.empty());
  a.allocation.lifetimes[0].push -= 1;
  const VerifyReport report =
      verify_queue_allocation(a.loop, *a.graph, a.machine, a.schedule, a.allocation, a.fits);
  EXPECT_TRUE(report.has_rule(VerifyRule::kQueueLifetime)) << report.summary(0);
}

TEST(VerifyQueueMutation, WrongDomainCaught) {
  Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  ASSERT_FALSE(a.allocation.lifetimes.empty());
  a.allocation.lifetimes[0].domain.kind = QueueDomain::Kind::kSegment;
  const VerifyReport report =
      verify_queue_allocation(a.loop, *a.graph, a.machine, a.schedule, a.allocation, a.fits);
  EXPECT_TRUE(report.has_rule(VerifyRule::kQueueDomain)) << report.summary(0);
}

TEST(VerifyQueueMutation, InconsistentAssignmentCaught) {
  Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  ASSERT_GE(a.allocation.queues.size(), 2u);
  // Move one lifetime's queue_of without updating the member lists.
  const int old_queue = a.allocation.queue_of[0];
  a.allocation.queue_of[0] = old_queue == 0 ? 1 : 0;
  const VerifyReport report =
      verify_queue_allocation(a.loop, *a.graph, a.machine, a.schedule, a.allocation, a.fits);
  EXPECT_TRUE(report.has_rule(VerifyRule::kQueueAssignment)) << report.summary(0);
}

TEST(VerifyQueueMutation, MergedQueuesBreakFifoOrPortRule) {
  Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  ASSERT_GE(a.allocation.lifetimes.size(), 2u);
  // Cram every lifetime into queue 0 (consistently, so only the FIFO
  // simulation itself can object).
  a.allocation.queues[0].members.clear();
  for (std::size_t l = 0; l < a.allocation.queue_of.size(); ++l) {
    a.allocation.queue_of[l] = 0;
    a.allocation.queues[0].members.push_back(static_cast<int>(l));
  }
  for (std::size_t q = 1; q < a.allocation.queues.size(); ++q) {
    a.allocation.queues[q].members.clear();
  }
  const VerifyReport report =
      verify_queue_allocation(a.loop, *a.graph, a.machine, a.schedule, a.allocation,
                              /*must_fit=*/false);
  EXPECT_TRUE(report.has_rule(VerifyRule::kQueueFifo) ||
              report.has_rule(VerifyRule::kQueuePort))
      << report.summary(0);
}

TEST(VerifyQueueMutation, ShrunkenMachineQueuesCaught) {
  Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  ASSERT_GT(a.allocation.total_queues(), 1);
  MachineConfig tight = a.machine;
  tight.clusters[0].private_queues = 1;
  const VerifyReport report =
      verify_queue_allocation(a.loop, *a.graph, tight, a.schedule, a.allocation,
                              /*must_fit=*/true);
  EXPECT_TRUE(report.has_rule(VerifyRule::kQueueCapacity)) << report.summary(0);
}

TEST(VerifyQueueMutation, ShrunkenQueueDepthCaught) {
  Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  MachineConfig shallow = a.machine;
  shallow.clusters[0].queue_depth = 0;
  const VerifyReport report =
      verify_queue_allocation(a.loop, *a.graph, shallow, a.schedule, a.allocation,
                              /*must_fit=*/true);
  EXPECT_TRUE(report.has_rule(VerifyRule::kQueueCapacity)) << report.summary(0);
}

// --- rule names -----------------------------------------------------------

TEST(Verify, DiagnosticsNameTheViolatedRule) {
  Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  a.allocation.lifetimes[0].push -= 1;
  const VerifyReport report =
      verify_queue_allocation(a.loop, *a.graph, a.machine, a.schedule, a.allocation, a.fits);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const VerifyDiagnostic& d : report.diagnostics) {
    if (d.rule == VerifyRule::kQueueLifetime) {
      EXPECT_EQ(d.message.rfind("queue-lifetime: ", 0), 0u) << d.message;
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- machine + bundle codecs ----------------------------------------------

TEST(VerifyCodec, MachineRoundTrips) {
  const MachineConfig machine = MachineConfig::clustered_machine(3);
  BlobWriter writer;
  serialize_machine(writer, machine);
  const std::string bytes = writer.take();
  BlobReader reader(bytes);
  const MachineConfig copy = deserialize_machine(reader);
  reader.require_exhausted("machine");
  EXPECT_EQ(copy.name, machine.name);
  EXPECT_EQ(copy.signature(), machine.signature());
}

TEST(VerifyCodec, BundleRoundTripsAndVerifies) {
  const Artifacts a = prepare_clustered(kernel_by_name("daxpy"), 4);
  VerifyBundle bundle;
  bundle.loop = a.loop;
  bundle.machine = a.machine;
  bundle.schedule = a.schedule;
  bundle.has_allocation = true;
  bundle.allocation = a.allocation;
  bundle.must_fit = a.fits;
  const std::string blob = encode_verify_bundle(bundle);

  const VerifyBundle copy = decode_verify_bundle(blob);
  EXPECT_EQ(copy.loop.name, a.loop.name);
  EXPECT_EQ(copy.schedule.ii(), a.schedule.ii());
  EXPECT_EQ(copy.machine.signature(), a.machine.signature());
  EXPECT_EQ(copy.allocation.total_queues(), a.allocation.total_queues());
  const VerifyReport report = verify_bundle(copy);
  EXPECT_TRUE(report.ok()) << report.summary(0);
  EXPECT_EQ(encode_verify_bundle(copy), blob);
}

TEST(VerifyCodec, BundleRejectsCorruption) {
  const Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  VerifyBundle bundle;
  bundle.loop = a.loop;
  bundle.machine = a.machine;
  bundle.schedule = a.schedule;
  const std::string blob = encode_verify_bundle(bundle);

  EXPECT_THROW((void)decode_verify_bundle(std::string()), Error);
  EXPECT_THROW((void)decode_verify_bundle(blob.substr(0, blob.size() / 2)), Error);
  std::string flipped = blob;
  flipped[0] ^= 0x5a;  // magic
  EXPECT_THROW((void)decode_verify_bundle(flipped), Error);
}

TEST(VerifyCodec, V1BundleDecodesAsRingAndVerifies) {
  // A bundle written by the pre-topology tool: old magic, machine blob
  // without the topology suffix, and direction-local ring-cw/ring-ccw
  // queue-domain kinds instead of canonical segment ids.  The blob format
  // is positional, so the v1 payload can be spliced from byte strings.
  const Artifacts a = prepare_clustered(kernel_by_name("daxpy"), 4);
  VerifyBundle bundle;
  bundle.loop = a.loop;
  bundle.machine = a.machine;
  bundle.schedule = a.schedule;
  bundle.has_allocation = true;
  bundle.allocation = a.allocation;
  bundle.must_fit = a.fits;

  const int k = a.machine.cluster_count();
  const auto put_v1_domain = [k](BlobWriter& out, const QueueDomain& domain) {
    if (domain.kind == QueueDomain::Kind::kPrivate) {
      out.put_i32(0);
      out.put_i32(domain.index);
    } else if (domain.index < k) {
      out.put_i32(1);  // ring-cw
      out.put_i32(domain.index);
    } else {
      out.put_i32(2);  // ring-ccw, direction-local index
      out.put_i32(domain.index - k);
    }
  };

  BlobWriter head;
  head.put_u64(0x5156424e444c0001ULL);
  serialize_loop(head, bundle.loop);
  std::string blob = head.take();
  {
    BlobWriter machine_bytes;
    serialize_machine(machine_bytes, bundle.machine);
    std::string bytes = machine_bytes.take();
    bytes.resize(bytes.size() - 12);  // drop the v2 topology suffix (3 i32s)
    blob += bytes;
  }
  BlobWriter tail;
  serialize_schedule(tail, bundle.schedule);
  tail.put_bool(bundle.has_allocation);
  tail.put_i32(bundle.allocation.ii);
  tail.put_i32(static_cast<std::int32_t>(bundle.allocation.lifetimes.size()));
  for (const Lifetime& lt : bundle.allocation.lifetimes) {
    tail.put_i32(lt.edge);
    tail.put_i32(lt.producer);
    tail.put_i32(lt.consumer);
    tail.put_i32(lt.push);
    tail.put_i32(lt.pop);
    put_v1_domain(tail, lt.domain);
  }
  tail.put_i32(static_cast<std::int32_t>(bundle.allocation.queue_of.size()));
  for (int q : bundle.allocation.queue_of) tail.put_i32(q);
  tail.put_i32(static_cast<std::int32_t>(bundle.allocation.queues.size()));
  for (const AllocatedQueue& queue : bundle.allocation.queues) {
    put_v1_domain(tail, queue.domain);
    tail.put_i32(queue.index_in_domain);
    tail.put_i32(queue.max_occupancy);
    tail.put_i32(static_cast<std::int32_t>(queue.members.size()));
    for (int member : queue.members) tail.put_i32(member);
  }
  tail.put_bool(bundle.check_fanout);
  tail.put_bool(bundle.must_fit);
  blob += tail.take();

  const VerifyBundle copy = decode_verify_bundle(blob);
  EXPECT_EQ(copy.machine.signature(), bundle.machine.signature());
  ASSERT_EQ(copy.allocation.lifetimes.size(), bundle.allocation.lifetimes.size());
  for (std::size_t i = 0; i < bundle.allocation.lifetimes.size(); ++i) {
    EXPECT_EQ(copy.allocation.lifetimes[i].domain, bundle.allocation.lifetimes[i].domain);
  }
  const VerifyReport report = verify_bundle(copy);
  EXPECT_TRUE(report.ok()) << report.summary(0);
  // Re-encoding the decoded bundle upgrades it to the current format.
  EXPECT_EQ(encode_verify_bundle(copy), encode_verify_bundle(bundle));
}

TEST(VerifyCodec, TamperedBundleFailsVerification) {
  const Artifacts a = prepare(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  VerifyBundle bundle;
  bundle.loop = a.loop;
  bundle.machine = a.machine;
  bundle.schedule = a.schedule;
  bundle.has_allocation = true;
  bundle.allocation = a.allocation;
  bundle.allocation.lifetimes[0].pop += 1;
  const VerifyBundle copy = decode_verify_bundle(encode_verify_bundle(bundle));
  const VerifyReport report = verify_bundle(copy);
  EXPECT_TRUE(report.has_rule(VerifyRule::kQueueLifetime)) << report.summary(0);
}

// --- pipeline + sweep wiring ----------------------------------------------

TEST(VerifyStage, PolicyControlsChecking) {
  const Loop loop = kernel_by_name("daxpy");
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);

  PipelineOptions off;
  const LoopResult none = run_pipeline(loop, machine, off);
  ASSERT_TRUE(none.ok) << none.failure;
  EXPECT_FALSE(none.verify_checked);
  EXPECT_EQ(none.verify_violations, 0);

  PipelineOptions audit;
  audit.verify = VerifyPolicy::kAudit;
  const LoopResult audited = run_pipeline(loop, machine, audit);
  ASSERT_TRUE(audited.ok) << audited.failure;
  EXPECT_TRUE(audited.verify_checked);
  EXPECT_EQ(audited.verify_violations, 0);

  PipelineOptions strict;
  strict.verify = VerifyPolicy::kStrict;
  const LoopResult strict_result = run_pipeline(loop, machine, strict);
  EXPECT_TRUE(strict_result.ok) << strict_result.failure;
  EXPECT_TRUE(strict_result.verify_checked);
}

TEST(SweepVerify, FullModeChecksEveryCell) {
  const std::vector<Loop> corpus = kernel_corpus();
  const std::vector<Loop> loops(corpus.begin(), corpus.begin() + 6);
  std::vector<SweepPoint> points;
  points.push_back({"single-6", MachineConfig::single_cluster_machine(6), PipelineOptions{}});

  SweepOptions options;
  options.verify_mode = SweepVerifyMode::kFull;
  const SweepResult sweep = SweepRunner(options).run(loops, points);
  ASSERT_EQ(sweep.by_point.size(), 1u);
  for (const LoopResult& r : sweep.by_point[0]) {
    if (r.ok) EXPECT_TRUE(r.verify_checked) << r.name;
    EXPECT_EQ(r.verify_violations, 0) << r.name;
  }
  EXPECT_EQ(sweep.verify_violations(), 0u);
  EXPECT_GT(sweep.verify_checked(), 0u);

  SweepOptions off;
  const SweepResult unchecked = SweepRunner(off).run(loops, points);
  EXPECT_EQ(unchecked.verify_checked(), 0u);
}

TEST(SweepVerify, SamplingIsDeterministic) {
  const std::vector<Loop> corpus = kernel_corpus();
  const std::vector<Loop> loops(corpus.begin(), corpus.begin() + 8);
  std::vector<SweepPoint> points;
  points.push_back({"single-6", MachineConfig::single_cluster_machine(6), PipelineOptions{}});

  SweepOptions options;
  options.verify_mode = SweepVerifyMode::kSample;
  options.verify_sample_rate = 2;
  const SweepResult first = SweepRunner(options).run(loops, points);
  const SweepResult second = SweepRunner(options).run(loops, points);
  ASSERT_EQ(first.by_point[0].size(), second.by_point[0].size());
  for (std::size_t i = 0; i < first.by_point[0].size(); ++i) {
    EXPECT_EQ(first.by_point[0][i].verify_checked, second.by_point[0][i].verify_checked)
        << loops[i].name;
  }
  EXPECT_LE(first.verify_checked(), loops.size());
  EXPECT_EQ(first.verify_violations(), 0u);
}

}  // namespace
}  // namespace qvliw
