// Golden ring-equivalence suite.
//
// The topology-generic back end replaced dedicated ring arithmetic
// (ring_distance / clockwise step_toward / cw-ccw queue domains) with the
// Topology abstraction.  These tests replicate the retired arithmetic
// verbatim and assert the generic path is bit-identical to it: distances,
// hop directions, every queue domain the allocator files a lifetime
// under, and the sweep fingerprint across repeated runs of the clustered
// suite.  Any divergence here means cached ring artifacts and historical
// sweep baselines silently changed meaning.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/shard.h"
#include "harness/stage.h"
#include "harness/sweep.h"
#include "machine/topology.h"
#include "qrf/lifetime.h"
#include "support/strings.h"
#include "verify/verify.h"
#include "workload/suite.h"

namespace qvliw {
namespace {

// --- the retired ring arithmetic, replicated verbatim ----------------------

int legacy_ring_distance(int k, int a, int b) {
  const int cw = ((b - a) % k + k) % k;
  return std::min(cw, k - cw);
}

/// Old MachineConfig::step_toward: one hop from `a` toward `b`, clockwise
/// preferred on ties.
int legacy_step_toward(int k, int a, int b) {
  const int cw = ((b - a) % k + k) % k;
  if (cw <= k - cw) return (a + 1) % k;
  return (a - 1 + k) % k;
}

/// Old domain_of_edge: {0 = private idx c, 1 = ring-cw idx i (segment
/// i -> i+1), 2 = ring-ccw idx i (segment i+1 -> i)}; a 2-cluster ring
/// used only "clockwise" segments.  Returns the canonical QueueDomain the
/// old triple maps to.
QueueDomain legacy_domain_of_edge(int k, int producer_cluster, int consumer_cluster) {
  if (producer_cluster == consumer_cluster) {
    return {QueueDomain::Kind::kPrivate, producer_cluster};
  }
  if ((producer_cluster + 1) % k == consumer_cluster) {
    return {QueueDomain::Kind::kSegment, producer_cluster};  // was kRingCw[producer]
  }
  // was kRingCcw[consumer]: segment consumer+1 -> consumer, canonical k+i
  return {QueueDomain::Kind::kSegment, k + consumer_cluster};
}

TEST(RingEquivalence, DistanceAndNextHopMatchLegacyArithmetic) {
  for (int k = 1; k <= 8; ++k) {
    const Topology t = Topology::ring(k);
    for (int a = 0; a < k; ++a) {
      for (int b = 0; b < k; ++b) {
        EXPECT_EQ(t.distance(a, b), legacy_ring_distance(k, a, b)) << k << " " << a << " " << b;
        if (a != b) {
          EXPECT_EQ(t.next_hop(a, b), legacy_step_toward(k, a, b)) << k << " " << a << " " << b;
        }
      }
    }
  }
}

TEST(RingEquivalence, DomainOfEdgeMatchesLegacyMapping) {
  for (int k = 2; k <= 8; ++k) {
    const Topology t = Topology::ring(k);
    for (int p = 0; p < k; ++p) {
      for (int c = 0; c < k; ++c) {
        if (legacy_ring_distance(k, p, c) > 1) continue;
        if (k == 2 && p != c) {
          // The 2-ring's both-directions-clockwise case: old code always
          // took the cw branch first, exactly like segment_between.
          EXPECT_EQ(domain_of_edge(t, p, c), (QueueDomain{QueueDomain::Kind::kSegment, p}));
          continue;
        }
        EXPECT_EQ(domain_of_edge(t, p, c), legacy_domain_of_edge(k, p, c)) << k << " " << p;
      }
    }
  }
}

/// Every lifetime the allocator files across the clustered suite carries
/// exactly the domain the legacy cw/ccw arithmetic would have chosen, and
/// the independent verifier agrees with the whole artifact set.
TEST(RingEquivalence, AllocatorDomainsMatchLegacyAcrossSuite) {
  SynthConfig config;
  config.loops = 48;
  const Suite suite = full_suite(config);
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const int k = machine.cluster_count();

  PipelineOptions options;
  options.unroll = true;
  options.scheduler = SchedulerKind::kClustered;

  int lifetimes_checked = 0;
  for (const Loop& source : suite.loops) {
    PipelineContext ctx(source, machine, options);
    run_stages(ctx, full_stage_plan());
    if (!ctx.result.ok) continue;
    for (const Lifetime& lt : ctx.allocation.lifetimes) {
      const int pc = ctx.sched.schedule.place(lt.producer).cluster;
      const int cc = ctx.sched.schedule.place(lt.consumer).cluster;
      ASSERT_EQ(lt.domain, legacy_domain_of_edge(k, pc, cc))
          << source.name << " edge " << lt.producer << "->" << lt.consumer;
      ++lifetimes_checked;
    }
    const VerifyReport report =
        verify_artifacts(ctx.loop, *ctx.graph, machine, ctx.sched.schedule, &ctx.allocation,
                         /*check_fanout=*/true, ctx.result.fits_machine_queues);
    EXPECT_TRUE(report.ok()) << source.name << ": " << report.summary(0);
  }
  EXPECT_GT(lifetimes_checked, 0);
}

/// The clustered sweep's canonical fingerprint is reproducible run to run
/// (the bit-identity contract CI holds ring baselines to).
TEST(RingEquivalence, SweepFingerprintStableAcrossRuns) {
  SynthConfig config;
  config.loops = 32;
  const Suite suite = full_suite(config);

  std::vector<SweepPoint> points;
  for (const ClusterHeuristic heuristic :
       {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance}) {
    SweepPoint point{cat("ring-4-", cluster_heuristic_name(heuristic)),
                     MachineConfig::clustered_machine(4),
                     {}};
    point.options.unroll = true;
    point.options.scheduler = SchedulerKind::kClustered;
    point.options.heuristic = heuristic;
    points.push_back(point);
  }
  const SweepResult first = SweepRunner().run(suite.loops, points);
  const SweepResult second = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(first), sweep_result_fingerprint(second));
}

}  // namespace
}  // namespace qvliw
