#include <gtest/gtest.h>

#include "cluster/partition.h"
#include "sched/schedule.h"
#include "ir/parser.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

ImsResult partition_kernel(const char* name, int clusters,
                           ClusterHeuristic heuristic = ClusterHeuristic::kAffinity) {
  const Loop loop = insert_copies(kernel_by_name(name)).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(clusters);
  const Ddg graph = Ddg::build(loop, machine.latency);
  PartitionOptions options;
  options.heuristic = heuristic;
  return partition_schedule(loop, graph, machine, options);
}

TEST(Partition, DaxpySchedulesOnFourClusters) {
  const ImsResult r = partition_kernel("daxpy", 4);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.ii, r.mii.mii);
}

TEST(Partition, CommunicationIsAdjacentOnly) {
  for (const char* name : {"daxpy", "fir4", "stencil3", "cmul_acc", "lk1_hydro"}) {
    const Loop loop = insert_copies(kernel_by_name(name)).loop;
    const MachineConfig machine = MachineConfig::clustered_machine(4);
    const Ddg graph = Ddg::build(loop, machine.latency);
    const ImsResult r = partition_schedule(loop, graph, machine);
    ASSERT_TRUE(r.ok) << name << ": " << r.failure;
    EXPECT_TRUE(communication_violations(graph, machine, r.schedule).empty()) << name;
  }
}

TEST(Partition, WholeCorpusOnFourClusters) {
  for (const Loop& source : kernel_corpus()) {
    const Loop loop = insert_copies(source).loop;
    const MachineConfig machine = MachineConfig::clustered_machine(4);
    const Ddg graph = Ddg::build(loop, machine.latency);
    const ImsResult r = partition_schedule(loop, graph, machine);
    ASSERT_TRUE(r.ok) << source.name << ": " << r.failure;
    EXPECT_TRUE(verify_schedule(loop, graph, machine, r.schedule).empty()) << source.name;
    EXPECT_TRUE(communication_violations(graph, machine, r.schedule).empty()) << source.name;
  }
}

TEST(Partition, SyntheticSweepAllHeuristics) {
  SynthConfig config;
  config.loops = 20;
  config.seed = 1234;
  for (const auto heuristic : {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance,
                               ClusterHeuristic::kFirstFit}) {
    for (const Loop& source : synthesize_suite(config)) {
      const Loop loop = insert_copies(source).loop;
      const MachineConfig machine = MachineConfig::clustered_machine(4);
      const Ddg graph = Ddg::build(loop, machine.latency);
      PartitionOptions options;
      options.heuristic = heuristic;
      const ImsResult r = partition_schedule(loop, graph, machine, options);
      ASSERT_TRUE(r.ok) << source.name << " with " << cluster_heuristic_name(heuristic) << ": "
                        << r.failure;
      EXPECT_TRUE(communication_violations(graph, machine, r.schedule).empty()) << source.name;
    }
  }
}

TEST(Partition, UsesMultipleClustersUnderPressure) {
  // fir8 has 15+ arithmetic ops: one cluster (1 adder, 1 multiplier)
  // cannot hold them at a competitive II.
  const ImsResult r = partition_kernel("fir8", 4);
  ASSERT_TRUE(r.ok) << r.failure;
  std::set<int> used;
  for (int op = 0; op < r.schedule.op_count(); ++op) used.insert(r.schedule.cluster(op));
  EXPECT_GE(used.size(), 2u);
}

TEST(Partition, SingleClusterIiIsLowerBound) {
  // A clustered machine can never beat the single-cluster machine with the
  // same total FUs (it only adds constraints).
  for (const char* name : {"fir8", "cmul_acc", "wide8"}) {
    const Loop loop = insert_copies(kernel_by_name(name)).loop;
    const MachineConfig clustered = MachineConfig::clustered_machine(4);
    const MachineConfig single = MachineConfig::single_cluster_machine(12);
    const Ddg graph = Ddg::build(loop, clustered.latency);
    const ImsResult rc = partition_schedule(loop, graph, clustered);
    const ImsResult rs = ims_schedule(loop, graph, single);
    ASSERT_TRUE(rc.ok && rs.ok) << name;
    EXPECT_GE(rc.ii, rs.ii) << name;
  }
}

TEST(Partition, RelaxedModeAllowsAnyCluster) {
  const Loop loop = insert_copies(kernel_by_name("chain12")).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  PartitionOptions options;
  options.strict = false;
  const ImsResult r = partition_schedule(loop, graph, machine, options);
  ASSERT_TRUE(r.ok) << r.failure;
  // Relaxed schedules may violate adjacency; find_comm_violations reports
  // rather than fails.
  (void)find_comm_violations(graph, machine, r.schedule);
}

TEST(Partition, HeuristicNames) {
  EXPECT_EQ(cluster_heuristic_name(ClusterHeuristic::kAffinity), "affinity");
  EXPECT_EQ(cluster_heuristic_name(ClusterHeuristic::kLoadBalance), "load-balance");
  EXPECT_EQ(cluster_heuristic_name(ClusterHeuristic::kFirstFit), "first-fit");
}

TEST(Partition, AssignerTracksPlacements) {
  const Loop loop = insert_copies(kernel_by_name("vadd")).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const Ddg graph = Ddg::build(loop, machine.latency);
  TopologyClusterAssigner assigner(loop, graph, machine, ClusterHeuristic::kAffinity);
  assigner.reset(2);
  EXPECT_EQ(assigner.cluster_of(0), -1);
  assigner.on_place(0, 2);
  EXPECT_EQ(assigner.cluster_of(0), 2);
  assigner.on_remove(0);
  EXPECT_EQ(assigner.cluster_of(0), -1);
}

TEST(Partition, LegalityFollowsNeighbours) {
  // Two ops connected by a flow edge: once the producer sits in cluster 0
  // of a 5-ring, the consumer may go to {4, 0, 1} only.
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  const MachineConfig machine = MachineConfig::clustered_machine(5);
  const Ddg graph = Ddg::build(loop, machine.latency);
  TopologyClusterAssigner assigner(loop, graph, machine, ClusterHeuristic::kAffinity);
  assigner.reset(1);
  assigner.on_place(0, 0);
  EXPECT_TRUE(assigner.legal(1, 0));
  EXPECT_TRUE(assigner.legal(1, 1));
  EXPECT_TRUE(assigner.legal(1, 4));
  EXPECT_FALSE(assigner.legal(1, 2));
  EXPECT_FALSE(assigner.legal(1, 3));
  std::vector<int> evictions;
  assigner.adjacency_evictions(1, 3, evictions);
  ASSERT_EQ(evictions.size(), 1u);
  EXPECT_EQ(evictions[0], 0);
}

TEST(Partition, TwoClusterRingWorks) {
  const ImsResult r = partition_kernel("dot", 2);
  ASSERT_TRUE(r.ok) << r.failure;
}

TEST(Partition, SixClusterRingWorks) {
  const ImsResult r = partition_kernel("wide8", 6);
  ASSERT_TRUE(r.ok) << r.failure;
}

}  // namespace
}  // namespace qvliw
