#include <gtest/gtest.h>

#include "ir/parser.h"
#include "support/diagnostics.h"

namespace qvliw {
namespace {

TEST(Parser, MinimalLoop) {
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  EXPECT_EQ(loop.name, "t");
  ASSERT_EQ(loop.op_count(), 2);
  EXPECT_EQ(loop.ops[0].opcode, Opcode::kLoad);
  EXPECT_EQ(loop.ops[0].name, "x");
  EXPECT_EQ(loop.ops[1].opcode, Opcode::kStore);
  EXPECT_EQ(loop.arrays.size(), 2u);
}

TEST(Parser, CommentsAndWhitespace) {
  const Loop loop = parse_loop(R"(
    # leading comment
    loop t {   # trailing comment
      x = load X[i];  # another
      store Y[i], x;
    }
  )");
  EXPECT_EQ(loop.op_count(), 2);
}

TEST(Parser, MemoryOffsets) {
  const Loop loop = parse_loop("loop t { a = load X[i+3]; b = load X[i-2]; store Y[i], a; store Z[i+1], b; }");
  EXPECT_EQ(loop.ops[0].mem_offset, 3);
  EXPECT_EQ(loop.ops[1].mem_offset, -2);
  EXPECT_EQ(loop.ops[3].mem_offset, 1);
}

TEST(Parser, Distances) {
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  EXPECT_EQ(loop.ops[1].args[0].value_op, 1);
  EXPECT_EQ(loop.ops[1].args[0].distance, 1);
  EXPECT_EQ(loop.ops[1].args[1].value_op, 0);
  EXPECT_EQ(loop.ops[1].args[1].distance, 0);
}

TEST(Parser, ForwardReferenceWithDistance) {
  const Loop loop = parse_loop("loop t { a = fadd b@2, 1; b = fadd a, 2; store X[i], b; }");
  EXPECT_EQ(loop.ops[0].args[0].value_op, 1);
  EXPECT_EQ(loop.ops[0].args[0].distance, 2);
}

TEST(Parser, Invariants) {
  const Loop loop = parse_loop("loop t { invariant a, b; x = load X[i]; s = fmul x, a; t2 = fadd s, b; store Y[i], t2; }");
  ASSERT_EQ(loop.invariants.size(), 2u);
  EXPECT_EQ(loop.ops[1].args[1].kind, Operand::Kind::kInvariant);
  EXPECT_EQ(loop.ops[1].args[1].invariant, 0);
  EXPECT_EQ(loop.ops[2].args[1].invariant, 1);
}

TEST(Parser, Immediates) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = add x, 5; u = sub s, -3; store Y[i], u; }");
  EXPECT_EQ(loop.ops[1].args[1].imm, 5);
  EXPECT_EQ(loop.ops[2].args[1].imm, -3);
}

TEST(Parser, IndexOperands) {
  const Loop loop = parse_loop("loop t { a = add i, 1; b = add i+2, a; c = mul i-3, b; store X[i], c; }");
  EXPECT_EQ(loop.ops[0].args[0].kind, Operand::Kind::kIndex);
  EXPECT_EQ(loop.ops[0].args[0].index_offset, 0);
  EXPECT_EQ(loop.ops[1].args[0].index_offset, 2);
  EXPECT_EQ(loop.ops[2].args[0].index_offset, -3);
}

TEST(Parser, TripAndStride) {
  const Loop loop = parse_loop("loop t { trip 64; stride 2; x = load X[i]; store Y[i], x; }");
  EXPECT_EQ(loop.trip_hint, 64);
  EXPECT_EQ(loop.stride, 2);
}

TEST(Parser, ArrayDeclaration) {
  const Loop loop = parse_loop("loop t { array P, Q; x = load P[i]; store Q[i], x; }");
  EXPECT_EQ(loop.arrays.size(), 2u);
  EXPECT_EQ(loop.arrays[0], "P");
}

TEST(Parser, MultipleLoops) {
  const auto loops = parse_loops(
      "loop a { x = load X[i]; store Y[i], x; }"
      "loop b { y = load P[i]; store Q[i], y; }");
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].name, "a");
  EXPECT_EQ(loops[1].name, "b");
}

TEST(Parser, CopyAndMoveOpcodes) {
  const Loop loop = parse_loop("loop t { x = load X[i]; c = copy x; m = move c; store Y[i], m; }");
  EXPECT_EQ(loop.ops[1].opcode, Opcode::kCopy);
  EXPECT_EQ(loop.ops[2].opcode, Opcode::kMove);
}

// --- error cases ------------------------------------------------------------

TEST(ParserErrors, UndefinedName) {
  EXPECT_THROW((void)parse_loop("loop t { s = add ghost, 1; store X[i], s; }"), Error);
}

TEST(ParserErrors, DuplicateName) {
  EXPECT_THROW((void)parse_loop("loop t { x = load X[i]; x = load Y[i]; store Z[i], x; }"), Error);
}

TEST(ParserErrors, InvariantWithDistance) {
  EXPECT_THROW((void)parse_loop("loop t { invariant a; s = add a@1, 1; store X[i], s; }"), Error);
}

TEST(ParserErrors, ReservedIndexName) {
  EXPECT_THROW((void)parse_loop("loop t { i = add 1, 2; store X[i], i; }"), Error);
}

TEST(ParserErrors, UnknownOpcode) {
  EXPECT_THROW((void)parse_loop("loop t { x = frobnicate 1, 2; store X[i], x; }"), Error);
}

TEST(ParserErrors, StoreDefiningValue) {
  EXPECT_THROW((void)parse_loop("loop t { x = store X[i], 1; }"), Error);
}

TEST(ParserErrors, MissingSemicolon) {
  EXPECT_THROW((void)parse_loop("loop t { x = load X[i] store Y[i], x; }"), Error);
}

TEST(ParserErrors, MissingBrace) {
  EXPECT_THROW((void)parse_loop("loop t { x = load X[i];"), Error);
}

TEST(ParserErrors, TrailingGarbage) {
  EXPECT_THROW((void)parse_loop("loop t { x = load X[i]; store Y[i], x; } extra"), Error);
}

TEST(ParserErrors, EmptyInput) { EXPECT_THROW((void)parse_loops(""), Error); }

TEST(ParserErrors, ErrorMentionsLine) {
  try {
    (void)parse_loop("loop t {\n  x = load X[i];\n  s = add ghost, 1;\n store X[i], s; }");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(ParserErrors, BadIndexExpression) {
  EXPECT_THROW((void)parse_loop("loop t { x = load X[j]; store Y[i], x; }"), Error);
}

TEST(ParserErrors, LoadWithDistanceZeroForwardUse) {
  // Distance-0 use before definition must be rejected by validation.
  EXPECT_THROW((void)parse_loop("loop t { s = add x, 1; x = load X[i]; store Y[i], s; }"), Error);
}

}  // namespace
}  // namespace qvliw
