#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness/checkpoint.h"
#include "harness/dispatch.h"
#include "support/parallel.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "workload/suite.h"

namespace qvliw {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("qvliw_test_dispatch_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<SweepPoint> ladder_points() {
  std::vector<SweepPoint> points;
  const MachineConfig ring = MachineConfig::clustered_machine(4);
  for (const ClusterHeuristic heuristic :
       {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance}) {
    for (const int budget : {6, 12}) {
      SweepPoint point{cat(cluster_heuristic_name(heuristic), "-", budget), ring, {}};
      point.options.unroll = true;
      point.options.scheduler = SchedulerKind::kClustered;
      point.options.heuristic = heuristic;
      point.options.ims.budget_ratio = budget;
      points.push_back(point);
    }
  }
  return points;
}

TEST(Dispatch, MergedDispatchMatchesSingleProcess) {
  const fs::path dir = scratch_dir("merge");
  const Suite suite = small_suite(7, 113);
  const std::vector<SweepPoint> points = ladder_points();

  DispatchOptions options;
  options.shard_count = 3;
  options.checkpoint_dir = dir.string();
  options.poll_interval_seconds = 0.005;
  const DispatchReport report = dispatch_sweep(suite.loops, points, options);

  EXPECT_EQ(report.shards, 3);
  EXPECT_EQ(report.launches, 3);
  EXPECT_EQ(report.requeues, 0);
  ASSERT_EQ(report.attempts.size(), 3u);
  for (const DispatchAttempt& attempt : report.attempts) {
    EXPECT_TRUE(attempt.completed);
    EXPECT_FALSE(attempt.killed);
  }

  const SweepResult single = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(report.merged), sweep_result_fingerprint(single));
  EXPECT_EQ(report.merged.pipelines, single.pipelines);
  // Every worker checkpointed its tasks; nothing replayed on a fresh dir.
  EXPECT_EQ(report.merged.checkpoint.tasks_executed, suite.loops.size());
  EXPECT_EQ(report.merged.checkpoint.tasks_replayed, 0u);
  fs::remove_all(dir);
}

// A straggler — complete journal, shard file never emitted — is killed
// past the deadline, requeued onto a *different* worker slot, and its
// retry replays every task from the journal; the merge is still
// bit-identical to the single-process sweep.
TEST(Dispatch, StragglerKilledRequeuedOntoSpareWorkerAndReplayed) {
  const fs::path dir = scratch_dir("straggler");
  const Suite suite = small_suite(6, 127);
  const std::vector<SweepPoint> points = ladder_points();

  DispatchOptions options;
  options.shard_count = 2;
  options.max_workers = 2;
  options.checkpoint_dir = dir.string();
  options.straggler_deadline_seconds = 0.3;
  options.poll_interval_seconds = 0.005;
  options.before_emit = [](const ShardWorkerContext& ctx) {
    if (ctx.shard_index == 1 && ctx.attempt == 0) {
      std::this_thread::sleep_for(std::chrono::seconds(60));  // SIGKILLed long before this ends
    }
  };
  const DispatchReport report = dispatch_sweep(suite.loops, points, options);

  EXPECT_EQ(report.requeues, 1);
  EXPECT_EQ(report.launches, 3);
  int killed_slot = -1;
  int retry_slot = -1;
  for (const DispatchAttempt& attempt : report.attempts) {
    if (attempt.shard_index != 1) continue;
    if (attempt.killed) {
      EXPECT_EQ(attempt.attempt, 0);
      EXPECT_FALSE(attempt.completed);
      killed_slot = attempt.worker_slot;
    } else {
      EXPECT_EQ(attempt.attempt, 1);
      EXPECT_TRUE(attempt.completed);
      retry_slot = attempt.worker_slot;
    }
  }
  ASSERT_GE(killed_slot, 0);
  ASSERT_GE(retry_slot, 0);
  // The failed assignment is excluded: the retry runs on the spare slot.
  EXPECT_NE(retry_slot, killed_slot);

  // The killed attempt journaled the whole shard before stalling, so the
  // retry replays everything instead of recomputing.
  EXPECT_GT(report.merged.checkpoint.tasks_replayed, 0u);

  const SweepResult single = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(report.merged), sweep_result_fingerprint(single));
  fs::remove_all(dir);
}

TEST(Dispatch, CrashedWorkerIsRetried) {
  const fs::path dir = scratch_dir("crash");
  const Suite suite = small_suite(5, 131);
  const std::vector<SweepPoint> points = ladder_points();

  DispatchOptions options;
  options.shard_count = 2;
  options.checkpoint_dir = dir.string();
  options.poll_interval_seconds = 0.005;
  options.before_emit = [](const ShardWorkerContext& ctx) {
    if (ctx.shard_index == 0 && ctx.attempt == 0) _exit(9);  // crash before the shard file
  };
  const DispatchReport report = dispatch_sweep(suite.loops, points, options);

  EXPECT_EQ(report.requeues, 1);
  const SweepResult single = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(report.merged), sweep_result_fingerprint(single));
  fs::remove_all(dir);
}

TEST(Dispatch, ExhaustedAttemptsThrowWithFailureLog) {
  const fs::path dir = scratch_dir("exhausted");
  const Suite suite = small_suite(3, 137);
  const std::vector<SweepPoint> points = ladder_points();

  DispatchOptions options;
  options.shard_count = 2;
  options.checkpoint_dir = dir.string();
  options.poll_interval_seconds = 0.005;
  options.max_attempts = 2;
  options.before_emit = [](const ShardWorkerContext& ctx) {
    if (ctx.shard_index == 1) _exit(3);  // fails every attempt
  };
  try {
    (void)dispatch_sweep(suite.loops, points, options);
    FAIL() << "dispatch_sweep should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("2 attempt(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("exited 3"), std::string::npos) << what;
  }
  fs::remove_all(dir);
}

TEST(Dispatch, RequiresCheckpointDir) {
  const Suite suite = small_suite(2, 139);
  DispatchOptions options;
  EXPECT_THROW((void)dispatch_sweep(suite.loops, ladder_points(), options), Error);
}

TEST(Dispatch, ResolvedWorkerThreadsGuardsOversubscription) {
  // Single-threaded requests are never inflated, whatever the process count.
  EXPECT_EQ(resolved_worker_threads(0, 4), 1);
  EXPECT_EQ(resolved_worker_threads(1, 1), 1);
  EXPECT_EQ(resolved_worker_threads(-3, 2), 1);

  const int hw = static_cast<int>(worker_count());
  // One process may use every hardware thread, but no more than asked.
  EXPECT_EQ(resolved_worker_threads(hw, 1), hw);
  EXPECT_EQ(resolved_worker_threads(hw + 7, 1), std::max(1, hw));
  // processes x threads never exceeds the machine (each process keeps
  // its mandatory 1 even when processes outnumber cores).
  for (const int procs : {1, 2, 4, 8}) {
    for (const int req : {2, 4, 16}) {
      const int threads = resolved_worker_threads(req, procs);
      EXPECT_GE(threads, 1) << procs << "x" << req;
      EXPECT_LE(threads, req) << procs << "x" << req;
      if (threads > 1) EXPECT_LE(procs * threads, hw) << procs << "x" << req;
    }
  }
}

// Worker processes running multi-threaded sweeps (N procs x M threads)
// still merge bit-identical to the serial single-process sweep.
TEST(Dispatch, MultiThreadedWorkersMatchSingleProcess) {
  const fs::path dir = scratch_dir("threads");
  const Suite suite = small_suite(6, 149);
  const std::vector<SweepPoint> points = ladder_points();

  DispatchOptions options;
  options.shard_count = 2;
  options.worker_threads = 2;  // the guard may clamp this on small machines
  options.checkpoint_dir = dir.string();
  options.poll_interval_seconds = 0.005;
  const DispatchReport report = dispatch_sweep(suite.loops, points, options);

  EXPECT_EQ(report.requeues, 0);
  const SweepResult single = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(report.merged), sweep_result_fingerprint(single));
  EXPECT_EQ(report.merged.pipelines, single.pipelines);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace qvliw
