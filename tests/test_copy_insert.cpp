#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/interp.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

TEST(CopyInsert, SingleUseUntouched) {
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  const CopyInsertResult r = insert_copies(loop);
  EXPECT_EQ(r.copies_added, 0);
  EXPECT_EQ(r.loop.op_count(), 2);
}

TEST(CopyInsert, TwoUsesCostOneCopy) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fmul x, x; store Y[i], s; }");
  const CopyInsertResult r = insert_copies(loop);
  EXPECT_EQ(r.copies_added, 1);
  EXPECT_TRUE(fanout_legal(r.loop));
  // The multiply must now read two different values (the copy's two slots).
  const int mul = r.loop.find_value("s");
  ASSERT_GE(mul, 0);
  const Op& op = r.loop.ops[static_cast<std::size_t>(mul)];
  EXPECT_TRUE(op.args[0].is_value());
  EXPECT_TRUE(op.args[1].is_value());
}

TEST(CopyInsert, NUsesCostNMinusOneCopies) {
  // x used 4 times -> 3 copies; 8 times -> 7 copies.
  const Loop four = parse_loop(
      "loop t { x = load X[i]; a = fadd x, x; b = fadd x, x; store Y[i], a; store Z[i], b; }");
  EXPECT_EQ(insert_copies(four).copies_added, 3);
  const Loop fir8 = kernel_by_name("fir8");  // x used 8 times
  const CopyInsertResult r = insert_copies(fir8);
  // fir8 also has multi-use sums; x alone accounts for 7.
  EXPECT_GE(r.copies_added, 7);
  EXPECT_TRUE(fanout_legal(r.loop));
}

TEST(CopyInsert, IdempotentOnConformingLoops) {
  const Loop loop = insert_copies(kernel_by_name("fir4")).loop;
  const CopyInsertResult again = insert_copies(loop);
  EXPECT_EQ(again.copies_added, 0);
  EXPECT_EQ(again.loop.op_count(), loop.op_count());
}

TEST(CopyInsert, FanoutLegalAfterInsertionOnWholeCorpus) {
  for (const Loop& loop : kernel_corpus()) {
    const CopyInsertResult r = insert_copies(loop);
    EXPECT_TRUE(fanout_legal(r.loop)) << loop.name;
    EXPECT_NO_THROW(r.loop.validate()) << loop.name;
  }
}

TEST(CopyInsert, FanoutLegalDetectsViolations) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fmul x, x; store Y[i], s; }");
  EXPECT_FALSE(fanout_legal(loop));
  EXPECT_TRUE(fanout_legal(insert_copies(loop).loop));
}

TEST(CopyInsert, CopyValuesMayFeedTwo) {
  const Loop loop = parse_loop("loop t { x = load X[i]; c = copy x; a = fadd c, 1; b = fadd c, 2; store Y[i], a; store Z[i], b; }");
  EXPECT_TRUE(fanout_legal(loop));
  EXPECT_EQ(insert_copies(loop).copies_added, 0);
}

TEST(CopyInsert, PreservesSemanticsOnCorpus) {
  for (const Loop& loop : kernel_corpus()) {
    const CopyInsertResult r = insert_copies(loop);
    const long long trip = 24;
    const InterpResult before = interpret(loop, trip, 0xabcd);
    const InterpResult after = interpret(r.loop, trip, 0xabcd);
    EXPECT_TRUE(before.memory == after.memory) << loop.name;
  }
}

TEST(CopyInsert, PreservesSemanticsOnSyntheticLoops) {
  SynthConfig config;
  config.loops = 30;
  config.seed = 4242;
  for (const Loop& loop : synthesize_suite(config)) {
    const CopyInsertResult r = insert_copies(loop);
    EXPECT_TRUE(fanout_legal(r.loop)) << loop.name;
    const InterpResult before = interpret(loop, 16, 7);
    const InterpResult after = interpret(r.loop, 16, 7);
    EXPECT_TRUE(before.memory == after.memory) << loop.name;
  }
}

TEST(CopyInsert, ChainShapePreservesSemantics) {
  for (const char* name : {"fir8", "stencil3_reuse", "correl"}) {
    const Loop loop = kernel_by_name(name);
    const CopyInsertResult balanced = insert_copies(loop, CopyTreeShape::kBalanced);
    const CopyInsertResult chain = insert_copies(loop, CopyTreeShape::kChain);
    EXPECT_EQ(balanced.copies_added, chain.copies_added) << name;  // same count, different shape
    const InterpResult a = interpret(balanced.loop, 20, 3);
    const InterpResult b = interpret(chain.loop, 20, 3);
    EXPECT_TRUE(a.memory == b.memory) << name;
  }
}

TEST(CopyInsert, BalancedTreeShallowerThanChain) {
  // With 8 uses, the balanced tree should give the consumers shorter
  // copy-depth than the chain: compare the maximum chain length from the
  // producer to any consumer (count of copy hops).
  const Loop loop = kernel_by_name("fir8");
  auto max_copy_depth = [](const Loop& l) {
    // Depth of each copy op above the original producer.
    std::vector<int> depth(static_cast<std::size_t>(l.op_count()), 0);
    int deepest = 0;
    for (int v = 0; v < l.op_count(); ++v) {
      const Op& op = l.ops[static_cast<std::size_t>(v)];
      if (op.opcode != Opcode::kCopy) continue;
      const int src = op.args[0].value_op;
      depth[static_cast<std::size_t>(v)] = depth[static_cast<std::size_t>(src)] + 1;
      deepest = std::max(deepest, depth[static_cast<std::size_t>(v)]);
    }
    return deepest;
  };
  const int balanced = max_copy_depth(insert_copies(loop, CopyTreeShape::kBalanced).loop);
  const int chain = max_copy_depth(insert_copies(loop, CopyTreeShape::kChain).loop);
  EXPECT_LT(balanced, chain);
}

TEST(CopyInsert, LoopCarriedUsesKeepDistance) {
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const CopyInsertResult r = insert_copies(loop);
  EXPECT_EQ(r.copies_added, 1);
  // Verify semantics (accumulator behaviour intact).
  const InterpResult before = interpret(loop, 12, 5);
  const InterpResult after = interpret(r.loop, 12, 5);
  EXPECT_TRUE(before.memory == after.memory);
}

TEST(CopyInsert, OpMapTracksOriginals) {
  const Loop loop = kernel_by_name("norm2");
  const CopyInsertResult r = insert_copies(loop);
  ASSERT_EQ(r.op_map.size(), static_cast<std::size_t>(loop.op_count()));
  for (int v = 0; v < loop.op_count(); ++v) {
    const int mapped = r.op_map[static_cast<std::size_t>(v)];
    ASSERT_GE(mapped, 0);
    EXPECT_EQ(loop.ops[static_cast<std::size_t>(v)].opcode,
              r.loop.ops[static_cast<std::size_t>(mapped)].opcode);
  }
}

}  // namespace
}  // namespace qvliw
