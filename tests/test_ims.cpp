#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sched/ims.h"
#include "sched/schedule.h"
#include "support/strings.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

ImsResult schedule_kernel(const char* name, int fus) {
  const Loop loop = kernel_by_name(name);
  const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
  const Ddg graph = Ddg::build(loop, machine.latency);
  return ims_schedule(loop, graph, machine);
}

TEST(Ims, DaxpyAchievesMiiOnSmallMachine) {
  const ImsResult r = schedule_kernel("daxpy", 3);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.ii, r.mii.mii);
  EXPECT_EQ(r.ii, 3);  // 3 memory ops on 1 L/S unit
}

TEST(Ims, DaxpyOnWideMachine) {
  const ImsResult r = schedule_kernel("daxpy", 12);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.ii, 1);
}

TEST(Ims, RecurrenceBoundRespected) {
  const ImsResult r = schedule_kernel("rec2", 12);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.ii, r.mii.rec_mii);
  EXPECT_EQ(r.ii, r.mii.mii);
}

TEST(Ims, DivRecurrence) {
  const ImsResult r = schedule_kernel("geo_decay", 6);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.ii, 10);  // div(8) + fadd(2) circuit
}

TEST(Ims, WholeCorpusSchedulesOnPaperMachines) {
  for (const Loop& loop : kernel_corpus()) {
    for (int fus : {3, 4, 6, 12}) {
      const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
      const Ddg graph = Ddg::build(loop, machine.latency);
      const ImsResult r = ims_schedule(loop, graph, machine);
      ASSERT_TRUE(r.ok) << loop.name << " on " << machine.name << ": " << r.failure;
      EXPECT_GE(r.ii, r.mii.mii) << loop.name;
      EXPECT_TRUE(r.schedule.complete()) << loop.name;
      // Validators run inside ims_schedule; re-run them here explicitly.
      EXPECT_TRUE(verify_schedule(loop, graph, machine, r.schedule).empty()) << loop.name;
    }
  }
}

TEST(Ims, CorpusMostlyAchievesMii) {
  // IMS is near-optimal on these kernels; allow a small number of +1 IIs.
  int above_mii = 0;
  int total = 0;
  for (const Loop& loop : kernel_corpus()) {
    const MachineConfig machine = MachineConfig::single_cluster_machine(6);
    const Ddg graph = Ddg::build(loop, machine.latency);
    const ImsResult r = ims_schedule(loop, graph, machine);
    ASSERT_TRUE(r.ok) << loop.name;
    ++total;
    if (r.ii > r.mii.mii) ++above_mii;
  }
  EXPECT_LE(above_mii, total / 10) << "IMS missed MII on too many kernels";
}

TEST(Ims, IiLimitForcesFailure) {
  const Loop loop = kernel_by_name("stencil3");  // MII 4 on 3 FUs
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  ImsOptions options;
  options.ii_limit = 2;
  const ImsResult r = ims_schedule(loop, graph, machine, options);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("below MII"), std::string::npos);
}

TEST(Ims, StartIiHonoured) {
  const Loop loop = kernel_by_name("daxpy");
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  const Ddg graph = Ddg::build(loop, machine.latency);
  ImsOptions options;
  options.start_ii = 5;
  const ImsResult r = ims_schedule(loop, graph, machine, options);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ii, 5);
}

TEST(Ims, InfeasibleMachineFailsCleanly) {
  MachineConfig machine = MachineConfig::single_cluster_machine(6);
  machine.clusters[0].fus(FuKind::kCopy) = 0;
  const Loop loop = parse_loop("loop t { x = load X[i]; c = copy x; store Y[i], c; }");
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.failure.empty());
}

TEST(Ims, AttemptCapReportedDistinctlyFromLadderExhaustion) {
  // budget_ratio 0 gives every II attempt a zero placement budget, so each
  // attempt fails immediately and the ladder climbs until a cap stops it.
  const Loop loop = kernel_by_name("fir4");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);

  // Attempt cap fires first: the message must say how many attempts were
  // made, not pretend the whole II range was searched.
  ImsOptions capped;
  capped.budget_ratio = 0;
  capped.max_ii_attempts = 3;
  const ImsResult r = ims_schedule(loop, graph, machine, capped);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.stats.ii_attempts, 3);
  EXPECT_NE(r.failure.find("3 II attempts"), std::string::npos) << r.failure;
  EXPECT_EQ(r.failure.find("up to II="), std::string::npos) << r.failure;

  // Ladder exhaustion (II range ran out before the attempt cap) keeps the
  // original "up to II=" message.
  ImsOptions exhausted;
  exhausted.budget_ratio = 0;
  exhausted.max_ii = r.mii.mii + 1;
  const ImsResult e = ims_schedule(loop, graph, machine, exhausted);
  EXPECT_FALSE(e.ok);
  EXPECT_EQ(e.stats.ii_attempts, 2);  // MII and MII+1 both tried
  EXPECT_NE(e.failure.find(cat("up to II=", e.mii.mii + 1)), std::string::npos) << e.failure;
}

TEST(Ims, StatsPopulated) {
  const ImsResult r = schedule_kernel("fir4", 6);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.stats.placements, 0);
  EXPECT_GE(r.stats.ii_attempts, 1);
}

TEST(Ims, EmptyLoopSchedules) {
  Loop loop;
  loop.name = "empty";
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.schedule.complete());
}

TEST(Ims, HighResourcePressureStillValid) {
  // fir8 has 15 arithmetic ops on 1 adder + 1 multiplier at 3 FUs: lots of
  // eviction traffic, II must reach the resource bound.
  const ImsResult r = schedule_kernel("fir8", 3);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.ii, r.mii.mii);
  EXPECT_GE(r.mii.res_mii, 7);  // 7 fmuls on one multiplier
}

TEST(Ims, MemoryCarriedKernelHonoursMemEdges) {
  const ImsResult r = schedule_kernel("lk5_tridiag", 12);
  ASSERT_TRUE(r.ok);
  // RecMII via memory: store->load (1) + load (2) + fsub(2)+fmul... >= 5.
  EXPECT_GE(r.ii, 5);
}

}  // namespace
}  // namespace qvliw
