// Theorem 1.1: the O(1) compatibility test must agree with brute-force
// FIFO simulation on an exhaustive grid of lifetime shapes.
#include <gtest/gtest.h>

#include "qrf/qcompat.h"
#include "support/diagnostics.h"
#include "support/rng.h"

namespace qvliw {
namespace {

TEST(QCompat, IdenticalLifetimesConflict) {
  // Same push/pop pattern: simultaneous pushes every iteration.
  EXPECT_FALSE(q_compatible(0, 3, 0, 3, 4));
}

TEST(QCompat, DisjointPhasesCompatible) {
  // push 0 pop 1 vs push 2 pop 3 with II 4: never interleave badly.
  EXPECT_TRUE(q_compatible(0, 1, 2, 3, 4));
}

TEST(QCompat, EqualLengthDifferentPhaseCompatible) {
  // Equal lengths always pop in push order; only exact phase ties break.
  EXPECT_TRUE(q_compatible(0, 5, 1, 6, 3));
  EXPECT_FALSE(q_compatible(0, 5, 3, 8, 3));  // pushes coincide mod 3
}

TEST(QCompat, LongerFirstOrderViolation) {
  // a pushed first but lives much longer: b pops before a -> LIFO, illegal.
  EXPECT_FALSE(q_compatible(0, 10, 1, 2, 4));
}

TEST(QCompat, PopCollisionIllegal) {
  // Pops land on the same cycle (x == La - Lb case).
  EXPECT_FALSE(q_compatible(0, 4, 2, 4, 8));
}

TEST(QCompat, SymmetricInArguments) {
  for (int ii = 1; ii <= 5; ++ii) {
    for (int pa = 0; pa < 4; ++pa) {
      for (int la = 0; la < 6; ++la) {
        for (int pb = 0; pb < 4; ++pb) {
          for (int lb = 0; lb < 6; ++lb) {
            EXPECT_EQ(q_compatible(pa, pa + la, pb, pb + lb, ii),
                      q_compatible(pb, pb + lb, pa, pa + la, ii));
          }
        }
      }
    }
  }
}

TEST(QCompat, LengthGapBeyondIiAlwaysIllegal) {
  // If La - Lb >= II some instance pair always collides.
  EXPECT_FALSE(q_compatible(0, 7, 1, 2, 4));   // gap 6 >= 4
  EXPECT_FALSE(q_compatible(0, 4, 1, 1, 3));   // gap 4 >= 3
}

TEST(QCompat, ZeroLengthPassThrough) {
  // Zero-residency values conflict only on exact phase ties.
  EXPECT_TRUE(q_compatible(0, 0, 1, 1, 2));
  EXPECT_FALSE(q_compatible(0, 0, 2, 2, 2));
  EXPECT_TRUE(q_compatible(0, 0, 1, 3, 4));
}

TEST(QCompat, PrecondtionChecks) {
  EXPECT_THROW((void)q_compatible(0, 1, 2, 3, 0), Error);   // ii < 1
  EXPECT_THROW((void)q_compatible(3, 1, 0, 0, 2), Error);   // pop before push
}

// --- the equivalence property ------------------------------------------------

struct Grid {
  int ii;
};

class TheoremEquivalence : public ::testing::TestWithParam<Grid> {};

TEST_P(TheoremEquivalence, MatchesBruteForceOnFullGrid) {
  const int ii = GetParam().ii;
  // Exhaustive: pushes in [0, 2*ii), lengths in [0, 2*ii + 2).
  for (int pa = 0; pa < 2 * ii; ++pa) {
    for (int la = 0; la <= 2 * ii + 2; ++la) {
      for (int pb = 0; pb < 2 * ii; ++pb) {
        for (int lb = 0; lb <= 2 * ii + 2; ++lb) {
          const bool fast = q_compatible(pa, pa + la, pb, pb + lb, ii);
          const bool slow = q_compatible_bruteforce(pa, pa + la, pb, pb + lb, ii);
          ASSERT_EQ(fast, slow) << "pa=" << pa << " la=" << la << " pb=" << pb << " lb=" << lb
                                << " ii=" << ii;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallIIs, TheoremEquivalence,
                         ::testing::Values(Grid{1}, Grid{2}, Grid{3}, Grid{4}, Grid{5}, Grid{6},
                                           Grid{7}),
                         [](const ::testing::TestParamInfo<Grid>& info) {
                           return "ii" + std::to_string(info.param.ii);
                         });

TEST(TheoremEquivalenceRandom, SeededSweepAcrossScales) {
  // Randomised lifetimes across a wide range of IIs and spans.
  Rng rng(20260611);
  for (int trial = 0; trial < 4000; ++trial) {
    const int ii = rng.uniform_int(1, 24);
    const int pa = rng.uniform_int(0, 60);
    const int la = rng.uniform_int(0, 50);
    const int pb = rng.uniform_int(0, 60);
    const int lb = rng.uniform_int(0, 50);
    ASSERT_EQ(q_compatible(pa, pa + la, pb, pb + lb, ii),
              q_compatible_bruteforce(pa, pa + la, pb, pb + lb, ii))
        << "pa=" << pa << " la=" << la << " pb=" << pb << " lb=" << lb << " ii=" << ii;
  }
}

TEST(TheoremEquivalenceLarge, SpotChecksAtBigOffsets) {
  // Representatives far from zero must behave identically (shift
  // invariance of the mod-II condition).
  for (int shift : {16, 49, 128}) {
    for (int pa = 0; pa < 5; ++pa) {
      for (int la = 0; la < 12; ++la) {
        for (int pb = 0; pb < 5; ++pb) {
          for (int lb = 0; lb < 12; ++lb) {
            EXPECT_EQ(q_compatible(pa + shift, pa + shift + la, pb, pb + lb, 5),
                      q_compatible_bruteforce(pa + shift, pa + shift + la, pb, pb + lb, 5));
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace qvliw
