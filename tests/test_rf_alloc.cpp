#include <gtest/gtest.h>

#include <algorithm>

#include "ir/parser.h"
#include "qrf/rf_alloc.h"
#include "support/diagnostics.h"
#include "sched/ims.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

TEST(RfAlloc, LifetimeSpansLastUse) {
  const Loop loop = parse_loop("loop t { x = load X[i]; a = fadd x, 1; b = fadd x, 2; store Y[i], a; store Z[i], b; }");
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  const auto lifetimes = rf_lifetimes(loop, graph, machine.latency, r.schedule);
  ASSERT_EQ(lifetimes.size(), 3u);  // x, a, b
  // x's end must cover both consumers.
  const RfLifetime& x = lifetimes[0];
  EXPECT_EQ(x.producer, 0);
  EXPECT_EQ(x.start, r.schedule.cycle(0) + 2);
  EXPECT_EQ(x.end, std::max(r.schedule.cycle(1), r.schedule.cycle(2)));
}

TEST(RfAlloc, DeadValueOccupiesWritebackCycle) {
  const Loop loop = parse_loop("loop t { x = load X[i]; y = load Y[i]; store Z[i], y; }");
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  const auto lifetimes = rf_lifetimes(loop, graph, machine.latency, r.schedule);
  const RfLifetime& x = lifetimes[0];
  EXPECT_EQ(x.start, x.end);
}

TEST(RfAlloc, RegisterRequirementPositive) {
  for (const char* name : {"daxpy", "dot", "fir8", "rec2"}) {
    const Loop loop = kernel_by_name(name);
    const MachineConfig machine = MachineConfig::single_cluster_machine(6);
    const Ddg graph = Ddg::build(loop, machine.latency);
    const ImsResult r = ims_schedule(loop, graph, machine);
    ASSERT_TRUE(r.ok) << name;
    EXPECT_GE(register_requirement(loop, graph, machine.latency, r.schedule), 1) << name;
  }
}

TEST(RfAlloc, MoreOverlapNeedsMoreRegisters) {
  // fir8's delay line (x@1..x@7) keeps >= 8 instances of x live.
  const Loop loop = kernel_by_name("fir8");
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(register_requirement(loop, graph, machine.latency, r.schedule), 8);
}

TEST(RfAlloc, TightKernelNeedsFewRegisters) {
  const Loop loop = kernel_by_name("vcopy");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(register_requirement(loop, graph, machine.latency, r.schedule), 3);
}

TEST(RfAlloc, RequiresCompleteSchedule) {
  const Loop loop = kernel_by_name("vcopy");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  Schedule incomplete(loop.op_count(), 2);
  EXPECT_THROW((void)rf_lifetimes(loop, graph, machine.latency, incomplete), Error);
}

}  // namespace
}  // namespace qvliw
