#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "harness/experiment.h"
#include "harness/shard.h"
#include "harness/sweep.h"
#include "support/parallel.h"
#include "support/strings.h"
#include "workload/kernels.h"
#include "workload/suite.h"
#include "workload/synth.h"

namespace qvliw {
namespace {

// A sweep mixing shared and distinct prefixes: plain single-cluster,
// queue-limit enforcement (same prefix), policy unrolling, the three
// clustered heuristics over one unrolled front end, the moves router, and
// a simulated point.
std::vector<SweepPoint> demo_points() {
  std::vector<SweepPoint> points;

  points.push_back({"single-6fu", MachineConfig::single_cluster_machine(6), {}});

  SweepPoint limits{"single-6fu-limits", MachineConfig::single_cluster_machine(6), {}};
  limits.options.enforce_queue_limits = true;
  points.push_back(limits);

  SweepPoint unrolled{"single-12fu-unroll", MachineConfig::single_cluster_machine(12), {}};
  unrolled.options.unroll = true;
  points.push_back(unrolled);

  SweepPoint ring{"ring4-affinity", MachineConfig::clustered_machine(4), {}};
  ring.options.unroll = true;
  ring.options.scheduler = SchedulerKind::kClustered;
  points.push_back(ring);

  SweepPoint ring_lb = ring;
  ring_lb.label = "ring4-loadbalance";
  ring_lb.options.heuristic = ClusterHeuristic::kLoadBalance;
  points.push_back(ring_lb);

  SweepPoint moves = ring;
  moves.label = "ring4-moves";
  moves.options.scheduler = SchedulerKind::kClusteredMoves;
  points.push_back(moves);

  SweepPoint sim{"single-6fu-sim", MachineConfig::single_cluster_machine(6), {}};
  sim.options.simulate = true;
  sim.options.sim_trip = 8;
  points.push_back(sim);

  return points;
}

// Every semantic field of LoopResult.  stage_times is deliberately
// excluded: wall time is measurement, not outcome.  `compare_effort`
// additionally covers ImsStats — installed schedules (warm-start seeds,
// the MII-optimality ladder memo) are bit-identical with less search, so
// effort is compared only when both sides actually searched
// (warm_started false on both).
void expect_identical(const LoopResult& a, const LoopResult& b, const std::string& where,
                      bool compare_effort = true) {
  EXPECT_EQ(a.name, b.name) << where;
  EXPECT_EQ(a.ok, b.ok) << where;
  EXPECT_EQ(a.failure, b.failure) << where;
  EXPECT_EQ(a.failed_stage, b.failed_stage) << where;
  EXPECT_EQ(a.src_ops, b.src_ops) << where;
  EXPECT_EQ(a.sched_ops, b.sched_ops) << where;
  EXPECT_EQ(a.copies, b.copies) << where;
  EXPECT_EQ(a.moves, b.moves) << where;
  EXPECT_EQ(a.unroll_factor, b.unroll_factor) << where;
  EXPECT_EQ(a.res_mii, b.res_mii) << where;
  EXPECT_EQ(a.rec_mii, b.rec_mii) << where;
  EXPECT_EQ(a.mii, b.mii) << where;
  EXPECT_EQ(a.ii, b.ii) << where;
  EXPECT_EQ(a.stage_count, b.stage_count) << where;
  EXPECT_EQ(a.ii_per_source, b.ii_per_source) << where;
  EXPECT_EQ(a.ipc_static, b.ipc_static) << where;
  EXPECT_EQ(a.ipc_dynamic, b.ipc_dynamic) << where;
  EXPECT_EQ(a.total_queues, b.total_queues) << where;
  EXPECT_EQ(a.max_private_queues, b.max_private_queues) << where;
  EXPECT_EQ(a.max_segment_queues, b.max_segment_queues) << where;
  EXPECT_EQ(a.max_positions, b.max_positions) << where;
  EXPECT_EQ(a.registers, b.registers) << where;
  EXPECT_EQ(a.fits_machine_queues, b.fits_machine_queues) << where;
  EXPECT_EQ(a.queue_fit_retries, b.queue_fit_retries) << where;
  EXPECT_EQ(a.sim_ok, b.sim_ok) << where;
  EXPECT_EQ(a.sim_cycles, b.sim_cycles) << where;
  EXPECT_EQ(a.backend, b.backend) << where;
  if (compare_effort && !a.warm_started && !b.warm_started) {
    EXPECT_EQ(a.sched_stats.placements, b.sched_stats.placements) << where;
    EXPECT_EQ(a.sched_stats.evictions, b.sched_stats.evictions) << where;
    EXPECT_EQ(a.sched_stats.ii_attempts, b.sched_stats.ii_attempts) << where;
    EXPECT_EQ(a.sched_stats.forced, b.sched_stats.forced) << where;
    EXPECT_EQ(a.sched_stats.budget_spent, b.sched_stats.budget_spent) << where;
    EXPECT_EQ(a.sched_stats.mii_optimal, b.sched_stats.mii_optimal) << where;
  }
}

TEST(Sweep, GoldenEquivalenceWithDirectPipeline) {
  const Suite suite = small_suite(8, 7);
  const std::vector<SweepPoint> points = demo_points();

  SweepOptions uncached_options;
  uncached_options.use_cache = false;
  const SweepResult cached = SweepRunner().run(suite.loops, points);
  const SweepResult uncached = SweepRunner(uncached_options).run(suite.loops, points);

  ASSERT_EQ(cached.by_point.size(), points.size());
  ASSERT_EQ(uncached.by_point.size(), points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    ASSERT_EQ(cached.by_point[p].size(), suite.loops.size());
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      const LoopResult direct =
          run_pipeline(suite.loops[i], points[p].machine, points[p].options);
      const std::string where = points[p].label + " / " + suite.loops[i].name;
      expect_identical(cached.by_point[p][i], direct, "cached: " + where);
      expect_identical(uncached.by_point[p][i], direct, "uncached: " + where);
    }
  }

  EXPECT_GT(cached.cache.hits(), 0u);
  EXPECT_EQ(uncached.cache.probes(), 0u);
  EXPECT_EQ(cached.pipelines, points.size() * suite.loops.size());
}

TEST(Sweep, CacheHitMissAccounting) {
  SynthConfig config;
  config.loops = 10;
  config.seed = 21;
  const std::vector<Loop> loops = synthesize_suite(config);
  const std::uint64_t n = loops.size();

  const MachineConfig machine = MachineConfig::clustered_machine(4);
  PipelineOptions affinity;
  affinity.scheduler = SchedulerKind::kClustered;
  PipelineOptions balance = affinity;
  balance.heuristic = ClusterHeuristic::kLoadBalance;
  PipelineOptions first_fit = affinity;
  first_fit.heuristic = ClusterHeuristic::kFirstFit;
  PipelineOptions no_copies = affinity;  // distinct front prefix
  no_copies.insert_copies = false;

  const SweepResult sweep =
      SweepRunner().run(loops, machine, {affinity, balance, first_fit, no_copies});

  // Front level: four probes per loop; the 2nd and 3rd point hit the 1st
  // point's entry, the no-copies point misses.
  EXPECT_EQ(sweep.cache.front_probes, 4 * n);
  EXPECT_EQ(sweep.cache.front_hits, 2 * n);
  // Shallower levels are consulted only on a front miss (two per loop);
  // the no-copies point reuses the cached invariant/unroll artifacts.
  EXPECT_EQ(sweep.cache.invariant_probes, 2 * n);
  EXPECT_EQ(sweep.cache.invariant_hits, n);
  EXPECT_EQ(sweep.cache.unroll_probes, 2 * n);
  EXPECT_EQ(sweep.cache.unroll_hits, n);
  // MII bounds: one computation per distinct front entry and machine.
  EXPECT_EQ(sweep.cache.mii_probes, 4 * n);
  EXPECT_EQ(sweep.cache.mii_hits, 2 * n);
  EXPECT_GT(sweep.cache.hit_rate(), 0.0);
}

TEST(Sweep, SerialMatchesParallel) {
  const Suite suite = small_suite(6, 11);
  SweepPoint point{"single-6fu", MachineConfig::single_cluster_machine(6), {}};
  SweepOptions serial_options;
  serial_options.parallel = false;
  const SweepResult parallel = SweepRunner().run(suite.loops, {point});
  const SweepResult serial = SweepRunner(serial_options).run(suite.loops, {point});
  ASSERT_EQ(parallel.by_point[0].size(), serial.by_point[0].size());
  for (std::size_t i = 0; i < suite.loops.size(); ++i) {
    expect_identical(parallel.by_point[0][i], serial.by_point[0][i], suite.loops[i].name);
  }
}

// The tentpole determinism contract: the multi-threaded sweep is
// fingerprint-identical to the serial sweep at every worker count.
// Explicit worker counts build that many real threads even above the
// core count, so this exercises true concurrency on any machine.
TEST(Sweep, FingerprintIdenticalAcrossWorkerCounts) {
  const Suite suite = small_suite(8, 41);
  const std::vector<SweepPoint> points = demo_points();

  SweepOptions serial_options;
  serial_options.parallel = false;
  const SweepResult serial = SweepRunner(serial_options).run(suite.loops, points);
  const std::string oracle = sweep_result_fingerprint(serial);

  for (const int workers : {1, 2, 4, 8}) {
    SweepOptions options;
    options.workers = workers;
    EXPECT_EQ(resolved_sweep_workers(options), workers);
    const SweepResult threaded = SweepRunner(options).run(suite.loops, points);
    EXPECT_EQ(sweep_result_fingerprint(threaded), oracle) << workers << " workers";
    // Per-thread accounting sums to the serial totals: the cache counters
    // are task-local, so the merge order cannot change them.
    EXPECT_EQ(threaded.cache.probes(), serial.cache.probes()) << workers << " workers";
    EXPECT_EQ(threaded.cache.hits(), serial.cache.hits()) << workers << " workers";
    EXPECT_EQ(threaded.pipelines, serial.pipelines) << workers << " workers";
  }
}

// The same contract through the disk store and warm-start ladders: each
// worker count gets its own scratch store (a shared one would let an
// earlier count warm a later one), runs cold then warm, and both
// fingerprints must match the serial oracle's.
TEST(Sweep, WarmStoreFingerprintIdenticalAcrossWorkerCounts) {
  const Suite suite = small_suite(6, 43);
  std::vector<SweepPoint> points;
  for (const int budget : {6, 12}) {
    SweepPoint ring{cat("ring4-aff-", budget), MachineConfig::clustered_machine(4), {}};
    ring.options.unroll = true;
    ring.options.scheduler = SchedulerKind::kClustered;
    ring.options.ims.budget_ratio = budget;
    points.push_back(ring);
  }

  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "qvliw_test_workers_store";
  std::filesystem::remove_all(scratch);

  std::string cold_oracle;
  std::string warm_oracle;
  for (const int workers : {1, 2, 4, 8}) {
    SweepOptions options;
    options.workers = workers;
    options.parallel = workers > 1;
    options.store_dir = (scratch / cat("w", workers)).string();
    options.warm_start = true;
    const SweepResult cold = SweepRunner(options).run(suite.loops, points);
    const SweepResult warm = SweepRunner(options).run(suite.loops, points);
    EXPECT_EQ(cold.cache.disk_hits, 0u) << workers << " workers";
    EXPECT_GT(warm.cache.disk_hits, 0u) << workers << " workers";
    if (workers == 1) {
      cold_oracle = sweep_result_fingerprint(cold);
      warm_oracle = sweep_result_fingerprint(warm);
    } else {
      EXPECT_EQ(sweep_result_fingerprint(cold), cold_oracle) << workers << " workers cold";
      EXPECT_EQ(sweep_result_fingerprint(warm), warm_oracle) << workers << " workers warm";
    }
  }
  std::filesystem::remove_all(scratch);
}

// An explicit pool composes with the workers knob: a caller-owned pool
// wins over both the workers count and the shared pool, and the results
// still match serial.
TEST(Sweep, CallerOwnedPoolMatchesSerial) {
  const Suite suite = small_suite(6, 47);
  SweepPoint point{"single-6fu", MachineConfig::single_cluster_machine(6), {}};

  ThreadPool pool(3);
  SweepOptions pool_options;
  pool_options.pool = &pool;
  pool_options.workers = 8;  // ignored: the pool's own width wins
  EXPECT_EQ(resolved_sweep_workers(pool_options), 3);

  SweepOptions serial_options;
  serial_options.parallel = false;
  const SweepResult pooled = SweepRunner(pool_options).run(suite.loops, {point});
  const SweepResult serial = SweepRunner(serial_options).run(suite.loops, {point});
  EXPECT_EQ(sweep_result_fingerprint(pooled), sweep_result_fingerprint(serial));
}

TEST(Sweep, StageTotalsCoverBackEnd) {
  const Suite suite = small_suite(4, 13);
  SweepPoint point{"single-6fu", MachineConfig::single_cluster_machine(6), {}};
  const SweepResult sweep = SweepRunner().run(suite.loops, {point});
  EXPECT_GT(sweep.stage_seconds("schedule"), 0.0);
  EXPECT_GT(sweep.stage_seconds("queue_alloc"), 0.0);
  EXPECT_GT(sweep.wall_seconds, 0.0);
  EXPECT_GT(sweep.pipelines_per_second(), 0.0);
  EXPECT_EQ(sweep.stage_seconds("no-such-stage"), 0.0);
}

TEST(Sweep, PrefixKeyDomainsAreDisjoint) {
  // Regression for the additive-salt aliasing: a forced factor of
  // 0x1100 + m used to land in the policy branch's salt range for
  // max_unroll m, letting two structurally different prefixes share one
  // cache slot.
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  for (const int m : {1, 4, 8, 16}) {
    SweepPoint forced{"forced", machine, {}};
    forced.options.unroll = true;
    forced.options.forced_unroll = 0x1100 + m;
    SweepPoint policy{"policy", machine, {}};
    policy.options.unroll = true;
    policy.options.max_unroll = m;
    const SweepPrefixKeys fk = sweep_prefix_keys(forced);
    const SweepPrefixKeys pk = sweep_prefix_keys(policy);
    EXPECT_NE(fk.unroll, pk.unroll) << m;
    EXPECT_NE(fk.front, pk.front) << m;
  }

  // The three unroll branches are pairwise distinct for ordinary options.
  SweepPoint off{"off", machine, {}};
  SweepPoint forced2{"forced2", machine, {}};
  forced2.options.unroll = true;
  forced2.options.forced_unroll = 2;
  SweepPoint policy8{"policy8", machine, {}};
  policy8.options.unroll = true;
  const SweepPrefixKeys off_keys = sweep_prefix_keys(off);
  const SweepPrefixKeys forced_keys = sweep_prefix_keys(forced2);
  const SweepPrefixKeys policy_keys = sweep_prefix_keys(policy8);
  EXPECT_NE(off_keys.unroll, forced_keys.unroll);
  EXPECT_NE(off_keys.unroll, policy_keys.unroll);
  EXPECT_NE(forced_keys.unroll, policy_keys.unroll);
}

TEST(Sweep, FailingPrefixComputedOnceWithExactParity) {
  // A machine with no multiplier: loops using kMul fail in the unroll
  // stage (the factor policy's feasibility check), which is a front-end
  // failure shared by every point of the prefix.
  MachineConfig machine = MachineConfig::single_cluster_machine(6);
  for (ClusterConfig& cluster : machine.clusters) cluster.fus(FuKind::kMul) = 0;
  machine.name = "no-mul";

  std::vector<Loop> loops;
  for (const Loop& loop : kernel_corpus()) loops.push_back(loop);

  std::vector<SweepPoint> points;
  for (const int budget : {4, 6, 12}) {
    SweepPoint point{"nm", machine, {}};
    point.options.unroll = true;
    point.options.ims.budget_ratio = budget;
    points.push_back(point);
  }

  SweepOptions uncached_options;
  uncached_options.use_cache = false;
  const SweepResult cached = SweepRunner().run(loops, points);
  const SweepResult uncached = SweepRunner(uncached_options).run(loops, points);

  bool saw_failure = false;
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < loops.size(); ++i) {
      const LoopResult direct = run_pipeline(loops[i], points[p].machine, points[p].options);
      const std::string where = cat("point ", p, " / ", loops[i].name);
      expect_identical(cached.by_point[p][i], direct, "cached: " + where);
      expect_identical(uncached.by_point[p][i], direct, "uncached: " + where);
      // Loops using the missing FU class fail in the unroll stage (the
      // factor policy's feasibility check) — a front-end failure; mul-free
      // kernels only fail later, in the back end, when IMS validates the
      // machine.  Only the former exercises failure-provenance caching.
      if (direct.failed_stage == "unroll") saw_failure = true;
    }
  }
  EXPECT_TRUE(saw_failure);

  // The failing prefix is computed once per loop and *replayed*; nothing
  // falls back to the monolithic pipeline per point any more.
  EXPECT_EQ(cached.cache.fallback_runs, 0u);
  EXPECT_EQ(cached.cache.front_probes, points.size() * loops.size());
  EXPECT_EQ(cached.cache.front_hits, (points.size() - 1) * loops.size());
}

TEST(Sweep, DiskStoreWarmStartIsBitIdentical) {
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "qvliw_test_store";
  std::filesystem::remove_all(store_dir);

  const Suite suite = small_suite(6, 19);
  const std::vector<SweepPoint> points = demo_points();

  SweepOptions disk_options;
  disk_options.store_dir = store_dir.string();
  const SweepResult cold = SweepRunner(disk_options).run(suite.loops, points);
  const SweepResult warm = SweepRunner(disk_options).run(suite.loops, points);
  const SweepResult oracle = SweepRunner().run(suite.loops, points);

  EXPECT_EQ(cold.cache.disk_hits, 0u);
  EXPECT_GT(cold.cache.disk_probes, 0u);
  EXPECT_GT(warm.cache.disk_hits, 0u);
  EXPECT_EQ(warm.cache.disk_hits, warm.cache.disk_probes);  // fully warm

  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      const std::string where = points[p].label + " / " + suite.loops[i].name;
      expect_identical(warm.by_point[p][i], oracle.by_point[p][i], "warm: " + where);
      expect_identical(cold.by_point[p][i], oracle.by_point[p][i], "cold: " + where);
    }
  }
  std::filesystem::remove_all(store_dir);
}

TEST(Sweep, DiskStorePersistsFailingPrefixes) {
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "qvliw_test_store_fail";
  std::filesystem::remove_all(store_dir);

  MachineConfig machine = MachineConfig::single_cluster_machine(6);
  for (ClusterConfig& cluster : machine.clusters) cluster.fus(FuKind::kMul) = 0;

  std::vector<Loop> loops = {kernel_by_name("dot"), kernel_by_name("daxpy")};
  SweepPoint point{"nm", machine, {}};
  point.options.unroll = true;

  SweepOptions disk_options;
  disk_options.store_dir = store_dir.string();
  const SweepResult cold = SweepRunner(disk_options).run(loops, {point});
  const SweepResult warm = SweepRunner(disk_options).run(loops, {point});

  EXPECT_GT(warm.cache.disk_hits, 0u);
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const LoopResult direct = run_pipeline(loops[i], machine, point.options);
    EXPECT_FALSE(direct.ok) << loops[i].name;
    expect_identical(warm.by_point[0][i], direct, "warm: " + loops[i].name);
  }
  std::filesystem::remove_all(store_dir);
}

TEST(Sweep, DiskStoreToleratesCorruptEntries) {
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "qvliw_test_store_corrupt";
  std::filesystem::remove_all(store_dir);

  const Suite suite = small_suite(4, 23);
  SweepPoint point{"single-6fu", MachineConfig::single_cluster_machine(6), {}};
  point.options.unroll = true;

  SweepOptions disk_options;
  disk_options.store_dir = store_dir.string();
  const SweepResult cold = SweepRunner(disk_options).run(suite.loops, {point});
  ASSERT_GT(cold.cache.disk_probes, 0u);

  // Truncate every stored blob; the warm run must fall back to computing.
  for (const auto& entry : std::filesystem::recursive_directory_iterator(store_dir)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "xx";
  }
  const SweepResult warm = SweepRunner(disk_options).run(suite.loops, {point});
  EXPECT_EQ(warm.cache.disk_hits, 0u);
  const SweepResult oracle = SweepRunner().run(suite.loops, {point});
  for (std::size_t i = 0; i < suite.loops.size(); ++i) {
    expect_identical(warm.by_point[0][i], oracle.by_point[0][i], suite.loops[i].name);
  }
  std::filesystem::remove_all(store_dir);
}

// Warm-started budget ladders: same machine and backend options with
// ascending budget_ratio.  Outcomes must be bit-identical to the cold
// sweep (the seed only skips the search that would rediscover the same
// schedule), with the warm-start counters showing the skips happened.
TEST(Sweep, WarmStartLadderMatchesColdSweep) {
  const Suite suite = small_suite(8, 31);

  std::vector<SweepPoint> points;
  for (const int budget : {3, 6, 12}) {
    SweepPoint ring{cat("ring4-aff-", budget), MachineConfig::clustered_machine(4), {}};
    ring.options.unroll = true;
    ring.options.scheduler = SchedulerKind::kClustered;
    ring.options.ims.budget_ratio = budget;
    points.push_back(ring);
  }
  for (const int budget : {6, 12}) {
    SweepPoint single{cat("single6-", budget), MachineConfig::single_cluster_machine(6), {}};
    single.options.ims.budget_ratio = budget;
    points.push_back(single);
  }
  // A moves point rides along: its backend declines warm starts, so it
  // must be untouched by the ladder machinery.
  SweepPoint moves{"ring4-moves", MachineConfig::clustered_machine(4), {}};
  moves.options.unroll = true;
  moves.options.scheduler = SchedulerKind::kClusteredMoves;
  points.push_back(moves);

  SweepOptions warm_options;
  warm_options.warm_start = true;
  const SweepResult warm = SweepRunner(warm_options).run(suite.loops, points);
  const SweepResult cold = SweepRunner().run(suite.loops, points);

  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      const LoopResult& w = warm.by_point[p][i];
      const LoopResult& c = cold.by_point[p][i];
      const std::string where = points[p].label + " / " + suite.loops[i].name;
      expect_identical(w, c, where, /*compare_effort=*/false);
      if (c.ok) EXPECT_LE(w.ii, c.ii) << where;  // the headline warm-start property
    }
  }
  EXPECT_GT(warm.cache.warm_probes, 0u);
  EXPECT_GT(warm.cache.warm_hits, 0u);
  EXPECT_EQ(cold.cache.warm_probes, 0u);

  // The skipped searches are visible as scheduling effort saved.
  long long warm_placements = 0, cold_placements = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      warm_placements += warm.by_point[p][i].sched_stats.placements;
      cold_placements += cold.by_point[p][i].sched_stats.placements;
    }
  }
  EXPECT_LT(warm_placements, cold_placements);
}

TEST(Sweep, MiiMapsPersistAcrossRuns) {
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "qvliw_test_store_mii";
  std::filesystem::remove_all(store_dir);

  const Suite suite = small_suite(6, 37);
  SweepPoint point{"ring4", MachineConfig::clustered_machine(4), {}};
  point.options.unroll = true;
  point.options.scheduler = SchedulerKind::kClustered;

  SweepOptions disk_options;
  disk_options.store_dir = store_dir.string();
  const SweepResult cold = SweepRunner(disk_options).run(suite.loops, {point});
  EXPECT_GT(cold.cache.mii_disk_probes, 0u);
  EXPECT_EQ(cold.cache.mii_disk_hits, 0u);

  // A fresh process-equivalent run restores the MII maps from disk
  // instead of recomputing them, with bit-identical results.
  const SweepResult warm = SweepRunner(disk_options).run(suite.loops, {point});
  EXPECT_GT(warm.cache.mii_disk_hits, 0u);
  EXPECT_EQ(warm.cache.mii_disk_hits, warm.cache.mii_disk_probes);

  const SweepResult oracle = SweepRunner().run(suite.loops, {point});
  for (std::size_t i = 0; i < suite.loops.size(); ++i) {
    expect_identical(warm.by_point[0][i], oracle.by_point[0][i], suite.loops[i].name);
  }
  std::filesystem::remove_all(store_dir);
}

// Regression: backends with different cache-key contributions must never
// share a warm-start (or any schedule) cache slot, even when every other
// key component agrees.
TEST(Sweep, BackendContributionsNeverAliasCacheSlots) {
  const MachineConfig machine = MachineConfig::clustered_machine(4);

  SweepPoint clustered{"clustered", machine, {}};
  clustered.options.scheduler = SchedulerKind::kClustered;
  SweepPoint single = clustered;
  single.label = "single";
  single.options.scheduler = SchedulerKind::kSingleCluster;
  SweepPoint moves = clustered;
  moves.label = "moves";
  moves.options.scheduler = SchedulerKind::kClusteredMoves;
  SweepPoint balance = clustered;
  balance.label = "balance";
  balance.options.heuristic = ClusterHeuristic::kLoadBalance;

  const SweepPrefixKeys ck = sweep_prefix_keys(clustered);
  const SweepPrefixKeys sk = sweep_prefix_keys(single);
  const SweepPrefixKeys mk = sweep_prefix_keys(moves);
  const SweepPrefixKeys bk = sweep_prefix_keys(balance);

  // Identical front/machine keys (the points differ only in back end)...
  EXPECT_EQ(ck.front, sk.front);
  EXPECT_EQ(ck.front, mk.front);
  EXPECT_EQ(ck.machine, sk.machine);
  // ...but pairwise-distinct backend contributions.
  EXPECT_NE(ck.backend, sk.backend);
  EXPECT_NE(ck.backend, mk.backend);
  EXPECT_NE(sk.backend, mk.backend);
  EXPECT_NE(ck.backend, bk.backend);  // heuristic is part of the contribution

  // The declared MII-consumption replaces the old wants_mii special case.
  EXPECT_TRUE(ck.consumes_cached_mii);
  EXPECT_TRUE(sk.consumes_cached_mii);
  EXPECT_FALSE(mk.consumes_cached_mii);

  // Budget is the ladder axis: same chain slot by design.
  SweepPoint bigger = clustered;
  bigger.options.ims.budget_ratio = 12;
  EXPECT_EQ(sweep_prefix_keys(bigger).backend, ck.backend);
}

// Regression: a ladder containing *duplicate* budgets used to rely on
// the sort's unspecified equal-key order for seed provenance; the
// execution order is now fully specified (budget, then original point
// index), so which point warm-starts which is identical run-to-run.
TEST(Sweep, WarmStartDeterministicWithDuplicateBudgets) {
  const Suite suite = small_suite(6, 71);

  std::vector<SweepPoint> points;
  for (const int budget : {6, 6, 12, 12, 6}) {  // duplicates, unsorted
    SweepPoint ring{cat("dup-", points.size()), MachineConfig::clustered_machine(4), {}};
    ring.options.unroll = true;
    ring.options.scheduler = SchedulerKind::kClustered;
    ring.options.ims.budget_ratio = budget;
    points.push_back(ring);
  }

  SweepOptions warm_options;
  warm_options.warm_start = true;
  warm_options.parallel = false;  // provenance must not need thread luck either
  const SweepResult first = SweepRunner(warm_options).run(suite.loops, points);
  const SweepResult second = SweepRunner(warm_options).run(suite.loops, points);

  EXPECT_GT(first.cache.warm_probes, 0u);
  EXPECT_GT(first.cache.warm_hits, 0u);
  EXPECT_EQ(first.cache.warm_probes, second.cache.warm_probes);
  EXPECT_EQ(first.cache.warm_hits, second.cache.warm_hits);
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      const std::string where = points[p].label + " / " + suite.loops[i].name;
      // Provenance (who got seeded and whether the seed installed) is
      // part of the determinism contract now, not just the outcomes.
      EXPECT_EQ(first.by_point[p][i].warm_started, second.by_point[p][i].warm_started) << where;
      expect_identical(first.by_point[p][i], second.by_point[p][i], where);
    }
  }

  // Equal-budget neighbours are bit-identical cold, so the duplicate's
  // seed installs: outcomes match the cold sweep exactly.
  const SweepResult cold = SweepRunner().run(suite.loops, points);
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      expect_identical(first.by_point[p][i], cold.by_point[p][i],
                       points[p].label + " / " + suite.loops[i].name,
                       /*compare_effort=*/false);
    }
  }
}

// Cross-process warm start: a first process persists every accepted
// schedule in the store; a second process (a real fork, sharing only the
// store directory) seeds each point with its own prior schedule, reports
// schedule-store and warm hits, and produces bit-identical results.
TEST(Sweep, WarmSchedulesPersistAcrossProcesses) {
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() / "qvliw_test_store_sched";
  std::filesystem::remove_all(store_dir);

  const Suite suite = small_suite(6, 73);
  std::vector<SweepPoint> points;
  for (const int budget : {6, 12}) {
    SweepPoint ring{cat("ring4-", budget), MachineConfig::clustered_machine(4), {}};
    ring.options.unroll = true;
    ring.options.scheduler = SchedulerKind::kClustered;
    ring.options.ims.budget_ratio = budget;
    points.push_back(ring);
  }

  SweepOptions warm_options;
  warm_options.store_dir = store_dir.string();
  warm_options.warm_start = true;
  warm_options.parallel = false;  // the forked child must not touch the pool

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child process: the cold store population run.
    const SweepResult seeded = SweepRunner(warm_options).run(suite.loops, points);
    _exit(seeded.cache.sched_disk_hits == 0 ? 0 : 3);  // cold store: no hits yet
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << "population process failed";

  // Second process (this one): every warm-eligible point hits its own
  // persisted schedule, including the first point of each ladder.
  const SweepResult warm = SweepRunner(warm_options).run(suite.loops, points);
  EXPECT_GT(warm.cache.sched_disk_probes, 0u);
  EXPECT_EQ(warm.cache.sched_disk_hits, warm.cache.sched_disk_probes);
  EXPECT_GT(warm.cache.warm_hits, 0u);
  EXPECT_EQ(warm.cache.warm_probes, warm.cache.sched_disk_hits);

  const SweepResult oracle = SweepRunner().run(suite.loops, points);
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      expect_identical(warm.by_point[p][i], oracle.by_point[p][i],
                       points[p].label + " / " + suite.loops[i].name,
                       /*compare_effort=*/false);
    }
  }
  std::filesystem::remove_all(store_dir);
}

// Cross-machine ladder seeds (opt-in): the first point of a machine's
// ladder may be offered another machine's accepted schedule over the
// same (loop, front prefix, backend).  The seed verifier makes this
// safe — final IIs are never worse than cold — and the 8-FU machine can
// genuinely verify 6-FU schedules, so seeds are offered and sometimes
// installed.
TEST(Sweep, CrossMachineSeedsNeverWorseThanCold) {
  const Suite suite = small_suite(8, 79);

  std::vector<SweepPoint> points;
  for (const int fus : {6, 8}) {  // same latency model -> same front prefix
    for (const int budget : {6, 12}) {
      SweepPoint point{cat("single", fus, "-", budget),
                       MachineConfig::single_cluster_machine(fus), {}};
      point.options.ims.budget_ratio = budget;
      points.push_back(point);
    }
  }

  SweepOptions warm_options;
  warm_options.warm_start = true;
  SweepOptions cross_options = warm_options;
  cross_options.cross_machine_seeds = true;

  const SweepResult warm = SweepRunner(warm_options).run(suite.loops, points);
  const SweepResult cross = SweepRunner(cross_options).run(suite.loops, points);
  const SweepResult cold = SweepRunner().run(suite.loops, points);

  // The second machine's ladder start is seedless without cross-machine
  // chaining; with it, those points are offered a foreign seed too.
  EXPECT_GT(cross.cache.warm_probes, warm.cache.warm_probes);

  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t i = 0; i < suite.loops.size(); ++i) {
      const LoopResult& x = cross.by_point[p][i];
      const LoopResult& c = cold.by_point[p][i];
      const std::string where = points[p].label + " / " + suite.loops[i].name;
      EXPECT_EQ(x.ok, c.ok) << where;
      if (c.ok) {
        EXPECT_LE(x.ii, c.ii) << where;  // never worse, possibly better
      }
    }
  }
}

// Regression: a point that requests strict verification itself, run under
// a sweep whose verify_mode is also strict, used to verify every cell's
// artifact bundle from scratch even when an ascending-budget ladder
// accepted the identical schedule at both budgets.  The task-scoped
// artifact memo now replays the verdict (and the queue allocation) for
// repeated (loop, machine, schedule) bundles: probes count every request,
// hits count the deduped ones, and every cell still reports
// verify_checked with zero violations.
TEST(Sweep, StrictPointUnderStrictModeDedupesVerification) {
  SynthConfig config;
  config.loops = 6;
  config.seed = 17;
  const std::vector<Loop> loops = synthesize_suite(config);

  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  std::vector<SweepPoint> points;
  for (const int budget : {6, 12}) {
    SweepPoint point{cat("6fu-budget-", budget, "x"), machine, {}};
    point.options.verify = VerifyPolicy::kStrict;  // the point's own request
    point.options.ims.budget_ratio = budget;
    points.push_back(point);
  }

  SweepOptions options;
  options.use_cache = true;
  options.verify_mode = SweepVerifyMode::kStrict;  // the sweep's blanket policy
  const SweepResult sweep = SweepRunner(options).run(loops, points);

  // Every cell was verified exactly once from the caller's point of view...
  EXPECT_EQ(sweep.verify_checked(), loops.size() * points.size());
  EXPECT_EQ(sweep.verify_violations(), 0u);
  // ...but the budget ladder accepts identical schedules at 6x and 12x
  // (the budget only caps failed searches), so the second point's verify
  // and allocation replay from the memo instead of re-running.
  EXPECT_EQ(sweep.cache.verify_memo_probes, loops.size() * points.size());
  EXPECT_GT(sweep.cache.verify_memo_hits, 0u);
  EXPECT_GT(sweep.cache.alloc_memo_probes, 0u);
  EXPECT_GT(sweep.cache.alloc_memo_hits, 0u);

  // The memo must not change any semantic outcome: the same sweep with
  // the memo-less uncached path produces identical results.
  SweepOptions uncached = options;
  uncached.use_cache = false;
  const SweepResult baseline = SweepRunner(uncached).run(loops, points);
  EXPECT_EQ(baseline.cache.verify_memo_probes, 0u);
  ASSERT_EQ(sweep_result_fingerprint(sweep), sweep_result_fingerprint(baseline));
}

TEST(Sweep, RunSuiteWrapperMatchesSweep) {
  SynthConfig config;
  config.loops = 8;
  config.seed = 5;
  const std::vector<Loop> loops = synthesize_suite(config);
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const std::vector<LoopResult> via_suite = run_suite(loops, machine);
  const SweepResult via_sweep = SweepRunner().run(loops, machine, {PipelineOptions{}});
  ASSERT_EQ(via_suite.size(), via_sweep.by_point[0].size());
  for (std::size_t i = 0; i < loops.size(); ++i) {
    expect_identical(via_suite[i], via_sweep.by_point[0][i], loops[i].name);
  }
}

}  // namespace
}  // namespace qvliw
