#include <gtest/gtest.h>

#include "ir/loop.h"
#include "support/diagnostics.h"

namespace qvliw {
namespace {

Loop minimal_loop() {
  Loop loop;
  loop.name = "t";
  const int a = loop.intern_array("X");
  Op load;
  load.opcode = Opcode::kLoad;
  load.name = "x";
  load.array = a;
  loop.add_op(load);
  Op store;
  store.opcode = Opcode::kStore;
  store.array = a;
  store.args.push_back(Operand::value(0, 0));
  loop.add_op(store);
  return loop;
}

TEST(Operand, Factories) {
  const Operand v = Operand::value(3, 2);
  EXPECT_EQ(v.kind, Operand::Kind::kValue);
  EXPECT_EQ(v.value_op, 3);
  EXPECT_EQ(v.distance, 2);
  EXPECT_TRUE(v.is_value());

  const Operand inv = Operand::invariant_ref(1);
  EXPECT_EQ(inv.kind, Operand::Kind::kInvariant);
  EXPECT_EQ(inv.invariant, 1);
  EXPECT_FALSE(inv.is_value());

  const Operand imm = Operand::immediate(-7);
  EXPECT_EQ(imm.kind, Operand::Kind::kImmediate);
  EXPECT_EQ(imm.imm, -7);

  const Operand idx = Operand::index(4);
  EXPECT_EQ(idx.kind, Operand::Kind::kIndex);
  EXPECT_EQ(idx.index_offset, 4);
}

TEST(Opcode, Names) {
  EXPECT_EQ(opcode_name(Opcode::kLoad), "load");
  EXPECT_EQ(opcode_name(Opcode::kFMul), "fmul");
  Opcode out;
  EXPECT_TRUE(parse_opcode("fadd", out));
  EXPECT_EQ(out, Opcode::kFAdd);
  EXPECT_FALSE(parse_opcode("nonsense", out));
}

TEST(Opcode, Classification) {
  EXPECT_TRUE(is_memory(Opcode::kLoad));
  EXPECT_TRUE(is_memory(Opcode::kStore));
  EXPECT_FALSE(is_memory(Opcode::kAdd));
  EXPECT_TRUE(defines_value(Opcode::kLoad));
  EXPECT_FALSE(defines_value(Opcode::kStore));
  EXPECT_EQ(operand_count(Opcode::kLoad), 0);
  EXPECT_EQ(operand_count(Opcode::kStore), 1);
  EXPECT_EQ(operand_count(Opcode::kCopy), 1);
  EXPECT_EQ(operand_count(Opcode::kFMul), 2);
}

TEST(LatencyModel, ClassicValues) {
  const LatencyModel lat = LatencyModel::classic();
  EXPECT_EQ(lat.of(Opcode::kLoad), 2);
  EXPECT_EQ(lat.of(Opcode::kAdd), 1);
  EXPECT_EQ(lat.of(Opcode::kFMul), 3);
  EXPECT_EQ(lat.of(Opcode::kDiv), 8);
  EXPECT_EQ(lat.of(Opcode::kCopy), 1);
  const LatencyModel unit = LatencyModel::unit();
  for (int i = 0; i < kNumOpcodes; ++i) EXPECT_EQ(unit.of(static_cast<Opcode>(i)), 1);
}

TEST(Loop, MinimalValidates) { EXPECT_NO_THROW(minimal_loop().validate()); }

TEST(Loop, FindValue) {
  const Loop loop = minimal_loop();
  EXPECT_EQ(loop.find_value("x"), 0);
  EXPECT_EQ(loop.find_value("missing"), -1);
}

TEST(Loop, InternArrayDeduplicates) {
  Loop loop;
  EXPECT_EQ(loop.intern_array("X"), 0);
  EXPECT_EQ(loop.intern_array("Y"), 1);
  EXPECT_EQ(loop.intern_array("X"), 0);
  EXPECT_EQ(loop.arrays.size(), 2u);
}

TEST(Loop, InternInvariantDeduplicates) {
  Loop loop;
  EXPECT_EQ(loop.intern_invariant("a"), 0);
  EXPECT_EQ(loop.intern_invariant("a"), 0);
  EXPECT_EQ(loop.invariants.size(), 1u);
}

TEST(Loop, UseCountsAndMaxDistance) {
  Loop loop = minimal_loop();
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "s";
  add.args.push_back(Operand::value(0, 0));
  add.args.push_back(Operand::value(2, 3));  // self at distance 3
  loop.add_op(add);
  EXPECT_EQ(loop.max_distance(), 3);
  EXPECT_EQ(loop.use_count(0), 2);  // store + add
  EXPECT_EQ(loop.use_count(2), 1);  // self
  EXPECT_EQ(loop.value_use_count(), 3);
}

TEST(LoopValidate, RejectsUnnamedValue) {
  Loop loop = minimal_loop();
  loop.ops[0].name.clear();
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsNamedStore) {
  Loop loop = minimal_loop();
  loop.ops[1].name = "oops";
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsDuplicateNames) {
  Loop loop = minimal_loop();
  Op dup;
  dup.opcode = Opcode::kCopy;
  dup.name = "x";
  dup.args.push_back(Operand::value(0, 0));
  loop.add_op(dup);
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsBadArity) {
  Loop loop = minimal_loop();
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "s";
  add.args.push_back(Operand::immediate(1));  // needs two operands
  loop.add_op(add);
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsValueRefOutOfRange) {
  Loop loop = minimal_loop();
  loop.ops[1].args[0] = Operand::value(99, 0);
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsReferenceToStore) {
  Loop loop = minimal_loop();
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "s";
  add.args.push_back(Operand::value(1, 0));  // references the store
  add.args.push_back(Operand::immediate(1));
  loop.add_op(add);
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsNegativeDistance) {
  Loop loop = minimal_loop();
  loop.ops[1].args[0].distance = -1;
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsForwardDistanceZero) {
  Loop loop = minimal_loop();
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "s";
  add.args.push_back(Operand::value(2, 0));  // itself, distance 0
  add.args.push_back(Operand::immediate(1));
  loop.add_op(add);
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, AllowsForwardDistancePositive) {
  Loop loop = minimal_loop();
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "s";
  add.args.push_back(Operand::value(2, 1));  // itself, one iteration back
  add.args.push_back(Operand::immediate(1));
  loop.add_op(add);
  EXPECT_NO_THROW(loop.validate());
}

TEST(LoopValidate, RejectsMemoryOpWithoutArray) {
  Loop loop = minimal_loop();
  loop.ops[0].array = -1;
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsArithmeticWithArray) {
  Loop loop = minimal_loop();
  Op add;
  add.opcode = Opcode::kAdd;
  add.name = "s";
  add.array = 0;
  add.args.push_back(Operand::immediate(1));
  add.args.push_back(Operand::immediate(2));
  loop.add_op(add);
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsBadInvariantRef) {
  Loop loop = minimal_loop();
  loop.ops[1].args[0] = Operand::invariant_ref(0);  // none declared
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsBadStride) {
  Loop loop = minimal_loop();
  loop.stride = 0;
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsBadInitInvariant) {
  Loop loop = minimal_loop();
  loop.ops[0].init_invariant = 0;  // no invariants declared
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopValidate, RejectsBadTrip) {
  Loop loop = minimal_loop();
  loop.trip_hint = 0;
  EXPECT_THROW(loop.validate(), Error);
}

TEST(LoopContentHash, StableAndStructureSensitive) {
  const Loop loop = minimal_loop();
  Loop copy = loop;
  EXPECT_EQ(loop.content_hash(), copy.content_hash());

  copy.trip_hint += 1;
  EXPECT_NE(loop.content_hash(), copy.content_hash());

  copy = loop;
  copy.name = "other";
  EXPECT_NE(loop.content_hash(), copy.content_hash());

  copy = loop;
  copy.ops[0].mem_offset += 1;
  EXPECT_NE(loop.content_hash(), copy.content_hash());

  copy = loop;
  copy.ops.push_back(copy.ops.back());
  EXPECT_NE(loop.content_hash(), copy.content_hash());
}

}  // namespace
}  // namespace qvliw
