#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/checkpoint.h"
#include "harness/shard.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "workload/suite.h"

namespace qvliw {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("qvliw_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<SweepPoint> ladder_points() {
  std::vector<SweepPoint> points;
  const MachineConfig ring = MachineConfig::clustered_machine(4);
  for (const ClusterHeuristic heuristic :
       {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance}) {
    for (const int budget : {6, 12}) {
      SweepPoint point{cat(cluster_heuristic_name(heuristic), "-", budget), ring, {}};
      point.options.unroll = true;
      point.options.scheduler = SchedulerKind::kClustered;
      point.options.heuristic = heuristic;
      point.options.ims.budget_ratio = budget;
      points.push_back(point);
    }
  }
  return points;
}

JournalHeader demo_header() {
  JournalHeader header;
  header.config_hash = 0xabcdef0123456789ULL;
  header.shard_count = 2;
  header.shard_index = 1;
  header.axis = ShardAxis::kLoops;
  header.loops = 9;
  header.points = 4;
  return header;
}

std::string demo_payload(std::uint64_t task_id) {
  TaskPayload payload;
  payload.loop_index = task_id;
  LoopResult result;
  result.name = cat("loop-", task_id);
  result.ok = true;
  result.ii = static_cast<int>(3 + task_id);
  payload.cells.emplace_back(0, result);
  payload.stats.front_probes = 4;
  payload.stats.front_hits = 3;
  payload.front_seconds = {0.25, 0.5, 0.125, 0.0625};
  return encode_task_payload(payload);
}

// --- TaskCommitter ----------------------------------------------------------

TEST(Checkpoint, CommitterRunsSinkInOrderWithoutJournal) {
  std::vector<std::uint64_t> ids;
  std::vector<std::uint64_t> committed_counts;
  {
    TaskCommitter committer(nullptr, 2, [&](const TaskCommit& commit, std::uint64_t committed) {
      ids.push_back(commit.task_id);
      committed_counts.push_back(committed);
    });
    for (std::uint64_t id = 0; id < 10; ++id) {
      TaskCommit commit;
      commit.task_id = id;
      committer.submit(std::move(commit));
    }
    committer.finish();
    EXPECT_EQ(committer.committed(), 10u);
  }
  ASSERT_EQ(ids.size(), 10u);
  for (std::uint64_t id = 0; id < 10; ++id) {
    EXPECT_EQ(ids[id], id);                    // submission order preserved
    EXPECT_EQ(committed_counts[id], id + 1u);  // the running count the hook sees
  }
}

TEST(Checkpoint, CommitterJournalsPayloadsDurably) {
  const fs::path dir = scratch_dir("committer_journal");
  const JournalHeader header = demo_header();
  const std::string path = checkpoint_journal_path(dir.string(), header);
  {
    TaskJournal journal(path, header);
    TaskCommitter committer(&journal, 4, {});
    for (const std::uint64_t id : {2u, 4u, 6u}) {
      TaskCommit commit;
      commit.task_id = id;
      commit.payload = demo_payload(id);
      committer.submit(std::move(commit));
    }
    // An unjournaled commit (empty payload — e.g. a replayed task) must
    // count without appending a record.
    committer.submit(TaskCommit{});
    committer.finish();
    EXPECT_EQ(committer.committed(), 4u);
  }
  TaskJournal reopened(path, header);
  EXPECT_EQ(reopened.completed().size(), 3u);
  for (const std::uint64_t id : {2u, 4u, 6u}) {
    EXPECT_NE(reopened.completed().find(id), reopened.completed().end()) << id;
  }
}

// A sink failure freezes the ledger: the failing commit's record is
// already durable, but nothing after it is appended — producers drain
// without blocking and finish() rethrows the error.
TEST(Checkpoint, CommitterSinkErrorStopsJournalGrowth) {
  const fs::path dir = scratch_dir("committer_error");
  const JournalHeader header = demo_header();
  const std::string path = checkpoint_journal_path(dir.string(), header);
  {
    TaskJournal journal(path, header);
    TaskCommitter committer(&journal, 2, [](const TaskCommit&, std::uint64_t committed) {
      if (committed == 2) fail("test: sink failure");
    });
    for (std::uint64_t id = 0; id < 6; ++id) {
      TaskCommit commit;
      commit.task_id = id;
      commit.payload = demo_payload(id);
      committer.submit(std::move(commit));
    }
    EXPECT_THROW(committer.finish(), Error);
    EXPECT_EQ(committer.committed(), 2u);
  }
  TaskJournal reopened(path, header);
  EXPECT_EQ(reopened.completed().size(), 2u);  // ids 0 and 1; nothing after the failure
}

TEST(Checkpoint, JournalRoundTripsTasksAcrossReopen) {
  const fs::path dir = scratch_dir("journal_roundtrip");
  const JournalHeader header = demo_header();
  const std::string path = checkpoint_journal_path(dir.string(), header);

  {
    TaskJournal journal(path, header);
    EXPECT_TRUE(journal.completed().empty());
    EXPECT_EQ(journal.truncated_bytes(), 0u);
    journal.append_task(3, demo_payload(3));
    journal.append_heartbeat();
    journal.append_task(5, demo_payload(5));
    journal.append_heartbeat();
  }

  TaskJournal reopened(path, header);
  ASSERT_EQ(reopened.completed().size(), 2u);
  EXPECT_EQ(reopened.truncated_bytes(), 0u);
  for (const std::uint64_t id : {3u, 5u}) {
    const auto it = reopened.completed().find(id);
    ASSERT_NE(it, reopened.completed().end());
    const TaskPayload payload = decode_task_payload(it->second);
    EXPECT_EQ(payload.loop_index, id);
    ASSERT_EQ(payload.cells.size(), 1u);
    EXPECT_EQ(payload.cells[0].second.name, cat("loop-", id));
    EXPECT_EQ(payload.cells[0].second.ii, static_cast<int>(3 + id));
    EXPECT_EQ(payload.stats.front_probes, 4u);
    EXPECT_EQ(payload.front_seconds[1], 0.5);
  }

  const JournalStatus status = read_journal_status(path);
  EXPECT_TRUE(status.exists);
  EXPECT_TRUE(status.valid);
  EXPECT_EQ(status.tasks_done, 2u);
  EXPECT_EQ(status.heartbeats, 2u);
  EXPECT_GT(status.last_heartbeat_micros, 0);
  EXPECT_EQ(status.bytes, reopened.bytes());

  // A journal belonging to a different sweep is refused, not replayed.
  JournalHeader other = header;
  other.config_hash ^= 1;
  EXPECT_THROW((TaskJournal{path, other}), Error);
  JournalHeader other_shard = header;
  other_shard.shard_index = 0;
  // Different shard identity also means a different file name; force the
  // same path to prove the header check itself fires.
  EXPECT_THROW((TaskJournal{path, other_shard}), Error);
}

TEST(Checkpoint, TornTailIsDroppedAndAppendsResume) {
  const fs::path dir = scratch_dir("journal_torn");
  const JournalHeader header = demo_header();
  const std::string path = checkpoint_journal_path(dir.string(), header);

  {
    TaskJournal journal(path, header);
    journal.append_task(1, demo_payload(1));
  }
  const auto intact_size = fs::file_size(path);
  {
    // A killed writer's torn record: a record prefix without its tail.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "\x01\x00\x00\x00garbage-that-is-not-a-complete-record";
  }
  ASSERT_GT(fs::file_size(path), intact_size);

  // Read-only probe never mutates.
  const JournalStatus before = read_journal_status(path);
  EXPECT_TRUE(before.valid);
  EXPECT_EQ(before.tasks_done, 1u);
  EXPECT_EQ(before.bytes, intact_size);
  ASSERT_GT(fs::file_size(path), intact_size);

  {
    TaskJournal journal(path, header);
    EXPECT_EQ(journal.completed().size(), 1u);
    EXPECT_GT(journal.truncated_bytes(), 0u);
    EXPECT_EQ(fs::file_size(path), intact_size);  // tail gone
    journal.append_task(2, demo_payload(2));
  }
  TaskJournal reopened(path, header);
  EXPECT_EQ(reopened.completed().size(), 2u);
  EXPECT_EQ(reopened.truncated_bytes(), 0u);

  // A file shorter than the header means nothing was committed: the
  // journal restarts cleanly instead of failing.
  const std::string short_path = (dir / "short.qjournal").string();
  { std::ofstream out(short_path, std::ios::binary); out << "QJ"; }
  TaskJournal fresh(short_path, header);
  EXPECT_TRUE(fresh.completed().empty());

  // Foreign magic is an error (wrong file), not a silent restart.
  const std::string foreign_path = (dir / "foreign.qjournal").string();
  {
    std::ofstream out(foreign_path, std::ios::binary);
    out << std::string(64, '\xee');
  }
  EXPECT_THROW((TaskJournal{foreign_path, header}), Error);
}

TEST(Checkpoint, TaskPayloadCodecRejectsTrailingBytes) {
  const std::string blob = demo_payload(7);
  const TaskPayload payload = decode_task_payload(blob);
  EXPECT_EQ(payload.loop_index, 7u);
  EXPECT_THROW((void)decode_task_payload(blob + "x"), Error);
  EXPECT_THROW((void)decode_task_payload(blob.substr(0, blob.size() - 1)), Error);
}

TEST(Checkpoint, SweepTasksPartitionTheCrossProduct) {
  // Unsharded: every loop owns every point.
  SweepOptions options;
  const std::vector<SweepTask> all = sweep_tasks(options, 5, 3);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].loop_index, i);
    EXPECT_EQ(all[i].point_indices.size(), 3u);
  }
  // Sharded over loops: only owned loops appear, with all points.
  options.shard_count = 2;
  options.shard_index = 1;
  const std::vector<SweepTask> odd = sweep_tasks(options, 5, 3);
  ASSERT_EQ(odd.size(), 2u);
  EXPECT_EQ(odd[0].loop_index, 1u);
  EXPECT_EQ(odd[1].loop_index, 3u);
  // Sharded over points: every loop appears with its owned points.
  options.shard_axis = ShardAxis::kPoints;
  const std::vector<SweepTask> points = sweep_tasks(options, 5, 3);
  ASSERT_EQ(points.size(), 5u);
  for (const SweepTask& task : points) {
    ASSERT_EQ(task.point_indices.size(), 1u);
    EXPECT_EQ(task.point_indices[0], 1u);
  }
}

TEST(Checkpoint, CheckpointedSweepMatchesPlainSweepAndReplays) {
  const fs::path dir = scratch_dir("ckpt_sweep");
  const Suite suite = small_suite(7, 101);
  const std::vector<SweepPoint> points = ladder_points();

  const SweepResult plain = SweepRunner().run(suite.loops, points);

  SweepOptions options;
  options.checkpoint_dir = dir.string();
  const SweepResult cold = SweepRunner(options).run(suite.loops, points);
  EXPECT_EQ(cold.checkpoint.tasks_replayed, 0u);
  EXPECT_EQ(cold.checkpoint.tasks_executed, suite.loops.size());
  EXPECT_GT(cold.checkpoint.journal_bytes, 0u);
  EXPECT_EQ(sweep_result_fingerprint(cold), sweep_result_fingerprint(plain));

  const SweepResult warm = SweepRunner(options).run(suite.loops, points);
  EXPECT_EQ(warm.checkpoint.tasks_replayed, suite.loops.size());
  EXPECT_EQ(warm.checkpoint.tasks_executed, 0u);
  EXPECT_EQ(sweep_result_fingerprint(warm), sweep_result_fingerprint(plain));
  // Replay restores accounting too, not just outcomes.
  EXPECT_EQ(warm.cache.front_probes, cold.cache.front_probes);
  EXPECT_EQ(warm.cache.front_hits, cold.cache.front_hits);
  EXPECT_EQ(warm.cache.invariant_probes, cold.cache.invariant_probes);
  EXPECT_EQ(warm.pipelines, cold.pipelines);
}

// An interrupted checkpointed run — aborted by an exception after K tasks
// committed — resumes with exactly those K tasks replayed and finishes
// bit-identical to an uninterrupted run.
TEST(Checkpoint, InterruptedRunResumesBitIdentical) {
  const fs::path dir = scratch_dir("ckpt_interrupt");
  const Suite suite = small_suite(8, 103);
  const std::vector<SweepPoint> points = ladder_points();
  constexpr std::uint64_t kAbortAfter = 3;

  SweepOptions interrupted;
  interrupted.checkpoint_dir = dir.string();
  interrupted.parallel = false;  // deterministic task count at the abort
  interrupted.on_task_committed = [](std::uint64_t committed) {
    if (committed == kAbortAfter) fail("test: simulated interruption");
  };
  EXPECT_THROW((void)SweepRunner(interrupted).run(suite.loops, points), Error);

  SweepOptions resume;
  resume.checkpoint_dir = dir.string();
  resume.parallel = false;
  const SweepResult resumed = SweepRunner(resume).run(suite.loops, points);
  EXPECT_EQ(resumed.checkpoint.tasks_replayed, kAbortAfter);
  EXPECT_EQ(resumed.checkpoint.tasks_executed, suite.loops.size() - kAbortAfter);

  const SweepResult oracle = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(resumed), sweep_result_fingerprint(oracle));
}

// The satellite's drill: fork a worker, SIGKILL it mid-sweep, restart
// from the journal, and the merged result is bit-identical to the
// uninterrupted run.
TEST(Checkpoint, SigkilledWorkerResumesBitIdentical) {
  const fs::path dir = scratch_dir("ckpt_sigkill");
  const Suite suite = small_suite(6, 107);
  const std::vector<SweepPoint> points = ladder_points();
  constexpr std::uint64_t kKillAfter = 2;

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Worker: checkpointed single-threaded sweep (a forked child must not
    // touch the parent's thread pool); after kKillAfter committed tasks,
    // signal the parent and block until SIGKILLed.
    close(fds[0]);
    SweepOptions child_options;
    child_options.checkpoint_dir = dir.string();
    child_options.parallel = false;
    child_options.on_task_committed = [&](std::uint64_t committed) {
      if (committed == kKillAfter) {
        const char byte = 'x';
        (void)!write(fds[1], &byte, 1);
        for (;;) pause();
      }
    };
    (void)SweepRunner(child_options).run(suite.loops, points);
    _exit(7);  // unreachable: the parent kills us mid-sweep
  }
  close(fds[1]);
  char byte = 0;
  ASSERT_EQ(read(fds[0], &byte, 1), 1);  // the journal now holds kKillAfter tasks
  close(fds[0]);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Restart: the committed tasks replay, the rest execute.
  SweepOptions resume;
  resume.checkpoint_dir = dir.string();
  resume.parallel = false;
  const SweepResult resumed = SweepRunner(resume).run(suite.loops, points);
  EXPECT_EQ(resumed.checkpoint.tasks_replayed, kKillAfter);
  EXPECT_EQ(resumed.checkpoint.tasks_executed, suite.loops.size() - kKillAfter);

  const SweepResult oracle = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(resumed), sweep_result_fingerprint(oracle));
  fs::remove_all(dir);
}

// A checkpointed sweep on worker threads journals through the committer
// thread and stays fingerprint-identical to the serial checkpointed
// sweep; the journal it leaves replays cleanly under a different count.
TEST(Checkpoint, ThreadedCheckpointMatchesSerialAndReplays) {
  const fs::path threaded_dir = scratch_dir("ckpt_threaded");
  const fs::path serial_dir = scratch_dir("ckpt_threaded_serial");
  const Suite suite = small_suite(7, 109);
  const std::vector<SweepPoint> points = ladder_points();

  SweepOptions threaded;
  threaded.checkpoint_dir = threaded_dir.string();
  threaded.workers = 4;
  const SweepResult cold = SweepRunner(threaded).run(suite.loops, points);
  EXPECT_EQ(cold.checkpoint.tasks_executed, suite.loops.size());

  SweepOptions serial;
  serial.checkpoint_dir = serial_dir.string();
  serial.parallel = false;
  const SweepResult serial_cold = SweepRunner(serial).run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(cold), sweep_result_fingerprint(serial_cold));
  EXPECT_EQ(cold.checkpoint.journal_bytes, serial_cold.checkpoint.journal_bytes);

  // Resume the threaded journal with a *different* worker count.
  SweepOptions resume = threaded;
  resume.workers = 2;
  const SweepResult replayed = SweepRunner(resume).run(suite.loops, points);
  EXPECT_EQ(replayed.checkpoint.tasks_replayed, suite.loops.size());
  EXPECT_EQ(replayed.checkpoint.tasks_executed, 0u);
  EXPECT_EQ(sweep_result_fingerprint(replayed), sweep_result_fingerprint(serial_cold));
  fs::remove_all(threaded_dir);
  fs::remove_all(serial_dir);
}

// A hook exception during a threaded run freezes the ledger after the
// failing commit; the resume replays at least those tasks and finishes
// bit-identical.
TEST(Checkpoint, ThreadedHookAbortResumesBitIdentical) {
  const fs::path dir = scratch_dir("ckpt_threaded_abort");
  const Suite suite = small_suite(8, 113);
  const std::vector<SweepPoint> points = ladder_points();
  constexpr std::uint64_t kAbortAfter = 3;

  SweepOptions interrupted;
  interrupted.checkpoint_dir = dir.string();
  interrupted.workers = 4;
  interrupted.on_task_committed = [](std::uint64_t committed) {
    if (committed == kAbortAfter) fail("test: simulated interruption");
  };
  EXPECT_THROW((void)SweepRunner(interrupted).run(suite.loops, points), Error);

  SweepOptions resume;
  resume.checkpoint_dir = dir.string();
  resume.workers = 2;
  const SweepResult resumed = SweepRunner(resume).run(suite.loops, points);
  EXPECT_GE(resumed.checkpoint.tasks_replayed, kAbortAfter);
  EXPECT_EQ(resumed.checkpoint.tasks_executed,
            suite.loops.size() - resumed.checkpoint.tasks_replayed);

  const SweepResult oracle = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(resumed), sweep_result_fingerprint(oracle));
  fs::remove_all(dir);
}

// The concurrent variant of the SIGKILL drill: the killed worker runs a
// *multi-threaded* checkpointed sweep, and the resume — under a different
// worker count — replays every journaled task and finishes bit-identical
// to the uninterrupted run.
TEST(Checkpoint, SigkilledConcurrentWorkerResumesBitIdentical) {
  const fs::path dir = scratch_dir("ckpt_sigkill_mt");
  const Suite suite = small_suite(6, 127);
  const std::vector<SweepPoint> points = ladder_points();
  constexpr std::uint64_t kKillAfter = 2;

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Worker: 4 worker threads on a pool built inside the child (explicit
    // workers never touch the parent's shared pool).  The hook runs on
    // the committer thread, after its task's journal append: signalling
    // the parent and pausing freezes the ledger at kKillAfter durable
    // tasks while the executor threads keep racing — exactly the state a
    // SIGKILL mid-concurrent-sweep leaves behind.
    close(fds[0]);
    SweepOptions child_options;
    child_options.checkpoint_dir = dir.string();
    child_options.workers = 4;
    child_options.on_task_committed = [&](std::uint64_t committed) {
      if (committed == kKillAfter) {
        const char byte = 'x';
        (void)!write(fds[1], &byte, 1);
        for (;;) pause();
      }
    };
    (void)SweepRunner(child_options).run(suite.loops, points);
    _exit(7);  // unreachable: the parent kills us mid-sweep
  }
  close(fds[1]);
  char byte = 0;
  ASSERT_EQ(read(fds[0], &byte, 1), 1);  // >= kKillAfter tasks are durable
  close(fds[0]);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Resume under a different worker count: the journal is count-agnostic.
  SweepOptions resume;
  resume.checkpoint_dir = dir.string();
  resume.workers = 2;
  const SweepResult resumed = SweepRunner(resume).run(suite.loops, points);
  EXPECT_GE(resumed.checkpoint.tasks_replayed, kKillAfter);
  EXPECT_EQ(resumed.checkpoint.tasks_executed,
            suite.loops.size() - resumed.checkpoint.tasks_replayed);

  const SweepResult oracle = SweepRunner().run(suite.loops, points);
  EXPECT_EQ(sweep_result_fingerprint(resumed), sweep_result_fingerprint(oracle));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace qvliw
