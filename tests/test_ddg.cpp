#include <gtest/gtest.h>

#include <algorithm>

#include "ir/ddg.h"
#include "ir/parser.h"
#include "support/diagnostics.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

TEST(Ddg, FlowEdgesFromOperands) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x, x; store Y[i], s; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_EQ(graph.node_count(), 3);
  int flow_edges = 0;
  for (const DepEdge& e : graph.edges()) {
    if (e.is_value_flow()) ++flow_edges;
  }
  EXPECT_EQ(flow_edges, 3);  // x twice into fadd, s into store
}

TEST(Ddg, FlowEdgeCarriesProducerLatency) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fmul x, 3; store Y[i], s; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  for (const DepEdge& e : graph.edges()) {
    if (!e.is_value_flow()) continue;
    if (e.src == 0) {
      EXPECT_EQ(e.latency, 2);  // load latency
    }
    if (e.src == 1) {
      EXPECT_EQ(e.latency, 3);  // fmul latency
    }
  }
}

TEST(Ddg, FlowEdgeRecordsConsumerArgSlot) {
  const Loop loop = parse_loop("loop t { x = load X[i]; y = load Y[i]; s = fadd y, x; store Z[i], s; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  for (const DepEdge& e : graph.edges()) {
    if (!e.is_value_flow() || e.dst != 2) continue;
    if (e.src == 1) {
      EXPECT_EQ(e.dst_arg, 0);
    }
    if (e.src == 0) {
      EXPECT_EQ(e.dst_arg, 1);
    }
  }
}

TEST(Ddg, DistanceFromOperand) {
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  bool found_self = false;
  for (const DepEdge& e : graph.edges()) {
    if (e.src == 1 && e.dst == 1) {
      found_self = true;
      EXPECT_EQ(e.distance, 1);
      EXPECT_EQ(e.latency, 2);  // fadd
    }
  }
  EXPECT_TRUE(found_self);
}

TEST(Ddg, MemoryEdgesIncluded) {
  const Loop loop = kernel_by_name("lk5_tridiag");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  bool found_mem_flow = false;
  for (const DepEdge& e : graph.edges()) {
    if (e.kind == DepKind::kMemFlow) {
      found_mem_flow = true;
      EXPECT_EQ(e.latency, 1);
      EXPECT_EQ(e.distance, 1);
    }
  }
  EXPECT_TRUE(found_mem_flow);
}

TEST(Ddg, AdjacencyConsistent) {
  const Loop loop = kernel_by_name("fir4");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  for (int v = 0; v < graph.node_count(); ++v) {
    for (int e : graph.out_edges(v)) EXPECT_EQ(graph.edge(e).src, v);
    for (int e : graph.in_edges(v)) EXPECT_EQ(graph.edge(e).dst, v);
  }
  int from_out = 0;
  for (int v = 0; v < graph.node_count(); ++v) from_out += static_cast<int>(graph.out_edges(v).size());
  EXPECT_EQ(from_out, graph.edge_count());
}

TEST(Ddg, TotalLatency) {
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fmul x, 3; store Y[i], s; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  EXPECT_EQ(graph.total_latency(), 2 + 3 + 1);
}

TEST(Ddg, EmptyGraph) {
  const Ddg graph(0);
  EXPECT_EQ(graph.node_count(), 0);
  EXPECT_EQ(graph.edge_count(), 0);
}

TEST(Ddg, AddEdgeValidation) {
  Ddg graph(2);
  EXPECT_THROW(graph.add_edge({0, 5, 1, 0, DepKind::kFlow, -1}), Error);
  EXPECT_THROW(graph.add_edge({0, 1, -1, 0, DepKind::kFlow, -1}), Error);
  EXPECT_THROW(graph.add_edge({0, 1, 1, -2, DepKind::kFlow, -1}), Error);
  EXPECT_NO_THROW(graph.add_edge({0, 1, 1, 0, DepKind::kFlow, -1}));
}

TEST(Ddg, DepKindNames) {
  EXPECT_EQ(dep_kind_name(DepKind::kFlow), "flow");
  EXPECT_EQ(dep_kind_name(DepKind::kMemAnti), "mem-anti");
}

TEST(Ddg, CorpusBuildsEverywhere) {
  for (const Loop& loop : kernel_corpus()) {
    EXPECT_NO_THROW({
      const Ddg graph = Ddg::build(loop, LatencyModel::classic());
      EXPECT_EQ(graph.node_count(), loop.op_count());
    }) << loop.name;
  }
}

}  // namespace
}  // namespace qvliw
