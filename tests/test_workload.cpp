#include <gtest/gtest.h>

#include <set>

#include "ir/ddg.h"
#include "ir/printer.h"
#include "sched/mii.h"
#include "support/diagnostics.h"
#include "workload/kernels.h"
#include "workload/suite.h"
#include "workload/synth.h"

namespace qvliw {
namespace {

TEST(Kernels, CorpusParsesAndValidates) {
  const auto corpus = kernel_corpus();
  EXPECT_GE(corpus.size(), 25u);
  std::set<std::string> names;
  for (const Loop& loop : corpus) {
    EXPECT_NO_THROW(loop.validate()) << loop.name;
    EXPECT_TRUE(names.insert(loop.name).second) << "duplicate kernel " << loop.name;
  }
}

TEST(Kernels, LookupByName) {
  const Loop loop = kernel_by_name("daxpy");
  EXPECT_EQ(loop.name, "daxpy");
  EXPECT_THROW((void)kernel_by_name("no_such_kernel"), Error);
}

TEST(Synth, DeterministicAcrossRuns) {
  SynthConfig config;
  config.loops = 10;
  config.seed = 5;
  const auto a = synthesize_suite(config);
  const auto b = synthesize_suite(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(to_text(a[i]), to_text(b[i])) << i;
  }
}

TEST(Synth, DifferentSeedsDiffer) {
  SynthConfig a_config;
  a_config.loops = 5;
  a_config.seed = 1;
  SynthConfig b_config = a_config;
  b_config.seed = 2;
  const auto a = synthesize_suite(a_config);
  const auto b = synthesize_suite(b_config);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (to_text(a[i]) != to_text(b[i])) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Synth, AllLoopsValid) {
  SynthConfig config;
  config.loops = 200;
  config.seed = 77;
  for (const Loop& loop : synthesize_suite(config)) {
    EXPECT_NO_THROW(loop.validate()) << loop.name;
  }
}

TEST(Synth, SizesWithinBounds) {
  SynthConfig config;
  config.loops = 200;
  config.seed = 88;
  double total = 0;
  int small_mode = 0;
  for (const Loop& loop : synthesize_suite(config)) {
    EXPECT_GE(loop.op_count(), std::min(config.small_lo, config.min_ops));
    EXPECT_LE(loop.op_count(), config.max_ops);
    if (loop.op_count() <= config.small_hi) ++small_mode;
    total += loop.op_count();
  }
  const double mean_size = total / config.loops;
  // Calibration: bimodal — many tiny streaming bodies plus a log-normal
  // bulk; the mixture mean sits around 9-16 ops.
  EXPECT_GE(mean_size, 8.0);
  EXPECT_LE(mean_size, 24.0);
  // The small mode must be well represented (it powers Fig. 4).
  EXPECT_GE(small_mode, 200 / 4);
}

TEST(Synth, MemoryMixCalibrated) {
  SynthConfig config;
  config.loops = 200;
  config.seed = 99;
  long long mem = 0;
  long long all = 0;
  for (const Loop& loop : synthesize_suite(config)) {
    for (const Op& op : loop.ops) {
      if (is_memory(op.opcode)) ++mem;
      ++all;
    }
  }
  const double fraction = static_cast<double>(mem) / static_cast<double>(all);
  EXPECT_GE(fraction, 0.20);
  EXPECT_LE(fraction, 0.45);
}

TEST(Synth, RecurrenceFrequencyCalibrated) {
  SynthConfig config;
  config.loops = 300;
  config.seed = 111;
  int with_recurrence = 0;
  for (const Loop& loop : synthesize_suite(config)) {
    const Ddg graph = Ddg::build(loop, LatencyModel::classic());
    if (rec_mii(graph) > 1) ++with_recurrence;
  }
  const double fraction = static_cast<double>(with_recurrence) / config.loops;
  // Roughly half the suite should be recurrence-carrying, like the era's
  // scientific codes.
  EXPECT_GE(fraction, 0.35);
  EXPECT_LE(fraction, 0.8);
}

TEST(Synth, EveryLoopHasMemoryTraffic) {
  SynthConfig config;
  config.loops = 50;
  config.seed = 123;
  for (const Loop& loop : synthesize_suite(config)) {
    int stores = 0;
    for (const Op& op : loop.ops) {
      if (op.opcode == Opcode::kStore) ++stores;
    }
    EXPECT_GE(stores, 1) << loop.name;
  }
}

TEST(Suite, FullSuiteHasPaperSize) {
  SynthConfig config;
  config.loops = 100;  // keep the test fast; default is 1258
  const Suite suite = full_suite(config);
  EXPECT_EQ(static_cast<int>(suite.loops.size()), 100);
  EXPECT_GT(suite.kernel_count, 0);
}

TEST(Suite, SmallSuiteComposition) {
  const Suite suite = small_suite(10, 3);
  EXPECT_EQ(static_cast<int>(suite.loops.size()), suite.kernel_count + 10);
}

TEST(Suite, ResourceConstrainedClassification) {
  // Streaming kernels scale with FUs; heavy recurrences do not.
  EXPECT_TRUE(is_resource_constrained(kernel_by_name("daxpy")));
  EXPECT_TRUE(is_resource_constrained(kernel_by_name("fir4")));
  EXPECT_TRUE(is_resource_constrained(kernel_by_name("wide8")));
  EXPECT_FALSE(is_resource_constrained(kernel_by_name("geo_decay")));
  EXPECT_FALSE(is_resource_constrained(kernel_by_name("lk11_partial_sum")));
}

TEST(Suite, MixOfClassesInSyntheticSuite) {
  SynthConfig config;
  config.loops = 120;
  config.seed = 222;
  int constrained = 0;
  for (const Loop& loop : synthesize_suite(config)) {
    if (is_resource_constrained(loop)) ++constrained;
  }
  // Both classes must be represented in quantity.
  EXPECT_GE(constrained, 20);
  EXPECT_LE(constrained, 110);
}

}  // namespace
}  // namespace qvliw
