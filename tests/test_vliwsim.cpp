// End-to-end oracle tests: every kernel, scheduled and queue-allocated on
// several machines, must execute on the cycle-accurate QRF simulator with
// perfect FIFO discipline and reproduce the reference interpreter's memory
// bit for bit.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "sim/interp.h"
#include "sim/vliwsim.h"
#include "workload/kernels.h"
#include "xform/copy_insert.h"
#include "xform/invariants.h"

namespace qvliw {
namespace {

struct Prepared {
  Loop loop;
  Ddg graph{0};
  MachineConfig machine;
  ImsResult sched;
  QueueAllocation allocation;
};

Prepared prepare(const Loop& source, int fus) {
  Prepared p;
  p.loop = insert_copies(source).loop;
  p.machine = MachineConfig::single_cluster_machine(fus);
  p.graph = Ddg::build(p.loop, p.machine.latency);
  p.sched = ims_schedule(p.loop, p.graph, p.machine);
  EXPECT_TRUE(p.sched.ok) << source.name << ": " << p.sched.failure;
  p.allocation = allocate_queues(p.loop, p.graph, p.machine, p.sched.schedule);
  return p;
}

TEST(VliwSim, DaxpyMatchesReference) {
  const Prepared p = prepare(kernel_by_name("daxpy"), 6);
  const CheckedSim r = simulate_and_check(p.loop, p.graph, p.machine, p.sched.schedule,
                                          p.allocation, 50);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.sim.pops, 0);
  EXPECT_GT(r.sim.pushes, 0);
}

TEST(VliwSim, CyclesMatchAnalyticModel) {
  const Prepared p = prepare(kernel_by_name("fir4"), 6);
  const SimResult r =
      simulate(p.loop, p.graph, p.machine, p.sched.schedule, p.allocation, 40);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.cycles, p.sched.schedule.total_cycles(p.loop, p.machine.latency, 40));
}

TEST(VliwSim, IssueCountsAreExact) {
  const Prepared p = prepare(kernel_by_name("dot"), 6);
  const long long trip = 30;
  const SimResult r = simulate(p.loop, p.graph, p.machine, p.sched.schedule, p.allocation, trip);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.issues, static_cast<long long>(p.loop.op_count()) * trip);
  EXPECT_EQ(r.useful_issues, static_cast<long long>(useful_op_count(p.loop)) * trip);
  EXPECT_GT(r.dynamic_ipc, 0.0);
}

TEST(VliwSim, ObservedOccupancyWithinAllocatorPrediction) {
  for (const char* name : {"fir8", "cmul_acc", "rec2", "stencil3_reuse"}) {
    const Prepared p = prepare(kernel_by_name(name), 6);
    const SimResult r =
        simulate(p.loop, p.graph, p.machine, p.sched.schedule, p.allocation, 60);
    ASSERT_TRUE(r.ok) << name << ": " << r.failure;
    int predicted = 0;
    for (const AllocatedQueue& q : p.allocation.queues) {
      predicted = std::max(predicted, q.max_occupancy);
    }
    EXPECT_LE(r.max_queue_occupancy, predicted) << name;
    EXPECT_GE(r.max_queue_occupancy, 1) << name;
  }
}

TEST(VliwSim, WholeCorpusOnThreeMachines) {
  for (const Loop& source : kernel_corpus()) {
    for (int fus : {3, 6, 12}) {
      const Prepared p = prepare(source, fus);
      const CheckedSim r = simulate_and_check(p.loop, p.graph, p.machine, p.sched.schedule,
                                              p.allocation, 24);
      EXPECT_TRUE(r.ok) << source.name << " on " << fus << " FUs: " << r.failure;
    }
  }
}

TEST(VliwSim, ShortTripsExerciseLiveIns) {
  // trip 1 and trip 2 stress the live-in injection paths of deep
  // recurrences (fir8 reads x@7 at iteration 0).
  for (long long trip : {1, 2, 3}) {
    const Prepared p = prepare(kernel_by_name("fir8"), 6);
    const CheckedSim r = simulate_and_check(p.loop, p.graph, p.machine, p.sched.schedule,
                                            p.allocation, trip);
    EXPECT_TRUE(r.ok) << "trip " << trip << ": " << r.failure;
  }
}

TEST(VliwSim, DepthEnforcementTriggers) {
  Prepared p = prepare(kernel_by_name("fir8"), 3);
  // Clamp depth below what the allocation needs and demand enforcement.
  MachineConfig strict = p.machine;
  strict.clusters[0].queue_depth = 1;
  SimOptions options;
  options.enforce_depth = true;
  const SimResult r =
      simulate(p.loop, p.graph, strict, p.sched.schedule, p.allocation, 40, options);
  // fir8's delay line needs >1 position; must be caught.
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("depth"), std::string::npos);
}

TEST(VliwSim, WrongQueueAssignmentIsCaught) {
  // Sabotage: merge two incompatible lifetimes into one queue and verify
  // the simulator detects the FIFO/port violation.
  Prepared p = prepare(kernel_by_name("vadd"), 6);
  ASSERT_GE(p.allocation.queues.size(), 2u);
  // Move every lifetime into queue 0.
  QueueAllocation sabotaged = p.allocation;
  sabotaged.queues[0].members.clear();
  for (std::size_t lt = 0; lt < sabotaged.lifetimes.size(); ++lt) {
    sabotaged.queue_of[lt] = 0;
    sabotaged.queues[0].members.push_back(static_cast<int>(lt));
  }
  for (std::size_t q = 1; q < sabotaged.queues.size(); ++q) sabotaged.queues[q].members.clear();
  const SimResult r =
      simulate(p.loop, p.graph, p.machine, p.sched.schedule, sabotaged, 20);
  EXPECT_FALSE(r.ok);
}

TEST(VliwSim, TamperedScheduleFailsChecks) {
  // A schedule edited to violate a dependence must be caught by the
  // validators (the simulator itself assumes a validated schedule).
  Prepared p = prepare(kernel_by_name("vscale"), 6);
  Schedule bad = p.sched.schedule;
  // Find the fmul and drag it to cycle 0 (before its load's latency).
  for (int op = 0; op < p.loop.op_count(); ++op) {
    if (p.loop.ops[static_cast<std::size_t>(op)].opcode == Opcode::kFMul) {
      Placement placement = bad.place(op);
      placement.cycle = 0;
      bad.set(op, placement);
    }
  }
  EXPECT_FALSE(verify_schedule(p.loop, p.graph, p.machine, bad).empty());
}

TEST(VliwSim, RecirculatedInvariantsSimulate) {
  // Full stack: recirculation + copies + schedule + queues + sim.  The
  // recirculating copies carry invariant live-ins through the queues, so
  // this exercises the init_invariant injection path end to end.
  const Loop source = kernel_by_name("lk1_hydro");
  const Loop loop =
      insert_copies(materialize_invariants(source, InvariantStrategy::kRecirculate)).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(sched.ok) << sched.failure;
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  const CheckedSim r =
      simulate_and_check(loop, graph, machine, sched.schedule, allocation, 30);
  EXPECT_TRUE(r.ok) << r.failure;
  // And the result must equal the *source* kernel's semantics too.
  const InterpResult source_ref = interpret(source, 30, SimOptions{}.seed);
  EXPECT_TRUE(source_ref.memory == r.sim.memory);
}

}  // namespace
}  // namespace qvliw
