#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.h"
#include "harness/report.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace qvliw {
namespace {

TEST(Pipeline, PopulatesShapeAndBounds) {
  const LoopResult r =
      run_pipeline(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.name, "daxpy");
  EXPECT_EQ(r.src_ops, 5);
  EXPECT_GE(r.sched_ops, r.src_ops);
  EXPECT_GE(r.ii, r.mii);
  EXPECT_GE(r.stage_count, 1);
  EXPECT_GT(r.ipc_static, 0.0);
  EXPECT_GT(r.ipc_dynamic, 0.0);
  EXPECT_GT(r.total_queues, 0);
  EXPECT_GT(r.registers, 0);
  EXPECT_EQ(r.unroll_factor, 1);
  EXPECT_DOUBLE_EQ(r.ii_per_source, static_cast<double>(r.ii));
}

TEST(Pipeline, CopyInsertionReported) {
  const LoopResult with_copies =
      run_pipeline(kernel_by_name("norm2"), MachineConfig::single_cluster_machine(6));
  ASSERT_TRUE(with_copies.ok);
  EXPECT_GT(with_copies.copies, 0);

  PipelineOptions no_copies;
  no_copies.insert_copies = false;
  const LoopResult without =
      run_pipeline(kernel_by_name("norm2"), MachineConfig::single_cluster_machine(6), no_copies);
  ASSERT_TRUE(without.ok);
  EXPECT_EQ(without.copies, 0);
  EXPECT_LT(without.sched_ops, with_copies.sched_ops);
}

TEST(Pipeline, UnrollReportsFactorAndRate) {
  PipelineOptions options;
  options.unroll = true;
  const LoopResult r = run_pipeline(kernel_by_name("offset_add"),
                                    MachineConfig::single_cluster_machine(12), options);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.unroll_factor, 1);
  EXPECT_NEAR(r.ii_per_source, static_cast<double>(r.ii) / r.unroll_factor, 1e-12);
}

TEST(Pipeline, ClusteredPathReportsRingQueues) {
  PipelineOptions options;
  options.scheduler = SchedulerKind::kClustered;
  const LoopResult r =
      run_pipeline(kernel_by_name("fir8"), MachineConfig::clustered_machine(4), options);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.max_segment_queues, 0);
  EXPECT_GT(r.max_private_queues, 0);
}

TEST(Pipeline, MovesPathCounted) {
  PipelineOptions options;
  options.scheduler = SchedulerKind::kClusteredMoves;
  const LoopResult r =
      run_pipeline(kernel_by_name("fir8"), MachineConfig::clustered_machine(6), options);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_GE(r.moves, 0);
}

TEST(Pipeline, FailureIsReportedNotThrown) {
  PipelineOptions options;
  options.ims.ii_limit = 1;
  const LoopResult r = run_pipeline(kernel_by_name("geo_decay"),
                                    MachineConfig::single_cluster_machine(6), options);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.failure.empty());
}

TEST(Experiment, RunSuiteAlignsResults) {
  SynthConfig config;
  config.loops = 10;
  config.seed = 6;
  const auto loops = synthesize_suite(config);
  const auto results = run_suite(loops, MachineConfig::single_cluster_machine(6));
  ASSERT_EQ(results.size(), loops.size());
  for (std::size_t i = 0; i < loops.size(); ++i) {
    EXPECT_EQ(results[i].name, loops[i].name);
  }
}

TEST(Experiment, Aggregations) {
  SynthConfig config;
  config.loops = 12;
  config.seed = 8;
  const auto loops = synthesize_suite(config);
  const auto results = run_suite(loops, MachineConfig::single_cluster_machine(12));
  EXPECT_GT(fraction_ok(results), 0.9);
  const double all = fraction_of_scheduled(results, [](const LoopResult&) { return true; });
  EXPECT_DOUBLE_EQ(all, 1.0);
  const double mean_ii =
      mean_of_scheduled(results, [](const LoopResult& r) { return static_cast<double>(r.ii); });
  EXPECT_GE(mean_ii, 1.0);
}

TEST(Report, CumulativeFractionsMonotone) {
  SynthConfig config;
  config.loops = 15;
  config.seed = 9;
  const auto loops = synthesize_suite(config);
  const auto results = run_suite(loops, MachineConfig::single_cluster_machine(6));
  const std::vector<int> bounds = {4, 8, 16, 32};
  const auto fractions =
      cumulative_fractions(results, bounds, [](const LoopResult& r) { return r.total_queues; });
  ASSERT_EQ(fractions.size(), bounds.size());
  for (std::size_t i = 1; i < fractions.size(); ++i) {
    EXPECT_GE(fractions[i], fractions[i - 1]);
  }
  EXPECT_LE(fractions.back(), 1.0);
}

TEST(Report, TableRendering) {
  std::ostringstream os;
  print_banner(os, "Fig. X", "a claim");
  print_cumulative_table(os, {4, 8}, {"series-a"}, {{0.5, 1.0}}, "Queues");
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. X"), std::string::npos);
  EXPECT_NE(out.find("series-a"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);
  EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(Pipeline, SimulationFlagVerifies) {
  PipelineOptions options;
  options.simulate = true;
  options.sim_trip = 16;
  const LoopResult r =
      run_pipeline(kernel_by_name("cmul_acc"), MachineConfig::single_cluster_machine(6), options);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.sim_ok);
  EXPECT_GT(r.sim_cycles, 0);
}

}  // namespace
}  // namespace qvliw
