#include <gtest/gtest.h>

#include "ir/parser.h"
#include "qrf/lifetime.h"
#include "sched/ims.h"
#include "support/diagnostics.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

TEST(LiveInstances, SingleShortLifetime) {
  // push 0, pop 1, II 4: live at t in {0,1} mod 4 (inclusive residency).
  EXPECT_EQ(live_instances(0, 1, 4, 0), 1);
  EXPECT_EQ(live_instances(0, 1, 4, 1), 1);
  EXPECT_EQ(live_instances(0, 1, 4, 2), 0);
  EXPECT_EQ(live_instances(0, 1, 4, 4), 1);
}

TEST(LiveInstances, BeforePushIsZero) {
  EXPECT_EQ(live_instances(5, 9, 3, 4), 0);
  EXPECT_EQ(live_instances(5, 9, 3, 0), 0);
}

TEST(LiveInstances, OverlappingInstances) {
  // Length 5 with II 2: instances overlap ~3 deep in steady state.
  // At t=10: k with push+2k <= 10 <= push+5+2k, push=0: k in {3,4,5}.
  EXPECT_EQ(live_instances(0, 5, 2, 10), 3);
  EXPECT_EQ(max_live_instances(0, 5, 2), 3);
}

TEST(LiveInstances, ZeroLengthOccupiesOneCycle) {
  EXPECT_EQ(live_instances(3, 3, 2, 3), 1);
  EXPECT_EQ(live_instances(3, 3, 2, 4), 0);
  EXPECT_EQ(max_live_instances(3, 3, 2), 1);
}

TEST(LiveInstances, MaxMatchesBruteForce) {
  for (int push = 0; push < 3; ++push) {
    for (int len = 0; len < 12; ++len) {
      for (int ii = 1; ii <= 5; ++ii) {
        int brute = 0;
        const int pop = push + len;
        for (long long t = pop; t < pop + 4LL * ii + 4; ++t) {
          int live = 0;
          for (int k = 0; k <= (len / ii) + 8; ++k) {
            if (push + k * ii <= t && t <= pop + k * ii) ++live;
          }
          brute = std::max(brute, live);
        }
        EXPECT_EQ(max_live_instances(push, pop, ii), brute)
            << "push=" << push << " len=" << len << " ii=" << ii;
      }
    }
  }
}

TEST(DomainOfEdge, PrivateSameCluster) {
  const Topology t = MachineConfig::clustered_machine(4).topology();
  const QueueDomain d = domain_of_edge(t, 2, 2);
  EXPECT_EQ(d.kind, QueueDomain::Kind::kPrivate);
  EXPECT_EQ(d.index, 2);
}

TEST(DomainOfEdge, ClockwiseSegment) {
  // Clockwise ring segments keep their historical canonical ids 0..k-1.
  const Topology t = MachineConfig::clustered_machine(4).topology();
  const QueueDomain d = domain_of_edge(t, 1, 2);
  EXPECT_EQ(d.kind, QueueDomain::Kind::kSegment);
  EXPECT_EQ(d.index, 1);
  const QueueDomain wrap = domain_of_edge(t, 3, 0);
  EXPECT_EQ(wrap.kind, QueueDomain::Kind::kSegment);
  EXPECT_EQ(wrap.index, 3);
}

TEST(DomainOfEdge, CounterClockwiseSegment) {
  // Counter-clockwise segment i ((i+1) -> i) has canonical id k + i.
  const Topology t = MachineConfig::clustered_machine(4).topology();
  const QueueDomain d = domain_of_edge(t, 2, 1);
  EXPECT_EQ(d.kind, QueueDomain::Kind::kSegment);
  EXPECT_EQ(d.index, 4 + 1);
  const QueueDomain wrap = domain_of_edge(t, 0, 3);
  EXPECT_EQ(wrap.kind, QueueDomain::Kind::kSegment);
  EXPECT_EQ(wrap.index, 4 + 3);
}

TEST(DomainOfEdge, NonAdjacentFails) {
  const Topology t = MachineConfig::clustered_machine(5).topology();
  EXPECT_THROW((void)domain_of_edge(t, 0, 2), Error);
}

TEST(DomainOfEdge, TwoClusterRingUsesClockwise) {
  const Topology t = MachineConfig::clustered_machine(2).topology();
  EXPECT_EQ(domain_of_edge(t, 0, 1).kind, QueueDomain::Kind::kSegment);
  EXPECT_EQ(domain_of_edge(t, 0, 1).index, 0);
  EXPECT_EQ(domain_of_edge(t, 1, 0).kind, QueueDomain::Kind::kSegment);
  EXPECT_EQ(domain_of_edge(t, 1, 0).index, 1);
}

TEST(DomainOfEdge, MeshAndCrossbarSegments) {
  const Topology mesh = MachineConfig::mesh_machine(2, 2).topology();
  // 2x2 mesh segments, source-major, destinations ascending:
  // 0:[0->1] 1:[0->2] 2:[1->0] 3:[1->3] 4:[2->0] 5:[2->3] 6:[3->1] 7:[3->2]
  EXPECT_EQ(domain_of_edge(mesh, 0, 1).index, 0);
  EXPECT_EQ(domain_of_edge(mesh, 0, 2).index, 1);
  EXPECT_EQ(domain_of_edge(mesh, 3, 1).index, 6);
  EXPECT_THROW((void)domain_of_edge(mesh, 0, 3), Error);  // diagonal

  const Topology xbar = MachineConfig::crossbar_machine(4).topology();
  EXPECT_EQ(domain_of_edge(xbar, 0, 3).index, 2);
  EXPECT_EQ(domain_of_edge(xbar, 3, 0).index, 9);
}

TEST(DomainName, Formats) {
  const Topology ring = MachineConfig::clustered_machine(4).topology();
  EXPECT_EQ(domain_name(ring, {QueueDomain::Kind::kPrivate, 3}), "private[3]");
  EXPECT_EQ(domain_name(ring, {QueueDomain::Kind::kSegment, 0}), "ring-cw[0]");
  EXPECT_EQ(domain_name(ring, {QueueDomain::Kind::kSegment, 4 + 2}), "ring-ccw[2]");
  const Topology mesh = MachineConfig::mesh_machine(2, 2).topology();
  EXPECT_EQ(domain_name(mesh, {QueueDomain::Kind::kSegment, 0}), "mesh[0->1]");
  const Topology xbar = MachineConfig::crossbar_machine(3).topology();
  EXPECT_EQ(domain_name(xbar, {QueueDomain::Kind::kSegment, 5}), "xbar[2->1]");
}

TEST(ExtractLifetimes, PushPopTimesFromSchedule) {
  const Loop loop =
      insert_copies(parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }"))
          .loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult r = ims_schedule(loop, graph, machine);
  ASSERT_TRUE(r.ok);
  const auto lifetimes = extract_lifetimes(loop, graph, machine, r.schedule);

  // One lifetime per flow edge.
  int flow_edges = 0;
  for (const DepEdge& e : graph.edges()) {
    if (e.is_value_flow()) ++flow_edges;
  }
  EXPECT_EQ(static_cast<int>(lifetimes.size()), flow_edges);

  for (const Lifetime& lt : lifetimes) {
    const DepEdge& e = graph.edge(lt.edge);
    EXPECT_EQ(lt.producer, e.src);
    EXPECT_EQ(lt.consumer, e.dst);
    EXPECT_EQ(lt.push, r.schedule.cycle(e.src) +
                           machine.latency.of(loop.ops[static_cast<std::size_t>(e.src)].opcode));
    EXPECT_EQ(lt.pop, r.schedule.cycle(e.dst) + r.ii * e.distance);
    EXPECT_GE(lt.length(), 0);
    EXPECT_EQ(lt.domain.kind, QueueDomain::Kind::kPrivate);  // single cluster
  }
}

TEST(ExtractLifetimes, RequiresCompleteSchedule) {
  const Loop loop = parse_loop("loop t { x = load X[i]; store Y[i], x; }");
  const MachineConfig machine = MachineConfig::single_cluster_machine(3);
  const Ddg graph = Ddg::build(loop, machine.latency);
  Schedule incomplete(loop.op_count(), 2);
  EXPECT_THROW((void)extract_lifetimes(loop, graph, machine, incomplete), Error);
}

}  // namespace
}  // namespace qvliw
