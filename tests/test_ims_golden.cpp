// Golden equivalence of the allocation-free ImsSearcher (sched/ims.cpp)
// against the frozen set-based reference (sched/ims_reference.cpp), plus
// the sweep-level properties of the MII-optimality ladder short-circuit.
//
// The arena searcher must be a pure perf transform: bit-identical
// schedules and identical search effort (placements/evictions/attempts)
// on every loop x machine the project runs, including the full 1258-loop
// paper suite and all three interconnect topologies.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "cluster/partition.h"
#include "harness/shard.h"
#include "harness/sweep.h"
#include "sched/ims.h"
#include "sched/ims_reference.h"
#include "support/artifact_store.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workload/kernels.h"
#include "workload/suite.h"

namespace qvliw {
namespace {

std::string schedule_bytes(const Schedule& schedule) {
  BlobWriter out;
  serialize_schedule(out, schedule);
  return out.take();
}

/// The golden contract: same accept/fail decision; on success the same
/// II, byte-identical schedule, and identical search effort.  Failure
/// *messages* are not compared (the attempt-cap diagnostic was
/// deliberately improved; the reference keeps the old wording).
void expect_golden(const ImsResult& got, const ImsResult& want, const std::string& where) {
  ASSERT_EQ(got.ok, want.ok) << where << ": " << got.failure << " / " << want.failure;
  EXPECT_EQ(got.stats.placements, want.stats.placements) << where;
  EXPECT_EQ(got.stats.evictions, want.stats.evictions) << where;
  EXPECT_EQ(got.stats.ii_attempts, want.stats.ii_attempts) << where;
  if (!got.ok) return;
  EXPECT_EQ(got.ii, want.ii) << where;
  EXPECT_EQ(got.mii.mii, want.mii.mii) << where;
  EXPECT_EQ(schedule_bytes(got.schedule), schedule_bytes(want.schedule)) << where;
  EXPECT_EQ(got.stats.mii_optimal, got.ii == got.mii.mii) << where;
}

TEST(ImsGolden, CorpusBitIdenticalToReference) {
  for (const Loop& loop : kernel_corpus()) {
    for (int fus : {3, 4, 6, 12}) {
      const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
      const Ddg graph = Ddg::build(loop, machine.latency);
      expect_golden(ims_schedule(loop, graph, machine),
                    ims_schedule_reference(loop, graph, machine),
                    cat(loop.name, " on ", machine.name));
    }
  }
}

TEST(ImsGolden, RandomizedMachinesBitIdenticalToReference) {
  SynthConfig config;
  config.loops = 60;
  config.seed = 2026;
  Rng rng(0xD1CEu);
  for (const Loop& loop : synthesize_suite(config)) {
    // A fresh machine per loop: width drawn across the whole range the
    // paper studies, including odd sizes no curated test uses.
    const int fus = rng.uniform_int(3, 18);
    const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
    const Ddg graph = Ddg::build(loop, machine.latency);

    // Also randomize the search knobs the ladder depends on.
    ImsOptions options;
    options.budget_ratio = rng.uniform_int(1, 8);
    expect_golden(ims_schedule(loop, graph, machine, options),
                  ims_schedule_reference(loop, graph, machine, options),
                  cat(loop.name, " on ", fus, " FUs, budget ", options.budget_ratio));
  }
}

TEST(ImsGolden, ClusteredAllTopologiesBitIdenticalToReference) {
  for (const TopologyKind kind :
       {TopologyKind::kRing, TopologyKind::kMesh, TopologyKind::kCrossbar}) {
    const MachineConfig machine = MachineConfig::topology_machine(kind, 4);
    for (const Loop& loop : kernel_corpus()) {
      const Ddg graph = Ddg::build(loop, machine.latency);
      for (const ClusterHeuristic heuristic :
           {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance,
            ClusterHeuristic::kFirstFit}) {
        // Each side gets its own assigner: they are stateful observers of
        // the search and must not share placement state.
        TopologyClusterAssigner got_assigner(loop, graph, machine, heuristic);
        TopologyClusterAssigner want_assigner(loop, graph, machine, heuristic);
        expect_golden(ims_schedule(loop, graph, machine, {}, &got_assigner),
                      ims_schedule_reference(loop, graph, machine, {}, &want_assigner),
                      cat(loop.name, " on ", machine.name, " / ",
                          cluster_heuristic_name(heuristic)));
      }
    }
  }
}

TEST(ImsGolden, FullPaperSuiteBitIdenticalToReference) {
  const Suite suite = full_suite();  // the paper's 1258 loops
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  for (const Loop& loop : suite.loops) {
    const Ddg graph = Ddg::build(loop, machine.latency);
    expect_golden(ims_schedule(loop, graph, machine), ims_schedule_reference(loop, graph, machine),
                  loop.name);
  }
}

// --- sweep-level checks ----------------------------------------------------

/// The canonical perf sweep (bench_common.h's perf_sweep_points on the
/// paper's 4-cluster ring): three heuristics x ascending budgets {6, 12},
/// all sharing one unrolled front end.
std::vector<SweepPoint> ring4_ladder_points() {
  PipelineOptions base;
  base.unroll = true;
  base.max_unroll = 8;
  base.scheduler = SchedulerKind::kClustered;

  std::vector<SweepPoint> points;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  for (const ClusterHeuristic heuristic :
       {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance,
        ClusterHeuristic::kFirstFit}) {
    for (const int budget : {6, 12}) {
      PipelineOptions options = base;
      options.heuristic = heuristic;
      options.ims.budget_ratio = budget;
      points.push_back({cat("ring-4-", cluster_heuristic_name(heuristic), "-", budget, "x"),
                        machine, options});
    }
  }
  return points;
}

std::string fingerprint_hex(const SweepResult& sweep) {
  char out[17];
  std::snprintf(out, sizeof out, "%016llx",
                static_cast<unsigned long long>(hash_bytes(sweep_result_fingerprint(sweep))));
  return std::string(out, 16);
}

TEST(ImsGolden, SweepFingerprintStableAcrossWorkersAndWarmth) {
  // The pinned fingerprint of the full ring-4 perf sweep.  Any change to
  // scheduling outcomes — including one smuggled in by the ladder memo —
  // moves this value; workers and warm starts must not.
  constexpr const char* kPinned = "acac708db670f08d";

  const Suite suite = full_suite();
  const std::vector<SweepPoint> points = ring4_ladder_points();

  SweepOptions w1;
  w1.workers = 1;
  const SweepResult cold_w1 = SweepRunner(w1).run(suite.loops, points);
  EXPECT_EQ(fingerprint_hex(cold_w1), kPinned);

  SweepOptions w4 = w1;
  w4.workers = 4;
  EXPECT_EQ(fingerprint_hex(SweepRunner(w4).run(suite.loops, points)), kPinned);

  const std::string store =
      (std::filesystem::temp_directory_path() / "qvliw-golden-store").string();
  std::filesystem::remove_all(store);
  SweepOptions warm1 = w1;
  warm1.warm_start = true;
  warm1.store_dir = store;
  EXPECT_EQ(fingerprint_hex(SweepRunner(warm1).run(suite.loops, points)), kPinned) << "populate";
  EXPECT_EQ(fingerprint_hex(SweepRunner(warm1).run(suite.loops, points)), kPinned) << "warm w1";
  SweepOptions warm4 = warm1;
  warm4.workers = 4;
  EXPECT_EQ(fingerprint_hex(SweepRunner(warm4).run(suite.loops, points)), kPinned) << "warm w4";
  std::filesystem::remove_all(store);
}

TEST(ImsGolden, LadderMemoFiresAndInstallsVerifiedSchedules) {
  const Suite suite = small_suite(24, 5);
  const std::vector<SweepPoint> points = ring4_ladder_points();

  SweepOptions strict;
  strict.workers = 1;
  strict.verify_mode = SweepVerifyMode::kStrict;
  const SweepResult cached = SweepRunner(strict).run(suite.loops, points);

  // Budget-12 siblings of loops their budget-6 point proved MII-optimal
  // must have installed the memoized schedule instead of re-searching.
  EXPECT_GT(cached.cache.sched_memo_probes, 0u);
  EXPECT_GT(cached.cache.sched_memo_hits, 0u);

  // Every cell — including each memo-installed one — re-verified clean
  // under strict translation validation.
  EXPECT_GT(cached.verify_checked(), 0u);
  EXPECT_EQ(cached.verify_violations(), 0u);

  // And installs are outcome-invisible: same fingerprint as a sweep that
  // cannot memoize anything (caching off disables the per-task memo).
  // Compared with verification off on both sides — verify_checked is
  // itself a fingerprinted field.
  SweepOptions plain = strict;
  plain.verify_mode = SweepVerifyMode::kOff;
  SweepOptions uncached = plain;
  uncached.use_cache = false;
  EXPECT_EQ(fingerprint_hex(SweepRunner(plain).run(suite.loops, points)),
            fingerprint_hex(SweepRunner(uncached).run(suite.loops, points)));
}

TEST(ImsGolden, LadderMemoNeverFiresAboveMii) {
  // Force every accept above MII: start the II ladder past any MII in
  // this tiny suite.  mii_optimal is then false everywhere, nothing is
  // published, and every probe must miss — the short-circuit fires *only*
  // for proven-optimal schedules.
  const Suite suite = small_suite(8, 5);
  std::vector<SweepPoint> points = ring4_ladder_points();
  for (SweepPoint& point : points) point.options.ims.start_ii = 40;

  SweepOptions options;
  options.workers = 1;
  const SweepResult sweep = SweepRunner(options).run(suite.loops, points);
  EXPECT_GT(sweep.cache.sched_memo_probes, 0u);
  EXPECT_EQ(sweep.cache.sched_memo_hits, 0u);
}

}  // namespace
}  // namespace qvliw
