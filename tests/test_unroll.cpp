#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sched/mii.h"
#include "sim/interp.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workload/kernels.h"
#include "workload/suite.h"
#include "workload/synth.h"
#include "xform/unroll.h"

namespace qvliw {
namespace {

TEST(Unroll, FactorOneIsCopy) {
  const Loop loop = kernel_by_name("daxpy");
  const Loop u = unroll(loop, 1);
  EXPECT_EQ(u.op_count(), loop.op_count());
  EXPECT_EQ(u.stride, loop.stride);
}

TEST(Unroll, StructuralShape) {
  const Loop loop = kernel_by_name("daxpy");
  const Loop u = unroll(loop, 4);
  EXPECT_EQ(u.op_count(), 4 * loop.op_count());
  EXPECT_EQ(u.stride, 4);
  EXPECT_EQ(u.trip_hint, loop.trip_hint / 4);
  EXPECT_EQ(u.name, "daxpy_x4");
  EXPECT_NO_THROW(u.validate());
}

TEST(Unroll, MemOffsetsShiftPerReplica) {
  const Loop loop = parse_loop("loop t { x = load X[i+1]; store Y[i], x; }");
  const Loop u = unroll(loop, 3);
  // Replica k loads X[i + 1 + k] and stores Y[i + k].
  EXPECT_EQ(u.ops[0].mem_offset, 1);
  EXPECT_EQ(u.ops[2].mem_offset, 2);
  EXPECT_EQ(u.ops[4].mem_offset, 3);
  EXPECT_EQ(u.ops[1].mem_offset, 0);
  EXPECT_EQ(u.ops[3].mem_offset, 1);
  EXPECT_EQ(u.ops[5].mem_offset, 2);
}

TEST(Unroll, IndexOperandsShift) {
  const Loop loop = parse_loop("loop t { a = add i, 7; store X[i], a; }");
  const Loop u = unroll(loop, 2);
  EXPECT_EQ(u.ops[0].args[0].index_offset, 0);
  EXPECT_EQ(u.ops[2].args[0].index_offset, 1);
}

TEST(Unroll, IntraIterationDistanceRewrite) {
  // use of v@1 in replica 0 reaches replica U-1 of the previous unrolled
  // iteration; in replica k>0 it reaches replica k-1 of the same iteration.
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const Loop u = unroll(loop, 3);
  const int acc0 = u.find_value("acc_u0");
  const int acc1 = u.find_value("acc_u1");
  const int acc2 = u.find_value("acc_u2");
  ASSERT_GE(acc0, 0);
  ASSERT_GE(acc1, 0);
  ASSERT_GE(acc2, 0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc0)].args[0].value_op, acc2);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc0)].args[0].distance, 1);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc1)].args[0].value_op, acc0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc1)].args[0].distance, 0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc2)].args[0].value_op, acc1);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc2)].args[0].distance, 0);
}

TEST(Unroll, LongDistanceRewrite) {
  // distance 5 with factor 2: replica 0 -> source replica 1, 3 iterations
  // back ((0-5) + 3*2 = 1); replica 1 -> source replica 0, 2 back.
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x@5, x; store Y[i], s; }");
  const Loop u = unroll(loop, 2);
  const int s0 = u.find_value("s_u0");
  const int s1 = u.find_value("s_u1");
  const int x0 = u.find_value("x_u0");
  const int x1 = u.find_value("x_u1");
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s0)].args[0].value_op, x1);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s0)].args[0].distance, 3);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s1)].args[0].value_op, x0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s1)].args[0].distance, 2);
}

TEST(Unroll, RejectsBadFactor) {
  const Loop loop = kernel_by_name("daxpy");
  EXPECT_THROW((void)unroll(loop, 0), Error);
}

TEST(Unroll, SemanticsPreservedOnCorpus) {
  for (const Loop& loop : kernel_corpus()) {
    for (int factor : {2, 3, 4}) {
      const Loop u = unroll(loop, factor);
      const long long trip = 24;  // divisible by 2, 3, 4
      const InterpResult original = interpret(loop, trip, 0x11);
      const InterpResult unrolled = interpret(u, trip / factor, 0x11);
      EXPECT_TRUE(original.memory == unrolled.memory) << loop.name << " x" << factor;
    }
  }
}

TEST(Unroll, SemanticsPreservedOnSyntheticLoops) {
  SynthConfig config;
  config.loops = 25;
  config.seed = 777;
  for (const Loop& loop : synthesize_suite(config)) {
    const Loop u = unroll(loop, 4);
    const InterpResult original = interpret(loop, 32, 0x22);
    const InterpResult unrolled = interpret(u, 8, 0x22);
    EXPECT_TRUE(original.memory == unrolled.memory) << loop.name;
  }
}

TEST(Unroll, DoubleUnrollComposes) {
  const Loop loop = kernel_by_name("dot");
  const Loop once = unroll(loop, 6);
  const Loop twice = unroll(unroll(loop, 2), 3);
  EXPECT_EQ(once.stride, twice.stride);
  const InterpResult a = interpret(once, 4, 9);
  const InterpResult b = interpret(twice, 4, 9);
  EXPECT_TRUE(a.memory == b.memory);
}

TEST(SelectUnroll, TinyLoopWantsUnrolling) {
  // offset_add has 3 ops; a 12-FU machine is starved at factor 1.
  const Loop loop = kernel_by_name("offset_add");
  const UnrollChoice choice = select_unroll_factor(loop, MachineConfig::single_cluster_machine(12));
  EXPECT_GT(choice.factor, 1);
  EXPECT_LT(choice.rate, 1.0 + 1e-9);
}

TEST(SelectUnroll, RecurrenceBoundLoopStaysPut) {
  // geo_decay is dominated by a latency-10 recurrence; unrolling cannot
  // improve the per-source-iteration rate.
  const Loop loop = kernel_by_name("geo_decay");
  const UnrollChoice choice = select_unroll_factor(loop, MachineConfig::single_cluster_machine(12));
  EXPECT_EQ(choice.factor, 1);
}

TEST(SelectUnroll, RateNeverWorseThanFactorOne) {
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  SynthConfig config;
  config.loops = 15;
  config.seed = 31;
  for (const Loop& loop : synthesize_suite(config)) {
    const Ddg graph = Ddg::build(loop, machine.latency);
    const MiiInfo base = compute_mii(loop, graph, machine);
    const UnrollChoice choice = select_unroll_factor(loop, machine);
    EXPECT_LE(choice.rate, static_cast<double>(base.mii) + 1e-9) << loop.name;
  }
}

TEST(Unroll, MemoryCarriedRecurrencePreserved) {
  const Loop loop = kernel_by_name("lk11_partial_sum");
  const Loop u = unroll(loop, 2);
  const InterpResult original = interpret(loop, 24, 3);
  const InterpResult unrolled = interpret(u, 12, 3);
  EXPECT_TRUE(original.memory == unrolled.memory);
}

TEST(Unroll, TripHintRoundsUp) {
  // A partial trailing group of source iterations still costs one full
  // kernel iteration: trip 7 at factor 4 is 2 unrolled iterations, not 1.
  Loop loop = kernel_by_name("daxpy");
  loop.trip_hint = 7;
  EXPECT_EQ(unroll(loop, 4).trip_hint, 2);
  EXPECT_EQ(unroll(loop, 7).trip_hint, 1);
  EXPECT_EQ(unroll(loop, 2).trip_hint, 4);
  loop.trip_hint = 100;
  EXPECT_EQ(unroll(loop, 4).trip_hint, 25);
  EXPECT_EQ(unroll(loop, 8).trip_hint, 13);
  loop.trip_hint = 3;
  EXPECT_EQ(unroll(loop, 8).trip_hint, 1);
}

// --- incremental prober golden equivalence ---------------------------------

void expect_probe_identical(const UnrollProbe& fast, const UnrollProbe& naive,
                            const std::string& where) {
  EXPECT_EQ(fast.choice.factor, naive.choice.factor) << where;
  EXPECT_EQ(fast.choice.rate, naive.choice.rate) << where;
  EXPECT_EQ(fast.mii.feasible, naive.mii.feasible) << where;
  EXPECT_EQ(fast.mii.res_mii, naive.mii.res_mii) << where;
  EXPECT_EQ(fast.mii.rec_mii, naive.mii.rec_mii) << where;
  EXPECT_EQ(fast.mii.mii, naive.mii.mii) << where;
  EXPECT_EQ(fast.factors_probed, naive.factors_probed) << where;
}

TEST(SelectUnroll, IncrementalMatchesNaiveOnFullSuite) {
  const Suite suite = full_suite();
  const std::vector<MachineConfig> machines = {
      MachineConfig::single_cluster_machine(6),
      MachineConfig::single_cluster_machine(12),
      MachineConfig::clustered_machine(4),
  };
  for (const MachineConfig& machine : machines) {
    for (const Loop& loop : suite.loops) {
      const UnrollProbe fast = probe_unroll_factor(loop, machine);
      const UnrollProbe naive = probe_unroll_factor_naive(loop, machine);
      expect_probe_identical(fast, naive, machine.name + " / " + loop.name);
    }
  }
}

TEST(SelectUnroll, IncrementalMatchesNaiveOnRandomMachines) {
  SynthConfig config;
  config.loops = 40;
  config.seed = 2024;
  const std::vector<Loop> loops = synthesize_suite(config);

  Rng rng(0xfadedULL);
  for (int trial = 0; trial < 12; ++trial) {
    MachineConfig machine;
    machine.name = "random";
    const int clusters = rng.uniform_int(1, 4);
    for (int c = 0; c < clusters; ++c) {
      ClusterConfig cc;
      cc.fus(FuKind::kLS) = rng.uniform_int(1, 3);
      cc.fus(FuKind::kAdd) = rng.uniform_int(1, 3);
      cc.fus(FuKind::kMul) = rng.uniform_int(1, 3);
      cc.fus(FuKind::kCopy) = rng.uniform_int(1, 2);
      machine.clusters.push_back(cc);
    }
    for (int& latency : machine.latency.latency) latency = rng.uniform_int(1, 8);
    const int max_factor = rng.uniform_int(2, 11);
    const int max_ops = rng.uniform_int(40, 200);

    for (const Loop& loop : loops) {
      const UnrollProbe fast = probe_unroll_factor(loop, machine, max_factor, max_ops);
      const UnrollProbe naive = probe_unroll_factor_naive(loop, machine, max_factor, max_ops);
      expect_probe_identical(
          fast, naive, cat("trial ", trial, " max_factor ", max_factor, " / ", loop.name));
    }
  }
}

TEST(SelectUnroll, PerFactorBoundsMatchNaive) {
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  for (const Loop& loop : kernel_corpus()) {
    ASSERT_TRUE(unroll_probe_is_exact(loop)) << loop.name;
    const Ddg base = Ddg::build(loop, machine.latency);
    int rec_floor = 1;
    for (int factor = 1; factor <= 6; ++factor) {
      const Loop materialized = unroll(loop, factor);
      const Ddg graph = Ddg::build(materialized, machine.latency);
      const MiiInfo oracle = compute_mii(materialized, graph, machine);
      const MiiInfo fast = unrolled_mii(loop, base, machine, factor, rec_floor);
      const std::string where = cat(loop.name, " x", factor);
      EXPECT_EQ(fast.feasible, oracle.feasible) << where;
      EXPECT_EQ(fast.res_mii, oracle.res_mii) << where;
      EXPECT_EQ(fast.rec_mii, oracle.rec_mii) << where;
      EXPECT_EQ(fast.mii, oracle.mii) << where;
      rec_floor = fast.rec_mii;
    }
  }
}

TEST(SelectUnroll, LongMemoryDistanceFallsBackToNaive) {
  // X[i] vs X[i+100] alias at distance 100 > kMemDepMaxDistance: the base
  // DDG drops the dependence but the unrolled DDG re-admits it at a
  // shorter distance, so only the naive probe is exact.
  const Loop loop = parse_loop("loop far { x = load X[i]; y = fadd x, x; store X[i+100], y; }");
  EXPECT_FALSE(unroll_probe_is_exact(loop));

  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  const UnrollProbe fast = probe_unroll_factor(loop, machine);
  EXPECT_FALSE(fast.incremental);
  expect_probe_identical(fast, probe_unroll_factor_naive(loop, machine), loop.name);

  // Nearby references stay on the fast path.
  const Loop near = parse_loop("loop near { x = load X[i]; y = fadd x, x; store X[i+3], y; }");
  EXPECT_TRUE(unroll_probe_is_exact(near));
  EXPECT_TRUE(probe_unroll_factor(near, machine).incremental);
}

TEST(SelectUnroll, ProbeHandsBackWinnerArtifacts) {
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);

  // offset_add wants unrolling on a wide machine: the winner is prebuilt.
  const Loop tiny = kernel_by_name("offset_add");
  const UnrollProbe unrolled = probe_unroll_factor(tiny, machine);
  ASSERT_GT(unrolled.choice.factor, 1);
  ASSERT_NE(unrolled.loop, nullptr);
  EXPECT_EQ(unrolled.loop->op_count(), tiny.op_count() * unrolled.choice.factor);
  EXPECT_EQ(unrolled.loop->stride, tiny.stride * unrolled.choice.factor);

  // geo_decay stays at factor 1: no loop to hand back, but the base graph.
  const Loop put = kernel_by_name("geo_decay");
  const UnrollProbe kept = probe_unroll_factor(put, machine);
  ASSERT_EQ(kept.choice.factor, 1);
  EXPECT_EQ(kept.loop, nullptr);
  ASSERT_NE(kept.graph, nullptr);
  EXPECT_EQ(kept.graph->node_count(), put.op_count());
}

}  // namespace
}  // namespace qvliw
