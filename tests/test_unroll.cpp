#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sched/mii.h"
#include "sim/interp.h"
#include "support/diagnostics.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/unroll.h"

namespace qvliw {
namespace {

TEST(Unroll, FactorOneIsCopy) {
  const Loop loop = kernel_by_name("daxpy");
  const Loop u = unroll(loop, 1);
  EXPECT_EQ(u.op_count(), loop.op_count());
  EXPECT_EQ(u.stride, loop.stride);
}

TEST(Unroll, StructuralShape) {
  const Loop loop = kernel_by_name("daxpy");
  const Loop u = unroll(loop, 4);
  EXPECT_EQ(u.op_count(), 4 * loop.op_count());
  EXPECT_EQ(u.stride, 4);
  EXPECT_EQ(u.trip_hint, loop.trip_hint / 4);
  EXPECT_EQ(u.name, "daxpy_x4");
  EXPECT_NO_THROW(u.validate());
}

TEST(Unroll, MemOffsetsShiftPerReplica) {
  const Loop loop = parse_loop("loop t { x = load X[i+1]; store Y[i], x; }");
  const Loop u = unroll(loop, 3);
  // Replica k loads X[i + 1 + k] and stores Y[i + k].
  EXPECT_EQ(u.ops[0].mem_offset, 1);
  EXPECT_EQ(u.ops[2].mem_offset, 2);
  EXPECT_EQ(u.ops[4].mem_offset, 3);
  EXPECT_EQ(u.ops[1].mem_offset, 0);
  EXPECT_EQ(u.ops[3].mem_offset, 1);
  EXPECT_EQ(u.ops[5].mem_offset, 2);
}

TEST(Unroll, IndexOperandsShift) {
  const Loop loop = parse_loop("loop t { a = add i, 7; store X[i], a; }");
  const Loop u = unroll(loop, 2);
  EXPECT_EQ(u.ops[0].args[0].index_offset, 0);
  EXPECT_EQ(u.ops[2].args[0].index_offset, 1);
}

TEST(Unroll, IntraIterationDistanceRewrite) {
  // use of v@1 in replica 0 reaches replica U-1 of the previous unrolled
  // iteration; in replica k>0 it reaches replica k-1 of the same iteration.
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const Loop u = unroll(loop, 3);
  const int acc0 = u.find_value("acc_u0");
  const int acc1 = u.find_value("acc_u1");
  const int acc2 = u.find_value("acc_u2");
  ASSERT_GE(acc0, 0);
  ASSERT_GE(acc1, 0);
  ASSERT_GE(acc2, 0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc0)].args[0].value_op, acc2);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc0)].args[0].distance, 1);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc1)].args[0].value_op, acc0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc1)].args[0].distance, 0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc2)].args[0].value_op, acc1);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(acc2)].args[0].distance, 0);
}

TEST(Unroll, LongDistanceRewrite) {
  // distance 5 with factor 2: replica 0 -> source replica 1, 3 iterations
  // back ((0-5) + 3*2 = 1); replica 1 -> source replica 0, 2 back.
  const Loop loop = parse_loop("loop t { x = load X[i]; s = fadd x@5, x; store Y[i], s; }");
  const Loop u = unroll(loop, 2);
  const int s0 = u.find_value("s_u0");
  const int s1 = u.find_value("s_u1");
  const int x0 = u.find_value("x_u0");
  const int x1 = u.find_value("x_u1");
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s0)].args[0].value_op, x1);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s0)].args[0].distance, 3);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s1)].args[0].value_op, x0);
  EXPECT_EQ(u.ops[static_cast<std::size_t>(s1)].args[0].distance, 2);
}

TEST(Unroll, RejectsBadFactor) {
  const Loop loop = kernel_by_name("daxpy");
  EXPECT_THROW((void)unroll(loop, 0), Error);
}

TEST(Unroll, SemanticsPreservedOnCorpus) {
  for (const Loop& loop : kernel_corpus()) {
    for (int factor : {2, 3, 4}) {
      const Loop u = unroll(loop, factor);
      const long long trip = 24;  // divisible by 2, 3, 4
      const InterpResult original = interpret(loop, trip, 0x11);
      const InterpResult unrolled = interpret(u, trip / factor, 0x11);
      EXPECT_TRUE(original.memory == unrolled.memory) << loop.name << " x" << factor;
    }
  }
}

TEST(Unroll, SemanticsPreservedOnSyntheticLoops) {
  SynthConfig config;
  config.loops = 25;
  config.seed = 777;
  for (const Loop& loop : synthesize_suite(config)) {
    const Loop u = unroll(loop, 4);
    const InterpResult original = interpret(loop, 32, 0x22);
    const InterpResult unrolled = interpret(u, 8, 0x22);
    EXPECT_TRUE(original.memory == unrolled.memory) << loop.name;
  }
}

TEST(Unroll, DoubleUnrollComposes) {
  const Loop loop = kernel_by_name("dot");
  const Loop once = unroll(loop, 6);
  const Loop twice = unroll(unroll(loop, 2), 3);
  EXPECT_EQ(once.stride, twice.stride);
  const InterpResult a = interpret(once, 4, 9);
  const InterpResult b = interpret(twice, 4, 9);
  EXPECT_TRUE(a.memory == b.memory);
}

TEST(SelectUnroll, TinyLoopWantsUnrolling) {
  // offset_add has 3 ops; a 12-FU machine is starved at factor 1.
  const Loop loop = kernel_by_name("offset_add");
  const UnrollChoice choice = select_unroll_factor(loop, MachineConfig::single_cluster_machine(12));
  EXPECT_GT(choice.factor, 1);
  EXPECT_LT(choice.rate, 1.0 + 1e-9);
}

TEST(SelectUnroll, RecurrenceBoundLoopStaysPut) {
  // geo_decay is dominated by a latency-10 recurrence; unrolling cannot
  // improve the per-source-iteration rate.
  const Loop loop = kernel_by_name("geo_decay");
  const UnrollChoice choice = select_unroll_factor(loop, MachineConfig::single_cluster_machine(12));
  EXPECT_EQ(choice.factor, 1);
}

TEST(SelectUnroll, RateNeverWorseThanFactorOne) {
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  SynthConfig config;
  config.loops = 15;
  config.seed = 31;
  for (const Loop& loop : synthesize_suite(config)) {
    const Ddg graph = Ddg::build(loop, machine.latency);
    const MiiInfo base = compute_mii(loop, graph, machine);
    const UnrollChoice choice = select_unroll_factor(loop, machine);
    EXPECT_LE(choice.rate, static_cast<double>(base.mii) + 1e-9) << loop.name;
  }
}

TEST(Unroll, MemoryCarriedRecurrencePreserved) {
  const Loop loop = kernel_by_name("lk11_partial_sum");
  const Loop u = unroll(loop, 2);
  const InterpResult original = interpret(loop, 24, 3);
  const InterpResult unrolled = interpret(u, 12, 3);
  EXPECT_TRUE(original.memory == unrolled.memory);
}

}  // namespace
}  // namespace qvliw
