#include <gtest/gtest.h>

#include "ir/dot.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

/// Structural equality good enough for round-trip checks.
void expect_same_loop(const Loop& a, const Loop& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.stride, b.stride);
  EXPECT_EQ(a.trip_hint, b.trip_hint);
  EXPECT_EQ(a.invariants, b.invariants);
  EXPECT_EQ(a.arrays, b.arrays);
  ASSERT_EQ(a.op_count(), b.op_count());
  for (int v = 0; v < a.op_count(); ++v) {
    const Op& oa = a.ops[static_cast<std::size_t>(v)];
    const Op& ob = b.ops[static_cast<std::size_t>(v)];
    EXPECT_EQ(oa.opcode, ob.opcode) << "op " << v;
    EXPECT_EQ(oa.name, ob.name) << "op " << v;
    EXPECT_EQ(oa.array, ob.array) << "op " << v;
    EXPECT_EQ(oa.mem_offset, ob.mem_offset) << "op " << v;
    ASSERT_EQ(oa.args.size(), ob.args.size()) << "op " << v;
    for (std::size_t k = 0; k < oa.args.size(); ++k) {
      EXPECT_EQ(oa.args[k], ob.args[k]) << "op " << v << " arg " << k;
    }
  }
}

TEST(Printer, OperandText) {
  const Loop loop = parse_loop(
      "loop t { invariant a; x = load X[i]; s = fadd s@2, x; u = fmul s, a; w = add i+3, 7; "
      "store Y[i], u; }");
  EXPECT_EQ(operand_text(loop, loop.ops[1].args[0]), "s@2");
  EXPECT_EQ(operand_text(loop, loop.ops[1].args[1]), "x");
  EXPECT_EQ(operand_text(loop, loop.ops[2].args[1]), "a");
  EXPECT_EQ(operand_text(loop, loop.ops[3].args[0]), "i+3");
  EXPECT_EQ(operand_text(loop, loop.ops[3].args[1]), "7");
}

TEST(Printer, OpText) {
  const Loop loop = parse_loop("loop t { x = load X[i-1]; store Y[i+2], x; }");
  EXPECT_EQ(op_text(loop, loop.ops[0]), "x = load X[i-1]");
  EXPECT_EQ(op_text(loop, loop.ops[1]), "store Y[i+2], x");
}

TEST(Printer, RoundTripSimple) {
  const Loop loop = parse_loop(
      "loop t { invariant a, b; trip 77; x = load X[i]; s = fmul x, a; acc = fadd acc@1, s; "
      "store Y[i], acc; }");
  const Loop again = parse_loop(to_text(loop));
  expect_same_loop(loop, again);
}

TEST(Printer, RoundTripWithStride) {
  Loop loop = parse_loop("loop t { trip 64; stride 4; x = load X[i]; store Y[i], x; }");
  const Loop again = parse_loop(to_text(loop));
  expect_same_loop(loop, again);
}

TEST(Printer, RoundTripEntireCorpus) {
  for (const Loop& loop : kernel_corpus()) {
    const Loop again = parse_loop(to_text(loop));
    expect_same_loop(loop, again);
  }
}

TEST(Dot, ContainsNodesAndEdges) {
  const Loop loop = parse_loop("loop t { x = load X[i]; acc = fadd acc@1, x; store Y[i], acc; }");
  const Ddg graph = Ddg::build(loop, LatencyModel::classic());
  const std::string dot = to_dot(loop, graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("acc = fadd"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("d1"), std::string::npos);  // distance-1 edge annotated
}

}  // namespace
}  // namespace qvliw
