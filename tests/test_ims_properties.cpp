// Property tests: IMS over a seeded sweep of synthetic loops x machines.
//
// Invariants checked for every (loop, machine) pair:
//   * scheduling succeeds within the II ladder,
//   * II >= MII = max(ResMII, RecMII),
//   * every dependence edge satisfies sigma(dst) >= sigma(src)+lat-II*dist,
//   * no FU modulo slot is double-booked,
//   * the schedule is complete and stage count is positive.
#include <gtest/gtest.h>

#include "sched/ims.h"
#include "sched/schedule.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

struct Case {
  int fus;
  std::uint64_t seed;
  bool with_copies;
};

class ImsProperty : public ::testing::TestWithParam<Case> {};

TEST_P(ImsProperty, ScheduleInvariantsHold) {
  const Case param = GetParam();
  SynthConfig config;
  config.loops = 25;
  config.seed = param.seed;
  const MachineConfig machine = MachineConfig::single_cluster_machine(param.fus);

  for (Loop loop : synthesize_suite(config)) {
    if (param.with_copies) loop = insert_copies(loop).loop;
    const Ddg graph = Ddg::build(loop, machine.latency);
    const ImsResult r = ims_schedule(loop, graph, machine);
    ASSERT_TRUE(r.ok) << loop.name << ": " << r.failure;
    ASSERT_TRUE(r.schedule.complete()) << loop.name;
    EXPECT_GE(r.ii, r.mii.mii) << loop.name;
    EXPECT_GE(r.schedule.stage_count(), 1) << loop.name;

    const auto errors = verify_schedule(loop, graph, machine, r.schedule);
    EXPECT_TRUE(errors.empty()) << loop.name << ": " << (errors.empty() ? "" : errors[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededSweep, ImsProperty,
    ::testing::Values(Case{3, 11, false}, Case{3, 11, true}, Case{4, 22, false},
                      Case{4, 22, true}, Case{6, 33, false}, Case{6, 33, true},
                      Case{9, 44, true}, Case{12, 55, false}, Case{12, 55, true},
                      Case{15, 66, true}, Case{18, 77, false}, Case{18, 77, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "fus" + std::to_string(info.param.fus) + "_seed" +
             std::to_string(info.param.seed) + (info.param.with_copies ? "_copies" : "_plain");
    });

}  // namespace
}  // namespace qvliw
