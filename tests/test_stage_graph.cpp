#include <gtest/gtest.h>

#include "harness/stage.h"
#include "workload/kernels.h"

namespace qvliw {
namespace {

TEST(StageGraph, PlansComposeFrontAndBack) {
  const auto& front = front_stage_plan();
  const auto& back = back_stage_plan();
  const auto& full = full_stage_plan();
  ASSERT_EQ(front.size(), 3u);
  ASSERT_EQ(back.size(), 4u);
  ASSERT_EQ(full.size(), 7u);
  EXPECT_EQ(front[0]->name(), kStageInvariants);
  EXPECT_EQ(front[1]->name(), kStageUnroll);
  EXPECT_EQ(front[2]->name(), kStageCopyInsert);
  EXPECT_EQ(back[0]->name(), kStageSchedule);
  EXPECT_EQ(back[1]->name(), kStageQueueAlloc);
  EXPECT_EQ(back[2]->name(), kStageSim);
  EXPECT_EQ(back[3]->name(), kStageVerify);
  for (std::size_t s = 0; s < full.size(); ++s) {
    EXPECT_EQ(full[s], s < 3 ? front[s] : back[s - 3]);
  }
}

TEST(StageGraph, StageTimesRecordedInOrder) {
  const LoopResult r =
      run_pipeline(kernel_by_name("daxpy"), MachineConfig::single_cluster_machine(6));
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_TRUE(r.failed_stage.empty());
  ASSERT_EQ(r.stage_times.size(), full_stage_plan().size());
  for (std::size_t s = 0; s < r.stage_times.size(); ++s) {
    EXPECT_EQ(r.stage_times[s].stage, full_stage_plan()[s]->name());
    EXPECT_GE(r.stage_times[s].seconds, 0.0);
  }
}

TEST(StageGraph, ScheduleFailureProvenance) {
  PipelineOptions options;
  options.ims.ii_limit = 1;  // geo_decay's recurrence cannot fit II=1
  const LoopResult r = run_pipeline(kernel_by_name("geo_decay"),
                                    MachineConfig::single_cluster_machine(6), options);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failed_stage, kStageSchedule);
  // The pipeline stopped at the failing stage: front end + schedule only.
  ASSERT_EQ(r.stage_times.size(), 4u);
  EXPECT_EQ(r.stage_times.back().stage, kStageSchedule);
}

TEST(StageGraph, QueueAllocFailureProvenance) {
  PipelineOptions options;
  options.enforce_queue_limits = true;
  options.queue_fit_attempts = 0;  // no escalation allowed
  const LoopResult r = run_pipeline(kernel_by_name("fir8"),
                                    MachineConfig::single_cluster_machine(6, 1), options);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.failed_stage, kStageQueueAlloc);
  EXPECT_NE(r.failure.find("does not fit machine queues"), std::string::npos) << r.failure;
}

TEST(StageGraph, ContextSeedsResultIdentity) {
  const Loop loop = kernel_by_name("daxpy");
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const PipelineOptions options;
  PipelineContext ctx(loop, machine, options);
  EXPECT_EQ(ctx.result.name, "daxpy");
  EXPECT_EQ(ctx.result.src_ops, loop.op_count());
  EXPECT_FALSE(ctx.result.ok);
}

}  // namespace
}  // namespace qvliw
