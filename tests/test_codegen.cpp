#include <gtest/gtest.h>

#include "cluster/partition.h"
#include "ir/parser.h"
#include "qrf/queue_alloc.h"
#include "support/diagnostics.h"
#include "sched/ims.h"
#include "sim/codegen.h"
#include "workload/kernels.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

struct Lowered {
  Loop loop;
  Ddg graph{0};
  MachineConfig machine;
  ImsResult sched;
  QueueAllocation allocation;
  VliwProgram program;
};

Lowered lower(const Loop& source, int fus) {
  Lowered l;
  l.loop = insert_copies(source).loop;
  l.machine = MachineConfig::single_cluster_machine(fus);
  l.graph = Ddg::build(l.loop, l.machine.latency);
  l.sched = ims_schedule(l.loop, l.graph, l.machine);
  EXPECT_TRUE(l.sched.ok) << l.sched.failure;
  l.allocation = allocate_queues(l.loop, l.graph, l.machine, l.sched.schedule);
  l.program = generate_program(l.loop, l.graph, l.machine, l.sched.schedule, l.allocation);
  return l;
}

TEST(Codegen, SectionSizes) {
  const Lowered l = lower(kernel_by_name("daxpy"), 3);
  EXPECT_EQ(static_cast<int>(l.program.kernel.size()), l.sched.ii);
  const int ramp = (l.program.stage_count - 1) * l.sched.ii;
  EXPECT_EQ(static_cast<int>(l.program.prologue.size()), ramp);
  EXPECT_EQ(static_cast<int>(l.program.epilogue.size()), ramp);
}

TEST(Codegen, KernelHoldsEveryOpExactlyOnce) {
  const Lowered l = lower(kernel_by_name("fir4"), 6);
  std::vector<int> seen(static_cast<std::size_t>(l.loop.op_count()), 0);
  for (const WideInstruction& inst : l.program.kernel) {
    for (const SlotOp& slot : inst.slots) ++seen[static_cast<std::size_t>(slot.op)];
  }
  for (int op = 0; op < l.loop.op_count(); ++op) EXPECT_EQ(seen[static_cast<std::size_t>(op)], 1);
}

TEST(Codegen, ProloguePlusEpilogueEqualsStagedKernel) {
  // Instance accounting: over prologue + N kernels + epilogue, each op
  // appears N times; equivalently, prologue occurrences + epilogue
  // occurrences == (SC - 1) per op.
  const Lowered l = lower(kernel_by_name("cmul_acc"), 6);
  std::vector<int> ramp_count(static_cast<std::size_t>(l.loop.op_count()), 0);
  for (const WideInstruction& inst : l.program.prologue) {
    for (const SlotOp& slot : inst.slots) ++ramp_count[static_cast<std::size_t>(slot.op)];
  }
  for (const WideInstruction& inst : l.program.epilogue) {
    for (const SlotOp& slot : inst.slots) ++ramp_count[static_cast<std::size_t>(slot.op)];
  }
  for (int op = 0; op < l.loop.op_count(); ++op) {
    EXPECT_EQ(ramp_count[static_cast<std::size_t>(op)], l.program.stage_count - 1) << op;
  }
}

TEST(Codegen, PrologueStagesRampUp) {
  const Lowered l = lower(kernel_by_name("fir8"), 6);
  const int ii = l.sched.ii;
  for (const WideInstruction& inst : l.program.prologue) {
    for (const SlotOp& slot : inst.slots) {
      EXPECT_LE(slot.stage, inst.cycle / ii);
    }
  }
  for (const WideInstruction& inst : l.program.epilogue) {
    for (const SlotOp& slot : inst.slots) {
      EXPECT_GE(slot.stage, inst.cycle / ii + 1);
    }
  }
}

TEST(Codegen, QueueOperandsResolved) {
  const Lowered l = lower(kernel_by_name("daxpy"), 6);
  const std::string listing = format_program(l.program, l.machine);
  // Every value flow must appear as a queue operand.
  EXPECT_NE(listing.find("q0"), std::string::npos);
  EXPECT_NE(listing.find("load"), std::string::npos);
  EXPECT_NE(listing.find("store"), std::string::npos);
  EXPECT_NE(listing.find("%a"), std::string::npos);  // invariant operand
  EXPECT_NE(listing.find("kernel"), std::string::npos);
}

TEST(Codegen, CopyShowsTwoDestinations) {
  const Loop source = parse_loop("loop t { x = load X[i]; s = fmul x, x; store Y[i], s; }");
  const Lowered l = lower(source, 3);
  const std::string listing = format_program(l.program, l.machine);
  // The copy writes two queues: "copy  qA -> qB, qC".
  const auto pos = listing.find("copy");
  ASSERT_NE(pos, std::string::npos);
  const std::string line = listing.substr(pos, listing.find('\n', pos) - pos);
  EXPECT_NE(line.find(','), std::string::npos) << line;
}

TEST(Codegen, DeadValueMarkedUnused) {
  const Loop source = parse_loop("loop t { x = load X[i]; y = load Y[i]; store Z[i], y; }");
  const Lowered l = lower(source, 6);
  const std::string listing = format_program(l.program, l.machine);
  EXPECT_NE(listing.find("(unused)"), std::string::npos);
}

TEST(Codegen, UtilizationBounds) {
  for (const char* name : {"daxpy", "fir8", "wide8"}) {
    const Lowered l = lower(kernel_by_name(name), 6);
    const double util = l.program.kernel_utilization(l.machine);
    EXPECT_GT(util, 0.0) << name;
    EXPECT_LE(util, 1.0) << name;
  }
}

TEST(Codegen, TightKernelDense) {
  // 4 ops on 3 compute FUs + copies: at II=2+ utilization is meaningful.
  const Lowered l = lower(kernel_by_name("daxpy"), 3);
  EXPECT_GT(l.program.kernel_utilization(l.machine), 0.3);
}

TEST(Codegen, SlotsNeverCollide) {
  // No two slots of one instruction may name the same FU instance.
  const Lowered l = lower(kernel_by_name("fir8"), 6);
  auto check_section = [&](const std::vector<WideInstruction>& section) {
    for (const WideInstruction& inst : section) {
      for (std::size_t a = 0; a < inst.slots.size(); ++a) {
        for (std::size_t b = a + 1; b < inst.slots.size(); ++b) {
          const bool same = inst.slots[a].cluster == inst.slots[b].cluster &&
                            inst.slots[a].fu_kind == inst.slots[b].fu_kind &&
                            inst.slots[a].fu == inst.slots[b].fu;
          EXPECT_FALSE(same) << "cycle " << inst.cycle;
        }
      }
    }
  };
  check_section(l.program.prologue);
  check_section(l.program.kernel);
  check_section(l.program.epilogue);
}

TEST(Codegen, ClusteredProgramNamesClusters) {
  const Loop loop = insert_copies(kernel_by_name("fir8")).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = partition_schedule(loop, graph, machine);
  ASSERT_TRUE(sched.ok);
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  const VliwProgram program = generate_program(loop, graph, machine, sched.schedule, allocation);
  const std::string listing = format_program(program, machine);
  bool beyond_cluster0 = false;
  for (int c = 1; c < 4; ++c) {
    if (listing.find("c" + std::to_string(c) + ".") != std::string::npos) beyond_cluster0 = true;
  }
  EXPECT_TRUE(beyond_cluster0);
}

TEST(Codegen, RequiresCompleteSchedule) {
  const Loop loop = insert_copies(kernel_by_name("daxpy")).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  Schedule incomplete(loop.op_count(), 2);
  QueueAllocation empty;
  EXPECT_THROW((void)generate_program(loop, graph, machine, incomplete, empty), Error);
}

}  // namespace
}  // namespace qvliw
