// Fig. 9 — "Operations issued per cycle — resource constrained loops".
//
// Paper: restricted to loops whose execution is limited by FU
// availability, single-cluster IPC scales almost linearly to 18 FUs; the
// clustered machine falls slightly behind at 15 and 18 FUs (the
// partitioning loss of Fig. 6), with the dynamic gap smaller than the
// static one because a few large loops dominate execution time and
// partition cleanly.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int clusters_for(int fus) { return fus % 3 == 0 && fus >= 12 ? fus / 3 : 0; }

int run() {
  print_banner(std::cout, "Fig. 9 — IPC vs machine size, resource-constrained loops",
               "near-linear single-cluster scaling; clustered slightly lower at 15/18 FUs");
  const Suite full = bench::make_suite();
  const Suite suite = resource_constrained_subset(full, bench::max_unroll());
  std::cout << "resource-constrained subset: " << suite.loops.size() << " of "
            << full.loops.size() << " loops\n\n";

  PipelineOptions options;
  options.unroll = true;
  options.max_unroll = bench::max_unroll();
  std::vector<SweepPoint> points;
  std::map<int, std::size_t> single_index;
  std::map<int, std::size_t> ring_index;
  for (int fus = 4; fus <= 18; ++fus) {
    single_index[fus] = points.size();
    points.push_back({cat("single-", fus, "fu"), MachineConfig::single_cluster_machine(fus),
                      options});
    if (const int clusters = clusters_for(fus); clusters >= 4) {
      PipelineOptions ring_options = options;
      ring_options.scheduler = SchedulerKind::kClustered;
      ring_index[fus] = points.size();
      points.push_back({cat("ring-", clusters), MachineConfig::clustered_machine(clusters),
                        ring_options});
    }
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"FUs", "static single", "dyn single", "static clustered", "dyn clustered"});
  for (int fus = 4; fus <= 18; ++fus) {
    const std::vector<LoopResult>& rs = sweep.by_point[single_index[fus]];
    std::vector<Cell> row{static_cast<std::int64_t>(fus),
                          mean_of_scheduled(rs, [](const LoopResult& r) { return r.ipc_static; }),
                          mean_of_scheduled(rs, [](const LoopResult& r) { return r.ipc_dynamic; }),
                          std::string("-"), std::string("-")};
    if (auto it = ring_index.find(fus); it != ring_index.end()) {
      const std::vector<LoopResult>& rc = sweep.by_point[it->second];
      row[3] = mean_of_scheduled(rc, [](const LoopResult& r) { return r.ipc_static; });
      row[4] = mean_of_scheduled(rc, [](const LoopResult& r) { return r.ipc_dynamic; });
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
