// Fig. 9 — "Operations issued per cycle — resource constrained loops".
//
// Paper: restricted to loops whose execution is limited by FU
// availability, single-cluster IPC scales almost linearly to 18 FUs; the
// clustered machine falls slightly behind at 15 and 18 FUs (the
// partitioning loss of Fig. 6), with the dynamic gap smaller than the
// static one because a few large loops dominate execution time and
// partition cleanly.
#include <iostream>

#include "bench_common.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int clusters_for(int fus) { return fus % 3 == 0 && fus >= 12 ? fus / 3 : 0; }

int run() {
  print_banner(std::cout, "Fig. 9 — IPC vs machine size, resource-constrained loops",
               "near-linear single-cluster scaling; clustered slightly lower at 15/18 FUs");
  const Suite full = bench::make_suite();
  Suite suite;
  suite.kernel_count = 0;
  for (const Loop& loop : full.loops) {
    if (is_resource_constrained(loop, bench::max_unroll())) suite.loops.push_back(loop);
  }
  std::cout << "resource-constrained subset: " << suite.loops.size() << " of "
            << full.loops.size() << " loops\n\n";

  TextTable table({"FUs", "static single", "dyn single", "static clustered", "dyn clustered"});
  for (int fus = 4; fus <= 18; ++fus) {
    PipelineOptions options;
    options.unroll = true;
    options.max_unroll = bench::max_unroll();

    const MachineConfig single = MachineConfig::single_cluster_machine(fus);
    const auto rs = run_suite(suite.loops, single, options);
    std::vector<Cell> row{static_cast<std::int64_t>(fus),
                          mean_of_scheduled(rs, [](const LoopResult& r) { return r.ipc_static; }),
                          mean_of_scheduled(rs, [](const LoopResult& r) { return r.ipc_dynamic; }),
                          std::string("-"), std::string("-")};
    if (const int clusters = clusters_for(fus); clusters >= 4) {
      PipelineOptions ring_options = options;
      ring_options.scheduler = SchedulerKind::kClustered;
      const MachineConfig ring = MachineConfig::clustered_machine(clusters);
      const auto rc = run_suite(suite.loops, ring, ring_options);
      row[3] = mean_of_scheduled(rc, [](const LoopResult& r) { return r.ipc_static; });
      row[4] = mean_of_scheduled(rc, [](const LoopResult& r) { return r.ipc_dynamic; });
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
