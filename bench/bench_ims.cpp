// IMS search microbenchmark — allocation-free arena searcher vs the
// frozen set-based reference implementation.
//
// The arena path is sched/ims.cpp: one searcher allocation per call,
// O(touched) reset between II attempts, a height-bucketed bitset ready
// queue and a bitmask MRT.  The reference path is sched/ims_reference.cpp:
// the same algorithm written the straightforward way (std::set ready
// queue, per-attempt allocation, linear FU probes).  Both must produce
// bit-identical schedules and identical search effort on every loop — the
// bench fails otherwise, so it doubles as a golden-equivalence gate over
// the full suite.
//
// Timings are bucketed by loop size, and emitted as machine-readable
// BENCH_ims.json (override with argv[1] or QVLIW_IMS_BENCH_JSON) for CI
// artifact upload next to BENCH_pipeline.json.
//
//   QVLIW_LOOPS=200 QVLIW_IMS_REPS=3 ./build/bench/bench_ims [out.json]
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sched/ims.h"
#include "sched/ims_reference.h"

namespace qvliw {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int env_reps() {
  if (const char* env = std::getenv("QVLIW_IMS_REPS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

std::string schedule_bytes(const Schedule& schedule) {
  BlobWriter out;
  serialize_schedule(out, schedule);
  return out.take();
}

/// Size buckets over the loop's op count.
struct Bucket {
  const char* label;
  int min_ops;
  int max_ops;  // inclusive; INT_MAX-ish sentinel for the last bucket
  int loops = 0;
  long long placements = 0;
  long long evictions = 0;
  long long attempts = 0;
  double arena_seconds = 0.0;
  double reference_seconds = 0.0;
};

int run(int argc, char** argv) {
  print_banner(std::cout, "IMS search — arena searcher vs set-based reference",
               "bucket ready queue + bitmask MRT replace std::set and per-attempt allocation");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const int reps = env_reps();
  std::cout << "machine: " << machine.name << "; reps: " << reps
            << " (override with QVLIW_IMS_REPS=<n>)\n\n";

  std::vector<Bucket> buckets = {
      {"<8 ops", 0, 7},
      {"8-15 ops", 8, 15},
      {"16-31 ops", 16, 31},
      {">=32 ops", 32, 1 << 30},
  };
  const auto bucket_of = [&buckets](int ops) -> Bucket& {
    for (Bucket& b : buckets) {
      if (ops >= b.min_ops && ops <= b.max_ops) return b;
    }
    return buckets.back();
  };

  bool equivalent = true;
  for (const Loop& loop : suite.loops) {
    const Ddg graph = Ddg::build(loop, machine.latency);
    Bucket& bucket = bucket_of(loop.op_count());
    ++bucket.loops;

    // Equivalence first (untimed): same accept decision, II, schedule
    // bytes and search effort.  Anything else is a searcher bug.
    const ImsResult arena = ims_schedule(loop, graph, machine);
    const ImsResult reference = ims_schedule_reference(loop, graph, machine);
    bucket.placements += arena.stats.placements;
    bucket.evictions += arena.stats.evictions;
    bucket.attempts += arena.stats.ii_attempts;
    const bool same =
        arena.ok == reference.ok && arena.stats.placements == reference.stats.placements &&
        arena.stats.evictions == reference.stats.evictions &&
        arena.stats.ii_attempts == reference.stats.ii_attempts &&
        (!arena.ok || (arena.ii == reference.ii &&
                       schedule_bytes(arena.schedule) == schedule_bytes(reference.schedule)));
    if (!same) {
      equivalent = false;
      std::cerr << "MISMATCH on loop " << loop.name << "\n";
    }

    for (int rep = 0; rep < reps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      const ImsResult a = ims_schedule(loop, graph, machine);
      bucket.arena_seconds += seconds_since(t0);
      // Keep the results alive past the clock reads.
      if (a.stats.placements < 0) std::abort();

      const Clock::time_point t1 = Clock::now();
      const ImsResult r = ims_schedule_reference(loop, graph, machine);
      bucket.reference_seconds += seconds_since(t1);
      if (r.stats.placements < 0) std::abort();
    }
  }

  double arena_total = 0.0;
  double reference_total = 0.0;
  long long attempts_total = 0;
  long long placements_total = 0;
  long long evictions_total = 0;
  TextTable table({"bucket", "loops", "attempts/s", "evict/place", "arena s", "ref s", "speedup"});
  for (const Bucket& b : buckets) {
    arena_total += b.arena_seconds;
    reference_total += b.reference_seconds;
    attempts_total += b.attempts;
    placements_total += b.placements;
    evictions_total += b.evictions;
    const double attempts_per_sec =
        b.arena_seconds > 0.0 ? static_cast<double>(b.attempts) * reps / b.arena_seconds : 0.0;
    const double evictions_per_placement =
        b.placements > 0 ? static_cast<double>(b.evictions) / static_cast<double>(b.placements)
                         : 0.0;
    const double speedup = b.arena_seconds > 0.0 ? b.reference_seconds / b.arena_seconds : 0.0;
    table.add_row({std::string(b.label), static_cast<double>(b.loops), attempts_per_sec,
                   evictions_per_placement, b.arena_seconds, b.reference_seconds, speedup});
  }
  table.render(std::cout);
  const double total_speedup = arena_total > 0.0 ? reference_total / arena_total : 0.0;
  std::cout << "\ntotal: arena " << fixed(arena_total, 4) << " s, reference "
            << fixed(reference_total, 4) << " s (" << fixed(total_speedup, 2)
            << "x); schedule equivalence: " << (equivalent ? "identical" : "MISMATCH — BUG")
            << "\n";

  const char* env_path = std::getenv("QVLIW_IMS_BENCH_JSON");
  const std::string out_path = argc > 1 ? argv[1]
                               : env_path != nullptr ? env_path
                                                     : "BENCH_ims.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"ims_search\",\n"
      << "  \"suite_loops\": " << suite.loops.size() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"buckets\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const Bucket& b = buckets[i];
    const double attempts_per_sec =
        b.arena_seconds > 0.0 ? static_cast<double>(b.attempts) * reps / b.arena_seconds : 0.0;
    const double evictions_per_placement =
        b.placements > 0 ? static_cast<double>(b.evictions) / static_cast<double>(b.placements)
                         : 0.0;
    const double speedup = b.arena_seconds > 0.0 ? b.reference_seconds / b.arena_seconds : 0.0;
    out << (i == 0 ? "" : ",") << "\n    {\"bucket\": \"" << b.label
        << "\", \"loops\": " << b.loops << ", \"attempts_per_second\": "
        << fixed(attempts_per_sec, 1) << ", \"evictions_per_placement\": "
        << fixed(evictions_per_placement, 4) << ", \"arena_seconds\": "
        << fixed(b.arena_seconds, 6) << ", \"reference_seconds\": "
        << fixed(b.reference_seconds, 6) << ", \"speedup\": " << fixed(speedup, 3) << "}";
  }
  out << "\n  ],\n"
      << "  \"attempts\": " << attempts_total << ",\n"
      << "  \"placements\": " << placements_total << ",\n"
      << "  \"evictions\": " << evictions_total << ",\n"
      << "  \"arena_seconds\": " << fixed(arena_total, 6) << ",\n"
      << "  \"reference_seconds\": " << fixed(reference_total, 6) << ",\n"
      << "  \"speedup\": " << fixed(total_speedup, 3) << ",\n"
      << "  \"equivalent\": " << (equivalent ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return equivalent ? 0 : 1;
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
