// Section 2 (text) — the cost of copy operations.
//
// Paper: inserting copy operations leaves the II unchanged for ~95% of
// loops; the rest typically grow by one cycle.  The stage count is
// unchanged for most loops, and the most demanding loops even need
// slightly fewer queues/positions.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int run() {
  print_banner(std::cout, "Sec. 2 — effect of copy operations on II / stage count",
               "~95% of loops keep their II after copy insertion; misses are +1 cycle");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  // (with, without) pairs over the three machine sizes plus the chain
  // copy-tree ablation at 12 FUs; the balanced point at 12 FUs doubles as
  // the shape baseline.  Nothing unrolls, so each option prefix has a
  // single front end shared by every machine.
  const std::vector<int> fu_sizes = {4, 6, 12};
  std::vector<SweepPoint> points;
  std::vector<std::size_t> with_index;
  std::vector<std::size_t> without_index;
  for (int fus : fu_sizes) {
    const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
    PipelineOptions with;     // copies on
    PipelineOptions without;  // the multi-write QRF baseline of [7]
    without.insert_copies = false;
    with_index.push_back(points.size());
    points.push_back({cat(fus, "-fus-copies"), machine, with});
    without_index.push_back(points.size());
    points.push_back({cat(fus, "-fus-plain"), machine, without});
  }
  const std::size_t chain_index = points.size();
  {
    PipelineOptions chain;
    chain.copy_shape = CopyTreeShape::kChain;
    points.push_back({"12-fus-chain", MachineConfig::single_cluster_machine(12), chain});
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"machine", "same II", "II +1", "II +2 or more", "same SC", "mean dQueues"});
  for (std::size_t m = 0; m < fu_sizes.size(); ++m) {
    const std::vector<LoopResult>& rw = sweep.by_point[with_index[m]];
    const std::vector<LoopResult>& ro = sweep.by_point[without_index[m]];

    int both = 0;
    int same_ii = 0;
    int plus_one = 0;
    int plus_more = 0;
    int same_sc = 0;
    OnlineStats dqueues;
    for (std::size_t i = 0; i < rw.size(); ++i) {
      if (!rw[i].ok || !ro[i].ok) continue;
      ++both;
      const int delta = rw[i].ii - ro[i].ii;
      if (delta <= 0) ++same_ii;
      else if (delta == 1) ++plus_one;
      else ++plus_more;
      if (rw[i].stage_count == ro[i].stage_count) ++same_sc;
      dqueues.add(rw[i].total_queues - ro[i].total_queues);
    }
    const double n = both > 0 ? static_cast<double>(both) : 1.0;
    table.add_row({cat(fu_sizes[m], " FUs"), percent(same_ii / n), percent(plus_one / n),
                   percent(plus_more / n), percent(same_sc / n), dqueues.mean()});
  }
  table.render(std::cout);

  std::cout << "\nCopy tree shape (12 FUs): balanced vs chain fan-out\n";
  TextTable shape_table({"shape", "mean II", "mean SC", "same II as balanced"});
  const std::vector<LoopResult>& rb = sweep.by_point[with_index[2]];  // 12 FUs, balanced
  const std::vector<LoopResult>& rc = sweep.by_point[chain_index];    // 12 FUs, chain
  int both = 0;
  int same = 0;
  OnlineStats ii_b;
  OnlineStats ii_c;
  OnlineStats sc_b;
  OnlineStats sc_c;
  for (std::size_t i = 0; i < rb.size(); ++i) {
    if (!rb[i].ok || !rc[i].ok) continue;
    ++both;
    if (rb[i].ii == rc[i].ii) ++same;
    ii_b.add(rb[i].ii);
    ii_c.add(rc[i].ii);
    sc_b.add(rb[i].stage_count);
    sc_c.add(rc[i].stage_count);
  }
  shape_table.add_row({std::string("balanced"), ii_b.mean(), sc_b.mean(), percent(1.0)});
  shape_table.add_row({std::string("chain"), ii_c.mean(), sc_c.mean(),
                       percent(both > 0 ? static_cast<double>(same) / both : 0.0)});
  shape_table.render(std::cout);
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
