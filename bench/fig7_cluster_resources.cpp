// Fig. 7 (text) — the basic cluster configuration.
//
// Paper: a cluster of {L/S, ADD, MUL, COPY} with 8 private queues plus a
// ring of 8 queues per direction per segment suffices for (almost) every
// loop of the benchmark on the machines analysed; a small fraction needs
// more.  Beyond the paper, the same resource curves are swept per
// interconnect topology (ring / mesh / crossbar) so the 8/8 budget can be
// compared across interconnects, and the curves are written to a bench
// JSON for plotting.
//
//   fig7_cluster_resources [--topology ring|mesh|crossbar] [--clusters N]
//                          [--out FILE.json]   (default BENCH_fig7.json)
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

struct Curve {
  TopologyKind kind;
  int clusters;
  std::string label;
  int scheduled = 0;
  double pct_priv = 0.0;       // loops with max private queues <= 8
  double pct_segment = 0.0;    // loops with max segment queues <= 8
  double pct_both = 0.0;
  double p95_priv = 0.0;
  double p95_segment = 0.0;
  double p95_positions = 0.0;
  double max_positions = 0.0;
};

/// Cluster counts swept per topology.  Meshes need composite counts so
/// the grid has two real dimensions; ring and crossbar reuse the paper's
/// 4/5/6 ladder.
std::vector<int> default_sizes(TopologyKind kind) {
  if (kind == TopologyKind::kMesh) return {4, 6, 9};
  return {4, 5, 6};
}

int run(int argc, char** argv) {
  std::vector<TopologyKind> kinds = {TopologyKind::kRing, TopologyKind::kMesh,
                                     TopologyKind::kCrossbar};
  int clusters_override = 0;
  std::string out_path = "BENCH_fig7.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--topology" && a + 1 < argc) {
      const auto kind = parse_topology_kind(argv[++a]);
      if (!kind.has_value()) {
        std::cerr << "bad --topology value\n";
        return 2;
      }
      kinds = {*kind};
    } else if (arg == "--clusters" && a + 1 < argc) {
      clusters_override = std::atoi(argv[++a]);
      if (clusters_override < 1) {
        std::cerr << "bad --clusters value\n";
        return 2;
      }
    } else if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::cerr << "usage: fig7_cluster_resources [--topology ring|mesh|crossbar]"
                << " [--clusters N] [--out FILE.json]\n";
      return 2;
    }
  }

  print_banner(std::cout, "Fig. 7 — per-cluster queue resources (8 private + 8 per segment)",
               "the 8/8 cluster covers nearly all loops on every interconnect");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  std::vector<SweepPoint> points;
  std::vector<Curve> curves;
  for (const TopologyKind kind : kinds) {
    const std::vector<int> sizes =
        clusters_override > 0 ? std::vector<int>{clusters_override} : default_sizes(kind);
    for (const int clusters : sizes) {
      PipelineOptions options;
      options.unroll = true;
      options.max_unroll = bench::max_unroll();
      options.scheduler = SchedulerKind::kClustered;
      Curve curve;
      curve.kind = kind;
      curve.clusters = clusters;
      curve.label = bench::topology_label(kind, clusters);
      curves.push_back(curve);
      points.push_back({curves.back().label, MachineConfig::topology_machine(kind, clusters),
                        options});
    }
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"machine", "priv <= 8", "seg <= 8", "both <= 8", "p95 priv", "p95 seg",
                   "p95 positions", "max positions"});
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const std::vector<LoopResult>& results = sweep.by_point[c];
    Curve& curve = curves[c];

    std::vector<double> priv;
    std::vector<double> seg_q;
    std::vector<double> positions;
    int ok_priv = 0;
    int ok_seg = 0;
    int ok_both = 0;
    for (const LoopResult& r : results) {
      if (!r.ok) continue;
      ++curve.scheduled;
      priv.push_back(r.max_private_queues);
      seg_q.push_back(r.max_segment_queues);
      positions.push_back(r.max_positions);
      const bool p = r.max_private_queues <= 8;
      const bool g = r.max_segment_queues <= 8;
      if (p) ++ok_priv;
      if (g) ++ok_seg;
      if (p && g) ++ok_both;
    }
    const double n = curve.scheduled > 0 ? static_cast<double>(curve.scheduled) : 1.0;
    curve.pct_priv = ok_priv / n;
    curve.pct_segment = ok_seg / n;
    curve.pct_both = ok_both / n;
    curve.p95_priv = percentile(priv, 95);
    curve.p95_segment = percentile(seg_q, 95);
    curve.p95_positions = percentile(positions, 95);
    curve.max_positions = positions.empty() ? 0.0 : percentile(positions, 100);
    table.add_row({curve.label, percent(curve.pct_priv), percent(curve.pct_segment),
                   percent(curve.pct_both), curve.p95_priv, curve.p95_segment,
                   curve.p95_positions, static_cast<std::int64_t>(curve.max_positions)});
  }
  table.render(std::cout);
  bench::print_sweep_footer(std::cout, sweep);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"bench\": \"fig7_cluster_resources\",\n"
      << "  \"suite_loops\": " << suite.loops.size() << ",\n  \"curves\": [";
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const Curve& curve = curves[c];
    out << (c == 0 ? "" : ",") << "\n    {\"topology\": \"" << topology_kind_name(curve.kind)
        << "\", \"clusters\": " << curve.clusters << ", \"label\": \"" << curve.label
        << "\", \"scheduled\": " << curve.scheduled
        << ", \"pct_private_le8\": " << fixed(curve.pct_priv, 6)
        << ", \"pct_segment_le8\": " << fixed(curve.pct_segment, 6)
        << ", \"pct_both_le8\": " << fixed(curve.pct_both, 6)
        << ", \"p95_private\": " << fixed(curve.p95_priv, 3)
        << ", \"p95_segment\": " << fixed(curve.p95_segment, 3)
        << ", \"p95_positions\": " << fixed(curve.p95_positions, 3)
        << ", \"max_positions\": " << fixed(curve.max_positions, 1) << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
