// Fig. 7 (text) — the basic cluster configuration.
//
// Paper: a cluster of {L/S, ADD, MUL, COPY} with 8 private queues plus a
// ring of 8 queues per direction per segment suffices for (almost) every
// loop of the benchmark on the machines analysed; a small fraction needs
// more.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int run() {
  print_banner(std::cout, "Fig. 7 — per-cluster queue resources (8 private + 8+8 ring)",
               "the 8/8/8 cluster covers nearly all loops; positions stay small");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  const std::vector<int> cluster_sizes = {4, 5, 6};
  std::vector<SweepPoint> points;
  for (int clusters : cluster_sizes) {
    PipelineOptions options;
    options.unroll = true;
    options.max_unroll = bench::max_unroll();
    options.scheduler = SchedulerKind::kClustered;
    points.push_back({cat("ring-", clusters), MachineConfig::clustered_machine(clusters),
                      options});
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"clusters", "priv <= 8", "ring <= 8", "both <= 8", "p95 priv", "p95 ring",
                   "p95 positions", "max positions"});
  for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
    const std::vector<LoopResult>& results = sweep.by_point[c];

    std::vector<double> priv;
    std::vector<double> ring_q;
    std::vector<double> positions;
    int ok_priv = 0;
    int ok_ring = 0;
    int ok_both = 0;
    int scheduled = 0;
    for (const LoopResult& r : results) {
      if (!r.ok) continue;
      ++scheduled;
      priv.push_back(r.max_private_queues);
      ring_q.push_back(r.max_ring_queues);
      positions.push_back(r.max_positions);
      const bool p = r.max_private_queues <= 8;
      const bool g = r.max_ring_queues <= 8;
      if (p) ++ok_priv;
      if (g) ++ok_ring;
      if (p && g) ++ok_both;
    }
    const double n = scheduled > 0 ? static_cast<double>(scheduled) : 1.0;
    table.add_row({cat(cluster_sizes[c]), percent(ok_priv / n), percent(ok_ring / n),
                   percent(ok_both / n), percentile(priv, 95), percentile(ring_q, 95),
                   percentile(positions, 95),
                   static_cast<std::int64_t>(positions.empty() ? 0 : static_cast<std::int64_t>(
                                                 percentile(positions, 100)))});
  }
  table.render(std::cout);
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
