// Fig. 8 — "Operations issued per cycle — all loops".
//
// Paper: mean static and dynamic IPC over the whole suite as the machine
// grows from 4 to 18 FUs; single-cluster and clustered (12/15/18 FU)
// series.  Growth is sub-linear because recurrence-bound loops cannot use
// the extra units; static > dynamic since the dynamic figure pays for
// prologue/epilogue.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int clusters_for(int fus) { return fus % 3 == 0 && fus >= 12 ? fus / 3 : 0; }

int run() {
  print_banner(std::cout, "Fig. 8 — IPC vs machine size, all loops",
               "sub-linear growth; clustered tracks single-cluster closely at 12 FUs");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  // The whole figure as one sweep: 15 single-cluster sizes plus the three
  // clustered machines.
  PipelineOptions options;
  options.unroll = true;
  options.max_unroll = bench::max_unroll();
  std::vector<SweepPoint> points;
  std::map<int, std::size_t> single_index;
  std::map<int, std::size_t> ring_index;
  for (int fus = 4; fus <= 18; ++fus) {
    single_index[fus] = points.size();
    points.push_back({cat("single-", fus, "fu"), MachineConfig::single_cluster_machine(fus),
                      options});
    if (const int clusters = clusters_for(fus); clusters >= 4) {
      PipelineOptions ring_options = options;
      ring_options.scheduler = SchedulerKind::kClustered;
      ring_index[fus] = points.size();
      points.push_back({cat("ring-", clusters), MachineConfig::clustered_machine(clusters),
                        ring_options});
    }
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"FUs", "static single", "dyn single", "static clustered", "dyn clustered"});
  table.set_real_digits(2);
  for (int fus = 4; fus <= 18; ++fus) {
    const std::vector<LoopResult>& rs = sweep.by_point[single_index[fus]];
    std::vector<Cell> row{static_cast<std::int64_t>(fus),
                          mean_of_scheduled(rs, [](const LoopResult& r) { return r.ipc_static; }),
                          mean_of_scheduled(rs, [](const LoopResult& r) { return r.ipc_dynamic; }),
                          std::string("-"), std::string("-")};
    if (auto it = ring_index.find(fus); it != ring_index.end()) {
      const std::vector<LoopResult>& rc = sweep.by_point[it->second];
      row[3] = mean_of_scheduled(rc, [](const LoopResult& r) { return r.ipc_static; });
      row[4] = mean_of_scheduled(rc, [](const LoopResult& r) { return r.ipc_dynamic; });
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);
  std::cout << "\nIPC counts useful (source) operations only; copies and moves are\n"
               "plumbing.  Dynamic IPC uses the paper's execution model\n"
               "(trip + SC - 1 kernel initiations, per-loop trip counts).\n";
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
