// Process-sharded sweep driver.
//
// Runs the perf_micro multi-heuristic sweep as one shard of an N-way
// partition, serialises the shard's SweepResult through the portable
// blob codec, and merges shard files back into the single-process
// result.  All shards of one sweep share the artifact store (--store),
// so front-end artifacts, MII maps and warm-start schedules persisted by
// one process are hits for the others — the distribution seam the
// ROADMAP's sharding item calls for.
//
//   sweep_shard run    --shards N --shard I --out S.shard [--warm] [--store DIR] [--axis loops|points] [--workers M]
//   sweep_shard merge  --out merged.json S0.shard S1.shard ...
//   sweep_shard single --out single.json [--warm] [--store DIR] [--workers M]
//
// `--topology ring|mesh|crossbar` and `--clusters N` (defaults: ring, 4)
// select the swept machine; merge must be invoked with the same choice so
// the canonical JSON carries the right point labels.
//
// `--workers M` (default QVLIW_WORKERS, else one per hardware thread)
// runs the shard's sweep on M threads — sharding and threading compose, and the merged result
// stays fingerprint-identical at any worker count.
//
// `merge` and `single` write byte-identical canonical results JSON when
// the sharded and single-process sweeps agree (CI diffs the two files);
// both embed the result fingerprint (harness/shard.h), which excludes
// wall times and scheduling-effort provenance.  Suite size follows
// QVLIW_LOOPS like every bench.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/shard.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/rng.h"

namespace qvliw {
namespace {

struct Args {
  std::string mode;
  std::string out;
  std::string store;
  std::string checkpoint;
  std::vector<std::string> inputs;
  int shards = 1;
  int shard = 0;
  int workers = bench::env_workers();  // 0 = one thread per hardware thread
  bench::TopologyChoice topology;
  ShardAxis axis = ShardAxis::kLoops;
  bool verify = false;  // strict translation validation on every pipeline
  bool warm = false;
  bool store_stats = false;
};

int usage() {
  std::cerr
      << "usage:\n"
      << "  sweep_shard run    --shards N --shard I --out FILE [--warm] [--store DIR]"
      << " [--checkpoint DIR] [--axis loops|points] [--workers M]"
      << " [--topology ring|mesh|crossbar] [--clusters N]\n"
      << "  sweep_shard merge  --out FILE.json [--topology T] [--clusters N] SHARD...\n"
      << "  sweep_shard single --out FILE.json [--warm] [--store DIR] [--checkpoint DIR]"
      << " [--workers M] [--topology ring|mesh|crossbar] [--clusters N] [--verify]\n"
      << "  sweep_shard --store-stats --store DIR   # inspect a shared store directory\n";
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.mode = argv[1];
  int start = 2;
  if (args.mode == "--store-stats") {
    args.store_stats = true;
    args.mode.clear();
  } else if (args.mode.empty() || args.mode[0] == '-') {
    return false;
  }
  for (int a = start; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--store") {
      const char* v = next();
      if (v == nullptr) return false;
      args.store = v;
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      args.checkpoint = v;
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      args.shards = std::atoi(v);
    } else if (flag == "--shard") {
      const char* v = next();
      if (v == nullptr) return false;
      args.shard = std::atoi(v);
    } else if (flag == "--workers") {
      const char* v = next();
      if (v == nullptr) return false;
      args.workers = std::atoi(v);
    } else if (flag == "--axis") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string axis = v;
      if (axis == "loops") {
        args.axis = ShardAxis::kLoops;
      } else if (axis == "points") {
        args.axis = ShardAxis::kPoints;
      } else {
        return false;
      }
    } else if (flag == "--topology" || flag == "--clusters") {
      if (!args.topology.parse_flag(argc, argv, a)) return false;
    } else if (flag == "--verify") {
      args.verify = true;
    } else if (flag == "--warm") {
      args.warm = true;
    } else if (flag == "--store-stats") {
      args.store_stats = true;
    } else if (!flag.empty() && flag[0] != '-') {
      args.inputs.push_back(flag);
    } else {
      return false;
    }
  }
  return args.store_stats || !args.out.empty();
}

int write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  return 0;
}

int run_mode(const Args& args, bool sharded) {
  const Suite suite = bench::make_suite();
  const std::vector<SweepPoint> points = bench::perf_sweep_points(args.topology);

  SweepOptions options;
  options.store_dir = args.store;
  options.checkpoint_dir = args.checkpoint;
  options.warm_start = args.warm;
  options.workers = args.workers;
  if (args.verify) options.verify_mode = SweepVerifyMode::kStrict;
  if (sharded) {
    options.shard_count = args.shards;
    options.shard_index = args.shard;
    options.shard_axis = args.axis;
  }
  std::cout << (sharded ? "shard " : "single process ");
  if (sharded) std::cout << args.shard << "/" << args.shards << " ";
  std::cout << "(" << suite.loops.size() << " loops x " << points.size() << " points, "
            << resolved_sweep_workers(options) << " worker(s)"
            << (args.warm ? ", warm ladders" : "")
            << (args.store.empty() ? "" : ", shared store ") << args.store << ")...\n";
  const SweepResult sweep = SweepRunner(options).run(suite.loops, points);
  std::cout << "ran " << sweep.pipelines << " pipelines in " << fixed(sweep.wall_seconds, 2)
            << " s\n";
  if (!args.checkpoint.empty()) {
    std::cout << "checkpoint: " << sweep.checkpoint.tasks_replayed << " task(s) replayed, "
              << sweep.checkpoint.tasks_executed << " executed, journal "
              << sweep.checkpoint.journal_bytes << " bytes\n";
  }
  bench::print_store_counters(std::cout, sweep);

  if (!sharded) {
    std::ostringstream json;
    bench::write_results_json(json, points, sweep);
    return write_file(args.out, json.str());
  }
  SweepShard shard;
  shard.header.shard_count = args.shards;
  shard.header.shard_index = args.shard;
  shard.header.axis = args.axis;
  shard.header.loops = suite.loops.size();
  shard.header.points = points.size();
  shard.header.config_hash = sweep_config_hash(suite.loops, points);
  shard.result = sweep;
  return write_file(args.out, encode_sweep_shard(shard));
}

int merge_mode(const Args& args) {
  if (args.inputs.empty()) {
    std::cerr << "merge: no shard files given\n";
    return 2;
  }
  std::vector<SweepShard> shards;
  for (const std::string& path : args.inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    shards.push_back(decode_sweep_shard(std::move(buffer).str()));
    std::cout << path << ": shard " << shards.back().header.shard_index << "/"
              << shards.back().header.shard_count << ", " << shards.back().result.pipelines
              << " pipelines\n";
  }
  const SweepResult merged = merge_sweep_shards(std::move(shards));
  std::cout << "merged " << merged.pipelines << " pipelines\n";
  bench::print_store_counters(std::cout, merged);

  // Labels for the canonical JSON: the shared perf sweep's points (the
  // config hash already proved the shards came from this sweep).
  std::ostringstream json;
  bench::write_results_json(json, bench::perf_sweep_points(args.topology), merged);
  return write_file(args.out, json.str());
}

int run(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (args.store_stats) return bench::print_store_stats(std::cout, args.store);
    if (args.mode == "run") {
      if (args.shards < 1 || args.shard < 0 || args.shard >= args.shards) return usage();
      return run_mode(args, /*sharded=*/true);
    }
    if (args.mode == "single") return run_mode(args, /*sharded=*/false);
    if (args.mode == "merge") return merge_mode(args);
  } catch (const Error& e) {
    std::cerr << "sweep_shard: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
