// Worker-scaling contention micro-bench.
//
// Runs the perf_micro multi-heuristic sweep uncached at a ladder of
// worker counts (default 1,2,4,8 — override with --counts 1,2,3) and
// reports per-count throughput plus the determinism check that justifies
// the whole threading design: every count's sweep_result_fingerprint
// must equal the single-worker run's.  Worker counts above the hardware
// thread count still run with that many real threads (SweepOptions::
// workers is an explicit request), so the identity check exercises true
// contention even on small boxes — only the *speedup* is meaningless
// there, which is why the JSON records hardware_threads and
// tools/check_bench_regression.py --scaling only enforces its
// parallel_speedup floor when the machine has 2+ hardware threads.
//
// parallel_speedup = best multi-worker throughput / single-worker
// throughput of this run (not a committed baseline): the bench measures
// how the *same binary on the same box* scales, so the floor is immune
// to hardware drift.
//
//   QVLIW_LOOPS=200 ./build/bench/sweep_scaling [out.json] [--counts 1,2,4,8]
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/shard.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace qvliw {
namespace {

std::vector<int> parse_counts(const std::string& spec) {
  std::vector<int> counts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const int n = std::atoi(item.c_str());
    if (n > 0) counts.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return counts;
}

struct CountResult {
  int workers = 0;
  double wall_seconds = 0.0;
  double loops_per_second = 0.0;
  std::uint64_t fingerprint = 0;
  bool identical = false;
};

int run(int argc, char** argv) {
  std::vector<int> counts = {1, 2, 4, 8};
  std::string out_override;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--counts" && a + 1 < argc) {
      counts = parse_counts(argv[++a]);
    } else if (arg == "--help" || (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-')) {
      std::cout << "usage: sweep_scaling [out.json] [--counts 1,2,4,8]\n";
      return arg == "--help" ? 0 : 1;
    } else {
      out_override = arg;
    }
  }
  if (counts.empty() || counts[0] != 1) counts.insert(counts.begin(), 1);

  print_banner(std::cout, "scaling — sweep throughput vs worker count",
               "one fingerprint at every count, or the thread pool is broken");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);
  const std::vector<SweepPoint> points = bench::perf_sweep_points();
  std::cout << "sweep: " << points.size() << " points, " << worker_count()
            << " hardware thread(s)\n\n";

  std::vector<CountResult> results;
  std::uint64_t serial_fingerprint = 0;
  double serial_lps = 0.0;
  for (const int workers : counts) {
    SweepOptions options;
    options.use_cache = false;
    options.workers = workers;
    options.parallel = workers > 1;
    std::cout << "running with " << workers << " worker(s)...\n";
    const SweepResult sweep = SweepRunner(options).run(suite.loops, points);

    CountResult r;
    r.workers = workers;
    r.wall_seconds = sweep.wall_seconds;
    r.loops_per_second = sweep.pipelines_per_second();
    r.fingerprint = hash_bytes(sweep_result_fingerprint(sweep));
    if (workers == 1) {
      serial_fingerprint = r.fingerprint;
      serial_lps = r.loops_per_second;
    }
    r.identical = r.fingerprint == serial_fingerprint;
    results.push_back(r);
  }

  bool all_identical = true;
  double best_parallel_lps = 0.0;
  TextTable table({"workers", "wall s", "loops/s", "speedup", "identical"});
  for (const CountResult& r : results) {
    all_identical = all_identical && r.identical;
    if (r.workers > 1) best_parallel_lps = std::max(best_parallel_lps, r.loops_per_second);
    table.add_row({std::to_string(r.workers), r.wall_seconds, r.loops_per_second,
                   cat(fixed(serial_lps > 0.0 ? r.loops_per_second / serial_lps : 0.0, 2), "x"),
                   std::string(r.identical ? "yes" : "NO — BUG")});
  }
  table.render(std::cout);
  const double parallel_speedup =
      serial_lps > 0.0 && best_parallel_lps > 0.0 ? best_parallel_lps / serial_lps : 1.0;
  std::cout << "\nbest parallel speedup: " << fixed(parallel_speedup, 2)
            << "x; all counts identical: " << (all_identical ? "yes" : "NO — BUG") << "\n";

  const char* env_path = std::getenv("QVLIW_SCALING_JSON");
  const std::string out_path = !out_override.empty() ? out_override
                               : env_path != nullptr ? env_path
                                                     : "BENCH_sweep_scaling.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"sweep_scaling\",\n"
      << "  \"suite_loops\": " << suite.loops.size() << ",\n"
      << "  \"sweep_points\": " << points.size() << ",\n"
      << "  \"hardware_threads\": " << worker_count() << ",\n"
      << "  \"counts\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CountResult& r = results[i];
    out << (i == 0 ? "" : ",") << "\n    {\"workers\": " << r.workers
        << ", \"wall_seconds\": " << fixed(r.wall_seconds, 6)
        << ", \"loops_per_second\": " << fixed(r.loops_per_second, 2)
        << ", \"fingerprint\": \"" << std::hex << r.fingerprint << std::dec
        << "\", \"identical\": " << (r.identical ? "true" : "false") << "}";
  }
  out << "\n  ],\n"
      << "  \"parallel_speedup\": " << fixed(parallel_speedup, 3) << ",\n"
      << "  \"scaling_results_identical\": " << (all_identical ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
