// Fig. 4 — "Initiation Interval Speedup" from loop unrolling.
//
// Paper: with no extra FUs, a considerable fraction of loops achieve an
// II speedup > 1 when unrolled (per-source-iteration initiation rate
// II_orig / (II_unrolled / U)); unrolling rarely increases the stage
// count, and when it changes it usually decreases.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int run() {
  print_banner(std::cout, "Fig. 4 — II speedup from loop unrolling (4/6/12 FUs)",
               "large fraction of loops reach II speedup > 1 with no extra FUs");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  // Point pairs (base, unrolled) per machine size; the three base points
  // share a single cached front end (no unrolling is machine-agnostic).
  const std::vector<int> fu_sizes = {4, 6, 12};
  std::vector<SweepPoint> points;
  std::vector<std::size_t> base_index;
  std::vector<std::size_t> unrolled_index;
  for (int fus : fu_sizes) {
    const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
    PipelineOptions base;  // no unrolling
    PipelineOptions unrolled;
    unrolled.unroll = true;
    unrolled.max_unroll = bench::max_unroll();
    base_index.push_back(points.size());
    points.push_back({cat(fus, "-fus-base"), machine, base});
    unrolled_index.push_back(points.size());
    points.push_back({cat(fus, "-fus-unrolled"), machine, unrolled});
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"machine", "spd > 1", "spd >= 1.5", "spd >= 2", "geomean spd",
                   "mean factor", "SC same or lower"});
  for (std::size_t m = 0; m < fu_sizes.size(); ++m) {
    const std::vector<LoopResult>& rb = sweep.by_point[base_index[m]];
    const std::vector<LoopResult>& ru = sweep.by_point[unrolled_index[m]];

    int both = 0;
    int faster = 0;
    int fast15 = 0;
    int fast2 = 0;
    int sc_ok = 0;
    std::vector<double> speedups;
    OnlineStats factors;
    for (std::size_t i = 0; i < rb.size(); ++i) {
      if (!rb[i].ok || !ru[i].ok) continue;
      ++both;
      const double speedup = static_cast<double>(rb[i].ii) / ru[i].ii_per_source;
      speedups.push_back(speedup);
      if (speedup > 1.0 + 1e-9) ++faster;
      if (speedup >= 1.5 - 1e-9) ++fast15;
      if (speedup >= 2.0 - 1e-9) ++fast2;
      if (ru[i].stage_count <= rb[i].stage_count + 1) ++sc_ok;
      factors.add(ru[i].unroll_factor);
    }
    const double n = both > 0 ? static_cast<double>(both) : 1.0;
    table.add_row({cat(fu_sizes[m], " FUs"), percent(faster / n), percent(fast15 / n),
                   percent(fast2 / n), geomean(speedups), factors.mean(), percent(sc_ok / n)});
  }
  table.render(std::cout);

  std::cout << "\nNote: speedup = II_original / (II_unrolled / U); factors chosen by the\n"
               "Lavery/Hwu-style per-source-rate policy, bounded at "
            << bench::max_unroll() << " (QVLIW_MAX_UNROLL).\n";
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
