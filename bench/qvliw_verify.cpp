// qvliw_verify — offline translation validation of dumped artifact
// bundles (src/verify).
//
//   qvliw_verify dump OUT.qvb [--index N] [--clusters K] [--budget R]
//                [--topology ring|mesh|crossbar]
//     Compiles one suite loop through the full pipeline on the K-cluster
//     machine (K=1: the 6-FU single-cluster machine; default topology:
//     ring) and writes the emitted artifacts — rewritten loop, machine,
//     schedule, queue allocation — as a verify bundle.
//
//   qvliw_verify check FILE...
//     Decodes each bundle and re-derives its legality from first
//     principles with the independent verifier.  Prints one line per
//     violated rule; exit 0 only when every bundle is clean.
//
// The DDG is rebuilt from the bundled loop at check time, so a bundle
// cannot smuggle in a forged dependence graph.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "support/diagnostics.h"
#include "verify/verify.h"

namespace qvliw {
namespace {

int usage() {
  std::cerr << "usage: qvliw_verify dump OUT.qvb [--index N] [--clusters K] [--budget R]"
            << " [--topology ring|mesh|crossbar]\n"
            << "       qvliw_verify check FILE...\n";
  return 2;
}

int dump(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string out_path = argv[2];
  int index = 0;
  int clusters = 4;
  int budget = 6;
  TopologyKind kind = TopologyKind::kRing;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--index" && a + 1 < argc) {
      index = std::atoi(argv[++a]);
    } else if (arg == "--clusters" && a + 1 < argc) {
      clusters = std::atoi(argv[++a]);
    } else if (arg == "--budget" && a + 1 < argc) {
      budget = std::atoi(argv[++a]);
    } else if (arg == "--topology" && a + 1 < argc) {
      const auto parsed = parse_topology_kind(argv[++a]);
      if (!parsed.has_value()) return usage();
      kind = *parsed;
    } else {
      return usage();
    }
  }

  const Suite suite = bench::make_suite();
  if (index < 0 || index >= static_cast<int>(suite.loops.size())) {
    std::cerr << "loop index " << index << " out of range (suite has " << suite.loops.size()
              << " loops; QVLIW_LOOPS resizes it)\n";
    return 2;
  }

  PipelineOptions options;
  options.unroll = true;
  options.max_unroll = bench::max_unroll();
  options.ims.budget_ratio = budget;
  MachineConfig machine = MachineConfig::single_cluster_machine(6);
  if (clusters > 1) {
    machine = MachineConfig::topology_machine(kind, clusters);
    options.scheduler = SchedulerKind::kClustered;
  }

  // Run the pipeline keeping the context, so the artifacts the stages
  // produced (not just the scalar result) are still in hand.
  PipelineContext ctx(suite.loops[static_cast<std::size_t>(index)], machine, options);
  run_stages(ctx, full_stage_plan());
  if (!ctx.result.ok) {
    std::cerr << "pipeline failed on loop " << ctx.result.name << " ("
              << ctx.result.failed_stage << "): " << ctx.result.failure << "\n";
    return 2;
  }

  VerifyBundle bundle;
  bundle.loop = ctx.loop;
  bundle.machine = *ctx.machine;
  bundle.schedule = ctx.sched.schedule;
  bundle.has_allocation = true;
  bundle.allocation = ctx.allocation;
  bundle.check_fanout = options.insert_copies;
  bundle.must_fit = ctx.result.fits_machine_queues;

  const std::string blob = encode_verify_bundle(bundle);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.flush();
  if (!out.good()) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  std::cout << "wrote " << out_path << ": loop " << ctx.result.name << " on " << machine.name
            << ", II " << ctx.sched.schedule.ii() << ", " << blob.size() << " bytes\n";
  return 0;
}

int check(int argc, char** argv) {
  if (argc < 3) return usage();
  int bad = 0;
  for (int a = 2; a < argc; ++a) {
    const std::string path = argv[a];
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << path << ": cannot read\n";
      ++bad;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      const VerifyBundle bundle = decode_verify_bundle(std::move(buffer).str());
      const VerifyReport report = verify_bundle(bundle);
      if (report.ok()) {
        std::cout << path << ": ok (loop " << bundle.loop.name << ", II "
                  << bundle.schedule.ii() << ", " << bundle.machine.name << ")\n";
      } else {
        ++bad;
        std::cout << path << ": " << report.violations() << " violation(s)\n";
        for (const VerifyDiagnostic& d : report.diagnostics) {
          std::cout << "  " << d.message << "\n";
        }
      }
    } catch (const Error& error) {
      std::cerr << path << ": malformed bundle: " << error.what() << "\n";
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode == "dump") return dump(argc, argv);
  if (mode == "check") return check(argc, argv);
  return usage();
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
