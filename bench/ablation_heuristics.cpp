// Ablation A2 — partitioning heuristics and scheduler budget.
//
// DESIGN.md calls out two load-bearing choices in the partitioner: the
// cluster-selection heuristic (affinity vs load-balance vs first-fit) and
// IMS's backtracking budget.  This bench quantifies both on the clustered
// machines, using the same-II-as-single-cluster criterion of Fig. 6.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

struct Outcome {
  double same_ii = 0.0;
  double mean_ratio = 0.0;
  double failed = 0.0;
};

Outcome compare(const std::vector<LoopResult>& rs, const std::vector<LoopResult>& rc) {
  int comparable = 0;
  int same = 0;
  int failed = 0;
  OnlineStats ratio;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (!rs[i].ok) continue;
    if (!rc[i].ok) {
      ++failed;
      continue;
    }
    ++comparable;
    if (rc[i].ii <= rs[i].ii) ++same;
    ratio.add(static_cast<double>(rc[i].ii) / rs[i].ii);
  }
  Outcome out;
  const double n = comparable > 0 ? static_cast<double>(comparable) : 1.0;
  const double all = static_cast<double>(comparable + failed);
  out.same_ii = same / n;
  out.mean_ratio = ratio.mean();
  out.failed = all > 0 ? failed / all : 0.0;
  return out;
}

int run() {
  print_banner(std::cout, "Ablation A2 — cluster heuristic and IMS budget",
               "affinity ordering and a budget ratio of ~6 carry the Fig. 6 result");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  PipelineOptions base;
  base.unroll = true;
  base.max_unroll = bench::max_unroll();

  std::cout << "Cluster-selection heuristic (same-II fraction vs single cluster):\n";
  TextTable heuristic_table({"clusters", "heuristic", "same II", "mean II ratio", "unschedulable"});
  for (int clusters : {4, 6}) {
    const MachineConfig single = MachineConfig::single_cluster_machine(3 * clusters);
    const MachineConfig ring = MachineConfig::clustered_machine(clusters);
    const auto rs = run_suite(suite.loops, single, base);
    for (const auto heuristic : {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance,
                                 ClusterHeuristic::kFirstFit}) {
      PipelineOptions options = base;
      options.scheduler = SchedulerKind::kClustered;
      options.heuristic = heuristic;
      const Outcome out = compare(rs, run_suite(suite.loops, ring, options));
      heuristic_table.add_row({cat(clusters), std::string(cluster_heuristic_name(heuristic)),
                               percent(out.same_ii), out.mean_ratio, percent(out.failed)});
    }
  }
  heuristic_table.render(std::cout);

  std::cout << "\nIMS backtracking budget (4 clusters, affinity):\n";
  TextTable budget_table({"budget ratio", "same II", "mean II ratio", "unschedulable"});
  {
    const MachineConfig single = MachineConfig::single_cluster_machine(12);
    const MachineConfig ring = MachineConfig::clustered_machine(4);
    const auto rs = run_suite(suite.loops, single, base);
    for (int budget : {1, 2, 6, 12}) {
      PipelineOptions options = base;
      options.scheduler = SchedulerKind::kClustered;
      options.ims.budget_ratio = budget;
      const Outcome out = compare(rs, run_suite(suite.loops, ring, options));
      budget_table.add_row(
          {cat(budget, "x"), percent(out.same_ii), out.mean_ratio, percent(out.failed)});
    }
  }
  budget_table.render(std::cout);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
