// Ablation A2 — partitioning heuristics and scheduler budget.
//
// DESIGN.md calls out two load-bearing choices in the partitioner: the
// cluster-selection heuristic (affinity vs load-balance vs first-fit) and
// IMS's backtracking budget.  This bench quantifies both on the clustered
// machines, using the same-II-as-single-cluster criterion of Fig. 6.
//
// This is the sweep the prefix cache was built for: every clustered point
// of one cluster count shares the unrolled/copy-inserted loop, DDG and
// MII bounds — only the partitioned scheduling differs per point.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

struct Outcome {
  double same_ii = 0.0;
  double mean_ratio = 0.0;
  double failed = 0.0;
};

Outcome compare(const std::vector<LoopResult>& rs, const std::vector<LoopResult>& rc) {
  int comparable = 0;
  int same = 0;
  int failed = 0;
  OnlineStats ratio;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (!rs[i].ok) continue;
    if (!rc[i].ok) {
      ++failed;
      continue;
    }
    ++comparable;
    if (rc[i].ii <= rs[i].ii) ++same;
    ratio.add(static_cast<double>(rc[i].ii) / rs[i].ii);
  }
  Outcome out;
  const double n = comparable > 0 ? static_cast<double>(comparable) : 1.0;
  const double all = static_cast<double>(comparable + failed);
  out.same_ii = same / n;
  out.mean_ratio = ratio.mean();
  out.failed = all > 0 ? failed / all : 0.0;
  return out;
}

constexpr ClusterHeuristic kHeuristics[] = {ClusterHeuristic::kAffinity,
                                            ClusterHeuristic::kLoadBalance,
                                            ClusterHeuristic::kFirstFit};
constexpr int kBudgets[] = {1, 2, 6, 12};

int run() {
  print_banner(std::cout, "Ablation A2 — cluster heuristic and IMS budget",
               "affinity ordering and a budget ratio of ~6 carry the Fig. 6 result");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  PipelineOptions base;
  base.unroll = true;
  base.max_unroll = bench::max_unroll();

  // One sweep: single-cluster baselines, the 3 heuristics per cluster
  // count, and the budget ladder at 4 clusters.  Point indices are
  // recorded at push time so the tables can never pair with the wrong
  // point if the construction order changes.
  const std::vector<int> cluster_sizes = {4, 6};
  std::vector<SweepPoint> points;
  std::map<int, std::size_t> single_index;                 // clusters -> baseline
  std::vector<std::vector<std::size_t>> heuristic_index;   // [cluster][heuristic]
  std::vector<std::size_t> budget_index;

  for (int clusters : cluster_sizes) {
    single_index[clusters] = points.size();
    points.push_back({cat("single-", 3 * clusters, "fu"),
                      MachineConfig::single_cluster_machine(3 * clusters), base});
    heuristic_index.emplace_back();
    for (const ClusterHeuristic heuristic : kHeuristics) {
      PipelineOptions options = base;
      options.scheduler = SchedulerKind::kClustered;
      options.heuristic = heuristic;
      heuristic_index.back().push_back(points.size());
      points.push_back({cat("ring-", clusters, "-", cluster_heuristic_name(heuristic)),
                        MachineConfig::clustered_machine(clusters), options});
    }
  }
  for (int budget : kBudgets) {
    PipelineOptions options = base;
    options.scheduler = SchedulerKind::kClustered;
    options.ims.budget_ratio = budget;
    budget_index.push_back(points.size());
    points.push_back({cat("ring-4-budget-", budget, "x"), MachineConfig::clustered_machine(4),
                      options});
  }

  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  std::cout << "Cluster-selection heuristic (same-II fraction vs single cluster):\n";
  TextTable heuristic_table({"clusters", "heuristic", "same II", "mean II ratio", "unschedulable"});
  for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
    const int clusters = cluster_sizes[c];
    const std::vector<LoopResult>& rs = sweep.by_point[single_index[clusters]];
    for (std::size_t h = 0; h < std::size(kHeuristics); ++h) {
      const Outcome out = compare(rs, sweep.by_point[heuristic_index[c][h]]);
      heuristic_table.add_row({cat(clusters),
                               std::string(cluster_heuristic_name(kHeuristics[h])),
                               percent(out.same_ii), out.mean_ratio, percent(out.failed)});
    }
  }
  heuristic_table.render(std::cout);

  std::cout << "\nIMS backtracking budget (4 clusters, affinity):\n";
  TextTable budget_table({"budget ratio", "same II", "mean II ratio", "unschedulable"});
  for (std::size_t b = 0; b < std::size(kBudgets); ++b) {
    const Outcome out = compare(sweep.by_point[single_index[4]], sweep.by_point[budget_index[b]]);
    budget_table.add_row(
        {cat(kBudgets[b], "x"), percent(out.same_ii), out.mean_ratio, percent(out.failed)});
  }
  budget_table.render(std::cout);
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
