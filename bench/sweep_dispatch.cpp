// Dispatched multi-process sweep driver.
//
// Runs the perf_micro multi-heuristic sweep through the local dispatcher
// (harness/dispatch.h): N forked shard workers over a shared artifact
// store, each checkpointing into its task journal, with stragglers killed
// past --deadline seconds of journal silence and requeued onto a spare
// worker (their journal replays the completed tasks).  The merged result
// is written as the same canonical JSON `sweep_shard single` emits, so CI
// can diff the two byte-for-byte — including across a forced requeue.
//
//   sweep_dispatch run --shards N --checkpoint DIR --out FILE.json
//       [--workers W] [--threads M] [--warm] [--store DIR] [--axis loops|points]
//       [--deadline SECONDS] [--max-attempts K]
//       [--delay-shard I [--delay-seconds S]]   # straggler injection (attempt 0)
//   sweep_dispatch --store-stats --store DIR
//
// --workers W is the *process* count; --threads M asks for M worker
// threads inside each forked shard worker (default QVLIW_WORKERS, else
// 1).  The dispatcher's procs x threads oversubscription guard
// (resolved_worker_threads) clamps M to the machine's per-process share,
// so W x M never exceeds the hardware thread count.
//
// --delay-shard makes the named shard's *first* worker sleep after its
// sweep completes but before the shard file is written: the dispatcher
// sees a finished journal that has stopped growing and no shard file,
// kills the worker, and the requeued attempt replays everything from the
// journal — the end-to-end straggler-retry + checkpoint-replay drill CI
// runs.  Suite size follows QVLIW_LOOPS like every bench.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "harness/dispatch.h"
#include "support/diagnostics.h"

namespace qvliw {
namespace {

struct Args {
  std::string out;
  std::string store;
  std::string checkpoint;
  int shards = 2;
  int workers = 0;  // concurrent processes; 0 = one per shard
  int threads = bench::env_workers();  // worker threads per process; <= 1 = serial
  ShardAxis axis = ShardAxis::kLoops;
  double deadline = 30.0;
  int max_attempts = 3;
  int delay_shard = -1;
  double delay_seconds = 600.0;
  bool warm = false;
  bool store_stats = false;
};

int usage() {
  std::cerr << "usage:\n"
            << "  sweep_dispatch run --shards N --checkpoint DIR --out FILE.json\n"
            << "      [--workers W] [--threads M] [--warm] [--store DIR] [--axis loops|points]\n"
            << "      [--deadline SECONDS] [--max-attempts K]\n"
            << "      [--delay-shard I [--delay-seconds S]]\n"
            << "  sweep_dispatch --store-stats --store DIR\n";
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  std::string mode = argv[1];
  if (mode == "--store-stats") {
    args.store_stats = true;
  } else if (mode != "run") {
    return false;
  }
  for (int a = 2; a < argc; ++a) {
    const std::string flag = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    const char* v = nullptr;
    if (flag == "--out") {
      if ((v = next()) == nullptr) return false;
      args.out = v;
    } else if (flag == "--store") {
      if ((v = next()) == nullptr) return false;
      args.store = v;
    } else if (flag == "--checkpoint") {
      if ((v = next()) == nullptr) return false;
      args.checkpoint = v;
    } else if (flag == "--shards") {
      if ((v = next()) == nullptr) return false;
      args.shards = std::atoi(v);
    } else if (flag == "--workers") {
      if ((v = next()) == nullptr) return false;
      args.workers = std::atoi(v);
    } else if (flag == "--threads") {
      if ((v = next()) == nullptr) return false;
      args.threads = std::atoi(v);
    } else if (flag == "--deadline") {
      if ((v = next()) == nullptr) return false;
      args.deadline = std::atof(v);
    } else if (flag == "--max-attempts") {
      if ((v = next()) == nullptr) return false;
      args.max_attempts = std::atoi(v);
    } else if (flag == "--delay-shard") {
      if ((v = next()) == nullptr) return false;
      args.delay_shard = std::atoi(v);
    } else if (flag == "--delay-seconds") {
      if ((v = next()) == nullptr) return false;
      args.delay_seconds = std::atof(v);
    } else if (flag == "--axis") {
      if ((v = next()) == nullptr) return false;
      const std::string axis = v;
      if (axis == "loops") {
        args.axis = ShardAxis::kLoops;
      } else if (axis == "points") {
        args.axis = ShardAxis::kPoints;
      } else {
        return false;
      }
    } else if (flag == "--warm") {
      args.warm = true;
    } else if (flag == "--store-stats") {
      args.store_stats = true;
    } else {
      return false;
    }
  }
  if (args.store_stats) return true;
  return !args.out.empty() && !args.checkpoint.empty() && args.shards >= 1;
}

int run_mode(const Args& args) {
  const Suite suite = bench::make_suite();
  const std::vector<SweepPoint> points = bench::perf_sweep_points();

  DispatchOptions options;
  options.shard_count = args.shards;
  options.max_workers = args.workers;
  options.worker_threads = args.threads;
  options.axis = args.axis;
  options.checkpoint_dir = args.checkpoint;
  options.store_dir = args.store;
  options.warm_start = args.warm;
  options.straggler_deadline_seconds = args.deadline;
  options.max_attempts = args.max_attempts;
  if (args.delay_shard >= 0) {
    options.before_emit = [delay_shard = args.delay_shard,
                           delay = args.delay_seconds](const ShardWorkerContext& ctx) {
      if (ctx.shard_index == delay_shard && ctx.attempt == 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    };
  }

  const int processes = args.workers > 0 ? args.workers : args.shards;
  std::cout << "dispatching " << args.shards << " shard(s) over " << processes
            << " worker(s) x " << resolved_worker_threads(args.threads, processes)
            << " thread(s) (" << suite.loops.size() << " loops x " << points.size() << " points"
            << (args.warm ? ", warm ladders" : "")
            << (args.store.empty() ? "" : ", shared store ") << args.store
            << ", journals in " << args.checkpoint << ", straggler deadline "
            << fixed(args.deadline, 1) << "s)...\n";
  const DispatchReport report = dispatch_sweep(suite.loops, points, options);

  for (const DispatchAttempt& attempt : report.attempts) {
    std::cout << "  shard " << attempt.shard_index << " attempt " << attempt.attempt
              << " on worker " << attempt.worker_slot << ": "
              << (attempt.completed ? "completed" : "failed")
              << (attempt.killed ? " (killed as straggler)" : "") << " in "
              << fixed(attempt.seconds, 2) << "s\n";
  }
  std::cout << "launches: " << report.launches << "\nrequeues: " << report.requeues << "\n"
            << "merged " << report.merged.pipelines << " pipelines; checkpoint replayed "
            << report.merged.checkpoint.tasks_replayed << " / executed "
            << report.merged.checkpoint.tasks_executed << " task(s), journals "
            << report.merged.checkpoint.journal_bytes << " bytes\n";
  bench::print_store_counters(std::cout, report.merged);

  std::ostringstream json;
  bench::write_results_json(json, points, report.merged);
  std::ofstream out(args.out, std::ios::binary | std::ios::trunc);
  out << json.str();
  if (!out.good()) {
    std::cerr << "cannot write " << args.out << "\n";
    return 1;
  }
  std::cout << "wrote " << args.out << "\n";
  return 0;
}

int run(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (args.store_stats) return bench::print_store_stats(std::cout, args.store);
    return run_mode(args);
  } catch (const Error& e) {
    std::cerr << "sweep_dispatch: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
