// Pipeline performance microbenchmark.
//
// Times the multi-heuristic sweep that the prefix-artifact cache was
// built for — every point shares the unrolled/copy-inserted loop, DDG and
// MII bounds of the 4-cluster machine and differs only in back-end
// scheduling options — once with the cache off, once with it on, and once
// more with back-end warm starting on top: the points form ascending-
// budget ladders per heuristic, so each larger-budget point is seeded
// with its predecessor's accepted schedule and the II search collapses
// into a verification pass.  Results of all three runs are verified
// identical (the warm run may differ only in scheduling-effort stats).
// The cached runs also persist their front-end artifacts and per-machine
// MII maps to the content-addressed on-disk store (QVLIW_STORE_DIR,
// default .qvliw-store), so a second invocation of this bench warm-starts
// from disk and reports nonzero disk hit rates.  Emits a machine-readable
// BENCH_pipeline.json (override the path with QVLIW_BENCH_JSON or
// argv[1]) with per-stage wall times, cache/disk/warm-start hit rates,
// per-point backend labels, back-end throughput, and the cache and
// warm-start speedups, to track the perf trajectory across commits
// (tools/check_bench_regression.py gates CI on it).
//
// A fourth and fifth run exercise the checkpoint ledger: the same cached
// sweep with SweepOptions::checkpoint_dir set runs once against a fresh
// journal (every task executed and journaled) and once against the warm
// journal (every task replayed, nothing executed); both must be
// result-identical to the cached run, reported as
// `checkpoint_results_identical` and gated in CI alongside
// `results_identical`.
//
// Every sweep runs on SweepOptions::workers threads (--workers N /
// QVLIW_WORKERS, 0 = one per hardware thread).  When more than one
// worker resolves, an extra single-threaded uncached run provides the
// serial baseline: `parallel_speedup` = serial wall / threaded wall, and
// `parallel_results_identical` asserts the threaded sweep is
// result-identical to the serial one (the determinism contract CI gates).
//
//   QVLIW_LOOPS=200 ./build/bench/perf_micro [out.json] [--workers N]
//                    [--topology ring|mesh|crossbar] [--clusters N]
//   ./build/bench/perf_micro --list-backends   # registry contents only
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "sched/backend.h"
#include "support/artifact_store.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace qvliw {
namespace {

bool results_identical(const SweepResult& a, const SweepResult& b) {
  if (a.by_point.size() != b.by_point.size()) return false;
  for (std::size_t p = 0; p < a.by_point.size(); ++p) {
    if (a.by_point[p].size() != b.by_point[p].size()) return false;
    for (std::size_t i = 0; i < a.by_point[p].size(); ++i) {
      const LoopResult& x = a.by_point[p][i];
      const LoopResult& y = b.by_point[p][i];
      if (x.ok != y.ok || x.failure != y.failure || x.failed_stage != y.failed_stage ||
          x.ii != y.ii || x.mii != y.mii || x.res_mii != y.res_mii || x.rec_mii != y.rec_mii ||
          x.stage_count != y.stage_count || x.total_queues != y.total_queues ||
          x.registers != y.registers || x.sched_ops != y.sched_ops ||
          x.unroll_factor != y.unroll_factor || x.ipc_static != y.ipc_static ||
          x.ipc_dynamic != y.ipc_dynamic || x.fits_machine_queues != y.fits_machine_queues ||
          x.queue_fit_retries != y.queue_fit_retries || x.verify_checked != y.verify_checked ||
          x.verify_violations != y.verify_violations) {
        return false;
      }
    }
  }
  return true;
}

/// Warm-started final IIs must never exceed the cold run's.
bool iis_never_worse(const SweepResult& cold, const SweepResult& warm) {
  for (std::size_t p = 0; p < cold.by_point.size(); ++p) {
    for (std::size_t i = 0; i < cold.by_point[p].size(); ++i) {
      const LoopResult& c = cold.by_point[p][i];
      const LoopResult& w = warm.by_point[p][i];
      if (c.ok && (!w.ok || w.ii > c.ii)) return false;
    }
  }
  return true;
}

/// Search-effort telemetry summed over every cell of a run (the new
/// ImsStats fields the arena searcher reports).
struct SchedTelemetry {
  long long placements = 0;
  long long evictions = 0;
  long long forced = 0;
  long long budget_spent = 0;
  long long mii_optimal = 0;   // cells whose accepted II == MII
  bool ii_consistent = true;   // every mii_optimal cell really has ii == mii
};

SchedTelemetry sched_telemetry(const SweepResult& sweep) {
  SchedTelemetry t;
  for (const std::vector<LoopResult>& point : sweep.by_point) {
    for (const LoopResult& r : point) {
      t.placements += r.sched_stats.placements;
      t.evictions += r.sched_stats.evictions;
      t.forced += r.sched_stats.forced;
      t.budget_spent += r.sched_stats.budget_spent;
      if (r.sched_stats.mii_optimal) {
        ++t.mii_optimal;
        if (!r.ok || r.ii != r.mii) t.ii_consistent = false;
      }
    }
  }
  return t;
}

/// The MII-optimality bit is an outcome property (II == MII), so it must
/// agree cell-for-cell across runs regardless of how each run obtained
/// its schedule (search, warm seed, or ladder memo install).
bool mii_optimal_identical(const SweepResult& a, const SweepResult& b) {
  if (a.by_point.size() != b.by_point.size()) return false;
  for (std::size_t p = 0; p < a.by_point.size(); ++p) {
    if (a.by_point[p].size() != b.by_point[p].size()) return false;
    for (std::size_t i = 0; i < a.by_point[p].size(); ++i) {
      if (a.by_point[p][i].sched_stats.mii_optimal != b.by_point[p][i].sched_stats.mii_optimal) {
        return false;
      }
    }
  }
  return true;
}

void print_backends(std::ostream& os) {
  os << "registered scheduler backends:";
  for (const std::string& name : SchedulerRegistry::instance().names()) os << " " << name;
  os << "\n";
}

void write_stage_seconds(std::ostream& os, const SweepResult& sweep, const char* indent) {
  os << "{";
  bool first = true;
  for (const StageTotal& total : sweep.stage_totals) {
    os << (first ? "" : ",") << "\n" << indent << "  \"" << total.stage
       << "\": " << fixed(total.seconds, 6);
    first = false;
  }
  os << "\n" << indent << "}";
}

void write_run(std::ostream& os, const char* name, const SweepResult& sweep) {
  const SchedTelemetry telemetry = sched_telemetry(sweep);
  const double backend_s = bench::backend_seconds(sweep);
  const double backend_lps =
      backend_s > 0.0 ? static_cast<double>(sweep.pipelines) / backend_s : 0.0;
  os << "  \"" << name << "\": {\n"
     << "    \"wall_seconds\": " << fixed(sweep.wall_seconds, 6) << ",\n"
     << "    \"pipelines\": " << sweep.pipelines << ",\n"
     << "    \"loops_per_second\": " << fixed(sweep.pipelines_per_second(), 2) << ",\n"
     << "    \"backend_seconds\": " << fixed(backend_s, 6) << ",\n"
     << "    \"backend_loops_per_second\": " << fixed(backend_lps, 2) << ",\n"
     << "    \"cache_hit_rate\": " << fixed(sweep.cache.hit_rate(), 6) << ",\n"
     << "    \"cache_probes\": " << sweep.cache.probes() << ",\n"
     << "    \"cache_hits\": " << sweep.cache.hits() << ",\n"
     << "    \"disk_hit_rate\": " << fixed(sweep.cache.disk_hit_rate(), 6) << ",\n"
     << "    \"disk_probes\": " << sweep.cache.disk_probes << ",\n"
     << "    \"disk_hits\": " << sweep.cache.disk_hits << ",\n"
     << "    \"mii_disk_probes\": " << sweep.cache.mii_disk_probes << ",\n"
     << "    \"mii_disk_hits\": " << sweep.cache.mii_disk_hits << ",\n"
     << "    \"sched_disk_probes\": " << sweep.cache.sched_disk_probes << ",\n"
     << "    \"sched_disk_hits\": " << sweep.cache.sched_disk_hits << ",\n"
     << "    \"warm_start_hit_rate\": " << fixed(sweep.cache.warm_hit_rate(), 6) << ",\n"
     << "    \"warm_probes\": " << sweep.cache.warm_probes << ",\n"
     << "    \"warm_hits\": " << sweep.cache.warm_hits << ",\n"
     << "    \"sched_memo_probes\": " << sweep.cache.sched_memo_probes << ",\n"
     << "    \"sched_memo_hits\": " << sweep.cache.sched_memo_hits << ",\n"
     << "    \"unroll_probe_factors\": " << sweep.cache.probe_factors << ",\n"
     << "    \"unroll_probe_naive_fallbacks\": " << sweep.cache.probe_fallbacks << ",\n"
     << "    \"verify_checked\": " << sweep.verify_checked() << ",\n"
     << "    \"verify_violations\": " << sweep.verify_violations() << ",\n"
     << "    \"verify_memo_probes\": " << sweep.cache.verify_memo_probes << ",\n"
     << "    \"verify_memo_hits\": " << sweep.cache.verify_memo_hits << ",\n"
     << "    \"alloc_memo_probes\": " << sweep.cache.alloc_memo_probes << ",\n"
     << "    \"alloc_memo_hits\": " << sweep.cache.alloc_memo_hits << ",\n"
     << "    \"sched_placements\": " << telemetry.placements << ",\n"
     << "    \"sched_evictions\": " << telemetry.evictions << ",\n"
     << "    \"sched_forced\": " << telemetry.forced << ",\n"
     << "    \"sched_budget_spent\": " << telemetry.budget_spent << ",\n"
     << "    \"sched_mii_optimal\": " << telemetry.mii_optimal << ",\n"
     << "    \"mii_optimal_ii_consistent\": " << (telemetry.ii_consistent ? "true" : "false")
     << ",\n"
     << "    \"tasks_replayed\": " << sweep.checkpoint.tasks_replayed << ",\n"
     << "    \"tasks_executed\": " << sweep.checkpoint.tasks_executed << ",\n"
     << "    \"journal_bytes\": " << sweep.checkpoint.journal_bytes << ",\n"
     << "    \"stage_seconds\": ";
  write_stage_seconds(os, sweep, "    ");
  os << "\n  }";
}

void write_points(std::ostream& os, const std::vector<SweepPoint>& points) {
  os << "  \"points\": [";
  for (std::size_t p = 0; p < points.size(); ++p) {
    const SchedulerBackend* backend =
        find_scheduler_backend(points[p].options.scheduler, points[p].options.backend);
    os << (p == 0 ? "" : ",") << "\n    {\"label\": \"" << points[p].label << "\", \"backend\": \""
       << (backend != nullptr ? backend->name() : std::string_view("<unknown>"))
       << "\", \"budget_ratio\": " << points[p].options.ims.budget_ratio << "}";
  }
  os << "\n  ]";
}

int run(int argc, char** argv) {
  int workers_request = bench::env_workers();
  bench::TopologyChoice topology;
  std::string out_override;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--list-backends") {
      print_backends(std::cout);
      return 0;
    }
    if (arg == "--workers" && a + 1 < argc) {
      workers_request = std::atoi(argv[++a]);
    } else if (arg == "--topology" || arg == "--clusters") {
      if (!topology.parse_flag(argc, argv, a)) {
        std::cerr << "bad " << arg << " value\n";
        return 2;
      }
    } else {
      out_override = arg;
    }
  }

  print_banner(std::cout, "perf — sweep throughput, prefix-cache and warm-start speedups",
               "shared front ends + seeded budget ladders shrink sweeps to their novel work");
  print_backends(std::cout);
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  SweepOptions uncached_options;
  uncached_options.use_cache = false;
  uncached_options.workers = workers_request;
  // Every run of this bench re-verifies every emitted artifact with the
  // independent legality checker and fails the loop on any violation, so
  // results_identical doubles as a translation-validation gate.
  uncached_options.verify_mode = SweepVerifyMode::kStrict;
  const int workers = resolved_sweep_workers(uncached_options);

  const std::vector<SweepPoint> points = bench::perf_sweep_points(topology);
  std::cout << "sweep: " << points.size() << " points (3 heuristics x 2 IMS budgets on the "
            << topology.clusters << "-cluster " << topology_kind_name(topology.kind) << "), "
            << workers << " worker(s)\n\n";

  // Serial baseline for parallel_speedup, only worth a run when the
  // threaded sweeps actually use more than one worker.
  bool parallel_identical = true;
  double parallel_speedup = 1.0;
  SweepResult serial;
  if (workers > 1) {
    SweepOptions serial_options = uncached_options;
    serial_options.workers = 1;
    serial_options.parallel = false;
    std::cout << "running serial baseline (1 worker, uncached)...\n";
    serial = SweepRunner(serial_options).run(suite.loops, points);
  }

  std::cout << "running uncached (every point recomputes its front end)...\n";
  const SweepResult uncached = SweepRunner(uncached_options).run(suite.loops, points);
  if (workers > 1) {
    parallel_identical = results_identical(serial, uncached);
    parallel_speedup =
        uncached.wall_seconds > 0.0 ? serial.wall_seconds / uncached.wall_seconds : 0.0;
  }

  SweepOptions cached_options;
  cached_options.store_dir = ArtifactStore::default_dir();
  cached_options.workers = workers_request;
  cached_options.verify_mode = SweepVerifyMode::kStrict;
  std::cout << "running cached (prefix artifacts shared across points; persisted to "
            << cached_options.store_dir << ")...\n";
  const SweepResult cached = SweepRunner(cached_options).run(suite.loops, points);

  SweepOptions warm_options = cached_options;
  warm_options.warm_start = true;
  std::cout << "running warm (budget ladders seed the scheduler with the previous "
            << "point's schedule)...\n";
  const SweepResult warm = SweepRunner(warm_options).run(suite.loops, points);

  // Checkpoint ledger drill: cold journal (everything executed and
  // journaled), then warm journal (everything replayed).
  const char* ckpt_env = std::getenv("QVLIW_CHECKPOINT_DIR");
  SweepOptions ckpt_options = cached_options;
  ckpt_options.checkpoint_dir = ckpt_env != nullptr && ckpt_env[0] != '\0'
                                    ? ckpt_env
                                    : ".qvliw-checkpoint";
  std::filesystem::remove_all(ckpt_options.checkpoint_dir);
  std::cout << "running checkpointed (fresh task journal in " << ckpt_options.checkpoint_dir
            << ")...\n";
  const SweepResult checkpointed = SweepRunner(ckpt_options).run(suite.loops, points);
  std::cout << "running checkpoint replay (every task restored from the journal)...\n";
  const SweepResult replayed = SweepRunner(ckpt_options).run(suite.loops, points);

  const bool identical = results_identical(uncached, cached);
  const bool warm_identical = results_identical(uncached, warm);
  const bool never_worse = iis_never_worse(cached, warm);
  const bool optimality_identical =
      mii_optimal_identical(uncached, cached) && mii_optimal_identical(uncached, warm);
  const bool checkpoint_identical =
      results_identical(cached, checkpointed) && results_identical(cached, replayed) &&
      replayed.checkpoint.tasks_executed == 0 &&
      replayed.checkpoint.tasks_replayed == checkpointed.checkpoint.tasks_executed;
  const double speedup =
      cached.wall_seconds > 0.0 ? uncached.wall_seconds / cached.wall_seconds : 0.0;
  const double warm_backend_speedup = bench::backend_seconds(warm) > 0.0
                                          ? bench::backend_seconds(cached) /
                                                bench::backend_seconds(warm)
                                          : 0.0;

  TextTable table({"variant", "wall s", "backend s", "loops/s", "cache hit", "warm hit"});
  table.add_row({std::string("uncached"), uncached.wall_seconds,
                 bench::backend_seconds(uncached), uncached.pipelines_per_second(),
                 percent(uncached.cache.hit_rate()), percent(uncached.cache.warm_hit_rate())});
  table.add_row({std::string("cached"), cached.wall_seconds, bench::backend_seconds(cached),
                 cached.pipelines_per_second(), percent(cached.cache.hit_rate()),
                 percent(cached.cache.warm_hit_rate())});
  table.add_row({std::string("warm"), warm.wall_seconds, bench::backend_seconds(warm),
                 warm.pipelines_per_second(), percent(warm.cache.hit_rate()),
                 percent(warm.cache.warm_hit_rate())});
  table.render(std::cout);
  if (workers > 1) {
    std::cout << "\nparallel: " << workers << " workers, " << fixed(parallel_speedup, 2)
              << "x over serial; threaded results identical: "
              << (parallel_identical ? "yes" : "NO — BUG") << "\n";
  }
  std::cout << "\ncache speedup: " << fixed(speedup, 2) << "x; warm back-end speedup: "
            << fixed(warm_backend_speedup, 2) << "x; results identical: "
            << (identical && warm_identical ? "yes" : "NO — BUG")
            << "; warm IIs never worse: " << (never_worse ? "yes" : "NO — BUG") << "\n"
            << "checkpoint: " << checkpointed.checkpoint.tasks_executed
            << " task(s) journaled cold, " << replayed.checkpoint.tasks_replayed
            << " replayed warm (" << replayed.checkpoint.journal_bytes
            << " journal bytes); replay identical: "
            << (checkpoint_identical ? "yes" : "NO — BUG") << "\n"
            << "disk store: " << cached.cache.disk_hits << "/" << cached.cache.disk_probes
            << " front entries + " << cached.cache.mii_disk_hits << "/"
            << cached.cache.mii_disk_probes << " MII maps + " << warm.cache.sched_disk_hits
            << "/" << warm.cache.sched_disk_probes
            << " warm schedules warm (rerun the bench for a fully warm start)\n"
            << "ladder memo: " << cached.cache.sched_memo_hits << "/"
            << cached.cache.sched_memo_probes << " MII-optimal installs cached, "
            << warm.cache.sched_memo_hits << "/" << warm.cache.sched_memo_probes << " warm\n"
            << "verify: strict on every run; " << cached.verify_checked()
            << " artifact bundles checked cold, " << warm.verify_checked() << " warm, "
            << cached.verify_violations() + warm.verify_violations() << " violation(s)\n";
  bench::print_sweep_footer(std::cout, warm);

  const char* env_path = std::getenv("QVLIW_BENCH_JSON");
  const std::string out_path = !out_override.empty() ? out_override
                               : env_path != nullptr ? env_path
                                                     : "BENCH_pipeline.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"pipeline_sweep\",\n"
      << "  \"suite_loops\": " << suite.loops.size() << ",\n"
      << "  \"sweep_points\": " << points.size() << ",\n"
      << "  \"topology\": \"" << topology_kind_name(topology.kind) << "\",\n"
      << "  \"clusters\": " << topology.clusters << ",\n"
      << "  \"workers\": " << workers << ",\n"
      << "  \"hardware_threads\": " << worker_count() << ",\n"
      << "  \"store_dir\": \"" << cached_options.store_dir << "\",\n"
      << "  \"backends\": [";
  {
    const std::vector<std::string> names = SchedulerRegistry::instance().names();
    for (std::size_t b = 0; b < names.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "\"" << names[b] << "\"";
    }
  }
  out << "],\n";
  write_points(out, points);
  out << ",\n";
  write_run(out, "uncached", uncached);
  out << ",\n";
  write_run(out, "cached", cached);
  out << ",\n";
  write_run(out, "warm", warm);
  out << ",\n";
  write_run(out, "checkpoint", checkpointed);
  out << ",\n";
  write_run(out, "checkpoint_replay", replayed);
  out << ",\n"
      << "  \"cache_speedup\": " << fixed(speedup, 3) << ",\n"
      << "  \"parallel_speedup\": " << fixed(parallel_speedup, 3) << ",\n"
      << "  \"parallel_results_identical\": " << (parallel_identical ? "true" : "false") << ",\n"
      << "  \"warm_backend_speedup\": " << fixed(warm_backend_speedup, 3) << ",\n"
      << "  \"warm_iis_never_worse\": " << (never_worse ? "true" : "false") << ",\n"
      << "  \"checkpoint_results_identical\": " << (checkpoint_identical ? "true" : "false")
      << ",\n"
      << "  \"mii_optimal_identical\": " << (optimality_identical ? "true" : "false") << ",\n"
      << "  \"results_identical\": " << (identical && warm_identical ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return identical && warm_identical && never_worse && checkpoint_identical &&
                 parallel_identical && optimality_identical
             ? 0
             : 1;
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
