// Microbenchmarks (google-benchmark): throughput of the core algorithms.
#include <benchmark/benchmark.h>

#include "cluster/partition.h"
#include "ir/ddg.h"
#include "qrf/qcompat.h"
#include "qrf/queue_alloc.h"
#include "sched/ims.h"
#include "sim/vliwsim.h"
#include "workload/kernels.h"
#include "workload/synth.h"
#include "xform/copy_insert.h"
#include "xform/unroll.h"

namespace qvliw {
namespace {

Loop synth_of_size(int target_ops, std::uint64_t seed) {
  SynthConfig config;
  config.loops = 1;
  config.seed = seed;
  config.small_loop_prob = 0.0;  // force the log-normal mode so the clamp bites
  config.min_ops = target_ops;
  config.max_ops = target_ops;
  return synthesize_suite(config)[0];
}

void BM_DdgBuild(benchmark::State& state) {
  const Loop loop = insert_copies(synth_of_size(static_cast<int>(state.range(0)), 7)).loop;
  const LatencyModel lat = LatencyModel::classic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ddg::build(loop, lat));
  }
  state.SetItemsProcessed(state.iterations() * loop.op_count());
}
BENCHMARK(BM_DdgBuild)->Arg(16)->Arg(64);

void BM_Ims(benchmark::State& state) {
  const Loop loop = insert_copies(synth_of_size(static_cast<int>(state.range(0)), 11)).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ims_schedule(loop, graph, machine));
  }
  state.SetItemsProcessed(state.iterations() * loop.op_count());
}
BENCHMARK(BM_Ims)->Arg(8)->Arg(24)->Arg(64);

void BM_PartitionedIms(benchmark::State& state) {
  const Loop loop = insert_copies(synth_of_size(static_cast<int>(state.range(0)), 13)).loop;
  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const Ddg graph = Ddg::build(loop, machine.latency);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_schedule(loop, graph, machine));
  }
  state.SetItemsProcessed(state.iterations() * loop.op_count());
}
BENCHMARK(BM_PartitionedIms)->Arg(24)->Arg(64);

void BM_QCompat(benchmark::State& state) {
  int x = 0;
  for (auto _ : state) {
    for (int p = 0; p < 16; ++p) {
      benchmark::DoNotOptimize(q_compatible(3, 17, 3 + p, 9 + p, 8));
    }
    ++x;
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_QCompat);

void BM_QueueAllocation(benchmark::State& state) {
  const Loop loop = insert_copies(kernel_by_name("fir8")).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_queues(loop, graph, machine, sched.schedule));
  }
}
BENCHMARK(BM_QueueAllocation);

void BM_Unroll(benchmark::State& state) {
  const Loop loop = kernel_by_name("lk1_hydro");
  for (auto _ : state) {
    benchmark::DoNotOptimize(unroll(loop, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_Unroll)->Arg(2)->Arg(8);

void BM_Simulator(benchmark::State& state) {
  const Loop loop = insert_copies(kernel_by_name("cmul_acc")).loop;
  const MachineConfig machine = MachineConfig::single_cluster_machine(6);
  const Ddg graph = Ddg::build(loop, machine.latency);
  const ImsResult sched = ims_schedule(loop, graph, machine);
  const QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
  const long long trip = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate(loop, graph, machine, sched.schedule, allocation, trip));
  }
  state.SetItemsProcessed(state.iterations() * trip * loop.op_count());
}
BENCHMARK(BM_Simulator)->Arg(64)->Arg(512);

}  // namespace
}  // namespace qvliw

BENCHMARK_MAIN();
