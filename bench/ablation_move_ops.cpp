// Ablation A1 — move operations for non-adjacent transfers.
//
// The paper's conclusion proposes `move` operations so values can cross
// intermediate clusters, predicting that the 5/6-cluster degradation of
// Fig. 6 disappears.  This bench measures exactly that prediction with
// the routed partitioner (cluster/route.h): same-II fraction against the
// single-cluster machine, with and without move routing.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int run() {
  print_banner(std::cout, "Ablation A1 — multi-hop routing via move ops (paper's future work)",
               "moves should recover the 5/6-cluster same-II loss of Fig. 6");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  TextTable table({"clusters", "scheme", "same II", "II +1", "II +2 or more", "unschedulable",
                   "mean moves"});
  for (int clusters : {4, 5, 6}) {
    const MachineConfig single = MachineConfig::single_cluster_machine(3 * clusters);
    const MachineConfig ring = MachineConfig::clustered_machine(clusters);

    PipelineOptions base;
    base.unroll = true;
    base.max_unroll = bench::max_unroll();
    const auto rs = run_suite(suite.loops, single, base);

    for (const SchedulerKind scheduler :
         {SchedulerKind::kClustered, SchedulerKind::kClusteredMoves}) {
      PipelineOptions ring_options = base;
      ring_options.scheduler = scheduler;
      const auto rc = run_suite(suite.loops, ring, ring_options);

      int comparable = 0;
      int same = 0;
      int plus_one = 0;
      int plus_more = 0;
      int failed = 0;
      OnlineStats moves;
      for (std::size_t i = 0; i < rs.size(); ++i) {
        if (!rs[i].ok) continue;
        if (!rc[i].ok) {
          ++failed;
          continue;
        }
        ++comparable;
        const int delta = rc[i].ii - rs[i].ii;
        if (delta <= 0) ++same;
        else if (delta == 1) ++plus_one;
        else ++plus_more;
        moves.add(rc[i].moves);
      }
      const double n = comparable > 0 ? static_cast<double>(comparable) : 1.0;
      const double all = static_cast<double>(comparable + failed);
      table.add_row({cat(clusters),
                     scheduler == SchedulerKind::kClustered ? std::string("adjacent-only")
                                                            : std::string("with moves"),
                     percent(same / n), percent(plus_one / n), percent(plus_more / n),
                     percent(all > 0 ? failed / all : 0.0), moves.mean()});
    }
  }
  table.render(std::cout);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
