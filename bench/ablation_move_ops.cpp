// Ablation A1 — move operations for non-adjacent transfers.
//
// The paper's conclusion proposes `move` operations so values can cross
// intermediate clusters, predicting that the 5/6-cluster degradation of
// Fig. 6 disappears.  This bench measures exactly that prediction with
// the routed partitioner (cluster/route.h): same-II fraction against the
// single-cluster machine, with and without move routing.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

constexpr SchedulerKind kSchemes[] = {SchedulerKind::kClustered, SchedulerKind::kClusteredMoves};

int run() {
  print_banner(std::cout, "Ablation A1 — multi-hop routing via move ops (paper's future work)",
               "moves should recover the 5/6-cluster same-II loss of Fig. 6");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  const std::vector<int> cluster_sizes = {4, 5, 6};
  PipelineOptions base;
  base.unroll = true;
  base.max_unroll = bench::max_unroll();

  // Per cluster count: the single-cluster baseline plus both clustered
  // schemes; the adjacent-only and moves points share one front end.
  std::vector<SweepPoint> points;
  std::vector<std::size_t> single_index;
  std::vector<std::vector<std::size_t>> scheme_index;  // [cluster][scheme]
  for (int clusters : cluster_sizes) {
    single_index.push_back(points.size());
    points.push_back({cat("single-", 3 * clusters, "fu"),
                      MachineConfig::single_cluster_machine(3 * clusters), base});
    scheme_index.emplace_back();
    for (const SchedulerKind scheduler : kSchemes) {
      PipelineOptions ring_options = base;
      ring_options.scheduler = scheduler;
      scheme_index.back().push_back(points.size());
      points.push_back({cat("ring-", clusters,
                            scheduler == SchedulerKind::kClustered ? "-adjacent" : "-moves"),
                        MachineConfig::clustered_machine(clusters), ring_options});
    }
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"clusters", "scheme", "same II", "II +1", "II +2 or more", "unschedulable",
                   "mean moves"});
  for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
    const std::vector<LoopResult>& rs = sweep.by_point[single_index[c]];
    for (std::size_t s = 0; s < std::size(kSchemes); ++s) {
      const std::vector<LoopResult>& rc = sweep.by_point[scheme_index[c][s]];

      int comparable = 0;
      int same = 0;
      int plus_one = 0;
      int plus_more = 0;
      int failed = 0;
      OnlineStats moves;
      for (std::size_t i = 0; i < rs.size(); ++i) {
        if (!rs[i].ok) continue;
        if (!rc[i].ok) {
          ++failed;
          continue;
        }
        ++comparable;
        const int delta = rc[i].ii - rs[i].ii;
        if (delta <= 0) ++same;
        else if (delta == 1) ++plus_one;
        else ++plus_more;
        moves.add(rc[i].moves);
      }
      const double n = comparable > 0 ? static_cast<double>(comparable) : 1.0;
      const double all = static_cast<double>(comparable + failed);
      table.add_row({cat(cluster_sizes[c]),
                     kSchemes[s] == SchedulerKind::kClustered ? std::string("adjacent-only")
                                                              : std::string("with moves"),
                     percent(same / n), percent(plus_one / n), percent(plus_more / n),
                     percent(all > 0 ? failed / all : 0.0), moves.mean()});
    }
  }
  table.render(std::cout);
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
