// Shared plumbing for the figure-reproduction benches.
//
// Every bench assembles its experiment as a vector of SweepPoints and
// hands the whole cross product to SweepRunner in one call, so points
// sharing an options prefix (same invariants/unroll/copy choices) reuse
// the cached front-end artifacts instead of recomputing them per point.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/stage.h"
#include "harness/sweep.h"
#include "support/strings.h"
#include "workload/suite.h"

namespace qvliw::bench {

/// Suite size: the paper's 1258 loops by default; override with
/// QVLIW_LOOPS=<n> for quick runs.
inline int suite_size() {
  if (const char* env = std::getenv("QVLIW_LOOPS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1258;
}

/// Unroll search bound (QVLIW_MAX_UNROLL, default 8 as in the library).
inline int max_unroll() {
  if (const char* env = std::getenv("QVLIW_MAX_UNROLL")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

inline Suite make_suite() {
  SynthConfig config;
  config.loops = suite_size();
  return full_suite(config);
}

/// The multi-heuristic back-end sweep perf_micro and sweep_shard share:
/// every point reuses the unrolled/copy-inserted front end of the
/// 4-cluster ring and differs only in (heuristic, IMS budget), so the
/// points form ascending-budget warm-start ladders per heuristic.
inline std::vector<SweepPoint> perf_sweep_points() {
  PipelineOptions base;
  base.unroll = true;
  base.max_unroll = max_unroll();

  std::vector<SweepPoint> points;
  const MachineConfig ring = MachineConfig::clustered_machine(4);
  for (const ClusterHeuristic heuristic :
       {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance,
        ClusterHeuristic::kFirstFit}) {
    for (const int budget : {6, 12}) {
      PipelineOptions options = base;
      options.scheduler = SchedulerKind::kClustered;
      options.heuristic = heuristic;
      options.ims.budget_ratio = budget;
      points.push_back({cat("ring-4-", cluster_heuristic_name(heuristic), "-", budget, "x"),
                        ring, options});
    }
  }
  return points;
}

inline void print_suite_line(std::ostream& os, const Suite& suite) {
  os << "suite: " << suite.loops.size() << " loops (" << suite.kernel_count
     << " hand-written kernels + " << suite.loops.size() - static_cast<std::size_t>(suite.kernel_count)
     << " calibrated synthetic); override size with QVLIW_LOOPS=<n>\n\n";
}

/// Instrumentation footer: sweep throughput, cache effectiveness and the
/// per-stage wall-time split.
inline void print_sweep_footer(std::ostream& os, const SweepResult& sweep) {
  os << "\n[sweep] " << sweep.pipelines << " pipeline runs in " << fixed(sweep.wall_seconds, 2)
     << " s (" << fixed(sweep.pipelines_per_second(), 1) << " pipelines/s); artifact cache hit rate "
     << percent(sweep.cache.hit_rate()) << " (" << sweep.cache.hits() << "/"
     << sweep.cache.probes() << " probes)\n[sweep] stage time:";
  for (const StageTotal& total : sweep.stage_totals) {
    os << " " << total.stage << " " << fixed(total.seconds, 2) << "s";
  }
  os << "\n";
  if (sweep.cache.warm_probes > 0) {
    os << "[sweep] warm-start: " << sweep.cache.warm_hits << "/" << sweep.cache.warm_probes
       << " seeded points installed their seed (" << percent(sweep.cache.warm_hit_rate())
       << ")\n";
  }
}

/// Sum of the back-end stages' wall time (the part warm starts shrink).
inline double backend_seconds(const SweepResult& sweep) {
  return sweep.stage_seconds(kStageSchedule) + sweep.stage_seconds(kStageQueueAlloc) +
         sweep.stage_seconds(kStageSim);
}

}  // namespace qvliw::bench
