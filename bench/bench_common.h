// Shared plumbing for the figure-reproduction benches.
//
// Every bench assembles its experiment as a vector of SweepPoints and
// hands the whole cross product to SweepRunner in one call, so points
// sharing an options prefix (same invariants/unroll/copy choices) reuse
// the cached front-end artifacts instead of recomputing them per point.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/shard.h"
#include "harness/stage.h"
#include "harness/sweep.h"
#include "support/artifact_store.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workload/suite.h"

namespace qvliw::bench {

/// Suite size: the paper's 1258 loops by default; override with
/// QVLIW_LOOPS=<n> for quick runs.
inline int suite_size() {
  if (const char* env = std::getenv("QVLIW_LOOPS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 1258;
}

/// Default worker-thread request for the benches: QVLIW_WORKERS=<n>, 0 =
/// auto (one per hardware thread).  Benches overriding it with a
/// --workers flag still fall back here when the flag is absent.
inline int env_workers() {
  if (const char* env = std::getenv("QVLIW_WORKERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;
}

/// Unroll search bound (QVLIW_MAX_UNROLL, default 8 as in the library).
inline int max_unroll() {
  if (const char* env = std::getenv("QVLIW_MAX_UNROLL")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

inline Suite make_suite() {
  SynthConfig config;
  config.loops = suite_size();
  return full_suite(config);
}

/// Short label prefix for a bench machine: "ring-4", "mesh-9", "xbar-4".
inline std::string topology_label(TopologyKind kind, int clusters) {
  return cat(kind == TopologyKind::kCrossbar ? "xbar" : topology_kind_name(kind), "-", clusters);
}

/// Shared `--topology ring|mesh|crossbar` / `--clusters N` parsing for the
/// bench drivers.  Defaults to the paper's 4-cluster ring, so benches run
/// without flags keep their historical labels and fingerprints.
struct TopologyChoice {
  TopologyKind kind = TopologyKind::kRing;
  int clusters = 4;

  [[nodiscard]] MachineConfig machine() const {
    return MachineConfig::topology_machine(kind, clusters);
  }
  [[nodiscard]] std::string label() const { return topology_label(kind, clusters); }

  /// Consumes `--topology`/`--clusters` at argv[a] (advancing `a` past the
  /// value).  Returns false on an unknown flag or a bad value; callers fall
  /// through to their own flag handling.
  bool parse_flag(int argc, char** argv, int& a) {
    const std::string flag = argv[a];
    if (flag == "--topology") {
      if (a + 1 >= argc) return false;
      const auto parsed = parse_topology_kind(argv[++a]);
      if (!parsed.has_value()) return false;
      kind = *parsed;
      return true;
    }
    if (flag == "--clusters") {
      if (a + 1 >= argc) return false;
      clusters = std::atoi(argv[++a]);
      return clusters >= 1;
    }
    return false;
  }
};

/// The multi-heuristic back-end sweep perf_micro and sweep_shard share:
/// every point reuses the unrolled/copy-inserted front end of one machine
/// (default: the paper's 4-cluster ring) and differs only in (heuristic,
/// IMS budget), so the points form ascending-budget warm-start ladders
/// per heuristic.
inline std::vector<SweepPoint> perf_sweep_points(const TopologyChoice& choice = {}) {
  PipelineOptions base;
  base.unroll = true;
  base.max_unroll = max_unroll();

  std::vector<SweepPoint> points;
  const MachineConfig machine = choice.machine();
  for (const ClusterHeuristic heuristic :
       {ClusterHeuristic::kAffinity, ClusterHeuristic::kLoadBalance,
        ClusterHeuristic::kFirstFit}) {
    for (const int budget : {6, 12}) {
      PipelineOptions options = base;
      options.scheduler = SchedulerKind::kClustered;
      options.heuristic = heuristic;
      options.ims.budget_ratio = budget;
      points.push_back({cat(choice.label(), "-", cluster_heuristic_name(heuristic), "-", budget,
                            "x"),
                        machine, options});
    }
  }
  return points;
}

inline void print_suite_line(std::ostream& os, const Suite& suite) {
  os << "suite: " << suite.loops.size() << " loops (" << suite.kernel_count
     << " hand-written kernels + " << suite.loops.size() - static_cast<std::size_t>(suite.kernel_count)
     << " calibrated synthetic); override size with QVLIW_LOOPS=<n>\n\n";
}

/// Instrumentation footer: sweep throughput, cache effectiveness and the
/// per-stage wall-time split.
inline void print_sweep_footer(std::ostream& os, const SweepResult& sweep) {
  os << "\n[sweep] " << sweep.pipelines << " pipeline runs in " << fixed(sweep.wall_seconds, 2)
     << " s (" << fixed(sweep.pipelines_per_second(), 1) << " pipelines/s); artifact cache hit rate "
     << percent(sweep.cache.hit_rate()) << " (" << sweep.cache.hits() << "/"
     << sweep.cache.probes() << " probes)\n[sweep] stage time:";
  for (const StageTotal& total : sweep.stage_totals) {
    os << " " << total.stage << " " << fixed(total.seconds, 2) << "s";
  }
  os << "\n";
  if (sweep.cache.warm_probes > 0) {
    os << "[sweep] warm-start: " << sweep.cache.warm_hits << "/" << sweep.cache.warm_probes
       << " seeded points installed their seed (" << percent(sweep.cache.warm_hit_rate())
       << ")\n";
  }
}

/// Sum of the back-end stages' wall time (the part warm starts shrink).
inline double backend_seconds(const SweepResult& sweep) {
  return sweep.stage_seconds(kStageSchedule) + sweep.stage_seconds(kStageQueueAlloc) +
         sweep.stage_seconds(kStageSim);
}

/// One-line artifact-store / warm-start counter summary (shared by the
/// sharded and dispatched sweep drivers).
inline void print_store_counters(std::ostream& os, const SweepResult& sweep) {
  os << "store: front " << sweep.cache.disk_hits << "/" << sweep.cache.disk_probes << ", mii "
     << sweep.cache.mii_disk_hits << "/" << sweep.cache.mii_disk_probes << ", schedules "
     << sweep.cache.sched_disk_hits << "/" << sweep.cache.sched_disk_probes << "; warm "
     << sweep.cache.warm_hits << "/" << sweep.cache.warm_probes << "\n";
}

/// Canonical results-only JSON: every semantic LoopResult field, no
/// timing and no effort provenance, so a merged sharded sweep, a
/// dispatched sweep and the single-process sweep all produce
/// byte-identical files (CI diffs them).
inline void write_results_json(std::ostream& os, const std::vector<SweepPoint>& points,
                               const SweepResult& sweep) {
  os << "{\n  \"bench\": \"perf_sweep\",\n"
     << "  \"points\": " << sweep.by_point.size() << ",\n"
     << "  \"loops\": " << (sweep.by_point.empty() ? 0 : sweep.by_point[0].size()) << ",\n"
     << "  \"fingerprint\": \"" << std::hex << hash_bytes(sweep_result_fingerprint(sweep))
     << std::dec << "\",\n  \"results\": [";
  for (std::size_t p = 0; p < sweep.by_point.size(); ++p) {
    os << (p == 0 ? "" : ",") << "\n    {\"label\": \""
       << (p < points.size() ? points[p].label : std::string("?")) << "\", \"loops\": [";
    for (std::size_t i = 0; i < sweep.by_point[p].size(); ++i) {
      const LoopResult& r = sweep.by_point[p][i];
      os << (i == 0 ? "" : ",") << "\n      {\"name\": \"" << r.name << "\", \"ok\": "
         << (r.ok ? "true" : "false") << ", \"failed_stage\": \"" << r.failed_stage
         << "\", \"ii\": " << r.ii << ", \"mii\": " << r.mii << ", \"stage_count\": "
         << r.stage_count << ", \"unroll\": " << r.unroll_factor << ", \"sched_ops\": "
         << r.sched_ops << ", \"copies\": " << r.copies << ", \"moves\": " << r.moves
         << ", \"queues\": " << r.total_queues << ", \"registers\": " << r.registers
         << ", \"ipc_static\": " << fixed(r.ipc_static, 9) << ", \"ipc_dynamic\": "
         << fixed(r.ipc_dynamic, 9) << ", \"fits\": " << (r.fits_machine_queues ? "true" : "false")
         << ", \"fit_retries\": " << r.queue_fit_retries
         << ", \"verify_checked\": " << (r.verify_checked ? "true" : "false")
         << ", \"verify_violations\": " << r.verify_violations << "}";
    }
    os << "\n    ]}";
  }
  os << "\n  ]\n}\n";
}

/// `--store-stats` implementation shared by sweep_shard and
/// sweep_dispatch: the operator's inventory of a shared store directory.
inline int print_store_stats(std::ostream& os, const std::string& dir) {
  if (dir.empty()) {
    os << "--store-stats requires --store DIR\n";
    return 2;
  }
  const ArtifactStoreStats stats = ArtifactStore(dir).stats();
  os << "store " << dir << ": " << stats.entries << " entries, " << stats.entry_bytes
     << " bytes across " << stats.fanout_dirs << " fanout dir(s)\n"
     << "  leftover temp files: " << stats.temp_files << " (" << stats.temp_bytes
     << " bytes)" << (stats.temp_files > 0 ? " — killed writers; safe to delete" : "") << "\n"
     << "  format versions seen:";
  if (stats.versions.empty()) {
    os << " none recorded";
  } else {
    for (const std::uint64_t v : stats.versions) os << " v" << v;
    if (stats.versions.size() > 1) {
      os << "  (mixed: entries keyed under retired versions are never read again)";
    }
  }
  os << "\n";
  return 0;
}

}  // namespace qvliw::bench
