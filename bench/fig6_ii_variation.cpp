// Fig. 6 — "Initiation Interval Variation" under partitioning.
//
// Paper: fraction of loops whose partitioned schedule on a clustered
// machine keeps the II of the corresponding single-cluster machine:
// ~95% at 4 clusters (12 FUs), ~84% at 5 (15 FUs), ~52% at 6 (18 FUs);
// when the II grows it is typically by one cycle.  Loop unrolling is
// applied throughout, and the degradation is attributed to the inability
// to move values between non-adjacent clusters.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int run() {
  print_banner(std::cout, "Fig. 6 — partitioned II vs single-cluster II (4/5/6 clusters)",
               "same II for ~95% / 84% / 52% of loops; misses typically +1 cycle");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  const std::vector<int> cluster_sizes = {4, 5, 6};
  std::vector<SweepPoint> points;
  std::vector<std::size_t> single_index;
  std::vector<std::size_t> ring_index;
  for (int clusters : cluster_sizes) {
    PipelineOptions single_options;
    single_options.unroll = true;
    single_options.max_unroll = bench::max_unroll();
    PipelineOptions ring_options = single_options;
    ring_options.scheduler = SchedulerKind::kClustered;
    single_index.push_back(points.size());
    points.push_back({cat("single-", 3 * clusters, "fu"),
                      MachineConfig::single_cluster_machine(3 * clusters), single_options});
    ring_index.push_back(points.size());
    points.push_back({cat("ring-", clusters), MachineConfig::clustered_machine(clusters),
                      ring_options});
  }
  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  TextTable table({"clusters", "FUs", "same II", "II +1", "II +2 or more", "unschedulable",
                   "mean II ratio", "same SC"});
  for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
    const int clusters = cluster_sizes[c];
    const std::vector<LoopResult>& rs = sweep.by_point[single_index[c]];
    const std::vector<LoopResult>& rc = sweep.by_point[ring_index[c]];

    int comparable = 0;
    int same = 0;
    int plus_one = 0;
    int plus_more = 0;
    int failed = 0;
    int same_sc = 0;
    OnlineStats ratio;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (!rs[i].ok) continue;
      if (!rc[i].ok) {
        ++failed;
        continue;
      }
      ++comparable;
      const int delta = rc[i].ii - rs[i].ii;
      if (delta <= 0) ++same;
      else if (delta == 1) ++plus_one;
      else ++plus_more;
      if (rc[i].stage_count == rs[i].stage_count) ++same_sc;
      ratio.add(static_cast<double>(rc[i].ii) / rs[i].ii);
    }
    const double n = comparable > 0 ? static_cast<double>(comparable) : 1.0;
    const double all = static_cast<double>(comparable + failed);
    table.add_row({cat(clusters), cat(3 * clusters), percent(same / n), percent(plus_one / n),
                   percent(plus_more / n), percent(all > 0 ? failed / all : 0.0), ratio.mean(),
                   percent(same_sc / n)});
  }
  table.render(std::cout);
  std::cout << "\nBoth sides use identical FU totals, copy insertion and the same\n"
               "unroll-factor policy; the clustered side adds only the ring-adjacency\n"
               "communication constraint (the paper's base partitioning scheme).\n";
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
