// Fig. 3 — "Number of Queues".
//
// Paper: with copy operations enabled, the fraction of benchmark loops
// schedulable with 4 / 8 / 16 / 32 queues on machines of 4, 6 and 12 FUs;
// 32 queues cover the overwhelming majority of loops on every machine,
// and copy insertion does not significantly increase queue demand.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int run() {
  using bench::make_suite;
  print_banner(std::cout, "Fig. 3 — queue requirements (4/6/12 FU machines, copy ops)",
               "32 queues schedule most loops; copies barely move the demand");
  const Suite suite = make_suite();
  bench::print_suite_line(std::cout, suite);

  // One sweep for the whole figure: the three machine sizes, the copy-op
  // ablation at 12 FUs, and the finite-queue enforcement ladder.  None of
  // the points unroll, so they all share one front end (and the MII
  // bounds are cached per distinct machine).
  const std::vector<int> fu_sizes = {4, 6, 12};
  std::vector<SweepPoint> points;
  std::vector<std::size_t> machine_index;
  for (int fus : fu_sizes) {
    machine_index.push_back(points.size());
    points.push_back({cat(fus, "-fus"), MachineConfig::single_cluster_machine(fus),
                      PipelineOptions{}});  // copies on (default), no unrolling (Sec. 2 setup)
  }
  const std::size_t no_copies_index = points.size();
  {
    PipelineOptions without;
    without.insert_copies = false;
    points.push_back({"12-fus-no-copies", MachineConfig::single_cluster_machine(12), without});
  }
  const std::vector<int> queue_budgets = {4, 8, 16, 32};
  std::vector<std::size_t> fit_index;
  for (int queues : queue_budgets) {
    PipelineOptions options;
    options.enforce_queue_limits = true;
    fit_index.push_back(points.size());
    points.push_back({cat("6-fus-", queues, "q"),
                      MachineConfig::single_cluster_machine(6, queues), options});
  }

  const SweepResult sweep = SweepRunner().run(suite.loops, points);

  const std::vector<int> bounds = {4, 8, 16, 32};
  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;
  for (std::size_t m = 0; m < fu_sizes.size(); ++m) {
    const std::vector<LoopResult>& results = sweep.by_point[machine_index[m]];
    labels.push_back(std::to_string(fu_sizes[m]) + " FUs");
    series.push_back(
        cumulative_fractions(results, bounds, [](const LoopResult& r) { return r.total_queues; }));
    std::cout << "  " << fu_sizes[m] << " FUs: scheduled " << percent(fraction_ok(results))
              << " of loops\n";
  }
  std::cout << "\n% of scheduled loops fitting in <= Q queues (cumulative):\n";
  print_cumulative_table(std::cout, bounds, labels, series, "Queues");

  // Copy-op effect on queue demand (the paper's side observation).
  std::cout << "\nCopy-op effect on queue demand (12 FUs):\n";
  const std::vector<LoopResult>& rw = sweep.by_point[machine_index[2]];  // 12 FUs, copies on
  const std::vector<LoopResult>& ro = sweep.by_point[no_copies_index];   // 12 FUs, copies off
  TextTable table({"variant", "mean queues", "p95 queues", "<=32 queues"});
  auto add = [&](const std::string& label, const std::vector<LoopResult>& results) {
    std::vector<double> queues;
    for (const LoopResult& r : results) {
      if (r.ok) queues.push_back(r.total_queues);
    }
    table.add_row({label, mean(queues), percentile(queues, 95),
                   percent(fraction_of_scheduled(
                       results, [](const LoopResult& r) { return r.total_queues <= 32; }))});
  };
  add("with copy ops", rw);
  add("no copy ops (multi-write QRF baseline)", ro);
  table.render(std::cout);

  // II cost of a finite QRF: enforce the queue budget by escalating the II
  // (the scheduling-side alternative to spill code for small files).
  std::cout << "\nII cost of enforcing a finite queue file (6 FUs):\n";
  TextTable fit_table({"queues", "loops fitting", "mean II inflation", "mean retries"});
  for (std::size_t q = 0; q < queue_budgets.size(); ++q) {
    const std::vector<LoopResult>& results = sweep.by_point[fit_index[q]];
    OnlineStats inflation;
    OnlineStats retries;
    for (const LoopResult& r : results) {
      if (!r.ok) continue;
      inflation.add(static_cast<double>(r.ii) / r.mii);
      retries.add(r.queue_fit_retries);
    }
    fit_table.add_row({static_cast<std::int64_t>(queue_budgets[q]), percent(fraction_ok(results)),
                       inflation.mean(), retries.mean()});
  }
  fit_table.render(std::cout);
  bench::print_sweep_footer(std::cout, sweep);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
