// Fig. 3 — "Number of Queues".
//
// Paper: with copy operations enabled, the fraction of benchmark loops
// schedulable with 4 / 8 / 16 / 32 queues on machines of 4, 6 and 12 FUs;
// 32 queues cover the overwhelming majority of loops on every machine,
// and copy insertion does not significantly increase queue demand.
#include <iostream>

#include "bench_common.h"
#include "support/stats.h"
#include "support/strings.h"

namespace qvliw {
namespace {

int run() {
  using bench::make_suite;
  print_banner(std::cout, "Fig. 3 — queue requirements (4/6/12 FU machines, copy ops)",
               "32 queues schedule most loops; copies barely move the demand");
  const Suite suite = make_suite();
  bench::print_suite_line(std::cout, suite);

  const std::vector<int> bounds = {4, 8, 16, 32};
  std::vector<std::string> labels;
  std::vector<std::vector<double>> series;

  for (int fus : {4, 6, 12}) {
    const MachineConfig machine = MachineConfig::single_cluster_machine(fus);
    PipelineOptions options;  // copies on (default), no unrolling (Sec. 2 setup)
    const auto results = run_suite(suite.loops, machine, options);
    labels.push_back(std::to_string(fus) + " FUs");
    series.push_back(
        cumulative_fractions(results, bounds, [](const LoopResult& r) { return r.total_queues; }));
    std::cout << "  " << fus << " FUs: scheduled " << percent(fraction_ok(results))
              << " of loops\n";
  }
  std::cout << "\n% of scheduled loops fitting in <= Q queues (cumulative):\n";
  print_cumulative_table(std::cout, bounds, labels, series, "Queues");

  // Copy-op effect on queue demand (the paper's side observation).
  std::cout << "\nCopy-op effect on queue demand (12 FUs):\n";
  const MachineConfig machine = MachineConfig::single_cluster_machine(12);
  PipelineOptions with;
  PipelineOptions without;
  without.insert_copies = false;
  const auto rw = run_suite(suite.loops, machine, with);
  const auto ro = run_suite(suite.loops, machine, without);
  TextTable table({"variant", "mean queues", "p95 queues", "<=32 queues"});
  auto add = [&](const std::string& label, const std::vector<LoopResult>& results) {
    std::vector<double> queues;
    for (const LoopResult& r : results) {
      if (r.ok) queues.push_back(r.total_queues);
    }
    table.add_row({label, mean(queues), percentile(queues, 95),
                   percent(fraction_of_scheduled(
                       results, [](const LoopResult& r) { return r.total_queues <= 32; }))});
  };
  add("with copy ops", rw);
  add("no copy ops (multi-write QRF baseline)", ro);
  table.render(std::cout);

  // II cost of a finite QRF: enforce the queue budget by escalating the II
  // (the scheduling-side alternative to spill code for small files).
  std::cout << "\nII cost of enforcing a finite queue file (6 FUs):\n";
  TextTable fit_table({"queues", "loops fitting", "mean II inflation", "mean retries"});
  for (int queues : {4, 8, 16, 32}) {
    MachineConfig constrained = MachineConfig::single_cluster_machine(6, queues);
    PipelineOptions options;
    options.enforce_queue_limits = true;
    const auto results = run_suite(suite.loops, constrained, options);
    OnlineStats inflation;
    OnlineStats retries;
    for (const LoopResult& r : results) {
      if (!r.ok) continue;
      inflation.add(static_cast<double>(r.ii) / r.mii);
      retries.add(r.queue_fit_retries);
    }
    fit_table.add_row({static_cast<std::int64_t>(queues), percent(fraction_ok(results)),
                       inflation.mean(), retries.mean()});
  }
  fit_table.render(std::cout);
  return 0;
}

}  // namespace
}  // namespace qvliw

int main() { return qvliw::run(); }
