// Copy-insertion microbenchmark — cold two-step rewrite vs the fused
// incremental path.
//
// The cold path is what the pipeline did before the rewrite was made
// analytic: insert_copies() to rewrite the loop, then a full Ddg::build()
// on the result (which recomputes the quadratic memory-dependence scan and
// revalidates the rewritten loop).  The fused path is
// insert_copies_with_graph(): one arena-backed rewrite pass that derives
// the post-copy DDG incrementally from the pre-copy memory dependences
// mapped through op_map.  Both paths must produce an identical loop
// (content hash) and an identical edge list — the bench fails otherwise,
// so it doubles as a golden-equivalence gate over the full suite.
//
// Timings are bucketed by pre-rewrite loop size so the per-loop-size
// scaling of the two paths is visible, and emitted as a machine-readable
// BENCH_copy_insert.json (override with argv[1] or QVLIW_COPY_BENCH_JSON)
// for CI artifact upload next to BENCH_pipeline.json.
//
//   QVLIW_LOOPS=200 QVLIW_COPY_REPS=3 ./build/bench/bench_copy_insert [out.json]
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "xform/copy_insert.h"

namespace qvliw {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int env_reps() {
  if (const char* env = std::getenv("QVLIW_COPY_REPS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 5;
}

bool same_edges(const Ddg& a, const Ddg& b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) return false;
  for (int e = 0; e < a.edge_count(); ++e) {
    const DepEdge& x = a.edge(e);
    const DepEdge& y = b.edge(e);
    if (x.src != y.src || x.dst != y.dst || x.latency != y.latency ||
        x.distance != y.distance || x.kind != y.kind || x.dst_arg != y.dst_arg) {
      return false;
    }
  }
  return true;
}

/// Size buckets over the pre-rewrite op count.
struct Bucket {
  const char* label;
  int min_ops;
  int max_ops;  // inclusive; INT_MAX-ish sentinel for the last bucket
  int loops = 0;
  long long copies = 0;
  double cold_seconds = 0.0;
  double fused_seconds = 0.0;
};

int run(int argc, char** argv) {
  print_banner(std::cout, "copy insertion — cold rebuild vs fused incremental DDG",
               "one analytic pass + memdep mapping replaces rewrite-then-rebuild");
  const Suite suite = bench::make_suite();
  bench::print_suite_line(std::cout, suite);

  const MachineConfig machine = MachineConfig::clustered_machine(4);
  const int reps = env_reps();
  std::cout << "reps: " << reps << " (override with QVLIW_COPY_REPS=<n>)\n\n";

  std::vector<Bucket> buckets = {
      {"<=15 ops", 0, 15},
      {"16-31 ops", 16, 31},
      {"32-63 ops", 32, 63},
      {">=64 ops", 64, 1 << 30},
  };
  const auto bucket_of = [&buckets](int ops) -> Bucket& {
    for (Bucket& b : buckets) {
      if (ops >= b.min_ops && ops <= b.max_ops) return b;
    }
    return buckets.back();
  };

  bool equivalent = true;
  for (const Loop& loop : suite.loops) {
    Bucket& bucket = bucket_of(loop.op_count());
    ++bucket.loops;

    // Equivalence first (untimed): the fused path must reproduce the cold
    // path's loop and graph exactly.
    const CopyInsertResult cold = insert_copies(loop);
    const Ddg cold_graph = Ddg::build(cold.loop, machine.latency);
    const CopyInsertWithGraph fused = insert_copies_with_graph(loop, machine.latency);
    bucket.copies += cold.copies_added;
    if (cold.loop.content_hash() != fused.rewrite.loop.content_hash() ||
        cold.copies_added != fused.rewrite.copies_added ||
        cold.op_map != fused.rewrite.op_map || !same_edges(cold_graph, fused.graph)) {
      equivalent = false;
      std::cerr << "MISMATCH on loop " << loop.name << "\n";
    }

    for (int rep = 0; rep < reps; ++rep) {
      const Clock::time_point t0 = Clock::now();
      const CopyInsertResult rewrite = insert_copies(loop);
      const Ddg graph = Ddg::build(rewrite.loop, machine.latency);
      bucket.cold_seconds += seconds_since(t0);
      // Keep the results alive past the clock reads.
      if (graph.edge_count() < 0) std::abort();

      const Clock::time_point t1 = Clock::now();
      const CopyInsertWithGraph f = insert_copies_with_graph(loop, machine.latency);
      bucket.fused_seconds += seconds_since(t1);
      if (f.graph.edge_count() < 0) std::abort();
    }
  }

  double cold_total = 0.0;
  double fused_total = 0.0;
  TextTable table({"bucket", "loops", "copies", "cold s", "fused s", "speedup"});
  for (const Bucket& b : buckets) {
    cold_total += b.cold_seconds;
    fused_total += b.fused_seconds;
    const double speedup = b.fused_seconds > 0.0 ? b.cold_seconds / b.fused_seconds : 0.0;
    table.add_row({std::string(b.label), static_cast<double>(b.loops),
                   static_cast<double>(b.copies), b.cold_seconds, b.fused_seconds, speedup});
  }
  table.render(std::cout);
  const double total_speedup = fused_total > 0.0 ? cold_total / fused_total : 0.0;
  std::cout << "\ntotal: cold " << fixed(cold_total, 4) << " s, fused " << fixed(fused_total, 4)
            << " s (" << fixed(total_speedup, 2) << "x); loop/graph equivalence: "
            << (equivalent ? "identical" : "MISMATCH — BUG") << "\n";

  const char* env_path = std::getenv("QVLIW_COPY_BENCH_JSON");
  const std::string out_path = argc > 1 ? argv[1]
                               : env_path != nullptr ? env_path
                                                     : "BENCH_copy_insert.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"copy_insert\",\n"
      << "  \"suite_loops\": " << suite.loops.size() << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"buckets\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const Bucket& b = buckets[i];
    const double speedup = b.fused_seconds > 0.0 ? b.cold_seconds / b.fused_seconds : 0.0;
    out << (i == 0 ? "" : ",") << "\n    {\"bucket\": \"" << b.label
        << "\", \"loops\": " << b.loops << ", \"copies\": " << b.copies
        << ", \"cold_seconds\": " << fixed(b.cold_seconds, 6)
        << ", \"fused_seconds\": " << fixed(b.fused_seconds, 6)
        << ", \"speedup\": " << fixed(speedup, 3) << "}";
  }
  out << "\n  ],\n"
      << "  \"cold_seconds\": " << fixed(cold_total, 6) << ",\n"
      << "  \"fused_seconds\": " << fixed(fused_total, 6) << ",\n"
      << "  \"speedup\": " << fixed(total_speedup, 3) << ",\n"
      << "  \"equivalent\": " << (equivalent ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return equivalent ? 0 : 1;
}

}  // namespace
}  // namespace qvliw

int main(int argc, char** argv) { return qvliw::run(argc, argv); }
