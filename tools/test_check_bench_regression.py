#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (run by CTest / CI).

Covers the gate's verdicts and — the regression this guards — that a
baseline predating the current JSON schema degrades to a clear
"missing field ... regenerate" failure instead of a KeyError traceback.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as gate  # noqa: E402


def bench_json(cached_lps=100.0, warm_blps=500.0, warm_rate=0.9, disk_hits=0,
               identical=True, never_worse=True, checkpoint_identical=True,
               workers=1, hardware=1, parallel_speedup=1.0,
               parallel_identical=True, verify_checked=48, verify_violations=0,
               mii_identical=True, mii_consistent=True, mii_optimal=40):
    sched_memo = {
        "sched_memo_probes": 24,
        "sched_memo_hits": 8,
        "mii_optimal_ii_consistent": mii_consistent,
    }
    return {
        "results_identical": identical,
        "warm_iis_never_worse": never_worse,
        "checkpoint_results_identical": checkpoint_identical,
        "parallel_results_identical": parallel_identical,
        "mii_optimal_identical": mii_identical,
        "workers": workers,
        "hardware_threads": hardware,
        "cache_speedup": 5.0,
        "parallel_speedup": parallel_speedup,
        "warm_backend_speedup": 1.2,
        "uncached": {
            "sched_memo_probes": 0,
            "sched_memo_hits": 0,
            "mii_optimal_ii_consistent": mii_consistent,
        },
        "cached": {
            "loops_per_second": cached_lps,
            "disk_hits": disk_hits,
            "disk_hit_rate": 0.0,
            "unroll_probe_naive_fallbacks": 0,
            "verify_checked": verify_checked,
            "verify_violations": verify_violations,
            "sched_mii_optimal": mii_optimal,
            **sched_memo,
        },
        "warm": {
            "backend_loops_per_second": warm_blps,
            "warm_start_hit_rate": warm_rate,
            "sched_disk_hits": 0,
            "verify_checked": verify_checked,
            "verify_violations": verify_violations,
            **sched_memo,
        },
        "checkpoint_replay": {
            "tasks_replayed": 48,
            "tasks_executed": 0,
            "journal_bytes": 12345,
        },
    }


def run_gate(baseline, fresh, tolerance=0.30):
    out = io.StringIO()
    with redirect_stdout(out):
        code = gate.run(baseline, fresh, tolerance)
    return code, out.getvalue()


class GateVerdicts(unittest.TestCase):
    def test_healthy_run_passes(self):
        code, out = run_gate(bench_json(), bench_json())
        self.assertEqual(code, 0, out)
        self.assertIn("OK: cached loops/sec", out)

    def test_results_not_identical_fails(self):
        code, out = run_gate(bench_json(), bench_json(identical=False))
        self.assertEqual(code, 1)
        self.assertIn("results_identical", out)

    def test_topology_fields_tolerated(self):
        baseline = bench_json()
        fresh = bench_json()
        for doc in (baseline, fresh):
            doc["topology"] = "mesh"
            doc["clusters"] = 9
        code, out = run_gate(baseline, fresh)
        self.assertEqual(code, 0, out)

    def test_topology_mismatch_fails(self):
        fresh = bench_json()
        fresh["topology"] = "mesh"
        fresh["clusters"] = 9
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("ring-4", out)
        self.assertIn("mesh-9", out)

    def test_baseline_without_topology_fields_is_ring4(self):
        fresh = bench_json()
        fresh["topology"] = "ring"
        fresh["clusters"] = 4
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 0, out)

    def test_degraded_warm_ii_fails(self):
        code, out = run_gate(bench_json(), bench_json(never_worse=False))
        self.assertEqual(code, 1)
        self.assertIn("warm_iis_never_worse", out)

    def test_checkpoint_divergence_fails(self):
        code, out = run_gate(bench_json(), bench_json(checkpoint_identical=False))
        self.assertEqual(code, 1)
        self.assertIn("checkpoint_results_identical", out)

    def test_fresh_missing_checkpoint_field_fails(self):
        fresh = bench_json()
        del fresh["checkpoint_results_identical"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field checkpoint_results_identical", out)

    def test_verify_violations_fail(self):
        code, out = run_gate(bench_json(), bench_json(verify_violations=2))
        self.assertEqual(code, 1)
        self.assertIn("legality", out)
        self.assertIn("violation", out)

    def test_verify_nothing_checked_fails(self):
        code, out = run_gate(bench_json(), bench_json(verify_checked=0))
        self.assertEqual(code, 1)
        self.assertIn("verify_checked == 0", out)

    def test_fresh_missing_verify_counters_fails(self):
        fresh = bench_json()
        del fresh["warm"]["verify_checked"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field warm.verify_checked", out)

    def test_warm_only_violations_fail(self):
        fresh = bench_json()
        fresh["warm"]["verify_violations"] = 1
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("warm run reports 1 legality", out)

    def test_warm_baseline_rejected(self):
        code, out = run_gate(bench_json(disk_hits=3), bench_json())
        self.assertEqual(code, 1)
        self.assertIn("warm artifact store", out)

    def test_throughput_regression_fails(self):
        code, out = run_gate(bench_json(cached_lps=100.0), bench_json(cached_lps=60.0))
        self.assertEqual(code, 1)
        self.assertIn("FAIL: cached loops/sec", out)

    def test_warm_backend_regression_fails(self):
        code, out = run_gate(bench_json(warm_blps=500.0), bench_json(warm_blps=300.0))
        self.assertEqual(code, 1)
        self.assertIn("warm backend loops/sec", out)

    def test_warm_hit_rate_drop_fails(self):
        code, out = run_gate(bench_json(warm_rate=0.95), bench_json(warm_rate=0.5))
        self.assertEqual(code, 1)
        self.assertIn("warm_start_hit_rate", out)

    def test_jitter_within_tolerance_passes(self):
        code, out = run_gate(bench_json(cached_lps=100.0), bench_json(cached_lps=80.0))
        self.assertEqual(code, 0, out)


class SchedTelemetryVerdicts(unittest.TestCase):
    """The scheduling-search gates: memo counters, MII-optimality bits."""

    def test_mii_optimal_divergence_fails(self):
        code, out = run_gate(bench_json(), bench_json(mii_identical=False))
        self.assertEqual(code, 1)
        self.assertIn("mii_optimal_identical", out)

    def test_fresh_missing_mii_identity_fails(self):
        fresh = bench_json()
        del fresh["mii_optimal_identical"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field mii_optimal_identical", out)

    def test_fresh_missing_sched_memo_counters_fails(self):
        fresh = bench_json()
        del fresh["cached"]["sched_memo_probes"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field cached.sched_memo_probes", out)

    def test_inconsistent_mii_bit_fails(self):
        code, out = run_gate(bench_json(), bench_json(mii_consistent=False))
        self.assertEqual(code, 1)
        self.assertIn("mii_optimal_ii_consistent", out)

    def test_mii_optimal_regression_fails(self):
        code, out = run_gate(bench_json(mii_optimal=40), bench_json(mii_optimal=30))
        self.assertEqual(code, 1)
        self.assertIn("FAIL: MII-optimal schedules 30 vs baseline 40", out)

    def test_mii_optimal_improvement_passes(self):
        code, out = run_gate(bench_json(mii_optimal=40), bench_json(mii_optimal=55))
        self.assertEqual(code, 0, out)
        self.assertIn("OK: MII-optimal schedules 55 vs baseline 40", out)

    def test_baseline_without_sched_telemetry_skips_with_info(self):
        baseline = bench_json()
        del baseline["cached"]["sched_mii_optimal"]
        code, out = run_gate(baseline, bench_json())
        self.assertEqual(code, 0, out)
        self.assertIn("sched_mii_optimal gate skipped", out)


def with_stages(bench, uncached_stages=None, warm_stages=None):
    """Returns `bench` with stage_seconds sections attached."""
    bench.setdefault("uncached", {})["stage_seconds"] = dict(
        uncached_stages
        if uncached_stages is not None
        else {"invariants": 0.1, "unroll": 0.3, "copy_insert": 1.0,
              "schedule": 0.8, "queue_alloc": 0.4, "sim": 0.2, "verify": 0.9}
    )
    bench["warm"]["stage_seconds"] = dict(
        warm_stages if warm_stages is not None else {"schedule": 0.5, "verify": 0.3}
    )
    return bench


class StageGates(unittest.TestCase):
    """The per-stage wall-time gates over STAGE_GATES."""

    def test_equal_stage_times_pass(self):
        code, out = run_gate(with_stages(bench_json()), with_stages(bench_json()))
        self.assertEqual(code, 0, out)
        self.assertIn("OK: uncached copy_insert stage", out)
        self.assertIn("OK: warm verify stage", out)

    def test_cold_copy_insert_regression_fails(self):
        fresh = with_stages(bench_json())
        fresh["uncached"]["stage_seconds"]["copy_insert"] = 2.0
        code, out = run_gate(with_stages(bench_json()), fresh)
        self.assertEqual(code, 1)
        self.assertIn("FAIL: uncached copy_insert stage", out)

    def test_warm_verify_regression_fails(self):
        fresh = with_stages(bench_json())
        fresh["warm"]["stage_seconds"]["verify"] = 0.9
        code, out = run_gate(with_stages(bench_json()), fresh)
        self.assertEqual(code, 1)
        self.assertIn("FAIL: warm verify stage", out)

    def test_stage_jitter_within_tolerance_passes(self):
        fresh = with_stages(bench_json())
        fresh["uncached"]["stage_seconds"]["schedule"] = 1.1  # base 0.8, ceiling 1.25
        code, out = run_gate(with_stages(bench_json()), fresh)
        self.assertEqual(code, 0, out)

    def test_tiny_stage_absorbed_by_absolute_slack(self):
        # 3x relative growth on a 10ms stage stays under the absolute slack.
        base = with_stages(bench_json(), warm_stages={"verify": 0.01})
        fresh = with_stages(bench_json(), warm_stages={"verify": 0.03})
        code, out = run_gate(base, fresh)
        self.assertEqual(code, 0, out)

    def test_baseline_without_stage_seconds_skips_with_info(self):
        # Pre-stage-gate baselines must not fail; the gate stays disarmed.
        code, out = run_gate(bench_json(), with_stages(bench_json()))
        self.assertEqual(code, 0, out)
        self.assertIn("stage gate uncached.copy_insert skipped", out)

    def test_fresh_without_stage_seconds_fails(self):
        fresh = bench_json()  # has the memo counters but no stage_seconds
        code, out = run_gate(with_stages(bench_json()), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field uncached.stage_seconds", out)

    def test_cached_schedule_stage_gate_armed_by_baseline(self):
        base = with_stages(bench_json())
        base["cached"]["stage_seconds"] = {"schedule": 0.2}
        fresh = with_stages(bench_json())
        fresh["cached"]["stage_seconds"] = {"schedule": 0.9}
        code, out = run_gate(base, fresh)
        self.assertEqual(code, 1)
        self.assertIn("FAIL: cached schedule stage", out)

    def test_stage_absent_from_fresh_counts_as_zero(self):
        # The warm run legitimately skips stages the memo elided entirely.
        fresh = with_stages(bench_json(), warm_stages={"schedule": 0.5})
        code, out = run_gate(with_stages(bench_json()), fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("OK: warm verify stage 0.000s", out)

    def test_custom_stage_tolerance_applies(self):
        base = with_stages(bench_json())
        fresh = with_stages(bench_json())
        fresh["uncached"]["stage_seconds"]["queue_alloc"] = 0.5  # base 0.4
        out = io.StringIO()
        with redirect_stdout(out):
            code = gate.run(base, fresh, 0.30, 1.5, None, 0.10)
        self.assertEqual(code, 1, out.getvalue())
        self.assertIn("FAIL: uncached queue_alloc stage", out.getvalue())


def scaling_json(identical=True, speedup=2.0, hardware=4, counts=(1, 2, 4)):
    return {
        "bench": "sweep_scaling",
        "hardware_threads": hardware,
        "counts": [
            {"workers": w, "loops_per_second": 100.0 * (w if identical else 1),
             "fingerprint": "abc", "identical": identical or w == 1}
            for w in counts
        ],
        "parallel_speedup": speedup,
        "scaling_results_identical": identical,
    }


class ParallelVerdicts(unittest.TestCase):
    """The threading gates: identity unconditionally, speedup on 2+ cores."""

    def test_parallel_divergence_fails(self):
        code, out = run_gate(bench_json(), bench_json(parallel_identical=False))
        self.assertEqual(code, 1)
        self.assertIn("parallel_results_identical", out)

    def test_fresh_missing_parallel_identity_fails(self):
        fresh = bench_json()
        del fresh["parallel_results_identical"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field parallel_results_identical", out)

    def test_fresh_missing_workers_fails(self):
        fresh = bench_json()
        del fresh["workers"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field workers", out)

    def test_low_speedup_on_multicore_fails(self):
        fresh = bench_json(workers=4, hardware=4, parallel_speedup=1.1)
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("FAIL: parallel speedup", out)

    def test_healthy_speedup_on_multicore_passes(self):
        fresh = bench_json(workers=4, hardware=4, parallel_speedup=2.7)
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("OK: parallel speedup", out)

    def test_single_core_skips_speedup_floor(self):
        # Oversubscribed workers on one hardware thread cannot speed up;
        # the floor must not fire (the identity checks still apply).
        fresh = bench_json(workers=4, hardware=1, parallel_speedup=0.9)
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("speedup floor skipped", out)

    def test_serial_run_skips_speedup_floor(self):
        code, out = run_gate(bench_json(), bench_json(workers=1, hardware=8))
        self.assertEqual(code, 0, out)
        self.assertIn("speedup floor skipped", out)


class ScalingVerdicts(unittest.TestCase):
    def run_scaling(self, scaling, floor=1.5):
        out = io.StringIO()
        with redirect_stdout(out):
            code = gate.run(bench_json(), bench_json(), 0.30, floor, scaling)
        return code, out.getvalue()

    def test_healthy_scaling_passes(self):
        code, out = self.run_scaling(scaling_json())
        self.assertEqual(code, 0, out)
        self.assertIn("OK: scaling parallel speedup", out)

    def test_divergent_fingerprint_fails(self):
        code, out = self.run_scaling(scaling_json(identical=False))
        self.assertEqual(code, 1)
        self.assertIn("scaling_results_identical", out)

    def test_divergent_count_entry_fails(self):
        scaling = scaling_json()
        scaling["counts"][1]["identical"] = False
        code, out = self.run_scaling(scaling)
        self.assertEqual(code, 1)
        self.assertIn("workers=2", out)

    def test_low_scaling_speedup_fails_on_multicore(self):
        code, out = self.run_scaling(scaling_json(speedup=1.2))
        self.assertEqual(code, 1)
        self.assertIn("FAIL: scaling parallel speedup", out)

    def test_single_core_scaling_skips_floor(self):
        code, out = self.run_scaling(scaling_json(speedup=0.9, hardware=1))
        self.assertEqual(code, 0, out)
        self.assertIn("scaling speedup floor skipped", out)

    def test_scaling_missing_counts_fails(self):
        scaling = scaling_json()
        del scaling["counts"]
        code, out = self.run_scaling(scaling)
        self.assertEqual(code, 1)
        self.assertIn("scaling missing field counts", out)


class StaleSchemas(unittest.TestCase):
    """Baselines predating a schema change must fail clearly, not crash."""

    def test_baseline_missing_cached_section(self):
        baseline = bench_json()
        del baseline["cached"]
        code, out = run_gate(baseline, bench_json())
        self.assertEqual(code, 1)
        self.assertIn("baseline missing field cached", out)
        self.assertIn("regenerate", out)

    def test_baseline_missing_loops_per_second(self):
        baseline = bench_json()
        del baseline["cached"]["loops_per_second"]
        code, out = run_gate(baseline, bench_json())
        self.assertEqual(code, 1)
        self.assertIn("baseline missing field cached.loops_per_second", out)

    def test_fresh_missing_field_named_as_fresh(self):
        fresh = bench_json()
        del fresh["cached"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field cached", out)

    def test_pre_warm_schema_baseline_still_gates_cached(self):
        # A baseline without the "warm" section (pre-PR-3 schema) skips the
        # warm comparisons but still gates cached throughput.
        baseline = bench_json()
        del baseline["warm"]
        code, out = run_gate(baseline, bench_json())
        self.assertEqual(code, 0, out)
        self.assertNotIn("warm backend loops/sec", out)


class MainEntry(unittest.TestCase):
    def test_main_reports_schema_error_cleanly(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            stale = bench_json()
            del stale["cached"]
            with open(base_path, "w", encoding="utf-8") as f:
                json.dump(stale, f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            out = io.StringIO()
            with redirect_stdout(out):
                code = gate.main([base_path, fresh_path])
            self.assertEqual(code, 1)
            self.assertIn("FAIL: baseline missing field", out.getvalue())

    def test_main_gates_scaling_file(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            scaling_path = os.path.join(tmp, "scaling.json")
            with open(base_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            with open(scaling_path, "w", encoding="utf-8") as f:
                json.dump(scaling_json(identical=False), f)
            out = io.StringIO()
            with redirect_stdout(out):
                code = gate.main([base_path, fresh_path, "--scaling", scaling_path])
            self.assertEqual(code, 1)
            self.assertIn("scaling_results_identical", out.getvalue())

    def test_main_passes_on_healthy_files(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            with open(base_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            out = io.StringIO()
            with redirect_stdout(out):
                code = gate.main([base_path, fresh_path])
            self.assertEqual(code, 0, out.getvalue())


if __name__ == "__main__":
    unittest.main()
