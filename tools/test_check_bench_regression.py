#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (run by CTest / CI).

Covers the gate's verdicts and — the regression this guards — that a
baseline predating the current JSON schema degrades to a clear
"missing field ... regenerate" failure instead of a KeyError traceback.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_regression as gate  # noqa: E402


def bench_json(cached_lps=100.0, warm_blps=500.0, warm_rate=0.9, disk_hits=0,
               identical=True, never_worse=True, checkpoint_identical=True):
    return {
        "results_identical": identical,
        "warm_iis_never_worse": never_worse,
        "checkpoint_results_identical": checkpoint_identical,
        "cache_speedup": 5.0,
        "warm_backend_speedup": 1.2,
        "cached": {
            "loops_per_second": cached_lps,
            "disk_hits": disk_hits,
            "disk_hit_rate": 0.0,
            "unroll_probe_naive_fallbacks": 0,
        },
        "warm": {
            "backend_loops_per_second": warm_blps,
            "warm_start_hit_rate": warm_rate,
            "sched_disk_hits": 0,
        },
        "checkpoint_replay": {
            "tasks_replayed": 48,
            "tasks_executed": 0,
            "journal_bytes": 12345,
        },
    }


def run_gate(baseline, fresh, tolerance=0.30):
    out = io.StringIO()
    with redirect_stdout(out):
        code = gate.run(baseline, fresh, tolerance)
    return code, out.getvalue()


class GateVerdicts(unittest.TestCase):
    def test_healthy_run_passes(self):
        code, out = run_gate(bench_json(), bench_json())
        self.assertEqual(code, 0, out)
        self.assertIn("OK: cached loops/sec", out)

    def test_results_not_identical_fails(self):
        code, out = run_gate(bench_json(), bench_json(identical=False))
        self.assertEqual(code, 1)
        self.assertIn("results_identical", out)

    def test_degraded_warm_ii_fails(self):
        code, out = run_gate(bench_json(), bench_json(never_worse=False))
        self.assertEqual(code, 1)
        self.assertIn("warm_iis_never_worse", out)

    def test_checkpoint_divergence_fails(self):
        code, out = run_gate(bench_json(), bench_json(checkpoint_identical=False))
        self.assertEqual(code, 1)
        self.assertIn("checkpoint_results_identical", out)

    def test_fresh_missing_checkpoint_field_fails(self):
        fresh = bench_json()
        del fresh["checkpoint_results_identical"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field checkpoint_results_identical", out)

    def test_warm_baseline_rejected(self):
        code, out = run_gate(bench_json(disk_hits=3), bench_json())
        self.assertEqual(code, 1)
        self.assertIn("warm artifact store", out)

    def test_throughput_regression_fails(self):
        code, out = run_gate(bench_json(cached_lps=100.0), bench_json(cached_lps=60.0))
        self.assertEqual(code, 1)
        self.assertIn("FAIL: cached loops/sec", out)

    def test_warm_backend_regression_fails(self):
        code, out = run_gate(bench_json(warm_blps=500.0), bench_json(warm_blps=300.0))
        self.assertEqual(code, 1)
        self.assertIn("warm backend loops/sec", out)

    def test_warm_hit_rate_drop_fails(self):
        code, out = run_gate(bench_json(warm_rate=0.95), bench_json(warm_rate=0.5))
        self.assertEqual(code, 1)
        self.assertIn("warm_start_hit_rate", out)

    def test_jitter_within_tolerance_passes(self):
        code, out = run_gate(bench_json(cached_lps=100.0), bench_json(cached_lps=80.0))
        self.assertEqual(code, 0, out)


class StaleSchemas(unittest.TestCase):
    """Baselines predating a schema change must fail clearly, not crash."""

    def test_baseline_missing_cached_section(self):
        baseline = bench_json()
        del baseline["cached"]
        code, out = run_gate(baseline, bench_json())
        self.assertEqual(code, 1)
        self.assertIn("baseline missing field cached", out)
        self.assertIn("regenerate", out)

    def test_baseline_missing_loops_per_second(self):
        baseline = bench_json()
        del baseline["cached"]["loops_per_second"]
        code, out = run_gate(baseline, bench_json())
        self.assertEqual(code, 1)
        self.assertIn("baseline missing field cached.loops_per_second", out)

    def test_fresh_missing_field_named_as_fresh(self):
        fresh = bench_json()
        del fresh["cached"]
        code, out = run_gate(bench_json(), fresh)
        self.assertEqual(code, 1)
        self.assertIn("fresh missing field cached", out)

    def test_pre_warm_schema_baseline_still_gates_cached(self):
        # A baseline without the "warm" section (pre-PR-3 schema) skips the
        # warm comparisons but still gates cached throughput.
        baseline = bench_json()
        del baseline["warm"]
        code, out = run_gate(baseline, bench_json())
        self.assertEqual(code, 0, out)
        self.assertNotIn("warm backend loops/sec", out)


class MainEntry(unittest.TestCase):
    def test_main_reports_schema_error_cleanly(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            stale = bench_json()
            del stale["cached"]
            with open(base_path, "w", encoding="utf-8") as f:
                json.dump(stale, f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            out = io.StringIO()
            with redirect_stdout(out):
                code = gate.main([base_path, fresh_path])
            self.assertEqual(code, 1)
            self.assertIn("FAIL: baseline missing field", out.getvalue())

    def test_main_passes_on_healthy_files(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            with open(base_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            with open(fresh_path, "w", encoding="utf-8") as f:
                json.dump(bench_json(), f)
            out = io.StringIO()
            with redirect_stdout(out):
                code = gate.main([base_path, fresh_path])
            self.assertEqual(code, 0, out.getvalue())


if __name__ == "__main__":
    unittest.main()
