#!/usr/bin/env python3
"""Gate CI on BENCH_pipeline.json throughput regressions.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.30]
                                 [--scaling BENCH_sweep_scaling.json]

Compares a fresh perf_micro run against the committed baseline and fails
(exit 1) when:

  - the fresh run reports results_identical: false,
    warm_iis_never_worse: false, checkpoint_results_identical: false,
    parallel_results_identical: false, or mii_optimal_identical: false —
    correctness signals, never tolerable;
  - the fresh run's scheduling-search telemetry is malformed: the
    sched_memo_* counters are absent (the artifact predates the ladder
    memo), a run reports mii_optimal_ii_consistent: false, or the cached
    run proves fewer MII-optimal schedules than the baseline did
    (sched_mii_optimal must never regress — optimality is an outcome,
    not a measurement);
  - the cached sweep's loops_per_second is more than `tolerance` slower;
  - the warm sweep's backend_loops_per_second (back-end-only throughput,
    the figure warm starting improves) is more than `tolerance` slower;
  - the warm sweep's warm_start_hit_rate dropped by more than 0.10
    absolute vs the baseline (the budget-ladder seeding stopped landing);
  - the fresh run used 2+ workers on a machine with 2+ hardware threads
    but parallel_speedup fell below the --speedup-floor (default 1.5):
    the thread pool stopped paying for itself.  Single-threaded runs and
    single-core machines skip this floor — there is no parallelism to
    measure — but never the identity checks;
  - a gated pipeline stage (uncached copy_insert / schedule / queue_alloc,
    warm verify) ran slower than the baseline's stage_seconds by more
    than --stage-tolerance (default 0.50) plus a small absolute slack
    that absorbs jitter on sub-50ms stages.  Baselines predating the
    stage_seconds schema skip these gates with an info line.

With --scaling, a fresh sweep_scaling run is additionally gated: every
worker count must be fingerprint-identical to the serial run
(scaling_results_identical), and on 2+ hardware threads its
parallel_speedup must also clear the floor.

A baseline predating the current JSON schema (missing a required field)
fails with a clear "regenerate the baseline" message instead of a
KeyError traceback — stale baselines are an operator error, not a crash.

The tolerance (default 0.30, override with --tolerance or the
QVLIW_BENCH_TOLERANCE environment variable) absorbs runner jitter; when
the baseline hardware changes materially, regenerate the committed
BENCH_pipeline.json rather than widening the tolerance.
"""

import argparse
import json
import os
import sys


class SchemaError(Exception):
    """A required field is absent from one of the JSON files."""


def require(obj, source, *path):
    """Walks `path` into `obj`, raising SchemaError naming the missing field.

    `source` says which file the object came from ("baseline"/"fresh"), so
    the failure message tells the operator which artifact to regenerate.
    """
    walked = []
    for key in path:
        walked.append(str(key))
        if not isinstance(obj, dict) or key not in obj:
            raise SchemaError(
                f"{source} missing field {'.'.join(walked)} — regenerate it "
                "with the current perf_micro (for the committed baseline: "
                "delete .qvliw-store, run perf_micro, commit the fresh "
                "BENCH_pipeline.json)"
            )
        obj = obj[key]
    return obj


# The per-stage wall-time gates: (run, stage) pairs whose stage_seconds
# must not regress past the stage tolerance.  The uncached run exposes the
# cold front end (copy insertion dominates it); the warm run exposes the
# memoized verifier.
STAGE_GATES = (
    ("uncached", "copy_insert"),
    ("uncached", "schedule"),
    ("uncached", "queue_alloc"),
    ("cached", "schedule"),
    ("warm", "verify"),
)

# Absolute slack added to every stage ceiling: sub-50ms stages are all
# scheduler jitter, and a relative band alone would flap on them.
STAGE_ABS_SLACK_SECONDS = 0.05


def check_stages(baseline, fresh, stage_tolerance):
    """Gates the per-stage wall times listed in STAGE_GATES.

    A baseline without stage_seconds (pre-stage-gate schema) skips each
    gate with an info line — the operator arms them by regenerating the
    baseline.  A *fresh* file without stage_seconds is a schema error:
    the current perf_micro always emits it.
    """
    for run_name, stage in STAGE_GATES:
        base_run = baseline.get(run_name)
        base_stages = base_run.get("stage_seconds") if isinstance(base_run, dict) else None
        if not isinstance(base_stages, dict) or stage not in base_stages:
            print(
                f"info: stage gate {run_name}.{stage} skipped (baseline has no "
                "stage_seconds for it; regenerate the baseline to arm the gate)"
            )
            continue
        base_seconds = base_stages[stage]
        # A stage absent from the fresh run never executed, i.e. took no
        # time — trivially under the ceiling.
        fresh_seconds = require(fresh, "fresh", run_name, "stage_seconds").get(stage, 0.0)
        ceiling = base_seconds * (1.0 + stage_tolerance) + STAGE_ABS_SLACK_SECONDS
        verdict = "OK" if fresh_seconds <= ceiling else "FAIL"
        print(
            f"{verdict}: {run_name} {stage} stage {fresh_seconds:.3f}s vs baseline "
            f"{base_seconds:.3f}s (ceiling {ceiling:.3f}s at stage tolerance "
            f"{stage_tolerance:.0%})"
        )
        if fresh_seconds > ceiling:
            print(f"the {stage} stage regressed beyond tolerance; investigate or "
                  "regenerate the baseline")
            return 1
    return 0


def check(baseline, fresh, tolerance, speedup_floor=1.5, stage_tolerance=0.50):
    # Throughput baselines are per-machine: a ring baseline gated against a
    # mesh or crossbar run would compare apples to oranges.  Files
    # predating the topology fields are implicitly the 4-cluster ring.
    base_machine = (baseline.get("topology", "ring"), baseline.get("clusters", 4))
    fresh_machine = (fresh.get("topology", "ring"), fresh.get("clusters", 4))
    if base_machine != fresh_machine:
        print(
            f"FAIL: baseline measured {base_machine[0]}-{base_machine[1]} but the "
            f"fresh run measured {fresh_machine[0]}-{fresh_machine[1]}; gate each "
            "topology against a baseline generated with the same --topology/--clusters"
        )
        return 1

    if not fresh.get("results_identical", False):
        print("FAIL: fresh run reports results_identical: false (cache correctness bug)")
        return 1

    if not fresh.get("warm_iis_never_worse", True):
        print("FAIL: fresh run reports warm_iis_never_worse: false "
              "(warm-started scheduling degraded an II)")
        return 1

    # Required in the fresh file (the current perf_micro always emits it);
    # a missing field means the fresh artifact was not produced by the
    # current binary.
    if not require(fresh, "fresh", "checkpoint_results_identical"):
        print("FAIL: fresh run reports checkpoint_results_identical: false "
              "(checkpoint replay diverged from the uninterrupted sweep)")
        return 1

    if not require(fresh, "fresh", "parallel_results_identical"):
        print("FAIL: fresh run reports parallel_results_identical: false "
              "(multi-threaded sweep diverged from the serial sweep)")
        return 1

    if not require(fresh, "fresh", "mii_optimal_identical"):
        print("FAIL: fresh run reports mii_optimal_identical: false "
              "(runs disagree about which schedules are MII-optimal; the "
              "ladder memo changed an outcome)")
        return 1

    # Scheduling-search telemetry: the memo counters must exist in every
    # fresh run (absent means the artifact predates the ladder memo), and
    # the MII-optimality bit must be internally consistent.
    for run_name in ("uncached", "cached", "warm"):
        require(fresh, "fresh", run_name, "sched_memo_probes")
        require(fresh, "fresh", run_name, "sched_memo_hits")
        if not require(fresh, "fresh", run_name, "mii_optimal_ii_consistent"):
            print(f"FAIL: fresh {run_name} run reports mii_optimal_ii_consistent: "
                  "false (a cell claims MII-optimality at II != MII)")
            return 1

    # Optimality never regresses: a fresh build may prove MII on *more*
    # loops than the baseline (a better searcher) but never fewer.
    base_optimal = baseline.get("cached", {}).get("sched_mii_optimal")
    if base_optimal is not None:
        fresh_optimal = require(fresh, "fresh", "cached", "sched_mii_optimal")
        verdict = "OK" if fresh_optimal >= base_optimal else "FAIL"
        print(f"{verdict}: MII-optimal schedules {fresh_optimal} vs baseline "
              f"{base_optimal}")
        if fresh_optimal < base_optimal:
            print("the scheduler stopped proving optimality on loops the "
                  "baseline handled; that is an outcome regression, not jitter")
            return 1
    else:
        print("info: sched_mii_optimal gate skipped (baseline predates the "
              "search-telemetry schema; regenerate the baseline to arm it)")

    # Translation validation: perf_micro runs every sweep under the strict
    # independent verifier, so a fresh artifact must show work checked and
    # zero violations on both the cold (cached) and warm runs.
    for run_name in ("cached", "warm"):
        checked = require(fresh, "fresh", run_name, "verify_checked")
        violations = require(fresh, "fresh", run_name, "verify_violations")
        if checked <= 0:
            print(f"FAIL: fresh {run_name} run verified no artifacts "
                  "(verify_checked == 0; the strict verifier did not run)")
            return 1
        if violations != 0:
            print(f"FAIL: fresh {run_name} run reports {violations} legality "
                  "violation(s) (the back end emitted an illegal artifact)")
            return 1
    print(f"OK: legality verifier checked {fresh['cached']['verify_checked']} cold / "
          f"{fresh['warm']['verify_checked']} warm artifact bundles, 0 violations")

    # The speedup floor only means something when the run was actually
    # parallel on actual parallel hardware; the identity checks above
    # apply unconditionally.
    workers = require(fresh, "fresh", "workers")
    hardware = fresh.get("hardware_threads", workers)
    if workers >= 2 and hardware >= 2:
        speedup = fresh.get("parallel_speedup", 0.0)
        verdict = "OK" if speedup >= speedup_floor else "FAIL"
        print(
            f"{verdict}: parallel speedup {speedup:.2f}x with {workers} workers "
            f"on {hardware} hardware threads (floor {speedup_floor:.2f}x)"
        )
        if speedup < speedup_floor:
            print("the thread pool no longer pays for itself; investigate contention")
            return 1
    else:
        print(
            f"info: parallel speedup floor skipped ({workers} worker(s), "
            f"{hardware} hardware thread(s))"
        )

    if require(baseline, "baseline", "cached").get("disk_hits", 0) > 0:
        print(
            "FAIL: committed baseline was generated with a warm artifact store "
            f"(disk_hits {baseline['cached']['disk_hits']}); its throughput is inflated. "
            "Regenerate it from a cold store (delete .qvliw-store first)."
        )
        return 1

    base_lps = require(baseline, "baseline", "cached", "loops_per_second")
    fresh_lps = require(fresh, "fresh", "cached", "loops_per_second")
    floor = base_lps * (1.0 - tolerance)
    verdict = "OK" if fresh_lps >= floor else "FAIL"
    print(
        f"{verdict}: cached loops/sec {fresh_lps:.1f} vs baseline {base_lps:.1f} "
        f"(floor {floor:.1f} at tolerance {tolerance:.0%})"
    )
    if fresh_lps < floor:
        print("throughput regressed beyond tolerance; investigate or regenerate the baseline")
        return 1

    base_warm = baseline.get("warm", {})
    fresh_warm = fresh.get("warm", {})
    if base_warm and fresh_warm:
        base_blps = base_warm.get("backend_loops_per_second", 0.0)
        fresh_blps = fresh_warm.get("backend_loops_per_second", 0.0)
        bfloor = base_blps * (1.0 - tolerance)
        verdict = "OK" if fresh_blps >= bfloor else "FAIL"
        print(
            f"{verdict}: warm backend loops/sec {fresh_blps:.1f} vs baseline {base_blps:.1f} "
            f"(floor {bfloor:.1f} at tolerance {tolerance:.0%})"
        )
        if fresh_blps < bfloor:
            print("warm back-end throughput regressed beyond tolerance")
            return 1

        base_rate = base_warm.get("warm_start_hit_rate", 0.0)
        fresh_rate = fresh_warm.get("warm_start_hit_rate", 0.0)
        if fresh_rate < base_rate - 0.10:
            print(
                f"FAIL: warm_start_hit_rate {fresh_rate:.1%} dropped more than 10 points "
                f"below baseline {base_rate:.1%} (ladder seeding stopped landing)"
            )
            return 1
        print(f"OK: warm_start_hit_rate {fresh_rate:.1%} (baseline {base_rate:.1%})")

    if check_stages(baseline, fresh, stage_tolerance) != 0:
        return 1

    speedup = fresh.get("cache_speedup", 0.0)
    replay = fresh.get("checkpoint_replay", {})
    if not isinstance(replay, dict):
        replay = {}
    print(f"info: cache speedup {speedup:.2f}x, "
          f"warm backend speedup {fresh.get('warm_backend_speedup', 0.0):.2f}x, "
          f"disk hit rate {fresh['cached'].get('disk_hit_rate', 0.0):.1%}, "
          f"schedule-store hits {fresh['warm'].get('sched_disk_hits', 0) if isinstance(fresh.get('warm'), dict) else 0}, "
          f"naive probe fallbacks {fresh['cached'].get('unroll_probe_naive_fallbacks', 0)}, "
          f"checkpoint replay {replay.get('tasks_replayed', 0)} task(s) / "
          f"{replay.get('journal_bytes', 0)} journal bytes")
    return 0


def check_scaling(scaling, speedup_floor=1.5):
    """Gates a fresh sweep_scaling run: identity always, speedup on 2+ cores."""
    if not require(scaling, "scaling", "scaling_results_identical"):
        print("FAIL: sweep_scaling reports scaling_results_identical: false "
              "(some worker count diverged from the serial fingerprint)")
        return 1
    for entry in require(scaling, "scaling", "counts"):
        if not entry.get("identical", False):
            print(f"FAIL: sweep_scaling count workers={entry.get('workers')} "
                  "is not fingerprint-identical to the serial run")
            return 1

    hardware = require(scaling, "scaling", "hardware_threads")
    multi = [e for e in scaling["counts"] if e.get("workers", 0) >= 2]
    if hardware >= 2 and multi:
        speedup = scaling.get("parallel_speedup", 0.0)
        verdict = "OK" if speedup >= speedup_floor else "FAIL"
        print(
            f"{verdict}: scaling parallel speedup {speedup:.2f}x "
            f"on {hardware} hardware threads (floor {speedup_floor:.2f}x)"
        )
        if speedup < speedup_floor:
            return 1
    else:
        print(
            f"info: scaling speedup floor skipped ({hardware} hardware thread(s), "
            f"{len(multi)} multi-worker count(s))"
        )
    return 0


def run(baseline, fresh, tolerance, speedup_floor=1.5, scaling=None, stage_tolerance=0.50):
    """check() (+ optional check_scaling) with SchemaError as a clean FAIL line."""
    try:
        code = check(baseline, fresh, tolerance, speedup_floor, stage_tolerance)
        if code == 0 and scaling is not None:
            code = check_scaling(scaling, speedup_floor)
        return code
    except SchemaError as error:
        print(f"FAIL: {error}")
        return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("QVLIW_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional slowdown of cached loops/sec (default 0.30)",
    )
    parser.add_argument(
        "--speedup-floor",
        type=float,
        default=float(os.environ.get("QVLIW_SPEEDUP_FLOOR", "1.5")),
        help="minimum parallel_speedup on 2+ core machines (default 1.5)",
    )
    parser.add_argument(
        "--scaling",
        default=None,
        help="also gate a fresh BENCH_sweep_scaling.json",
    )
    parser.add_argument(
        "--stage-tolerance",
        type=float,
        default=float(os.environ.get("QVLIW_STAGE_TOLERANCE", "0.50")),
        help="allowed fractional slowdown of a gated stage's wall time (default 0.50)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)
    scaling = None
    if args.scaling is not None:
        with open(args.scaling, encoding="utf-8") as f:
            scaling = json.load(f)

    return run(baseline, fresh, args.tolerance, args.speedup_floor, scaling,
               args.stage_tolerance)


if __name__ == "__main__":
    sys.exit(main())
