// Small string formatting helpers (libstdc++ 12 lacks <format>).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace qvliw {

namespace detail {
inline void cat_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  cat_into(os, rest...);
}
}  // namespace detail

/// Concatenates all arguments with operator<< into one string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  detail::cat_into(os, args...);
  return os.str();
}

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True when `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Formats `value` with `digits` digits after the decimal point.
std::string fixed(double value, int digits);

/// Formats a fraction in [0,1] as a percentage like "95.2%".
std::string percent(double fraction, int digits = 1);

/// Left/right pads `text` with spaces to `width` characters.
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

}  // namespace qvliw
