#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qvliw {

std::size_t worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace detail {

std::size_t rng_grain(std::size_t count) {
  // Fixed blocks: a pure function of the item count so chunk seeds do not
  // depend on the machine's core count.
  (void)count;
  return 16;
}

namespace {

std::size_t default_grain(std::size_t count, std::size_t workers) {
  // ~8 claims per worker amortises the atomic while still load-balancing
  // variable-cost items; heavy small batches degrade to grain 1.
  return std::clamp<std::size_t>(count / (workers * 8), 1, 256);
}

}  // namespace

void parallel_chunks(std::size_t count, std::size_t grain, ChunkFn invoke, void* body_ptr) {
  if (count == 0) return;
  std::size_t workers = worker_count();
  if (grain == 0) grain = default_grain(count, workers);
  const std::size_t chunk_count = (count + grain - 1) / grain;
  workers = std::min(workers, chunk_count);

  if (workers <= 1) {
    // Same contract as the threaded path: every chunk is attempted, the
    // first captured exception is rethrown at the end.
    std::exception_ptr first_error;
    for (std::size_t c = 0; c < chunk_count; ++c) {
      try {
        invoke(body_ptr, 0, c * grain, std::min(count, (c + 1) * grain));
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::vector<std::exception_ptr> errors;

  // Runs on every worker (including the caller, as worker 0).  All
  // exceptions are captured here — never thrown across the join.
  auto work = [&](std::size_t worker) noexcept {
    while (true) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunk_count) return;
      try {
        invoke(body_ptr, worker, c * grain, std::min(count, (c + 1) * grain));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        errors.push_back(std::current_exception());
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
  } catch (...) {
    // Thread exhaustion: the chunks drain on whatever pool exists + the
    // caller below; creation failure is not a work failure.
  }
  work(0);
  for (std::thread& t : pool) t.join();
  if (!errors.empty()) std::rethrow_exception(errors.front());
}

}  // namespace detail
}  // namespace qvliw
