#include "support/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qvliw {

std::size_t worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::min(worker_count(), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qvliw
