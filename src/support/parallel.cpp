#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace qvliw {

std::size_t worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

/// Depth of pool fan-outs on this thread: > 0 inside a chunk body (on a
/// pool thread or the participating caller).  Nested parallel_for calls
/// run inline instead of re-entering a pool mid-fan-out.
thread_local int pool_depth = 0;

std::size_t default_grain(std::size_t count, std::size_t workers) {
  // ~8 claims per worker amortises the atomic while still load-balancing
  // variable-cost items; heavy small batches degrade to grain 1.
  return std::clamp<std::size_t>(count / (workers * 8), 1, 256);
}

}  // namespace

namespace detail {

std::size_t rng_grain(std::size_t count) {
  // Fixed blocks: a pure function of the item count so chunk seeds do not
  // depend on the machine's core count.
  (void)count;
  return 16;
}

void parallel_chunks(std::size_t count, std::size_t grain, ChunkFn invoke, void* body_ptr) {
  ThreadPool::shared().run(count, grain, invoke, body_ptr);
}

}  // namespace detail

/// One fan-out in flight.  Lives on the caller's stack for the duration
/// of run(); `entered` counts pool threads currently inside drain() so
/// the caller never destroys the Job while a thread still touches it.
struct ThreadPool::Job {
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t chunk_count = 0;
  detail::ChunkFn invoke = nullptr;
  void* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t chunks_done = 0;             // guarded by ThreadPool::mutex_
  std::size_t entered = 0;                 // guarded by ThreadPool::mutex_
  std::vector<std::exception_ptr> errors;  // guarded by ThreadPool::mutex_
};

ThreadPool::ThreadPool(std::size_t workers) : workers_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  try {
    for (std::size_t w = 1; w < workers_; ++w) {
      threads_.emplace_back(&ThreadPool::worker_main, this, w);
    }
  } catch (...) {
    // Thread exhaustion: fan-outs drain on whatever pool exists plus the
    // caller; creation failure is not a work failure.
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::shared() {
  // Leaked deliberately (see class comment): a static-destruction-order
  // join against detached user code is a worse failure mode than one
  // never-freed pool.
  static ThreadPool* pool = new ThreadPool(worker_count());
  return *pool;
}

void ThreadPool::run_serial(std::size_t count, std::size_t grain, detail::ChunkFn invoke,
                            void* body_ptr) {
  // Same contract as the threaded path: every chunk is attempted, the
  // first captured exception is rethrown at the end.
  const std::size_t chunk_count = (count + grain - 1) / grain;
  std::exception_ptr first_error;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    try {
      invoke(body_ptr, 0, c * grain, std::min(count, (c + 1) * grain));
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::drain(Job& job, std::size_t worker) noexcept {
  while (true) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunk_count) return;
    std::exception_ptr error;
    try {
      job.invoke(job.body, worker, c * job.grain, std::min(job.count, (c + 1) * job.grain));
    } catch (...) {
      error = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error) job.errors.push_back(error);
    if (++job.chunks_done == job.chunk_count) done_cv_.notify_all();
  }
}

void ThreadPool::worker_main(std::size_t worker) {
  ++pool_depth;  // bodies run here; their nested parallel_for calls inline
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
    if (stop_) return;
    seen = generation_;
    Job& job = *job_;
    ++job.entered;
    lock.unlock();
    drain(job, worker);
    lock.lock();
    if (--job.entered == 0 && job.chunks_done == job.chunk_count) done_cv_.notify_all();
  }
}

void ThreadPool::run(std::size_t count, std::size_t grain, detail::ChunkFn invoke,
                     void* body_ptr) {
  if (count == 0) return;
  if (grain == 0) grain = default_grain(count, workers_);
  const std::size_t chunk_count = (count + grain - 1) / grain;
  if (workers_ <= 1 || chunk_count <= 1 || threads_.empty() || pool_depth > 0) {
    run_serial(count, grain, invoke, body_ptr);
    return;
  }

  const std::lock_guard<std::mutex> submit(submit_mutex_);
  Job job;
  job.count = count;
  job.grain = grain;
  job.chunk_count = chunk_count;
  job.invoke = invoke;
  job.body = body_ptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  ++pool_depth;
  drain(job, 0);
  --pool_depth;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // chunks_done covers the work; entered == 0 covers threads that woke
    // for this job but found the cursor exhausted — they still hold a
    // reference to the stack-allocated Job until they leave drain().
    done_cv_.wait(lock, [&] { return job.chunks_done == job.chunk_count && job.entered == 0; });
    job_ = nullptr;
  }
  if (!job.errors.empty()) std::rethrow_exception(job.errors.front());
}

}  // namespace qvliw
