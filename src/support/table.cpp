#include "support/table.h"

#include <algorithm>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<Cell> cells) {
  check(cells.size() == headers_.size(), "TextTable row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::cell_text(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<std::int64_t>(&cell)) return std::to_string(*integer);
  return fixed(std::get<double>(cell), real_digits_);
}

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(cell_text(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad_right(headers_[c], widths[c]) << " |";
  }
  os << '\n';
  rule();
  for (std::size_t r = 0; r < rendered.size(); ++r) {
    os << '|';
    for (std::size_t c = 0; c < rendered[r].size(); ++c) {
      const bool numeric = !std::holds_alternative<std::string>(rows_[r][c]);
      os << ' ' << (numeric ? pad_left(rendered[r][c], widths[c]) : pad_right(rendered[r][c], widths[c]))
         << " |";
    }
    os << '\n';
  }
  rule();
}

void TextTable::render_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cell_text(row[c]));
    }
    os << '\n';
  }
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace qvliw
