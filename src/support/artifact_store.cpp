#include "support/artifact_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace fs = std::filesystem;

namespace {

std::string hex16(std::uint64_t v) {
  char out[17];
  std::snprintf(out, sizeof out, "%016llx", static_cast<unsigned long long>(v));
  return std::string(out, 16);
}

/// Counter making temp names unique across worker threads of this
/// process; the pid folded into the name alongside it keeps them unique
/// across *processes* too — sharded sweeps point several writers at one
/// store directory, and a temp-name collision would interleave two
/// writers' bytes before the rename.  (A multi-process stress test in
/// tests/test_support.cpp forks concurrent writers at one key.)
std::atomic<std::uint64_t> temp_counter{0};

}  // namespace

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {}

std::string ArtifactStore::default_dir() {
  if (const char* env = std::getenv("QVLIW_STORE_DIR"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".qvliw-store";
}

std::string ArtifactStore::path_for(std::uint64_t key) const {
  const std::string hex = hex16(key);
  return root_ + "/" + hex.substr(0, 2) + "/" + hex + ".qart";
}

ArtifactStore::Stripe& ArtifactStore::stripe_for(std::uint64_t key) const {
  // Keys are content hashes — already uniform; the top bits pick the
  // on-disk fan-out directory, so take stripe bits from the other end.
  return stripes_[static_cast<std::size_t>(key) % kStripes];
}

void ArtifactStore::memoize(std::uint64_t key, std::shared_ptr<const std::string> blob) const {
  Stripe& stripe = stripe_for(key);
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.blobs.size() >= kStripeCap) stripe.blobs.clear();
  stripe.blobs[key] = std::move(blob);
}

bool ArtifactStore::load(std::uint64_t key, std::string& blob) const {
  {
    Stripe& stripe = stripe_for(key);
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    if (const auto it = stripe.blobs.find(key); it != stripe.blobs.end()) {
      blob = *it->second;
      return true;
    }
  }
  // Disk I/O stays outside the stripe lock; misses are never memoised, so
  // entries installed by other processes are picked up on the next probe.
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  blob = std::move(buffer).str();
  memoize(key, std::make_shared<const std::string>(blob));
  return true;
}

void ArtifactStore::save(std::uint64_t key, std::string_view blob) const {
  // Memoise up front: the bytes are this key's content either way, and a
  // failed disk write should not also cost in-process re-reads.
  memoize(key, std::make_shared<const std::string>(blob));

  std::error_code ec;  // all failures degrade to "no cache entry written"
  const fs::path target = path_for(key);
  fs::create_directories(target.parent_path(), ec);
  if (ec) return;

  // Unique temp sibling, then atomic rename into place.
  const fs::path temp =
      target.parent_path() /
      (target.filename().string() + ".tmp." + std::to_string(::getpid()) + "." +
       std::to_string(temp_counter.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      return;
    }
  }
  fs::rename(temp, target, ec);
  if (ec) fs::remove(temp, ec);
}

namespace {
constexpr std::string_view kVersionMarkerPrefix = "format.v";
}

ArtifactStoreStats ArtifactStore::stats() const {
  ArtifactStoreStats stats;
  std::error_code ec;
  for (const fs::directory_entry& top : fs::directory_iterator(root_, ec)) {
    const std::string name = top.path().filename().string();
    if (top.is_regular_file(ec) && starts_with(name, kVersionMarkerPrefix)) {
      const std::string digits = name.substr(kVersionMarkerPrefix.size());
      if (!digits.empty() && digits.find_first_not_of("0123456789") == std::string::npos) {
        stats.versions.push_back(std::strtoull(digits.c_str(), nullptr, 10));
      }
      continue;
    }
    if (!top.is_directory(ec)) continue;
    bool populated = false;
    for (const fs::directory_entry& file : fs::directory_iterator(top.path(), ec)) {
      if (!file.is_regular_file(ec)) continue;
      const std::string leaf = file.path().filename().string();
      const std::uint64_t bytes = static_cast<std::uint64_t>(file.file_size(ec));
      if (ec) continue;  // renamed/removed by a live writer mid-scan
      if (leaf.find(".tmp.") != std::string::npos) {
        ++stats.temp_files;
        stats.temp_bytes += bytes;
      } else if (leaf.size() > 5 && leaf.compare(leaf.size() - 5, 5, ".qart") == 0) {
        ++stats.entries;
        stats.entry_bytes += bytes;
        populated = true;
      }
    }
    if (populated) ++stats.fanout_dirs;
  }
  std::sort(stats.versions.begin(), stats.versions.end());
  return stats;
}

void ArtifactStore::mark_version(std::uint64_t version) const {
  std::error_code ec;
  const fs::path marker = fs::path(root_) / cat(kVersionMarkerPrefix, version);
  if (fs::exists(marker, ec)) return;
  fs::create_directories(root_, ec);
  if (ec) return;
  // Same temp + atomic-rename discipline as save(): concurrent markers
  // only race to install the same (empty) file.
  const fs::path temp = fs::path(root_) / cat(kVersionMarkerPrefix, version, ".tmp.", ::getpid());
  { std::ofstream out(temp, std::ios::binary | std::ios::trunc); }
  fs::rename(temp, marker, ec);
  if (ec) fs::remove(temp, ec);
}

// --- blob format -----------------------------------------------------------

void BlobWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void BlobWriter::put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

void BlobWriter::put_i32(std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<char>((u >> (8 * i)) & 0xffu));
}

void BlobWriter::put_bool(bool v) { bytes_.push_back(v ? '\1' : '\0'); }

void BlobWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void BlobWriter::put_string(std::string_view s) {
  put_u64(s.size());
  bytes_.append(s);
}

std::uint64_t BlobReader::get_u64() {
  check(cursor_ + 8 <= bytes_.size(), "BlobReader: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[cursor_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  cursor_ += 8;
  return v;
}

std::int64_t BlobReader::get_i64() { return static_cast<std::int64_t>(get_u64()); }

std::int32_t BlobReader::get_i32() {
  check(cursor_ + 4 <= bytes_.size(), "BlobReader: truncated i32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[cursor_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  cursor_ += 4;
  return static_cast<std::int32_t>(v);
}

bool BlobReader::get_bool() {
  check(cursor_ + 1 <= bytes_.size(), "BlobReader: truncated bool");
  return bytes_[cursor_++] != '\0';
}

double BlobReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string BlobReader::get_string() {
  const std::uint64_t size = get_u64();
  check(size <= bytes_.size() - cursor_, "BlobReader: truncated string");
  std::string out(bytes_.substr(cursor_, size));
  cursor_ += size;
  return out;
}

void BlobReader::require_exhausted(std::string_view what) const {
  check(exhausted(), cat(what, ": trailing bytes"));
}

}  // namespace qvliw
