#include "support/diagnostics.h"

#include <sstream>

namespace qvliw {

void fail(std::string_view message) { throw Error(std::string(message)); }

void fail_at(std::string_view file, int line, std::string_view message) {
  std::ostringstream os;
  os << file << ":" << line << ": internal error: " << message;
  throw Error(os.str());
}

}  // namespace qvliw
