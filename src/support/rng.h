// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload synthesis, property
// tests) use `Rng`, a xoshiro256** generator seeded through splitmix64,
// so every experiment is reproducible from a single 64-bit seed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "support/diagnostics.h"

namespace qvliw {

/// splitmix64 step; used for seeding and as a stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of `value` (one splitmix64 round).
[[nodiscard]] std::uint64_t hash64(std::uint64_t value);

/// Combines two 64-bit values into one hash.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// Deterministic 64-bit hash of a byte string (FNV-1a folded through
/// hash64).  Platform- and process-independent, unlike std::hash — safe to
/// use in persistent content-addressed keys.
[[nodiscard]] std::uint64_t hash_bytes(std::string_view bytes);

/// xoshiro256** PRNG. Not a std-style engine on purpose: the interface is
/// the handful of draws the library needs, each bias-free.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit draw.
  std::uint64_t next();

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform 64-bit integer in [lo, hi], inclusive.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p);

  /// Standard normal via Box-Muller.
  double normal();

  /// Draws an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted(const std::vector<double>& weights);

  /// Uniformly selects an element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    check(!items.empty(), "Rng::pick on empty vector");
    return items[static_cast<std::size_t>(uniform_i64(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_i64(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator (for per-loop substreams).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace qvliw
