// ASCII and CSV table rendering for the benchmark harness.
//
// Benches print paper-figure-shaped tables with `TextTable`; raw data can
// additionally be dumped as CSV for external plotting.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace qvliw {

/// One table cell: text, integer, or real (formatted with `real_digits`).
using Cell = std::variant<std::string, std::int64_t, double>;

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Number of digits used for double cells (default 2).
  void set_real_digits(int digits) { real_digits_ = digits; }

  /// Appends one row; must match the header count.
  void add_row(std::vector<Cell> cells);

  /// Renders with column alignment (numbers right, text left).
  void render(std::ostream& os) const;

  /// Renders in RFC-4180-ish CSV (quotes fields containing , " or newline).
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

 private:
  [[nodiscard]] std::string cell_text(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int real_digits_ = 2;
};

/// Escapes one CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace qvliw
