// Content-addressed on-disk artifact store.
//
// A flat key-value store mapping 64-bit content keys to opaque byte blobs,
// laid out as  <root>/<aa>/<16-hex-digit-key>.qart  where <aa> is the
// key's top byte (256-way fan-out keeps directories small at paper-suite
// scale).  Writes go through a process-unique temp file followed by an
// atomic rename, so concurrent writers — worker threads of one sweep or
// several bench processes sharing a store — can only ever race to install
// identical bytes; readers never observe a partial blob.
//
// Keys are expected to be *content* hashes (e.g. Loop::content_hash
// combined with an options-prefix hash and a format version), so a hit is
// semantically a recomputation skipped.  The store itself is payload-
// agnostic; callers bring their own serialisation, for which BlobWriter /
// BlobReader provide a minimal portable binary format (fixed-width
// little-endian integers, length-prefixed strings).
//
// Thread safety: one ArtifactStore may be shared by every worker thread
// of a sweep.  Reads go through a read-mostly in-memory index — 16 lock
// stripes over key -> blob, filled on first load and on save — so a hot
// key costs one short stripe lock instead of a filesystem round trip, and
// disk I/O always happens *outside* the stripe lock.  Only *positive*
// results are memoised: a miss is re-probed on disk every time, so
// entries installed by concurrent processes become visible without any
// invalidation protocol.  Because keys are content hashes, a memoised
// blob can never go stale — at worst the index re-serves bytes another
// writer just re-installed identically.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qvliw {

/// Operator-facing inventory of a store directory (ArtifactStore::stats):
/// installed entries, leftover temp files from killed writers, and the
/// format-version markers recorded by mark_version.
struct ArtifactStoreStats {
  std::uint64_t entries = 0;     // installed *.qart blobs
  std::uint64_t entry_bytes = 0;
  std::uint64_t temp_files = 0;  // *.tmp.* siblings a killed writer left behind
  std::uint64_t temp_bytes = 0;
  std::uint64_t fanout_dirs = 0;  // populated <aa>/ directories
  /// Format versions that have written into this store, ascending (from
  /// the root's `format.v<N>` markers).  More than one version means
  /// entries keyed under retired key domains are still on disk — dead
  /// weight that is never read again and can be garbage-collected.
  std::vector<std::uint64_t> versions;
};

class ArtifactStore {
 public:
  /// Opens (and lazily creates) the store rooted at `root`.
  explicit ArtifactStore(std::string root);

  /// Non-copyable: the striped index carries mutexes, and two copies
  /// would silently stop sharing their memoisation.
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Reads the blob stored under `key` into `blob`; false when absent or
  /// unreadable (a corrupt entry is indistinguishable from a miss by
  /// design — callers revalidate through their own decoding).  A hit is
  /// memoised in the striped index; thread-safe.
  [[nodiscard]] bool load(std::uint64_t key, std::string& blob) const;

  /// Atomically installs `blob` under `key`, overwriting any previous
  /// value, and memoises it so later loads through this object skip the
  /// disk.  Failures (full disk, permissions) are swallowed: the store is
  /// a cache, and losing a write only costs a future recomputation (the
  /// memoised copy still serves this process).  Thread-safe.
  void save(std::uint64_t key, std::string_view blob) const;

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Walks the store and reports entry counts, bytes, leftover temp
  /// files, and the version-marker mix — the maintenance view for
  /// operators inspecting a shared store directory.  Purely read-only; a
  /// missing root reports all-zero stats.
  [[nodiscard]] ArtifactStoreStats stats() const;

  /// Records that a writer using blob-format `version` used this store,
  /// as an empty `format.v<N>` marker at the root (idempotent, atomic
  /// like save()).  Writers call this once per process so stats() can
  /// report which key domains a long-lived shared store has accumulated.
  void mark_version(std::uint64_t version) const;

  /// Store directory used when the caller does not name one:
  /// $QVLIW_STORE_DIR, defaulting to ".qvliw-store".
  [[nodiscard]] static std::string default_dir();

 private:
  /// One lock stripe of the in-memory index.  Blobs are shared_ptr so a
  /// reader can copy the bytes out after dropping the stripe lock even if
  /// an eviction sweeps the stripe meanwhile.
  struct Stripe {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<const std::string>> blobs;
  };

  static constexpr std::size_t kStripes = 16;
  /// Per-stripe entry cap; a stripe that grows past it is cleared (the
  /// index is a cache of a cache — wholesale eviction is always correct).
  static constexpr std::size_t kStripeCap = 4096;

  [[nodiscard]] std::string path_for(std::uint64_t key) const;
  [[nodiscard]] Stripe& stripe_for(std::uint64_t key) const;
  void memoize(std::uint64_t key, std::shared_ptr<const std::string> blob) const;

  std::string root_;
  mutable std::array<Stripe, kStripes> stripes_;
};

/// Append-only builder of the store's portable binary blob format.
class BlobWriter {
 public:
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_i32(std::int32_t v);
  void put_bool(bool v);
  void put_f64(double v);               // IEEE-754 bits as a u64
  void put_string(std::string_view s);  // u64 length + bytes

  [[nodiscard]] std::string take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Sequential reader over a blob.  Any out-of-bounds read throws Error;
/// store clients catch it and treat the entry as a miss.
class BlobReader {
 public:
  explicit BlobReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64();
  [[nodiscard]] std::int32_t get_i32();
  [[nodiscard]] bool get_bool();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_string();

  /// True when every byte has been consumed.
  [[nodiscard]] bool exhausted() const { return cursor_ == bytes_.size(); }

  /// Bytes consumed so far (the offset of the next read).  Record-framed
  /// readers (the checkpoint journal) use this to remember the last
  /// intact record boundary when a torn tail cuts a decode short.
  [[nodiscard]] std::size_t cursor() const { return cursor_; }

  /// Throws Error("<what>: trailing bytes") unless exhausted.  Every
  /// top-level decoder of a store entry must end with this: a blob that
  /// decodes cleanly but has bytes left over is a *different* (longer,
  /// future-format) entry, and accepting it would replay stale artifacts
  /// instead of treating them as misses.
  void require_exhausted(std::string_view what) const;

 private:
  std::string_view bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace qvliw
