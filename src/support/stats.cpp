#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.h"

namespace qvliw {

void OnlineStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return min_; }

double OnlineStats::max() const { return max_; }

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    check(v > 0.0, "geomean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  check(!values.empty(), "percentile of empty vector");
  check(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double fraction_at_most(const std::vector<int>& values, int bound) {
  if (values.empty()) return 0.0;
  std::size_t hits = 0;
  for (int v : values) {
    if (v <= bound) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  check(bins > 0, "Histogram needs at least one bin");
  check(hi > lo, "Histogram range must be non-empty");
}

void Histogram::add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  check(bin < counts_.size(), "Histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  check(bin < counts_.size(), "Histogram bin out of range");
  if (total_ == 0) return 0.0;
  std::size_t running = 0;
  for (std::size_t i = 0; i <= bin; ++i) running += counts_[i];
  return static_cast<double>(running) / static_cast<double>(total_);
}

}  // namespace qvliw
