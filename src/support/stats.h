// Summary statistics used by the experiment harness and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qvliw {

/// Welford-style online accumulator for count/mean/variance/min/max.
class OnlineStats {
 public:
  void add(double value);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Geometric mean; requires strictly positive values; 0 for empty input.
[[nodiscard]] double geomean(const std::vector<double>& values);

/// p-th percentile (p in [0,100]) by linear interpolation on sorted copy.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Fraction of `values` satisfying value <= bound.
[[nodiscard]] double fraction_at_most(const std::vector<int>& values, int bound);

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Cumulative fraction of samples in bins [0, bin].
  [[nodiscard]] double cumulative_fraction(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace qvliw
