#include "support/rng.h"

#include <cmath>

namespace qvliw {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t value) {
  std::uint64_t state = value;
  return splitmix64(state);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

std::uint64_t hash_bytes(std::string_view bytes) {
  // FNV-1a over the bytes, then one splitmix64 round for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return hash64(h);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

int Rng::uniform_int(int lo, int hi) {
  return static_cast<int>(uniform_i64(lo, hi));
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  check(lo <= hi, "Rng::uniform_i64: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) { return uniform() < p; }

double Rng::normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  check(!weights.empty(), "Rng::weighted: empty weights");
  double total = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "Rng::weighted: negative weight");
    total += w;
  }
  check(total > 0.0, "Rng::weighted: all-zero weights");
  double draw = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace qvliw
