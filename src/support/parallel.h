// Minimal fork-join parallelism for experiment sweeps.
//
// The harness evaluates ~1258 independent loops per sweep point;
// `parallel_for` fans the index range out over a worker pool in *chunks*:
// workers claim contiguous index ranges from an atomic cursor, so there is
// one synchronisation per chunk instead of one per index, and the body is
// dispatched through a statically-typed trampoline — no per-index (or even
// per-call) std::function allocation.
//
// Exception contract: every worker exception is captured; after all
// threads have joined, the first captured exception is rethrown on the
// caller thread.  The caller participates in the chunk loop itself, and
// its exceptions go through the same capture path, so a throwing body can
// never bypass (or deadlock) the join.
//
// `parallel_for_rng` supplies the body with a private RNG stream per
// chunk, seeded from (seed, chunk start) with a grain that depends only on
// the item count — results are bit-identical no matter how many workers
// run or which worker executes which chunk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "support/rng.h"

namespace qvliw {

/// Number of workers used by parallel_for (>= 1).
[[nodiscard]] std::size_t worker_count();

namespace detail {

/// Trampoline invoked once per claimed chunk: body_ptr is the address of
/// the caller's body object; worker ids are dense in [0, workers).
using ChunkFn = void (*)(void* body_ptr, std::size_t worker, std::size_t begin, std::size_t end);

/// Chunked dispatch core (non-template; lives in parallel.cpp).
/// grain == 0 selects a load-balancing default from count and the pool
/// size; otherwise chunks are [k*grain, (k+1)*grain) intersected with
/// [0, count).
void parallel_chunks(std::size_t count, std::size_t grain, ChunkFn invoke, void* body_ptr);

/// Deterministic grain for the RNG overload: a function of `count` only,
/// never of the worker count, so chunk -> seed assignment is stable.
[[nodiscard]] std::size_t rng_grain(std::size_t count);

}  // namespace detail

/// Invokes body(i) for every i in [0, count) across the worker pool.
template <typename Body>
void parallel_for(std::size_t count, Body&& body) {
  using Stored = std::remove_reference_t<Body>;
  detail::parallel_chunks(
      count, 0,
      [](void* body_ptr, std::size_t, std::size_t begin, std::size_t end) {
        Stored& b = *static_cast<Stored*>(body_ptr);
        for (std::size_t i = begin; i < end; ++i) b(i);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// parallel_for with an explicit chunk grain (indices per claim).
template <typename Body>
void parallel_for_grained(std::size_t count, std::size_t grain, Body&& body) {
  using Stored = std::remove_reference_t<Body>;
  detail::parallel_chunks(
      count, grain == 0 ? 1 : grain,
      [](void* body_ptr, std::size_t, std::size_t begin, std::size_t end) {
        Stored& b = *static_cast<Stored*>(body_ptr);
        for (std::size_t i = begin; i < end; ++i) b(i);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// Invokes body(i, rng) with a per-chunk RNG stream: rng is freshly seeded
/// from (seed, first index of the chunk).  Deterministic for any worker
/// count.
template <typename Body>
void parallel_for_rng(std::size_t count, std::uint64_t seed, Body&& body) {
  using Stored = std::remove_reference_t<Body>;
  struct Bound {
    Stored* body;
    std::uint64_t seed;
  } bound{std::addressof(body), seed};
  detail::parallel_chunks(
      count, detail::rng_grain(count),
      [](void* body_ptr, std::size_t, std::size_t begin, std::size_t end) {
        Bound& b = *static_cast<Bound*>(body_ptr);
        Rng rng(hash_combine(b.seed, begin));
        for (std::size_t i = begin; i < end; ++i) (*b.body)(i, rng);
      },
      &bound);
}

}  // namespace qvliw
