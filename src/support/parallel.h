// Minimal fork-join parallelism for experiment sweeps.
//
// The harness evaluates ~1258 independent loops per machine configuration;
// `parallel_for` fans the index range out over a worker pool.  Work items
// must be independent; results are written to caller-owned slots indexed by
// the loop index, so no synchronisation is needed beyond the join.
#pragma once

#include <cstddef>
#include <functional>

namespace qvliw {

/// Number of workers used by parallel_for (>= 1).
[[nodiscard]] std::size_t worker_count();

/// Invokes body(i) for every i in [0, count) across the worker pool.
/// Exceptions thrown by `body` are captured and rethrown on the caller
/// thread after the join (first one wins).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace qvliw
