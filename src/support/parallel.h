// Shared fork-join thread pool for experiment sweeps.
//
// The harness evaluates ~1258 independent loops per sweep point;
// `parallel_for` fans the index range out over a *persistent* worker pool
// in chunks: workers claim contiguous index ranges from an atomic cursor,
// so there is one synchronisation per chunk instead of one per index, and
// the body is dispatched through a statically-typed trampoline — no
// per-index (or even per-call) std::function allocation.  The pool's
// threads outlive individual calls (`ThreadPool::shared()` is the
// process-wide instance sized to the hardware), so benches and the sweep
// runner stop paying thread spawn/join per fan-out.
//
// Exception contract: every worker exception is captured; after the
// fan-out completes, the first captured exception is rethrown on the
// caller thread.  The caller participates in the chunk loop itself, and
// its exceptions go through the same capture path, so a throwing body can
// never bypass (or deadlock) the completion wait.
//
// Fork safety: a forked child inherits the pool object but none of its
// threads.  Completion is counted per *chunk*, not per worker, so a
// fan-out on a thread-less pool degrades to the caller draining every
// chunk itself — serial, but correct and deadlock-free.  Code that forks
// workers (harness/dispatch) still must not run a fan-out in the parent
// concurrently with fork(); the dispatcher forks only from its own
// single-threaded poll loop.
//
// `parallel_for_rng` supplies the body with a private RNG stream per
// chunk, seeded from (seed, chunk start) with a grain that depends only on
// the item count — results are bit-identical no matter how many workers
// run or which worker executes which chunk.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/rng.h"

namespace qvliw {

/// Number of workers used by parallel_for (>= 1).
[[nodiscard]] std::size_t worker_count();

namespace detail {

/// Trampoline invoked once per claimed chunk: body_ptr is the address of
/// the caller's body object; worker ids are dense in [0, workers).
using ChunkFn = void (*)(void* body_ptr, std::size_t worker, std::size_t begin, std::size_t end);

/// Chunked dispatch through ThreadPool::shared() (lives in parallel.cpp).
/// grain == 0 selects a load-balancing default from count and the pool
/// size; otherwise chunks are [k*grain, (k+1)*grain) intersected with
/// [0, count).
void parallel_chunks(std::size_t count, std::size_t grain, ChunkFn invoke, void* body_ptr);

/// Deterministic grain for the RNG overload: a function of `count` only,
/// never of the worker count, so chunk -> seed assignment is stable.
[[nodiscard]] std::size_t rng_grain(std::size_t count);

}  // namespace detail

/// A fixed-size fork-join pool.  `workers` counts the caller: a pool of N
/// owns N-1 persistent threads and the caller of run() claims chunks as
/// worker 0, so ThreadPool(1) spawns nothing and runs serially.
///
/// Threading contract: run() serialises concurrent callers (one fan-out
/// at a time); a nested run() from inside a chunk body executes its
/// chunks inline on the calling worker instead of deadlocking on the
/// pool.  The destructor joins all threads; the shared() instance is
/// intentionally leaked so exiting threads never race process teardown.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured worker count (caller included), >= 1.  The number of live
  /// threads can be lower if thread creation failed — fan-outs still
  /// complete on whatever exists.
  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Fans `count` indices out in chunks of `grain` (0 = load-balancing
  /// default).  Blocks until every chunk has run; rethrows the first
  /// captured body exception.  Every chunk is attempted even when one
  /// throws — same contract as the serial path.
  void run(std::size_t count, std::size_t grain, detail::ChunkFn invoke, void* body_ptr);

  /// The process-wide pool, sized worker_count(), created on first use
  /// and never destroyed.
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Job;

  void worker_main(std::size_t worker);
  void drain(Job& job, std::size_t worker) noexcept;
  static void run_serial(std::size_t count, std::size_t grain, detail::ChunkFn invoke,
                         void* body_ptr);

  std::size_t workers_;
  std::mutex submit_mutex_;  // one fan-out at a time
  std::mutex mutex_;         // guards job_/generation_/stop_ + Job counters
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Invokes body(i) for every i in [0, count) across the shared pool.
template <typename Body>
void parallel_for(std::size_t count, Body&& body) {
  using Stored = std::remove_reference_t<Body>;
  detail::parallel_chunks(
      count, 0,
      [](void* body_ptr, std::size_t, std::size_t begin, std::size_t end) {
        Stored& b = *static_cast<Stored*>(body_ptr);
        for (std::size_t i = begin; i < end; ++i) b(i);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// parallel_for with an explicit chunk grain (indices per claim).
template <typename Body>
void parallel_for_grained(std::size_t count, std::size_t grain, Body&& body) {
  using Stored = std::remove_reference_t<Body>;
  detail::parallel_chunks(
      count, grain == 0 ? 1 : grain,
      [](void* body_ptr, std::size_t, std::size_t begin, std::size_t end) {
        Stored& b = *static_cast<Stored*>(body_ptr);
        for (std::size_t i = begin; i < end; ++i) b(i);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// parallel_for on an explicit pool (grain 0 = default): how the sweep
/// runner targets a private pool sized by SweepOptions::workers instead
/// of the hardware-sized shared one.
template <typename Body>
void parallel_for_on(ThreadPool& pool, std::size_t count, std::size_t grain, Body&& body) {
  using Stored = std::remove_reference_t<Body>;
  pool.run(
      count, grain,
      [](void* body_ptr, std::size_t, std::size_t begin, std::size_t end) {
        Stored& b = *static_cast<Stored*>(body_ptr);
        for (std::size_t i = begin; i < end; ++i) b(i);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// Invokes body(i, rng) with a per-chunk RNG stream: rng is freshly seeded
/// from (seed, first index of the chunk).  Deterministic for any worker
/// count.
template <typename Body>
void parallel_for_rng(std::size_t count, std::uint64_t seed, Body&& body) {
  using Stored = std::remove_reference_t<Body>;
  struct Bound {
    Stored* body;
    std::uint64_t seed;
  } bound{std::addressof(body), seed};
  detail::parallel_chunks(
      count, detail::rng_grain(count),
      [](void* body_ptr, std::size_t, std::size_t begin, std::size_t end) {
        Bound& b = *static_cast<Bound*>(body_ptr);
        Rng rng(hash_combine(b.seed, begin));
        for (std::size_t i = begin; i < end; ++i) (*b.body)(i, rng);
      },
      &bound);
}

/// A bounded multi-producer single-consumer (MPSC-by-convention, MPMC-safe)
/// blocking channel: the conveyor between sweep workers and the checkpoint
/// committer thread (harness/checkpoint.h).  push() blocks while the
/// channel is full — back-pressure, so an unbounded backlog of completed
/// tasks can never pile up faster than the journal flushes; pop() blocks
/// while empty and returns false only when the channel is closed *and*
/// drained, so no accepted item is ever dropped.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Blocks until there is room (or the channel closes); false = closed,
  /// the item was not accepted.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    can_push_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    can_pop_.notify_one();
    return true;
  }

  /// Blocks until an item arrives (or the channel closes); false = closed
  /// and fully drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    can_pop_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    can_push_.notify_one();
    return true;
  }

  /// Idempotent; wakes every blocked producer and the consumer.  Items
  /// already accepted stay poppable.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace qvliw
