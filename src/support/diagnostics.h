// Error reporting and invariant checking used across the library.
//
// The library reports broken preconditions and internal invariant failures
// by throwing `qvliw::Error`.  Conditions that are expected in normal
// operation (a loop that does not fit a machine, a queue budget exceeded)
// are reported through return values, never through exceptions.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace qvliw {

/// Exception type thrown on precondition violations and internal errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Throws `Error` carrying `message` (marked noreturn for flow analysis).
[[noreturn]] void fail(std::string_view message);

/// Throws `Error` with file/line context.
[[noreturn]] void fail_at(std::string_view file, int line, std::string_view message);

/// Checks a precondition; throws `Error` with `message` when violated.
inline void check(bool condition, std::string_view message) {
  if (!condition) fail(message);
}

/// Internal-invariant flavour of `check`; use for "cannot happen" states.
#define QVLIW_ASSERT(cond, msg)                             \
  do {                                                      \
    if (!(cond)) ::qvliw::fail_at(__FILE__, __LINE__, msg); \
  } while (false)

}  // namespace qvliw
