#include "support/strings.h"

#include <cctype>
#include <iomanip>

namespace qvliw {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text);
  return std::string(text) + std::string(width - text.size(), ' ');
}

}  // namespace qvliw
