#include "xform/invariants.h"

#include <set>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

Loop materialize_invariants(const Loop& src, InvariantStrategy strategy) {
  src.validate();
  if (strategy == InvariantStrategy::kImmediate) return src;

  // Which invariants are actually read?
  std::set<int> used;
  for (const Op& op : src.ops) {
    for (const Operand& arg : op.args) {
      if (arg.kind == Operand::Kind::kInvariant) used.insert(arg.invariant);
    }
  }
  if (used.empty()) return src;

  Loop out;
  out.name = src.name;
  out.stride = src.stride;
  out.trip_hint = src.trip_hint;
  out.invariants = src.invariants;
  out.arrays = src.arrays;

  std::set<std::string> taken;
  for (const Op& op : src.ops) {
    if (op.defines_value()) taken.insert(op.name);
  }

  // One self-recirculating copy per used invariant, at the top of the body.
  std::vector<int> recirc(src.invariants.size(), -1);
  for (int inv : used) {
    Op copy;
    copy.opcode = Opcode::kCopy;
    std::string name = cat("invq_", src.invariants[static_cast<std::size_t>(inv)]);
    while (!taken.insert(name).second) name += "_";
    copy.name = name;
    copy.init_invariant = inv;
    const int self = out.op_count();
    copy.args.push_back(Operand::value(self, 1));  // reads itself, one iteration back
    out.add_op(std::move(copy));
    recirc[static_cast<std::size_t>(inv)] = self;
  }

  const int offset = out.op_count();
  for (const Op& src_op : src.ops) {
    Op op = src_op;
    for (Operand& arg : op.args) {
      if (arg.kind == Operand::Kind::kValue) {
        arg.value_op += offset;
      } else if (arg.kind == Operand::Kind::kInvariant) {
        arg = Operand::value(recirc[static_cast<std::size_t>(arg.invariant)], 0);
      }
    }
    out.add_op(std::move(op));
  }

  out.validate();
  return out;
}

}  // namespace qvliw
