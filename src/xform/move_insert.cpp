#include "xform/move_insert.h"

#include <set>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

MoveInsertResult insert_move_chain(const Loop& src, int dst, int dst_arg, int hops) {
  src.validate();
  check(hops >= 1, "insert_move_chain: hops must be >= 1");
  check(dst >= 0 && dst < src.op_count(), "insert_move_chain: dst out of range");
  const Op& consumer = src.ops[static_cast<std::size_t>(dst)];
  check(dst_arg >= 0 && dst_arg < static_cast<int>(consumer.args.size()),
        "insert_move_chain: dst_arg out of range");
  const Operand target = consumer.args[static_cast<std::size_t>(dst_arg)];
  check(target.is_value(), "insert_move_chain: operand is not a value flow");
  const int producer = target.value_op;

  MoveInsertResult result;
  result.loop.name = src.name;
  result.loop.stride = src.stride;
  result.loop.trip_hint = src.trip_hint;
  result.loop.invariants = src.invariants;
  result.loop.arrays = src.arrays;
  result.op_map.assign(static_cast<std::size_t>(src.op_count()), -1);

  std::set<std::string> taken;
  for (const Op& op : src.ops) {
    if (op.defines_value()) taken.insert(op.name);
  }
  auto fresh_name = [&taken](const std::string& base) {
    std::string name = base;
    int counter = 0;
    while (!taken.insert(name).second) name = cat(base, "_", counter++);
    return name;
  };

  // Emit originals; right after the producer, emit the move chain.
  std::vector<int> chain;
  for (int v = 0; v < src.op_count(); ++v) {
    result.op_map[static_cast<std::size_t>(v)] =
        result.loop.add_op(src.ops[static_cast<std::size_t>(v)]);
    if (v == producer) {
      int feed = result.op_map[static_cast<std::size_t>(v)];
      for (int hop = 0; hop < hops; ++hop) {
        Op move;
        move.opcode = Opcode::kMove;
        move.name =
            fresh_name(cat(src.ops[static_cast<std::size_t>(producer)].name, "_m", hop));
        move.init_invariant = src.ops[static_cast<std::size_t>(producer)].init_invariant;
        move.args.push_back(Operand::value(feed, 0));
        feed = result.loop.add_op(std::move(move));
        chain.push_back(feed);
        ++result.moves_added;
      }
    }
  }

  // Remap all value operands through op_map; the split operand instead
  // reads the chain's tail at the original distance.
  for (int v = 0; v < src.op_count(); ++v) {
    Op& op = result.loop.ops[static_cast<std::size_t>(result.op_map[static_cast<std::size_t>(v)])];
    for (std::size_t a = 0; a < op.args.size(); ++a) {
      if (!op.args[a].is_value()) continue;
      if (v == dst && static_cast<int>(a) == dst_arg) {
        op.args[a] = Operand::value(chain.back(), target.distance);
      } else {
        op.args[a] =
            Operand::value(result.op_map[static_cast<std::size_t>(op.args[a].value_op)],
                           op.args[a].distance);
      }
    }
  }

  result.loop.validate();
  return result;
}

}  // namespace qvliw
