// Move insertion for inter-cluster routing (the paper's future work).
//
// The base partitioning scheme only lets a value flow between topology-adjacent
// clusters; the paper's conclusion proposes `move` operations to relay
// values across intermediate clusters.  This transform splits one flow
// edge with a chain of moves: each hop is an ordinary DDG op executed on a
// copy/move FU, so the partitioner's adjacency rule applies hop by hop.
#pragma once

#include "ir/loop.h"

namespace qvliw {

/// Splits the flow edge feeding operand `dst_arg` of op `dst` with `hops`
/// chained move ops (hops >= 1).  The moves execute in the producer's
/// iteration; the consumer's operand distance is preserved.  Returns the
/// rewritten loop; `moves_added` reports the chain length.
struct MoveInsertResult {
  Loop loop;
  int moves_added = 0;
  /// Original op index -> index in the rewritten loop.
  std::vector<int> op_map;
};

[[nodiscard]] MoveInsertResult insert_move_chain(const Loop& loop, int dst, int dst_arg,
                                                 int hops);

}  // namespace qvliw
