#include "xform/copy_insert.h"

#include <map>
#include <set>
#include <span>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {

struct Use {
  int op;
  int arg;
};

/// Copy nodes planned for one producer; parent -1 means "fed by the
/// producer itself".
struct CopyNode {
  int parent = -1;
};

class Planner {
 public:
  Planner(const Loop& loop, CopyTreeShape shape) : loop_(loop), shape_(shape) {}

  void plan() {
    const int n = loop_.op_count();
    std::vector<std::vector<Use>> uses(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u) {
      const Op& op = loop_.ops[static_cast<std::size_t>(u)];
      for (std::size_t a = 0; a < op.args.size(); ++a) {
        if (op.args[a].is_value()) {
          uses[static_cast<std::size_t>(op.args[a].value_op)].push_back(
              {u, static_cast<int>(a)});
        }
      }
    }
    trees_.resize(static_cast<std::size_t>(n));
    for (int def = 0; def < n; ++def) {
      const int capacity = loop_.ops[static_cast<std::size_t>(def)].opcode == Opcode::kCopy ? 2 : 1;
      feed(def, -1, capacity, std::span<const Use>(uses[static_cast<std::size_t>(def)]));
    }
  }

  [[nodiscard]] const std::vector<CopyNode>& tree(int def) const {
    return trees_[static_cast<std::size_t>(def)];
  }

  /// Source feeding a use slot: (def, node) with node == -1 for the
  /// producer itself.
  [[nodiscard]] std::pair<int, int> source_of(int use_op, int use_arg) const {
    const auto it = reroute_.find({use_op, use_arg});
    QVLIW_ASSERT(it != reroute_.end(), "copy planner missed a use");
    return it->second;
  }

 private:
  void feed(int def, int source_node, int capacity, std::span<const Use> uses) {
    if (static_cast<int>(uses.size()) <= capacity) {
      for (const Use& use : uses) reroute_[{use.op, use.arg}] = {def, source_node};
      return;
    }
    auto& nodes = trees_[static_cast<std::size_t>(def)];
    if (capacity == 1) {
      // Producer feeds a single root copy; the tree fans out below it.
      nodes.push_back({source_node});
      feed(def, static_cast<int>(nodes.size()) - 1, 2, uses);
      return;
    }
    QVLIW_ASSERT(capacity == 2, "unexpected fan-out capacity");
    if (shape_ == CopyTreeShape::kChain) {
      // One direct consumer, one copy relaying the rest.
      reroute_[{uses[0].op, uses[0].arg}] = {def, source_node};
      nodes.push_back({source_node});
      feed(def, static_cast<int>(nodes.size()) - 1, 2, uses.subspan(1));
      return;
    }
    // Balanced: split into two halves; singleton halves attach directly.
    const std::size_t half = uses.size() - uses.size() / 2;  // left gets the extra
    for (const auto& group : {uses.subspan(0, half), uses.subspan(half)}) {
      if (group.size() == 1) {
        reroute_[{group[0].op, group[0].arg}] = {def, source_node};
      } else {
        nodes.push_back({source_node});
        feed(def, static_cast<int>(nodes.size()) - 1, 2, group);
      }
    }
  }

  const Loop& loop_;
  CopyTreeShape shape_;
  std::vector<std::vector<CopyNode>> trees_;
  std::map<std::pair<int, int>, std::pair<int, int>> reroute_;
};

}  // namespace

CopyInsertResult insert_copies(const Loop& src, CopyTreeShape shape) {
  src.validate();
  Planner planner(src, shape);
  planner.plan();

  CopyInsertResult result;
  result.loop.name = src.name;
  result.loop.stride = src.stride;
  result.loop.trip_hint = src.trip_hint;
  result.loop.invariants = src.invariants;
  result.loop.arrays = src.arrays;
  result.op_map.assign(static_cast<std::size_t>(src.op_count()), -1);

  std::set<std::string> taken;
  for (const Op& op : src.ops) {
    if (op.defines_value()) taken.insert(op.name);
  }
  auto fresh_name = [&taken](const std::string& base) {
    std::string name = base;
    int counter = 0;
    while (!taken.insert(name).second) name = cat(base, "_", counter++);
    return name;
  };

  // Emit originals in order, each followed by its copy tree (parents are
  // created before children, so emission order keeps distance-0 operands
  // after their definitions).
  std::vector<std::vector<int>> node_index(static_cast<std::size_t>(src.op_count()));
  for (int def = 0; def < src.op_count(); ++def) {
    result.op_map[static_cast<std::size_t>(def)] =
        result.loop.add_op(src.ops[static_cast<std::size_t>(def)]);
    const auto& tree = planner.tree(def);
    node_index[static_cast<std::size_t>(def)].reserve(tree.size());
    for (std::size_t node = 0; node < tree.size(); ++node) {
      Op copy;
      copy.opcode = Opcode::kCopy;
      copy.name = fresh_name(cat(src.ops[static_cast<std::size_t>(def)].name, "_c", node));
      copy.init_invariant = src.ops[static_cast<std::size_t>(def)].init_invariant;
      const int parent = tree[node].parent;
      const int source = parent < 0 ? result.op_map[static_cast<std::size_t>(def)]
                                    : node_index[static_cast<std::size_t>(def)][static_cast<std::size_t>(parent)];
      copy.args.push_back(Operand::value(source, 0));
      node_index[static_cast<std::size_t>(def)].push_back(result.loop.add_op(std::move(copy)));
      ++result.copies_added;
    }
  }

  // Rewrite value operands of the original ops to their assigned sources.
  for (int u = 0; u < src.op_count(); ++u) {
    Op& op = result.loop.ops[static_cast<std::size_t>(result.op_map[static_cast<std::size_t>(u)])];
    for (std::size_t a = 0; a < op.args.size(); ++a) {
      if (!op.args[a].is_value()) continue;
      const auto [def, node] = planner.source_of(u, static_cast<int>(a));
      const int source = node < 0 ? result.op_map[static_cast<std::size_t>(def)]
                                  : node_index[static_cast<std::size_t>(def)][static_cast<std::size_t>(node)];
      op.args[a] = Operand::value(source, op.args[a].distance);
    }
  }

  result.loop.validate();
  QVLIW_ASSERT(fanout_legal(result.loop), "copy insertion left an over-fanned value");
  return result;
}

bool fanout_legal(const Loop& loop) {
  std::vector<int> uses(static_cast<std::size_t>(loop.op_count()), 0);
  for (const Op& op : loop.ops) {
    for (const Operand& arg : op.args) {
      if (arg.is_value()) ++uses[static_cast<std::size_t>(arg.value_op)];
    }
  }
  for (int def = 0; def < loop.op_count(); ++def) {
    const int capacity = loop.ops[static_cast<std::size_t>(def)].opcode == Opcode::kCopy ? 2 : 1;
    if (uses[static_cast<std::size_t>(def)] > capacity) return false;
  }
  return true;
}

}  // namespace qvliw
