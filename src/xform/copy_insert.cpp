#include "xform/copy_insert.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "ir/memdep.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {

struct Use {
  std::int32_t op;
  std::int32_t arg;
};

/// Flat copy plan.  Per-def use lists and copy-tree parents live in shared
/// arenas addressed by CSR offsets; reroute targets are indexed by the
/// consuming operand slot (per-op arg offsets); and because copy counts are
/// analytic in the fan-out, the rewritten loop's layout (op_map and total
/// size) is known before emission.
class Planner {
 public:
  Planner(const Loop& loop, CopyTreeShape shape) : loop_(loop), shape_(shape) {}

  void plan() {
    const int n = loop_.op_count();
    const std::size_t nn = static_cast<std::size_t>(n);

    arg_off_.assign(nn + 1, 0);
    use_off_.assign(nn + 1, 0);
    for (int u = 0; u < n; ++u) {
      const Op& op = loop_.ops[static_cast<std::size_t>(u)];
      arg_off_[static_cast<std::size_t>(u) + 1] =
          arg_off_[static_cast<std::size_t>(u)] + static_cast<std::int32_t>(op.args.size());
      for (const Operand& arg : op.args) {
        if (arg.is_value()) ++use_off_[static_cast<std::size_t>(arg.value_op) + 1];
      }
    }
    for (std::size_t v = 0; v < nn; ++v) use_off_[v + 1] += use_off_[v];
    uses_.resize(static_cast<std::size_t>(use_off_[nn]));
    reroute_def_.assign(static_cast<std::size_t>(arg_off_[nn]), -1);
    reroute_node_.assign(static_cast<std::size_t>(arg_off_[nn]), -1);

    // Use lists fill in (consumer op, operand slot) order via counting sort.
    std::vector<std::int32_t> cursor(use_off_.begin(), use_off_.end() - 1);
    for (int u = 0; u < n; ++u) {
      const Op& op = loop_.ops[static_cast<std::size_t>(u)];
      for (std::size_t a = 0; a < op.args.size(); ++a) {
        if (!op.args[a].is_value()) continue;
        uses_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(op.args[a].value_op)]++)] = {
            u, static_cast<std::int32_t>(a)};
      }
    }

    // Copy counts: capacity-c producer with fan > c uses costs fan - 1
    // copies for c == 1 (one root + a capacity-2 tree) and fan - 2 for
    // c == 2.  With them known up front, op_map is pure arithmetic:
    // originals are emitted in order, each followed by its tree.
    tree_off_.assign(nn + 1, 0);
    tree_len_.assign(nn, 0);
    op_map_.resize(nn);
    for (int def = 0; def < n; ++def) {
      const std::size_t d = static_cast<std::size_t>(def);
      const int capacity = loop_.ops[d].opcode == Opcode::kCopy ? 2 : 1;
      const int fan = use_off_[d + 1] - use_off_[d];
      const int copies = fan <= capacity ? 0 : (capacity == 1 ? fan - 1 : fan - 2);
      op_map_[d] = def + tree_off_[d];
      tree_off_[d + 1] = tree_off_[d] + copies;
    }
    parent_.resize(static_cast<std::size_t>(tree_off_[nn]));

    for (int def = 0; def < n; ++def) {
      const std::size_t d = static_cast<std::size_t>(def);
      const int capacity = loop_.ops[d].opcode == Opcode::kCopy ? 2 : 1;
      feed(def, -1, capacity, uses_.data() + use_off_[d], use_off_[d + 1] - use_off_[d]);
      QVLIW_ASSERT(tree_len_[d] == tree_off_[d + 1] - tree_off_[d],
                   "copy planner: analytic tree size mismatch");
    }
  }

  [[nodiscard]] int total_copies() const { return tree_off_.back(); }
  [[nodiscard]] int tree_size(int def) const {
    return tree_off_[static_cast<std::size_t>(def) + 1] - tree_off_[static_cast<std::size_t>(def)];
  }
  [[nodiscard]] int parent_of(int def, int node) const {
    return parent_[static_cast<std::size_t>(tree_off_[static_cast<std::size_t>(def)] + node)];
  }
  /// Rewritten index of original `def` (its tree occupies the next
  /// tree_size(def) slots).
  [[nodiscard]] int mapped(int def) const { return op_map_[static_cast<std::size_t>(def)]; }

  /// Source feeding a use slot: (def, node) with node == -1 for the
  /// producer itself.
  [[nodiscard]] std::pair<int, int> source_of(int use_op, int use_arg) const {
    const std::size_t slot =
        static_cast<std::size_t>(arg_off_[static_cast<std::size_t>(use_op)] + use_arg);
    QVLIW_ASSERT(reroute_def_[slot] >= 0, "copy planner missed a use");
    return {reroute_def_[slot], reroute_node_[slot]};
  }

 private:
  int alloc_node(int def, int parent) {
    const std::size_t d = static_cast<std::size_t>(def);
    const int node = tree_len_[d]++;
    parent_[static_cast<std::size_t>(tree_off_[d] + node)] = parent;
    return node;
  }

  void set_reroute(const Use& use, int def, int node) {
    const std::size_t slot =
        static_cast<std::size_t>(arg_off_[static_cast<std::size_t>(use.op)] + use.arg);
    reroute_def_[slot] = def;
    reroute_node_[slot] = node;
  }

  void feed(int def, int source_node, int capacity, const Use* uses, int count) {
    if (count <= capacity) {
      for (int i = 0; i < count; ++i) set_reroute(uses[i], def, source_node);
      return;
    }
    if (capacity == 1) {
      // Producer feeds a single root copy; the tree fans out below it.
      feed(def, alloc_node(def, source_node), 2, uses, count);
      return;
    }
    QVLIW_ASSERT(capacity == 2, "unexpected fan-out capacity");
    if (shape_ == CopyTreeShape::kChain) {
      // One direct consumer, one copy relaying the rest.
      set_reroute(uses[0], def, source_node);
      feed(def, alloc_node(def, source_node), 2, uses + 1, count - 1);
      return;
    }
    // Balanced: split into two halves; singleton halves attach directly.
    const int half = count - count / 2;  // left gets the extra
    const struct {
      const Use* ptr;
      int size;
    } groups[2] = {{uses, half}, {uses + half, count - half}};
    for (const auto& group : groups) {
      if (group.size == 1) {
        set_reroute(group.ptr[0], def, source_node);
      } else {
        feed(def, alloc_node(def, source_node), 2, group.ptr, group.size);
      }
    }
  }

  const Loop& loop_;
  CopyTreeShape shape_;
  std::vector<std::int32_t> arg_off_;   // per-op operand-slot offsets
  std::vector<std::int32_t> use_off_;   // CSR offsets into uses_ by def
  std::vector<Use> uses_;               // consumer slots, (op, arg) order
  std::vector<std::int32_t> tree_off_;  // CSR offsets into parent_ by def
  std::vector<std::int32_t> tree_len_;  // nodes allocated so far per def
  std::vector<std::int32_t> parent_;    // tree arena; -1 = fed by producer
  std::vector<std::int32_t> op_map_;    // def -> rewritten index
  std::vector<std::int32_t> reroute_def_;   // by operand slot; -1 = non-value
  std::vector<std::int32_t> reroute_node_;  // node within reroute_def_'s tree
};

/// Emits the rewritten loop in one pass: originals in order, each followed
/// by its copy tree (parents precede children, so emission order keeps
/// distance-0 operands after their definitions).  Rewritten indices are
/// arithmetic — mapped(def) for originals, mapped(def) + 1 + node for tree
/// nodes — so no per-node index vectors are needed.
CopyInsertResult materialize(const Loop& src, const Planner& planner) {
  CopyInsertResult result;
  result.loop.name = src.name;
  result.loop.stride = src.stride;
  result.loop.trip_hint = src.trip_hint;
  result.loop.invariants = src.invariants;
  result.loop.arrays = src.arrays;
  result.copies_added = planner.total_copies();
  result.loop.ops.reserve(static_cast<std::size_t>(src.op_count() + result.copies_added));
  result.op_map.resize(static_cast<std::size_t>(src.op_count()));

  std::unordered_set<std::string> taken;
  taken.reserve(static_cast<std::size_t>(src.op_count() + result.copies_added));
  for (const Op& op : src.ops) {
    if (op.defines_value()) taken.insert(op.name);
  }
  auto fresh_name = [&taken](const std::string& base) {
    std::string name = base;
    int counter = 0;
    while (!taken.insert(name).second) name = cat(base, "_", counter++);
    return name;
  };

  for (int def = 0; def < src.op_count(); ++def) {
    const std::size_t d = static_cast<std::size_t>(def);
    const int base = planner.mapped(def);
    result.op_map[d] = result.loop.add_op(src.ops[d]);
    QVLIW_ASSERT(result.op_map[d] == base, "copy planner: analytic op_map mismatch");
    const int tree = planner.tree_size(def);
    for (int node = 0; node < tree; ++node) {
      Op copy;
      copy.opcode = Opcode::kCopy;
      copy.name = fresh_name(cat(src.ops[d].name, "_c", node));
      copy.init_invariant = src.ops[d].init_invariant;
      const int parent = planner.parent_of(def, node);
      const int source = parent < 0 ? base : base + 1 + parent;
      copy.args.push_back(Operand::value(source, 0));
      result.loop.add_op(std::move(copy));
    }
  }

  // Rewrite value operands of the original ops to their assigned sources.
  for (int u = 0; u < src.op_count(); ++u) {
    Op& op = result.loop.ops[static_cast<std::size_t>(result.op_map[static_cast<std::size_t>(u)])];
    for (std::size_t a = 0; a < op.args.size(); ++a) {
      if (!op.args[a].is_value()) continue;
      const auto [def, node] = planner.source_of(u, static_cast<int>(a));
      const int base = planner.mapped(def);
      const int source = node < 0 ? base : base + 1 + node;
      op.args[a] = Operand::value(source, op.args[a].distance);
    }
  }

  QVLIW_ASSERT(fanout_legal(result.loop), "copy insertion left an over-fanned value");
  return result;
}

}  // namespace

CopyInsertResult insert_copies(const Loop& src, CopyTreeShape shape) {
  src.validate();
  Planner planner(src, shape);
  planner.plan();
  CopyInsertResult result = materialize(src, planner);
  result.loop.validate();
  return result;
}

CopyInsertWithGraph insert_copies_with_graph(const Loop& src, const LatencyModel& lat,
                                             CopyTreeShape shape) {
  src.validate();
  std::vector<MemDep> memdeps = memory_dependences(src);
  Planner planner(src, shape);
  planner.plan();

  CopyInsertWithGraph out;
  out.rewrite = materialize(src, planner);

  // Copies are never memory ops and op_map is monotonic, so the rewritten
  // loop's memory dependences are exactly the pre-copy ones with endpoints
  // mapped: same pair order, distances, and kinds as recomputing them.
  for (MemDep& dep : memdeps) {
    dep.src = out.rewrite.op_map[static_cast<std::size_t>(dep.src)];
    dep.dst = out.rewrite.op_map[static_cast<std::size_t>(dep.dst)];
  }
  out.graph = Ddg::build_from(out.rewrite.loop, lat, memdeps);
  return out;
}

bool fanout_legal(const Loop& loop) {
  std::vector<int> uses(static_cast<std::size_t>(loop.op_count()), 0);
  for (const Op& op : loop.ops) {
    for (const Operand& arg : op.args) {
      if (arg.is_value()) ++uses[static_cast<std::size_t>(arg.value_op)];
    }
  }
  for (int def = 0; def < loop.op_count(); ++def) {
    const int capacity = loop.ops[static_cast<std::size_t>(def)].opcode == Opcode::kCopy ? 2 : 1;
    if (uses[static_cast<std::size_t>(def)] > capacity) return false;
  }
  return true;
}

}  // namespace qvliw
