// Loop unrolling (Section 3 of the paper).
//
// Unrolling by U replicates the body U times; the unrolled loop initiates
// U source iterations per kernel iteration, so its fair comparison metric
// is II/U per source iteration.  The paper's II_speedup for a loop is
//
//     II_speedup = II(original) / (II(unrolled) / U).
//
// Value operands are re-indexed: a use of `v@d` in replica k reads replica
// (k-d) of the same unrolled iteration when k >= d, otherwise replica
// (k-d mod U) of ceil((d-k)/U) unrolled iterations earlier.  Memory
// offsets and index operands shift by stride*k, and the unrolled stride is
// stride*U, which keeps the memory-dependence algebra exact.
//
// Factor selection probes MII(factor)/factor over candidate factors.  The
// incremental prober (probe_unroll_factor) does this without materialising
// any candidate: the DDG of the unrolled loop is the U-fold *replica lift*
// of the base DDG (value edges by the operand rewrite above, memory edges
// because affine dependences scale with the stride), so per-factor RecMII
// is decidable on the base graph under scaled weights and per-factor
// ResMII follows from FU-class counts.  The one place the lift argument
// breaks is memdep's distance cutoff — loops carrying a same-array offset
// pair further than kMemDepMaxDistance iterations apart fall back to the
// naive materialise-and-measure probe so the chosen factor stays
// bit-identical (the golden-equivalence tests enforce this).
#pragma once

#include <memory>

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"
#include "sched/mii.h"

namespace qvliw {

/// Unrolls `loop` by `factor` (>= 1; factor 1 returns a copy).
/// The result's trip_hint is ceil(trip_hint/factor) (>= 1): one unrolled
/// iteration performs `factor` source iterations, and a partial trailing
/// group still costs a full kernel iteration.
[[nodiscard]] Loop unroll(const Loop& loop, int factor);

struct UnrollChoice {
  int factor = 1;
  /// Estimated per-source-iteration interval MII(factor)/factor.
  double rate = 0.0;
};

/// Everything a factor probe learned, so callers compute nothing twice.
struct UnrollProbe {
  UnrollChoice choice;

  /// MII bounds of the winning factor's (pre-copy-insertion) loop.
  MiiInfo mii;

  /// The materialised winner, null iff choice.factor == 1 (the caller's
  /// loop already is the winner).
  std::shared_ptr<const Loop> loop;

  /// The winner's DDG when the probe built one: always for factor 1 (the
  /// base graph), and for any factor on the naive path.  Null on the
  /// incremental fast path for factors > 1 — callers that need the graph
  /// build it from `loop`.
  std::shared_ptr<const Ddg> graph;

  int factors_probed = 0;     // candidate factors examined, incl. factor 1
  bool incremental = false;   // fast path used (no per-factor materialisation)
};

/// Lavery/Hwu-style selection: the smallest factor in [1, max_factor]
/// minimising the estimated per-source-iteration MII.  Factors whose
/// unrolled body exceeds `max_ops` are skipped (they cannot pay off on the
/// machines considered and blow up scheduling time).  Uses the incremental
/// prober when unroll_probe_is_exact(loop), the naive one otherwise; the
/// chosen factor and bounds are bit-identical either way.
[[nodiscard]] UnrollProbe probe_unroll_factor(const Loop& loop, const MachineConfig& machine,
                                              int max_factor = 8, int max_ops = 512);

/// Reference brute-force probe: materialises every candidate factor and
/// measures compute_mii on its DDG.  Kept as the golden-equivalence oracle
/// for probe_unroll_factor and as its fallback when the fast path cannot
/// be exact.
[[nodiscard]] UnrollProbe probe_unroll_factor_naive(const Loop& loop, const MachineConfig& machine,
                                                    int max_factor = 8, int max_ops = 512);

/// True when the incremental prober is provably exact for `loop`: no
/// same-array reference pair (at least one store) aliases at a dependence
/// distance beyond kMemDepMaxDistance.  Such a pair is dropped from the
/// base DDG by the cutoff yet can re-enter the unrolled DDG at a shorter
/// distance, which only the naive probe observes.
[[nodiscard]] bool unroll_probe_is_exact(const Loop& loop);

/// Convenience wrapper over probe_unroll_factor returning the choice only.
[[nodiscard]] UnrollChoice select_unroll_factor(const Loop& loop, const MachineConfig& machine,
                                                int max_factor = 8, int max_ops = 512);

}  // namespace qvliw
