// Loop unrolling (Section 3 of the paper).
//
// Unrolling by U replicates the body U times; the unrolled loop initiates
// U source iterations per kernel iteration, so its fair comparison metric
// is II/U per source iteration.  The paper's II_speedup for a loop is
//
//     II_speedup = II(original) / (II(unrolled) / U).
//
// Value operands are re-indexed: a use of `v@d` in replica k reads replica
// (k-d) of the same unrolled iteration when k >= d, otherwise replica
// (k-d mod U) of ceil((d-k)/U) unrolled iterations earlier.  Memory
// offsets and index operands shift by stride*k, and the unrolled stride is
// stride*U, which keeps the memory-dependence algebra exact.
#pragma once

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"

namespace qvliw {

/// Unrolls `loop` by `factor` (>= 1; factor 1 returns a copy).
/// The result's trip_hint is trip_hint/factor (>= 1): one unrolled
/// iteration performs `factor` source iterations.
[[nodiscard]] Loop unroll(const Loop& loop, int factor);

struct UnrollChoice {
  int factor = 1;
  /// Estimated per-source-iteration interval MII(factor)/factor.
  double rate = 0.0;
};

/// Lavery/Hwu-style selection: the smallest factor in [1, max_factor]
/// minimising the estimated per-source-iteration MII.  Factors whose
/// unrolled body exceeds `max_ops` are skipped (they cannot pay off on the
/// machines considered and blow up scheduling time).
[[nodiscard]] UnrollChoice select_unroll_factor(const Loop& loop, const MachineConfig& machine,
                                                int max_factor = 8, int max_ops = 512);

}  // namespace qvliw
