// Copy insertion (Section 2 of the paper).
//
// A queue delivers each value to exactly one reader, and a regular FU has
// one queue write port, so a value with n > 1 consuming operand instances
// cannot be scheduled as-is.  The dedicated copy FU pops one queue and
// pushes *two* (Fig. 2), so fan-out is restored by a balanced binary tree
// of copy operations: the original producer feeds the tree root; each
// copy feeds up to two consumers or further copies.  n consumers cost
// n - 1 copies; the balanced shape adds only ceil(log2 n) copy latencies
// to any consumer path (a chain shape is available for ablation).
//
// Uses at iteration distance d keep their distance: a copy executes in the
// same iteration as its source, so `u` reading `v@d` becomes `u` reading
// `leaf@d`.
//
// The planner is fully analytic: per-value consumer counts determine every
// tree size (a capacity-c producer with n > c uses costs n - c copies for
// c == 2, n - 1 for c == 1), so the rewritten loop's layout — op_map and
// total op count — is known before any op is materialised and the rewrite
// is a single arena-backed pass with no intermediate Loop copies or
// per-node map lookups.
#pragma once

#include <vector>

#include "ir/ddg.h"
#include "ir/loop.h"

namespace qvliw {

enum class CopyTreeShape {
  kBalanced,  // minimises added latency depth (default)
  kChain,     // linear chain; ablation of the tree shape
};

struct CopyInsertResult {
  Loop loop;
  int copies_added = 0;
  /// Original op index -> index in the rewritten loop.
  std::vector<int> op_map;
};

/// Rewrites `loop` so that every value has at most one consuming operand
/// instance — except values produced by copy ops, which may have two.
/// Idempotent on already-conforming loops.
[[nodiscard]] CopyInsertResult insert_copies(const Loop& loop,
                                             CopyTreeShape shape = CopyTreeShape::kBalanced);

struct CopyInsertWithGraph {
  CopyInsertResult rewrite;
  Ddg graph;
};

/// Fused rewrite + DDG construction.  Produces exactly the same loop as
/// insert_copies() and exactly the same graph as Ddg::build() on it, but
/// derives the post-copy DDG incrementally: the pre-copy memory dependences
/// are computed once and mapped through op_map (copies are never memory ops
/// and op_map is monotonic, so pair order, distances, and kinds are
/// preserved), skipping the quadratic memdep recomputation and the
/// redundant revalidation of the rewritten loop.
[[nodiscard]] CopyInsertWithGraph insert_copies_with_graph(
    const Loop& loop, const LatencyModel& lat, CopyTreeShape shape = CopyTreeShape::kBalanced);

/// True when `loop` satisfies the queue fan-out discipline (<= 1 consumer
/// per value, <= 2 for copy-produced values).
[[nodiscard]] bool fanout_legal(const Loop& loop);

}  // namespace qvliw
