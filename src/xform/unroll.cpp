#include "xform/unroll.h"

#include <algorithm>
#include <cstdlib>

#include "ir/memdep.h"
#include "sched/mii.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

Loop unroll(const Loop& src, int factor) {
  src.validate();
  check(factor >= 1, "unroll: factor must be >= 1");
  if (factor == 1) return src;

  Loop out;
  out.name = cat(src.name, "_x", factor);
  out.stride = src.stride * factor;
  // Ceiling division: a partial trailing group of source iterations still
  // costs one full kernel iteration (trip_hint 7 at factor 4 -> 2, not 1).
  out.trip_hint = std::max(1, (src.trip_hint + factor - 1) / factor);
  out.invariants = src.invariants;
  out.arrays = src.arrays;

  const int n = src.op_count();
  // new index of replica k of source op v = k*n + v (replicas in blocks).
  auto replica = [n](int v, int k) { return k * n + v; };

  for (int k = 0; k < factor; ++k) {
    for (int v = 0; v < n; ++v) {
      Op op = src.ops[static_cast<std::size_t>(v)];
      if (op.defines_value()) op.name = cat(op.name, "_u", k);
      if (is_memory(op.opcode)) op.mem_offset += src.stride * k;
      for (Operand& arg : op.args) {
        switch (arg.kind) {
          case Operand::Kind::kValue: {
            const int m = k - arg.distance;
            if (m >= 0) {
              arg = Operand::value(replica(arg.value_op, m), 0);
            } else {
              // ceil((-m)/factor) unrolled iterations back.
              const int q = (-m + factor - 1) / factor;
              arg = Operand::value(replica(arg.value_op, m + q * factor), q);
            }
            break;
          }
          case Operand::Kind::kIndex:
            arg.index_offset += src.stride * k;
            break;
          case Operand::Kind::kInvariant:
          case Operand::Kind::kImmediate:
            break;
        }
      }
      out.add_op(std::move(op));
    }
  }

  out.validate();
  return out;
}

bool unroll_probe_is_exact(const Loop& loop) {
  const int n = loop.op_count();
  for (int a = 0; a < n; ++a) {
    const Op& op_a = loop.ops[static_cast<std::size_t>(a)];
    if (!is_memory(op_a.opcode)) continue;
    for (int b = a + 1; b < n; ++b) {
      const Op& op_b = loop.ops[static_cast<std::size_t>(b)];
      if (!is_memory(op_b.opcode)) continue;
      if (op_a.array != op_b.array) continue;
      if (op_a.opcode != Opcode::kStore && op_b.opcode != Opcode::kStore) continue;
      const int delta = op_a.mem_offset - op_b.mem_offset;
      if (delta % loop.stride != 0) continue;
      // A pair past the cutoff is invisible to the base DDG but lifts to a
      // distance <= ceil(d/factor) that the unrolled DDG may keep.
      if (std::abs(delta / loop.stride) > kMemDepMaxDistance) return false;
    }
  }
  return true;
}

namespace {

/// Shared candidate walk: `measure(factor)` returns the (exact) bounds of
/// unroll(loop, factor); `adopted()` fires whenever the factor just
/// measured becomes the best so far (letting the naive path pin that
/// candidate's artifacts).  Selection is the smallest factor strictly
/// improving the per-source-iteration rate, identical on both paths.
template <typename Measure, typename Adopted>
UnrollProbe probe_with(const Loop& loop, int max_factor, int max_ops, Measure measure,
                       Adopted adopted) {
  UnrollProbe probe;
  {
    const MiiInfo base = measure(1);
    check(base.feasible, "select_unroll_factor: loop infeasible on machine");
    probe.choice.factor = 1;
    probe.choice.rate = static_cast<double>(base.mii);
    probe.mii = base;
    probe.factors_probed = 1;
    adopted();
  }
  for (int factor = 2; factor <= max_factor; ++factor) {
    if (loop.op_count() * factor > max_ops) break;
    const MiiInfo mii = measure(factor);
    ++probe.factors_probed;
    if (!mii.feasible) continue;
    const double rate = static_cast<double>(mii.mii) / static_cast<double>(factor);
    if (rate < probe.choice.rate - 1e-9) {
      probe.choice.factor = factor;
      probe.choice.rate = rate;
      probe.mii = mii;
      adopted();
    }
  }
  return probe;
}

}  // namespace

UnrollProbe probe_unroll_factor_naive(const Loop& loop, const MachineConfig& machine,
                                      int max_factor, int max_ops) {
  check(max_factor >= 1, "select_unroll_factor: max_factor must be >= 1");

  // The current candidate's artifacts; pinned as the winner's whenever the
  // walk adopts the candidate, so nothing is ever materialised twice.
  std::shared_ptr<const Loop> candidate_loop;
  std::shared_ptr<const Ddg> candidate_graph;
  std::shared_ptr<const Loop> best_loop;
  std::shared_ptr<const Ddg> best_graph;

  auto measure = [&](int factor) {
    candidate_loop = factor == 1 ? nullptr : std::make_shared<const Loop>(unroll(loop, factor));
    const Loop& body = factor == 1 ? loop : *candidate_loop;
    candidate_graph = std::make_shared<const Ddg>(Ddg::build(body, machine.latency));
    return compute_mii(body, *candidate_graph, machine);
  };
  auto adopted = [&] {
    best_loop = candidate_loop;
    best_graph = candidate_graph;
  };

  UnrollProbe probe = probe_with(loop, max_factor, max_ops, measure, adopted);
  probe.loop = std::move(best_loop);
  probe.graph = std::move(best_graph);
  return probe;
}

UnrollProbe probe_unroll_factor(const Loop& loop, const MachineConfig& machine, int max_factor,
                                int max_ops) {
  check(max_factor >= 1, "select_unroll_factor: max_factor must be >= 1");
  if (!unroll_probe_is_exact(loop)) return probe_unroll_factor_naive(loop, machine, max_factor, max_ops);

  const auto base_graph = std::make_shared<const Ddg>(Ddg::build(loop, machine.latency));
  int rec_floor = 1;
  UnrollProbe probe = probe_with(
      loop, max_factor, max_ops,
      [&](int factor) {
        const MiiInfo mii = factor == 1
                                ? compute_mii(loop, *base_graph, machine)
                                : unrolled_mii(loop, *base_graph, machine, factor, rec_floor);
        if (mii.feasible) rec_floor = std::max(rec_floor, mii.rec_mii);
        return mii;
      },
      [] {});
  probe.incremental = true;
  if (probe.choice.factor == 1) {
    probe.graph = base_graph;
  } else {
    // The one materialisation of the winner; callers reuse it directly.
    probe.loop = std::make_shared<const Loop>(unroll(loop, probe.choice.factor));
  }
  return probe;
}

UnrollChoice select_unroll_factor(const Loop& loop, const MachineConfig& machine, int max_factor,
                                  int max_ops) {
  return probe_unroll_factor(loop, machine, max_factor, max_ops).choice;
}

}  // namespace qvliw
