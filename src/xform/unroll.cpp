#include "xform/unroll.h"

#include <algorithm>

#include "sched/mii.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

Loop unroll(const Loop& src, int factor) {
  src.validate();
  check(factor >= 1, "unroll: factor must be >= 1");
  if (factor == 1) return src;

  Loop out;
  out.name = cat(src.name, "_x", factor);
  out.stride = src.stride * factor;
  out.trip_hint = std::max(1, src.trip_hint / factor);
  out.invariants = src.invariants;
  out.arrays = src.arrays;

  const int n = src.op_count();
  // new index of replica k of source op v = k*n + v (replicas in blocks).
  auto replica = [n](int v, int k) { return k * n + v; };

  for (int k = 0; k < factor; ++k) {
    for (int v = 0; v < n; ++v) {
      Op op = src.ops[static_cast<std::size_t>(v)];
      if (op.defines_value()) op.name = cat(op.name, "_u", k);
      if (is_memory(op.opcode)) op.mem_offset += src.stride * k;
      for (Operand& arg : op.args) {
        switch (arg.kind) {
          case Operand::Kind::kValue: {
            const int m = k - arg.distance;
            if (m >= 0) {
              arg = Operand::value(replica(arg.value_op, m), 0);
            } else {
              // ceil((-m)/factor) unrolled iterations back.
              const int q = (-m + factor - 1) / factor;
              arg = Operand::value(replica(arg.value_op, m + q * factor), q);
            }
            break;
          }
          case Operand::Kind::kIndex:
            arg.index_offset += src.stride * k;
            break;
          case Operand::Kind::kInvariant:
          case Operand::Kind::kImmediate:
            break;
        }
      }
      out.add_op(std::move(op));
    }
  }

  out.validate();
  return out;
}

UnrollChoice select_unroll_factor(const Loop& loop, const MachineConfig& machine, int max_factor,
                                  int max_ops) {
  check(max_factor >= 1, "select_unroll_factor: max_factor must be >= 1");
  UnrollChoice best;
  best.factor = 1;
  {
    const Ddg graph = Ddg::build(loop, machine.latency);
    const MiiInfo mii = compute_mii(loop, graph, machine);
    check(mii.feasible, "select_unroll_factor: loop infeasible on machine");
    best.rate = static_cast<double>(mii.mii);
  }
  for (int factor = 2; factor <= max_factor; ++factor) {
    if (loop.op_count() * factor > max_ops) break;
    const Loop unrolled = unroll(loop, factor);
    const Ddg graph = Ddg::build(unrolled, machine.latency);
    const MiiInfo mii = compute_mii(unrolled, graph, machine);
    if (!mii.feasible) continue;
    const double rate = static_cast<double>(mii.mii) / static_cast<double>(factor);
    if (rate < best.rate - 1e-9) {
      best.factor = factor;
      best.rate = rate;
    }
  }
  return best;
}

}  // namespace qvliw
