// Loop-invariant handling strategies.
//
// The paper lists "strategies to deal with loop invariants" as ongoing
// work: with queue register files an invariant consumed every iteration
// would be destroyed by its first read.  Two strategies are provided:
//
//  * kImmediate (default in the experiments): invariants are encoded in
//    the instruction word / a scalar register outside the QRF, costing no
//    queue traffic.  This matches how the paper's experiments charge
//    invariants (not at all).
//  * kRecirculate: each invariant is kept in a queue and re-enqueued every
//    iteration by a copy op (`invq = copy invq@1`, seeded with the
//    invariant's value); consumers read fan-out copies.  This makes the
//    cost of queue-resident invariants measurable (ablation bench).
#pragma once

#include "ir/loop.h"

namespace qvliw {

enum class InvariantStrategy {
  kImmediate,    // leave invariant operands in place (no-op transform)
  kRecirculate,  // materialise one self-recirculating copy per invariant
};

/// Applies the chosen strategy.  For kRecirculate, every used invariant
/// gains a distance-1 self-copy at the top of the body whose live-in is
/// the invariant's value, and all invariant operands become value reads of
/// that copy.  Run *before* copy insertion so fan-out is handled there.
[[nodiscard]] Loop materialize_invariants(const Loop& loop, InvariantStrategy strategy);

}  // namespace qvliw
