// Partitioned modulo scheduling for the clustered machine (Section 4).
//
// The partitioner is the paper's scheme: heuristics layered on IMS decide
// which cluster each operation goes to, under the constraint that a value
// may only flow within a cluster (private QRF) or between topology-adjacent
// clusters (a directed segment queue).  No multi-hop routing exists in
// the base scheme, so an op whose neighbours have drifted apart can become
// unplaceable; IMS's force-and-evict backtracking then displaces the
// offenders, and persistent failure escalates the II — exactly the
// degradation Fig. 6 quantifies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/ims.h"

namespace qvliw {

enum class ClusterHeuristic {
  kAffinity,     // prefer clusters holding/adjacent to scheduled neighbours
  kLoadBalance,  // prefer the cluster with the least pressure on the op's FU kind
  kFirstFit,     // fixed order 0..k-1 (baseline for the ablation)
};

[[nodiscard]] std::string_view cluster_heuristic_name(ClusterHeuristic heuristic);

/// IMS ClusterAssigner for any interconnect topology (ring, mesh,
/// crossbar — whatever the machine's Topology models).
///
/// In strict mode (the paper's scheme) `legal` enforces topology adjacency
/// of every scheduled flow neighbour.  In relaxed mode any cluster is legal
/// — used by the move-routing extension to discover which edges need relay
/// moves; candidate ordering still minimises expected hops.
class TopologyClusterAssigner final : public ClusterAssigner {
 public:
  TopologyClusterAssigner(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                          ClusterHeuristic heuristic, bool strict = true);

  void reset(int ii) override;
  void candidates(int op, std::vector<int>& out) override;
  bool legal(int op, int cluster) override;
  void adjacency_evictions(int op, int cluster, std::vector<int>& out) override;
  void on_place(int op, int cluster) override;
  void on_remove(int op) override;

  /// Cluster of a currently placed op (-1 when unplaced).
  [[nodiscard]] int cluster_of(int op) const;

 private:
  [[nodiscard]] double score(int op, int cluster) const;

  const MachineConfig& machine_;
  Topology topology_;
  ClusterHeuristic heuristic_;
  bool strict_;
  std::vector<FuKind> kind_of_;
  std::vector<int> cluster_of_;
  std::vector<int> load_;        // [cluster*kNumFuKinds + kind] placed ops
  std::vector<double> scores_;   // candidates() scratch, one slot per cluster

  // Flow-neighbour adjacency (CSR), extracted from the DDG once at
  // construction: for each op, the other endpoints of its value-flow edges
  // (self-dependences excluded).  Every per-op query — affinity scoring,
  // adjacency legality, eviction collection — scans this contiguous array
  // instead of chasing edge-id indirections into AoS DepEdge records.
  std::vector<std::int32_t> flow_off_;
  std::vector<std::int32_t> flow_adj_;
};

struct PartitionOptions {
  ClusterHeuristic heuristic = ClusterHeuristic::kAffinity;
  bool strict = true;
  ImsOptions ims;
};

/// Partitioned IMS over the clustered machine.  On success the schedule is
/// additionally checked for communication legality (strict mode).  A warm
/// seed is forwarded to IMS only after passing the same communication
/// check, so an adjacency-violating seed is ignored rather than adopted.
[[nodiscard]] ImsResult partition_schedule(const Loop& loop, const Ddg& graph,
                                           const MachineConfig& machine,
                                           const PartitionOptions& options = {},
                                           const WarmStartSeed* seed = nullptr);

/// Flow edges whose endpoint clusters are not topology-adjacent (empty ==
/// communication-legal for the base scheme).
[[nodiscard]] std::vector<std::string> communication_violations(const Ddg& graph,
                                                                const MachineConfig& machine,
                                                                const Schedule& schedule);

/// The violating flow edges themselves, as (dst op, dst arg) operand slots
/// plus the hop distance (used by the move router).
struct CommViolation {
  int edge = -1;
  int dst = -1;
  int dst_arg = -1;
  int hops = 0;  // topology distance between producer and consumer clusters
};

[[nodiscard]] std::vector<CommViolation> find_comm_violations(const Ddg& graph,
                                                              const MachineConfig& machine,
                                                              const Schedule& schedule);

}  // namespace qvliw
