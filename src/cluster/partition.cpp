#include "cluster/partition.h"

#include <algorithm>
#include <numeric>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

std::string_view cluster_heuristic_name(ClusterHeuristic heuristic) {
  switch (heuristic) {
    case ClusterHeuristic::kAffinity:
      return "affinity";
    case ClusterHeuristic::kLoadBalance:
      return "load-balance";
    case ClusterHeuristic::kFirstFit:
      return "first-fit";
  }
  QVLIW_ASSERT(false, "bad ClusterHeuristic");
}

TopologyClusterAssigner::TopologyClusterAssigner(const Loop& loop, const Ddg& graph,
                                         const MachineConfig& machine,
                                         ClusterHeuristic heuristic, bool strict)
    : machine_(machine), topology_(machine.topology()), heuristic_(heuristic), strict_(strict) {
  check(loop.op_count() == graph.node_count(), "TopologyClusterAssigner: loop/DDG mismatch");
  kind_of_.reserve(loop.ops.size());
  for (const Op& op : loop.ops) kind_of_.push_back(fu_for(op.opcode));

  // Flow-neighbour CSR: per op, out-edge consumers then in-edge producers,
  // each group in edge-insertion order (counting sort over the edge list).
  const std::size_t n = static_cast<std::size_t>(graph.node_count());
  flow_off_.assign(n + 1, 0);
  for (const DepEdge& edge : graph.edges()) {
    if (!edge.is_value_flow() || edge.src == edge.dst) continue;
    ++flow_off_[static_cast<std::size_t>(edge.src) + 1];
    ++flow_off_[static_cast<std::size_t>(edge.dst) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) flow_off_[v + 1] += flow_off_[v];
  flow_adj_.resize(static_cast<std::size_t>(flow_off_[n]));
  std::vector<std::int32_t> cursor(flow_off_.begin(), flow_off_.end() - 1);
  for (const DepEdge& edge : graph.edges()) {
    if (!edge.is_value_flow() || edge.src == edge.dst) continue;
    flow_adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(edge.src)]++)] = edge.dst;
  }
  for (const DepEdge& edge : graph.edges()) {
    if (!edge.is_value_flow() || edge.src == edge.dst) continue;
    flow_adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(edge.dst)]++)] = edge.src;
  }
  reset(1);
}

void TopologyClusterAssigner::reset(int) {
  // Called at the top of every II attempt: plain assigns on flat vectors
  // reuse the storage from the previous attempt (no per-attempt heap
  // traffic in the searcher's reset path).
  cluster_of_.assign(kind_of_.size(), -1);
  load_.assign(static_cast<std::size_t>(machine_.cluster_count() * kNumFuKinds), 0);
}

int TopologyClusterAssigner::cluster_of(int op) const {
  return cluster_of_[static_cast<std::size_t>(op)];
}

double TopologyClusterAssigner::score(int op, int cluster) const {
  const int k = machine_.cluster_count();
  const FuKind kind = kind_of_[static_cast<std::size_t>(op)];
  const int kind_load =
      load_[static_cast<std::size_t>(cluster * kNumFuKinds) + static_cast<std::size_t>(kind)];
  const int kind_fus = machine_.fu_count(cluster, kind);
  const double pressure =
      kind_fus > 0 ? static_cast<double>(kind_load) / kind_fus : 1e9;

  switch (heuristic_) {
    case ClusterHeuristic::kFirstFit:
      return -cluster;  // fixed order
    case ClusterHeuristic::kLoadBalance:
      return -pressure;
    case ClusterHeuristic::kAffinity: {
      // +2 for each scheduled flow neighbour in `cluster`, +1 when adjacent;
      // light pressure tie-break.
      double affinity = 0.0;
      for (std::int32_t idx = flow_off_[static_cast<std::size_t>(op)];
           idx < flow_off_[static_cast<std::size_t>(op) + 1]; ++idx) {
        const int oc = cluster_of_[static_cast<std::size_t>(flow_adj_[static_cast<std::size_t>(idx)])];
        if (oc < 0) continue;
        const int dist = topology_.distance(cluster, oc);
        if (dist == 0) affinity += 2.0;
        else if (dist == 1) affinity += 1.0;
        else affinity -= static_cast<double>(dist);  // relaxed mode: fewer hops
      }
      (void)k;
      return affinity - 0.25 * pressure;
    }
  }
  QVLIW_ASSERT(false, "bad ClusterHeuristic");
}

void TopologyClusterAssigner::candidates(int op, std::vector<int>& out) {
  const int k = machine_.cluster_count();
  out.resize(static_cast<std::size_t>(k));
  std::iota(out.begin(), out.end(), 0);
  scores_.resize(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) scores_[static_cast<std::size_t>(c)] = score(op, c);
  std::stable_sort(out.begin(), out.end(), [this](int a, int b) {
    return scores_[static_cast<std::size_t>(a)] > scores_[static_cast<std::size_t>(b)];
  });
}

bool TopologyClusterAssigner::legal(int op, int cluster) {
  if (!strict_) return true;
  for (std::int32_t idx = flow_off_[static_cast<std::size_t>(op)];
       idx < flow_off_[static_cast<std::size_t>(op) + 1]; ++idx) {
    const int oc = cluster_of_[static_cast<std::size_t>(flow_adj_[static_cast<std::size_t>(idx)])];
    if (oc >= 0 && topology_.distance(cluster, oc) > 1) return false;
  }
  return true;
}

void TopologyClusterAssigner::adjacency_evictions(int op, int cluster, std::vector<int>& out) {
  out.clear();
  if (!strict_) return;
  for (std::int32_t idx = flow_off_[static_cast<std::size_t>(op)];
       idx < flow_off_[static_cast<std::size_t>(op) + 1]; ++idx) {
    const int other = flow_adj_[static_cast<std::size_t>(idx)];
    const int oc = cluster_of_[static_cast<std::size_t>(other)];
    if (oc >= 0 && topology_.distance(cluster, oc) > 1) out.push_back(other);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void TopologyClusterAssigner::on_place(int op, int cluster) {
  cluster_of_[static_cast<std::size_t>(op)] = cluster;
  load_[static_cast<std::size_t>(cluster * kNumFuKinds) +
        static_cast<std::size_t>(kind_of_[static_cast<std::size_t>(op)])] += 1;
}

void TopologyClusterAssigner::on_remove(int op) {
  const int cluster = cluster_of_[static_cast<std::size_t>(op)];
  QVLIW_ASSERT(cluster >= 0, "on_remove of an unplaced op");
  load_[static_cast<std::size_t>(cluster * kNumFuKinds) +
        static_cast<std::size_t>(kind_of_[static_cast<std::size_t>(op)])] -= 1;
  cluster_of_[static_cast<std::size_t>(op)] = -1;
}

ImsResult partition_schedule(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                             const PartitionOptions& options, const WarmStartSeed* seed) {
  TopologyClusterAssigner assigner(loop, graph, machine, options.heuristic, options.strict);
  if (seed != nullptr && options.strict &&
      (seed->schedule.op_count() != graph.node_count() ||
       !find_comm_violations(graph, machine, seed->schedule).empty())) {
    seed = nullptr;
  }
  ImsResult result = ims_schedule(loop, graph, machine, options.ims, &assigner, seed);
  if (result.ok && options.strict) {
    const auto comm_errors = communication_violations(graph, machine, result.schedule);
    QVLIW_ASSERT(comm_errors.empty(),
                 cat("partitioner produced non-adjacent communication: ", comm_errors.front()));
  }
  return result;
}

std::vector<std::string> communication_violations(const Ddg& graph, const MachineConfig& machine,
                                                  const Schedule& schedule) {
  std::vector<std::string> violations;
  const std::string_view kind = topology_kind_name(machine.topology_kind);
  for (const CommViolation& v : find_comm_violations(graph, machine, schedule)) {
    const DepEdge& edge = graph.edge(v.edge);
    violations.push_back(cat("flow edge ", edge.src, "->", edge.dst, " spans ", v.hops, " ", kind,
                             " hops (clusters ", schedule.cluster(edge.src), " -> ",
                             schedule.cluster(edge.dst), ")"));
  }
  return violations;
}

std::vector<CommViolation> find_comm_violations(const Ddg& graph, const MachineConfig& machine,
                                                const Schedule& schedule) {
  std::vector<CommViolation> violations;
  const Topology topology = machine.topology();
  for (int e = 0; e < graph.edge_count(); ++e) {
    const DepEdge& edge = graph.edge(e);
    if (!edge.is_value_flow()) continue;
    if (!schedule.scheduled(edge.src) || !schedule.scheduled(edge.dst)) continue;
    const int hops = topology.distance(schedule.cluster(edge.src), schedule.cluster(edge.dst));
    if (hops > 1) violations.push_back({e, edge.dst, edge.dst_arg, hops});
  }
  return violations;
}

}  // namespace qvliw
