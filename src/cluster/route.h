// Move-based inter-cluster routing (the paper's proposed extension).
//
// Round-based repair: schedule with a *relaxed* partitioner (any cluster
// legal, affinity still steers placement), find the flow edges that ended
// up spanning more than one topology hop, split each with a chain of
// `move` ops (hops-1 relays), then re-schedule *strictly*.  Moves are
// ordinary DDG ops on the copy/move FU class, so the strict partitioner
// places each relay in an intermediate cluster along a shortest
// (next_hop) path.  Repeat while the strict schedule keeps failing (more
// moves each round), up to max_rounds.
#pragma once

#include "cluster/partition.h"

namespace qvliw {

struct RouteResult {
  bool ok = false;
  Loop loop;       // the routed loop (with inserted moves)
  int moves_added = 0;
  int rounds = 0;  // repair rounds used
  ImsResult ims;   // final strict schedule (valid when ok)
  std::string failure;
};

/// Partitions `loop` on `machine` allowing multi-hop transfers through
/// inserted moves.  `loop` should already be copy-inserted (fan-out legal).
[[nodiscard]] RouteResult partition_with_moves(const Loop& loop, const MachineConfig& machine,
                                               const PartitionOptions& options = {},
                                               int max_rounds = 6);

}  // namespace qvliw
