#include "cluster/route.h"

#include "support/strings.h"
#include "xform/move_insert.h"

namespace qvliw {

RouteResult partition_with_moves(const Loop& loop, const MachineConfig& machine,
                                 const PartitionOptions& options, int max_rounds) {
  RouteResult result;
  result.loop = loop;

  PartitionOptions strict = options;
  strict.strict = true;
  PartitionOptions relaxed = options;
  relaxed.strict = false;

  for (int round = 0; round < max_rounds; ++round) {
    result.rounds = round + 1;
    const Ddg graph = Ddg::build(result.loop, machine.latency);

    // Try the real (strict) partitioner first; once the moves inserted in
    // earlier rounds suffice, this succeeds and we are done.
    ImsResult attempt = partition_schedule(result.loop, graph, machine, strict);
    if (attempt.ok) {
      result.ok = true;
      result.ims = std::move(attempt);
      return result;
    }

    // Discover which value flows want to span multiple hops.
    ImsResult relaxed_attempt = partition_schedule(result.loop, graph, machine, relaxed);
    if (!relaxed_attempt.ok) {
      result.failure = cat("relaxed partitioning failed: ", relaxed_attempt.failure);
      return result;
    }
    auto violations = find_comm_violations(graph, machine, relaxed_attempt.schedule);
    if (violations.empty()) {
      // The relaxed schedule is communication-legal but the strict search
      // missed it; one more strict round with a fresh II ladder rarely
      // fails, but give up rather than loop forever.
      result.failure = "strict partitioning failed although a legal placement exists";
      return result;
    }

    // Split every violating operand with hops-1 relay moves, remapping the
    // remaining violation list through each rewrite.
    for (std::size_t v = 0; v < violations.size(); ++v) {
      const CommViolation& violation = violations[v];
      MoveInsertResult rewrite =
          insert_move_chain(result.loop, violation.dst, violation.dst_arg, violation.hops - 1);
      result.moves_added += rewrite.moves_added;
      result.loop = std::move(rewrite.loop);
      for (std::size_t w = v + 1; w < violations.size(); ++w) {
        violations[w].dst = rewrite.op_map[static_cast<std::size_t>(violations[w].dst)];
      }
    }
  }

  result.failure = cat("no legal routed schedule after ", max_rounds, " rounds");
  return result;
}

}  // namespace qvliw
