#include "machine/fu.h"

#include "support/diagnostics.h"

namespace qvliw {

std::string_view fu_kind_name(FuKind kind) {
  switch (kind) {
    case FuKind::kLS:
      return "L/S";
    case FuKind::kAdd:
      return "ADD";
    case FuKind::kMul:
      return "MUL";
    case FuKind::kCopy:
      return "COPY";
  }
  QVLIW_ASSERT(false, "bad FuKind");
}

}  // namespace qvliw
