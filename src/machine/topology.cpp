#include "machine/topology.h"

#include <algorithm>
#include <cstdlib>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

std::string_view topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kMesh:
      return "mesh";
    case TopologyKind::kCrossbar:
      return "crossbar";
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

std::optional<TopologyKind> parse_topology_kind(std::string_view name) {
  if (name == "ring") return TopologyKind::kRing;
  if (name == "mesh") return TopologyKind::kMesh;
  if (name == "crossbar") return TopologyKind::kCrossbar;
  return std::nullopt;
}

Topology Topology::ring(int clusters) {
  check(clusters >= 1, "Topology::ring: need at least one cluster");
  return {TopologyKind::kRing, clusters, 0, 0};
}

Topology Topology::mesh(int rows, int cols) {
  check(rows >= 1 && cols >= 1, "Topology::mesh: need positive grid dimensions");
  return {TopologyKind::kMesh, rows * cols, rows, cols};
}

Topology Topology::crossbar(int clusters) {
  check(clusters >= 1, "Topology::crossbar: need at least one cluster");
  return {TopologyKind::kCrossbar, clusters, 0, 0};
}

namespace {

/// Mesh out-degree of the node at (r, c): one segment per grid neighbour.
int mesh_degree(int rows, int cols, int r, int c) {
  return (r > 0 ? 1 : 0) + (r + 1 < rows ? 1 : 0) + (c > 0 ? 1 : 0) + (c + 1 < cols ? 1 : 0);
}

}  // namespace

int Topology::distance(int a, int b) const {
  const int k = clusters_;
  check(a >= 0 && a < k && b >= 0 && b < k, "Topology::distance: cluster out of range");
  switch (kind_) {
    case TopologyKind::kRing: {
      const int cw = ((b - a) % k + k) % k;
      return std::min(cw, k - cw);
    }
    case TopologyKind::kMesh:
      return std::abs(a / cols_ - b / cols_) + std::abs(a % cols_ - b % cols_);
    case TopologyKind::kCrossbar:
      return a == b ? 0 : 1;
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

int Topology::next_hop(int a, int b) const {
  check(a != b, "Topology::next_hop: a == b");
  const int k = clusters_;
  check(a >= 0 && a < k && b >= 0 && b < k, "Topology::next_hop: cluster out of range");
  switch (kind_) {
    case TopologyKind::kRing: {
      // Clockwise preferred on ties, matching the historical ring router.
      const int cw = ((b - a) % k + k) % k;
      if (cw <= k - cw) return (a + 1) % k;
      return (a - 1 + k) % k;
    }
    case TopologyKind::kMesh: {
      const int ra = a / cols_;
      const int rb = b / cols_;
      if (ra != rb) return rb > ra ? a + cols_ : a - cols_;
      return b > a ? a + 1 : a - 1;
    }
    case TopologyKind::kCrossbar:
      return b;
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

int Topology::segment_count() const {
  const int k = clusters_;
  switch (kind_) {
    case TopologyKind::kRing:
      if (k == 1) return 0;
      if (k == 2) return 2;  // 0 -> 1 and 1 -> 0; no distinct ccw direction
      return 2 * k;
    case TopologyKind::kMesh:
      return 2 * (rows_ * (cols_ - 1) + cols_ * (rows_ - 1));
    case TopologyKind::kCrossbar:
      return k * (k - 1);
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

Segment Topology::segment(int s) const {
  const int k = clusters_;
  check(s >= 0 && s < segment_count(), "Topology::segment: id out of range");
  switch (kind_) {
    case TopologyKind::kRing:
      if (k == 2) return {s, 1 - s};
      if (s < k) return {s, (s + 1) % k};       // clockwise segment s
      return {(s - k + 1) % k, s - k};          // counter-clockwise segment s-k
    case TopologyKind::kMesh: {
      int offset = 0;
      for (int n = 0; n < k; ++n) {
        const int r = n / cols_;
        const int c = n % cols_;
        const int degree = mesh_degree(rows_, cols_, r, c);
        if (s < offset + degree) {
          int rank = s - offset;
          // Neighbours of n in ascending-id order: up, left, right, down.
          if (r > 0 && rank-- == 0) return {n, n - cols_};
          if (c > 0 && rank-- == 0) return {n, n - 1};
          if (c + 1 < cols_ && rank-- == 0) return {n, n + 1};
          return {n, n + cols_};
        }
        offset += degree;
      }
      fail("mesh segment id not covered");
    }
    case TopologyKind::kCrossbar: {
      const int src = s / (k - 1);
      const int rank = s % (k - 1);
      return {src, rank < src ? rank : rank + 1};
    }
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

int Topology::segment_between(int src, int dst) const {
  const int k = clusters_;
  check(src >= 0 && src < k && dst >= 0 && dst < k,
        "Topology::segment_between: cluster out of range");
  if (src == dst || distance(src, dst) != 1) return -1;
  switch (kind_) {
    case TopologyKind::kRing:
      // Clockwise first: for k == 2 both directions match and the two
      // "clockwise" segments carry all traffic.
      if ((src + 1) % k == dst) return src;
      return k + dst;
    case TopologyKind::kMesh: {
      int offset = 0;
      for (int n = 0; n < src; ++n) {
        offset += mesh_degree(rows_, cols_, n / cols_, n % cols_);
      }
      const int r = src / cols_;
      const int c = src % cols_;
      if (dst == src - cols_) return offset;
      offset += r > 0 ? 1 : 0;
      if (dst == src - 1) return offset;
      offset += c > 0 ? 1 : 0;
      if (dst == src + 1) return offset;
      offset += c + 1 < cols_ ? 1 : 0;
      return offset;  // dst == src + cols_
    }
    case TopologyKind::kCrossbar:
      return src * (k - 1) + (dst < src ? dst : dst - 1);
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

std::string Topology::segment_name(int s) const {
  const Segment seg = segment(s);
  switch (kind_) {
    case TopologyKind::kRing:
      if (clusters_ > 2 && s >= clusters_) return cat("ring-ccw[", s - clusters_, "]");
      return cat("ring-cw[", s, "]");
    case TopologyKind::kMesh:
      return cat("mesh[", seg.src, "->", seg.dst, "]");
    case TopologyKind::kCrossbar:
      return cat("xbar[", seg.src, "->", seg.dst, "]");
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

}  // namespace qvliw
