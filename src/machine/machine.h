// Machine configuration: clusters, queue register files, interconnect.
//
// A machine is a set of clusters on an interconnect topology (ring, mesh
// or crossbar — see machine/topology.h).  Each cluster has a private QRF
// (a set of queues usable only by its own FUs) and is connected to its
// topology neighbours by directed *segments*, each implemented as a set
// of queues (Fig. 5b / Fig. 7 of the paper): a producer in cluster c
// writes a segment queue that a consumer in the adjacent cluster pops.
// The base partitioning scheme permits communication only between
// adjacent clusters; `move` operations (the paper's future-work
// extension) relay values across several segments.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "machine/fu.h"
#include "machine/topology.h"

namespace qvliw {

struct ClusterConfig {
  /// FU instances per kind, indexed by FuKind.
  std::array<int, kNumFuKinds> fu_count{};

  /// Queues in the private QRF (paper's basic cluster: 8).
  int private_queues = 8;

  /// Positions (depth) per private queue.
  int queue_depth = 16;

  [[nodiscard]] int fus(FuKind kind) const { return fu_count[static_cast<std::size_t>(kind)]; }
  [[nodiscard]] int& fus(FuKind kind) { return fu_count[static_cast<std::size_t>(kind)]; }

  /// The paper's cluster: 1 L/S + 1 ADD + 1 MUL + 1 COPY, 8 private queues.
  [[nodiscard]] static ClusterConfig paper_cluster();
};

/// Queue resources of one directed interconnect segment; every segment of
/// a machine shares this configuration (paper ring: 8 queues x 16 deep
/// per direction).
struct SegmentConfig {
  /// Queues per directed segment between adjacent clusters (paper: 8).
  int queues_per_segment = 8;

  /// Positions per segment queue.
  int queue_depth = 16;
};

class MachineConfig {
 public:
  std::string name = "machine";
  std::vector<ClusterConfig> clusters;
  SegmentConfig segment;
  LatencyModel latency = LatencyModel::classic();

  /// Interconnect shape; mesh additionally needs mesh_rows x mesh_cols ==
  /// cluster count.  Defaults to the paper's ring so existing
  /// configurations keep their meaning.
  TopologyKind topology_kind = TopologyKind::kRing;
  int mesh_rows = 0;
  int mesh_cols = 0;

  [[nodiscard]] int cluster_count() const { return static_cast<int>(clusters.size()); }
  [[nodiscard]] bool single_cluster() const { return clusters.size() == 1; }

  [[nodiscard]] const ClusterConfig& cluster(int c) const;

  [[nodiscard]] int fu_count(int c, FuKind kind) const { return cluster(c).fus(kind); }

  /// FU instances of `kind` summed over all clusters.
  [[nodiscard]] int total_fus(FuKind kind) const;

  /// Compute FUs (L/S + ADD + MUL) over all clusters — the paper's
  /// machine-size label ("12 FUs" = 4 clusters).
  [[nodiscard]] int total_compute_fus() const;

  // --- interconnect topology ----------------------------------------------

  /// The interconnect as a graph value (cheap to build; see topology.h).
  [[nodiscard]] Topology topology() const;

  /// Minimal hop count between clusters on the interconnect.
  [[nodiscard]] int distance(int a, int b) const { return topology().distance(a, b); }

  /// True when a == b or the clusters are interconnect neighbours.
  [[nodiscard]] bool adjacent(int a, int b) const { return distance(a, b) <= 1; }

  /// Next cluster one hop from `a` toward `b` along a shortest path
  /// (deterministic tie-breaks; see Topology::next_hop).  Requires a != b.
  [[nodiscard]] int next_hop(int a, int b) const { return topology().next_hop(a, b); }

  /// Structural checks: >= 1 cluster, every cluster has >= 1 of each
  /// compute FU kind, positive queue counts/depths, and topology
  /// parameters consistent with the cluster count.
  void validate() const;

  // --- paper configurations ----------------------------------------------

  /// Single-cluster machine with `n_fus` compute FUs distributed
  /// round-robin over L/S, ADD, MUL (12 -> 4/4/4 as in the paper), plus
  /// ceil(n/3) copy units and `queues` private queues (default 32, the
  /// configuration that schedules most of the paper's benchmark).
  [[nodiscard]] static MachineConfig single_cluster_machine(int n_fus, int queues = 32);

  /// `n_clusters` paper clusters on a bidirectional ring of queues
  /// (Fig. 5b): 3 compute FUs + 1 copy FU per cluster, 8 private queues,
  /// 8 segment queues per direction.
  [[nodiscard]] static MachineConfig clustered_machine(int n_clusters);

  /// rows x cols paper clusters on a 2D mesh, same per-cluster and
  /// per-segment resources as clustered_machine.
  [[nodiscard]] static MachineConfig mesh_machine(int rows, int cols);

  /// `n_clusters` paper clusters on a full crossbar, same per-cluster and
  /// per-segment resources as clustered_machine.
  [[nodiscard]] static MachineConfig crossbar_machine(int n_clusters);

  /// Paper clusters on any built-in topology; meshes factor `n_clusters`
  /// into the most nearly square rows x cols grid (9 -> 3x3, 6 -> 2x3).
  [[nodiscard]] static MachineConfig topology_machine(TopologyKind kind, int n_clusters);

  /// Structural hash of everything that affects compilation results:
  /// cluster FU mix, queue counts/depths, interconnect topology, segment
  /// config and latency model (the `name` is ignored).  Equal signatures
  /// mean interchangeable machines for the sweep runner's artifact cache.
  /// Ring machines hash exactly as they did before the topology became
  /// configurable, so cached ring artifacts stay valid.
  [[nodiscard]] std::uint64_t signature() const;
};

/// Hash of a latency model alone — the only machine input Ddg::build
/// consumes, so DDGs are shareable across machines with equal values.
[[nodiscard]] std::uint64_t latency_signature(const LatencyModel& latency);

class BlobReader;
class BlobWriter;

/// Machine blob layout version.  Version 1 predates configurable
/// topologies (every machine was a ring); version 2 appends the topology
/// kind and mesh dimensions.  Containers embedding a machine record which
/// version they carry (e.g. the qvliw_verify bundle magic) and pass it to
/// deserialize_machine.
inline constexpr int kMachineCodecVersion = 2;

/// Serialises `machine` into the portable blob format
/// (support/artifact_store.h) at kMachineCodecVersion: name, per-cluster
/// FU mix and queue configuration, segment config, latency model, and the
/// topology kind + mesh dimensions.  Used by the qvliw_verify bundle so a
/// dumped artifact names the exact machine it claims legality against.
void serialize_machine(BlobWriter& out, const MachineConfig& machine);

/// Inverse of serialize_machine; throws Error on truncation, an
/// implausible cluster count, or a malformed topology.  `version` selects
/// the blob layout (version-1 blobs decode as ring machines).  The result
/// is *not* validated — run MachineConfig::validate before trusting a
/// deserialised machine.
[[nodiscard]] MachineConfig deserialize_machine(BlobReader& in,
                                                int version = kMachineCodecVersion);

}  // namespace qvliw
