// Machine configuration: clusters, queue register files, ring interconnect.
//
// A machine is a ring of clusters.  Each cluster has a private QRF (a set
// of queues usable only by its own FUs) and is connected to its two ring
// neighbours by directional *segments*, each implemented as a set of
// queues (Fig. 5b / Fig. 7 of the paper): a producer in cluster c writes a
// segment queue that a consumer in the adjacent cluster pops.  The base
// partitioning scheme permits communication only between adjacent
// clusters; `move` operations (the paper's future-work extension) relay
// values across several segments.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "machine/fu.h"

namespace qvliw {

struct ClusterConfig {
  /// FU instances per kind, indexed by FuKind.
  std::array<int, kNumFuKinds> fu_count{};

  /// Queues in the private QRF (paper's basic cluster: 8).
  int private_queues = 8;

  /// Positions (depth) per private queue.
  int queue_depth = 16;

  [[nodiscard]] int fus(FuKind kind) const { return fu_count[static_cast<std::size_t>(kind)]; }
  [[nodiscard]] int& fus(FuKind kind) { return fu_count[static_cast<std::size_t>(kind)]; }

  /// The paper's cluster: 1 L/S + 1 ADD + 1 MUL + 1 COPY, 8 private queues.
  [[nodiscard]] static ClusterConfig paper_cluster();
};

struct RingConfig {
  /// Queues per directional segment between adjacent clusters (paper: 8).
  int queues_per_direction = 8;

  /// Positions per ring queue.
  int queue_depth = 16;
};

class MachineConfig {
 public:
  std::string name = "machine";
  std::vector<ClusterConfig> clusters;
  RingConfig ring;
  LatencyModel latency = LatencyModel::classic();

  [[nodiscard]] int cluster_count() const { return static_cast<int>(clusters.size()); }
  [[nodiscard]] bool single_cluster() const { return clusters.size() == 1; }

  [[nodiscard]] const ClusterConfig& cluster(int c) const;

  [[nodiscard]] int fu_count(int c, FuKind kind) const { return cluster(c).fus(kind); }

  /// FU instances of `kind` summed over all clusters.
  [[nodiscard]] int total_fus(FuKind kind) const;

  /// Compute FUs (L/S + ADD + MUL) over all clusters — the paper's
  /// machine-size label ("12 FUs" = 4 clusters).
  [[nodiscard]] int total_compute_fus() const;

  // --- ring topology ------------------------------------------------------

  /// Minimal hop count between clusters on the bidirectional ring.
  [[nodiscard]] int ring_distance(int a, int b) const;

  /// True when a == b or the clusters are ring neighbours.
  [[nodiscard]] bool adjacent(int a, int b) const { return ring_distance(a, b) <= 1; }

  /// Hops going clockwise from a to b (0 .. cluster_count-1).
  [[nodiscard]] int clockwise_distance(int a, int b) const;

  /// Next cluster one hop from `a` toward `b` along a shortest ring path
  /// (clockwise preferred on ties).  Requires a != b.
  [[nodiscard]] int step_toward(int a, int b) const;

  /// Structural checks: >= 1 cluster, every cluster has >= 1 of each
  /// compute FU kind, positive queue counts/depths.
  void validate() const;

  // --- paper configurations ----------------------------------------------

  /// Single-cluster machine with `n_fus` compute FUs distributed
  /// round-robin over L/S, ADD, MUL (12 -> 4/4/4 as in the paper), plus
  /// ceil(n/3) copy units and `queues` private queues (default 32, the
  /// configuration that schedules most of the paper's benchmark).
  [[nodiscard]] static MachineConfig single_cluster_machine(int n_fus, int queues = 32);

  /// `n_clusters` paper clusters on a bidirectional ring of queues
  /// (Fig. 5b): 3 compute FUs + 1 copy FU per cluster, 8 private queues,
  /// 8 ring queues per direction per segment.
  [[nodiscard]] static MachineConfig clustered_machine(int n_clusters);

  /// Structural hash of everything that affects compilation results:
  /// cluster FU mix, queue counts/depths, ring config and latency model
  /// (the `name` is ignored).  Equal signatures mean interchangeable
  /// machines for the sweep runner's artifact cache.
  [[nodiscard]] std::uint64_t signature() const;
};

/// Hash of a latency model alone — the only machine input Ddg::build
/// consumes, so DDGs are shareable across machines with equal values.
[[nodiscard]] std::uint64_t latency_signature(const LatencyModel& latency);

class BlobReader;
class BlobWriter;

/// Serialises `machine` into the portable blob format
/// (support/artifact_store.h): name, per-cluster FU mix and queue
/// configuration, ring config, and the latency model.  Used by the
/// qvliw_verify bundle so a dumped artifact names the exact machine it
/// claims legality against.
void serialize_machine(BlobWriter& out, const MachineConfig& machine);

/// Inverse of serialize_machine; throws Error on truncation or an
/// implausible cluster count.  The result is *not* validated — run
/// MachineConfig::validate before trusting a deserialised machine.
[[nodiscard]] MachineConfig deserialize_machine(BlobReader& in);

}  // namespace qvliw
