// Functional-unit classes of the clustered VLIW model.
//
// The paper's cluster is {1 L/S, 1 ADD, 1 MUL} plus one dedicated COPY unit
// (Fig. 5a / Fig. 7).  Every FU is fully pipelined: it accepts one
// operation per cycle and produces the result after the opcode's latency.
#pragma once

#include <cstdint>
#include <string_view>

#include "ir/opcode.h"

namespace qvliw {

enum class FuKind : std::uint8_t {
  kLS,    // load/store unit (implicit address generation)
  kAdd,   // integer/FP adder-subtracter
  kMul,   // multiplier (also executes divides)
  kCopy,  // copy/move unit: 1 queue read port, 2 queue write ports
};

inline constexpr int kNumFuKinds = 4;

[[nodiscard]] std::string_view fu_kind_name(FuKind kind);

/// The FU class that executes `opcode`.
[[nodiscard]] constexpr FuKind fu_for(Opcode opcode) {
  switch (opcode) {
    case Opcode::kLoad:
    case Opcode::kStore:
      return FuKind::kLS;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kFAdd:
    case Opcode::kFSub:
      return FuKind::kAdd;
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kFMul:
    case Opcode::kFDiv:
      return FuKind::kMul;
    case Opcode::kCopy:
    case Opcode::kMove:
      return FuKind::kCopy;
  }
  return FuKind::kAdd;  // unreachable; keeps constexpr total
}

/// True for the compute classes the paper counts as "FUs" (copy units are
/// provisioned separately and excluded from machine-size labels).
[[nodiscard]] constexpr bool is_compute_fu(FuKind kind) { return kind != FuKind::kCopy; }

}  // namespace qvliw
