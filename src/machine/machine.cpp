#include "machine/machine.h"

#include <algorithm>
#include <cstdint>

#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"

namespace qvliw {

ClusterConfig ClusterConfig::paper_cluster() {
  ClusterConfig config;
  config.fus(FuKind::kLS) = 1;
  config.fus(FuKind::kAdd) = 1;
  config.fus(FuKind::kMul) = 1;
  config.fus(FuKind::kCopy) = 1;
  config.private_queues = 8;
  config.queue_depth = 16;
  return config;
}

const ClusterConfig& MachineConfig::cluster(int c) const {
  check(c >= 0 && c < cluster_count(), "MachineConfig::cluster out of range");
  return clusters[static_cast<std::size_t>(c)];
}

int MachineConfig::total_fus(FuKind kind) const {
  int total = 0;
  for (const ClusterConfig& c : clusters) total += c.fus(kind);
  return total;
}

int MachineConfig::total_compute_fus() const {
  return total_fus(FuKind::kLS) + total_fus(FuKind::kAdd) + total_fus(FuKind::kMul);
}

Topology MachineConfig::topology() const {
  switch (topology_kind) {
    case TopologyKind::kRing:
      return Topology::ring(cluster_count());
    case TopologyKind::kMesh:
      return Topology::mesh(mesh_rows, mesh_cols);
    case TopologyKind::kCrossbar:
      return Topology::crossbar(cluster_count());
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

void MachineConfig::validate() const {
  check(!clusters.empty(), cat("machine '", name, "': needs at least one cluster"));
  for (int c = 0; c < cluster_count(); ++c) {
    const ClusterConfig& cc = cluster(c);
    check(cc.fus(FuKind::kLS) >= 1 && cc.fus(FuKind::kAdd) >= 1 && cc.fus(FuKind::kMul) >= 1,
          cat("machine '", name, "', cluster ", c, ": every compute FU kind needs >= 1 instance"));
    check(cc.fus(FuKind::kCopy) >= 0, "negative copy FU count");
    check(cc.private_queues >= 1, cat("machine '", name, "', cluster ", c, ": needs private queues"));
    check(cc.queue_depth >= 1, cat("machine '", name, "', cluster ", c, ": needs queue depth"));
  }
  if (topology_kind == TopologyKind::kMesh) {
    check(mesh_rows >= 1 && mesh_cols >= 1 && mesh_rows * mesh_cols == cluster_count(),
          cat("machine '", name, "': mesh of ", mesh_rows, "x", mesh_cols, " does not cover ",
              cluster_count(), " clusters"));
  }
  if (cluster_count() > 1) {
    const std::string_view kind = topology_kind_name(topology_kind);
    check(segment.queues_per_segment >= 1, cat("machine '", name, "': ", kind, " needs queues"));
    check(segment.queue_depth >= 1, cat("machine '", name, "': ", kind, " needs queue depth"));
  }
}

MachineConfig MachineConfig::single_cluster_machine(int n_fus, int queues) {
  check(n_fus >= 3, "single_cluster_machine: need at least 3 FUs (one per kind)");
  MachineConfig machine;
  machine.name = cat("single-", n_fus, "fu");
  ClusterConfig cc;
  // Round-robin L/S, ADD, MUL so 12 FUs -> 4/4/4 (matching 4 paper clusters).
  static constexpr FuKind kOrder[3] = {FuKind::kLS, FuKind::kAdd, FuKind::kMul};
  for (int i = 0; i < n_fus; ++i) cc.fus(kOrder[i % 3]) += 1;
  cc.fus(FuKind::kCopy) = (n_fus + 2) / 3;  // one copy unit per 3 compute FUs
  cc.private_queues = queues;
  cc.queue_depth = 16;
  machine.clusters.push_back(cc);
  machine.validate();
  return machine;
}

MachineConfig MachineConfig::clustered_machine(int n_clusters) {
  check(n_clusters >= 2, "clustered_machine: need at least 2 clusters");
  MachineConfig machine;
  machine.name = cat("ring-", n_clusters, "x3fu");
  machine.clusters.assign(static_cast<std::size_t>(n_clusters), ClusterConfig::paper_cluster());
  machine.segment.queues_per_segment = 8;
  machine.segment.queue_depth = 16;
  machine.validate();
  return machine;
}

MachineConfig MachineConfig::mesh_machine(int rows, int cols) {
  check(rows >= 1 && cols >= 1 && rows * cols >= 2, "mesh_machine: need at least 2 clusters");
  MachineConfig machine;
  machine.name = cat("mesh-", rows, "x", cols, "x3fu");
  machine.clusters.assign(static_cast<std::size_t>(rows * cols), ClusterConfig::paper_cluster());
  machine.segment.queues_per_segment = 8;
  machine.segment.queue_depth = 16;
  machine.topology_kind = TopologyKind::kMesh;
  machine.mesh_rows = rows;
  machine.mesh_cols = cols;
  machine.validate();
  return machine;
}

MachineConfig MachineConfig::crossbar_machine(int n_clusters) {
  check(n_clusters >= 2, "crossbar_machine: need at least 2 clusters");
  MachineConfig machine;
  machine.name = cat("xbar-", n_clusters, "x3fu");
  machine.clusters.assign(static_cast<std::size_t>(n_clusters), ClusterConfig::paper_cluster());
  machine.segment.queues_per_segment = 8;
  machine.segment.queue_depth = 16;
  machine.topology_kind = TopologyKind::kCrossbar;
  machine.validate();
  return machine;
}

MachineConfig MachineConfig::topology_machine(TopologyKind kind, int n_clusters) {
  switch (kind) {
    case TopologyKind::kRing:
      return clustered_machine(n_clusters);
    case TopologyKind::kMesh: {
      // Most nearly square factorisation: largest divisor <= sqrt(n).
      int rows = 1;
      for (int r = 1; r * r <= n_clusters; ++r) {
        if (n_clusters % r == 0) rows = r;
      }
      return mesh_machine(rows, n_clusters / rows);
    }
    case TopologyKind::kCrossbar:
      return crossbar_machine(n_clusters);
  }
  QVLIW_ASSERT(false, "bad TopologyKind");
}

std::uint64_t latency_signature(const LatencyModel& latency) {
  std::uint64_t sig = hash64(0x1a7e9cULL);
  for (int l : latency.latency) sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(l)));
  return sig;
}

std::uint64_t MachineConfig::signature() const {
  std::uint64_t sig = latency_signature(latency);
  sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(clusters.size())));
  for (const ClusterConfig& cc : clusters) {
    for (int n : cc.fu_count) sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(n)));
    sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(cc.private_queues)));
    sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(cc.queue_depth)));
  }
  sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(segment.queues_per_segment)));
  sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(segment.queue_depth)));
  // Rings fold nothing further, keeping their pre-topology hash bytes (and
  // with them every cached ring artifact); other topologies salt in their
  // shape so a mesh-9 and a ring-9 can never collide.
  if (topology_kind != TopologyKind::kRing) {
    sig = hash_combine(sig, hash64(0x70b0106fULL));
    sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(topology_kind)));
    sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(mesh_rows)));
    sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(mesh_cols)));
  }
  return sig;
}

void serialize_machine(BlobWriter& out, const MachineConfig& machine) {
  out.put_string(machine.name);
  out.put_i32(machine.cluster_count());
  for (const ClusterConfig& cc : machine.clusters) {
    for (int n : cc.fu_count) out.put_i32(n);
    out.put_i32(cc.private_queues);
    out.put_i32(cc.queue_depth);
  }
  out.put_i32(machine.segment.queues_per_segment);
  out.put_i32(machine.segment.queue_depth);
  for (int l : machine.latency.latency) out.put_i32(l);
  // Version-2 suffix: interconnect shape.
  out.put_i32(static_cast<std::int32_t>(machine.topology_kind));
  out.put_i32(machine.mesh_rows);
  out.put_i32(machine.mesh_cols);
}

MachineConfig deserialize_machine(BlobReader& in, int version) {
  check(version >= 1 && version <= kMachineCodecVersion,
        cat("deserialize_machine: unsupported codec version ", version));
  MachineConfig machine;
  machine.name = in.get_string();
  const std::int32_t clusters = in.get_i32();
  check(clusters >= 0 && clusters <= (1 << 16),
        cat("deserialize_machine: implausible cluster count ", clusters));
  machine.clusters.resize(static_cast<std::size_t>(clusters));
  for (ClusterConfig& cc : machine.clusters) {
    for (int& n : cc.fu_count) n = in.get_i32();
    cc.private_queues = in.get_i32();
    cc.queue_depth = in.get_i32();
  }
  machine.segment.queues_per_segment = in.get_i32();
  machine.segment.queue_depth = in.get_i32();
  for (int& l : machine.latency.latency) l = in.get_i32();
  if (version >= 2) {
    const std::int32_t kind = in.get_i32();
    check(kind >= 0 && kind <= static_cast<std::int32_t>(TopologyKind::kCrossbar),
          cat("deserialize_machine: bad topology kind ", kind));
    machine.topology_kind = static_cast<TopologyKind>(kind);
    machine.mesh_rows = in.get_i32();
    machine.mesh_cols = in.get_i32();
    if (machine.topology_kind == TopologyKind::kMesh) {
      check(machine.mesh_rows >= 1 && machine.mesh_cols >= 1 &&
                static_cast<long long>(machine.mesh_rows) * machine.mesh_cols == clusters,
            cat("deserialize_machine: mesh of ", machine.mesh_rows, "x", machine.mesh_cols,
                " does not cover ", clusters, " clusters"));
    }
  }
  return machine;
}

}  // namespace qvliw
