#include "machine/machine.h"

#include <algorithm>
#include <cstdint>

#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"

namespace qvliw {

ClusterConfig ClusterConfig::paper_cluster() {
  ClusterConfig config;
  config.fus(FuKind::kLS) = 1;
  config.fus(FuKind::kAdd) = 1;
  config.fus(FuKind::kMul) = 1;
  config.fus(FuKind::kCopy) = 1;
  config.private_queues = 8;
  config.queue_depth = 16;
  return config;
}

const ClusterConfig& MachineConfig::cluster(int c) const {
  check(c >= 0 && c < cluster_count(), "MachineConfig::cluster out of range");
  return clusters[static_cast<std::size_t>(c)];
}

int MachineConfig::total_fus(FuKind kind) const {
  int total = 0;
  for (const ClusterConfig& c : clusters) total += c.fus(kind);
  return total;
}

int MachineConfig::total_compute_fus() const {
  return total_fus(FuKind::kLS) + total_fus(FuKind::kAdd) + total_fus(FuKind::kMul);
}

int MachineConfig::ring_distance(int a, int b) const {
  const int k = cluster_count();
  check(a >= 0 && a < k && b >= 0 && b < k, "ring_distance: cluster out of range");
  const int cw = clockwise_distance(a, b);
  return std::min(cw, k - cw);
}

int MachineConfig::clockwise_distance(int a, int b) const {
  const int k = cluster_count();
  check(a >= 0 && a < k && b >= 0 && b < k, "clockwise_distance: cluster out of range");
  return ((b - a) % k + k) % k;
}

int MachineConfig::step_toward(int a, int b) const {
  check(a != b, "step_toward: a == b");
  const int k = cluster_count();
  const int cw = clockwise_distance(a, b);
  if (cw <= k - cw) return (a + 1) % k;
  return (a - 1 + k) % k;
}

void MachineConfig::validate() const {
  check(!clusters.empty(), cat("machine '", name, "': needs at least one cluster"));
  for (int c = 0; c < cluster_count(); ++c) {
    const ClusterConfig& cc = cluster(c);
    check(cc.fus(FuKind::kLS) >= 1 && cc.fus(FuKind::kAdd) >= 1 && cc.fus(FuKind::kMul) >= 1,
          cat("machine '", name, "', cluster ", c, ": every compute FU kind needs >= 1 instance"));
    check(cc.fus(FuKind::kCopy) >= 0, "negative copy FU count");
    check(cc.private_queues >= 1, cat("machine '", name, "', cluster ", c, ": needs private queues"));
    check(cc.queue_depth >= 1, cat("machine '", name, "', cluster ", c, ": needs queue depth"));
  }
  if (cluster_count() > 1) {
    check(ring.queues_per_direction >= 1, cat("machine '", name, "': ring needs queues"));
    check(ring.queue_depth >= 1, cat("machine '", name, "': ring needs queue depth"));
  }
}

MachineConfig MachineConfig::single_cluster_machine(int n_fus, int queues) {
  check(n_fus >= 3, "single_cluster_machine: need at least 3 FUs (one per kind)");
  MachineConfig machine;
  machine.name = cat("single-", n_fus, "fu");
  ClusterConfig cc;
  // Round-robin L/S, ADD, MUL so 12 FUs -> 4/4/4 (matching 4 paper clusters).
  static constexpr FuKind kOrder[3] = {FuKind::kLS, FuKind::kAdd, FuKind::kMul};
  for (int i = 0; i < n_fus; ++i) cc.fus(kOrder[i % 3]) += 1;
  cc.fus(FuKind::kCopy) = (n_fus + 2) / 3;  // one copy unit per 3 compute FUs
  cc.private_queues = queues;
  cc.queue_depth = 16;
  machine.clusters.push_back(cc);
  machine.validate();
  return machine;
}

MachineConfig MachineConfig::clustered_machine(int n_clusters) {
  check(n_clusters >= 2, "clustered_machine: need at least 2 clusters");
  MachineConfig machine;
  machine.name = cat("ring-", n_clusters, "x3fu");
  machine.clusters.assign(static_cast<std::size_t>(n_clusters), ClusterConfig::paper_cluster());
  machine.ring.queues_per_direction = 8;
  machine.ring.queue_depth = 16;
  machine.validate();
  return machine;
}

std::uint64_t latency_signature(const LatencyModel& latency) {
  std::uint64_t sig = hash64(0x1a7e9cULL);
  for (int l : latency.latency) sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(l)));
  return sig;
}

std::uint64_t MachineConfig::signature() const {
  std::uint64_t sig = latency_signature(latency);
  sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(clusters.size())));
  for (const ClusterConfig& cc : clusters) {
    for (int n : cc.fu_count) sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(n)));
    sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(cc.private_queues)));
    sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(cc.queue_depth)));
  }
  sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(ring.queues_per_direction)));
  sig = hash_combine(sig, hash64(static_cast<std::uint64_t>(ring.queue_depth)));
  return sig;
}

void serialize_machine(BlobWriter& out, const MachineConfig& machine) {
  out.put_string(machine.name);
  out.put_i32(machine.cluster_count());
  for (const ClusterConfig& cc : machine.clusters) {
    for (int n : cc.fu_count) out.put_i32(n);
    out.put_i32(cc.private_queues);
    out.put_i32(cc.queue_depth);
  }
  out.put_i32(machine.ring.queues_per_direction);
  out.put_i32(machine.ring.queue_depth);
  for (int l : machine.latency.latency) out.put_i32(l);
}

MachineConfig deserialize_machine(BlobReader& in) {
  MachineConfig machine;
  machine.name = in.get_string();
  const std::int32_t clusters = in.get_i32();
  check(clusters >= 0 && clusters <= (1 << 16),
        cat("deserialize_machine: implausible cluster count ", clusters));
  machine.clusters.resize(static_cast<std::size_t>(clusters));
  for (ClusterConfig& cc : machine.clusters) {
    for (int& n : cc.fu_count) n = in.get_i32();
    cc.private_queues = in.get_i32();
    cc.queue_depth = in.get_i32();
  }
  machine.ring.queues_per_direction = in.get_i32();
  machine.ring.queue_depth = in.get_i32();
  for (int& l : machine.latency.latency) l = in.get_i32();
  return machine;
}

}  // namespace qvliw
