// Interconnect topology: clusters plus directed segments as a graph.
//
// A topology names the clusters 0..k-1 and models the directed *segments*
// between them — each segment is a pool of queues a producer cluster
// writes and an adjacent consumer cluster pops (Fig. 5b of the paper).
// Three shapes are built in:
//
//   ring      — the paper's bidirectional ring: clockwise segments
//               i -> (i+1) mod k and counter-clockwise segments
//               (i+1) mod k -> i.  A two-cluster ring has exactly two
//               segments (0 -> 1 and 1 -> 0, both "clockwise").
//   mesh      — a rows x cols 2D grid, row-major cluster ids, segments in
//               both directions between horizontal/vertical neighbours
//               (no wraparound, no diagonals).
//   crossbar  — every ordered pair of distinct clusters has a segment;
//               all clusters are adjacent.
//
// The class is a small arithmetic value type: distance/next_hop/segment
// lookups are computed, not tabulated, so copies are free and a topology
// can be rebuilt from a MachineConfig at will.  Canonical segment ids are
// dense in [0, segment_count()) and are what QueueDomain::kSegment
// indexes; their enumeration order is part of the artifact format (queue
// allocation processes domains in canonical-id order).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace qvliw {

enum class TopologyKind : std::uint8_t {
  kRing = 0,
  kMesh = 1,
  kCrossbar = 2,
};

/// Stable lower-case name ("ring", "mesh", "crossbar") — used in machine
/// names, bench labels, CLI flags and diagnostics.
[[nodiscard]] std::string_view topology_kind_name(TopologyKind kind);

/// Inverse of topology_kind_name; nullopt for anything else.
[[nodiscard]] std::optional<TopologyKind> parse_topology_kind(std::string_view name);

/// One directed segment: values flow src -> dst through its queues.
struct Segment {
  int src = -1;
  int dst = -1;

  friend bool operator==(const Segment&, const Segment&) = default;
};

class Topology {
 public:
  /// Bidirectional ring of `clusters` >= 1 (1 cluster: no segments).
  [[nodiscard]] static Topology ring(int clusters);

  /// rows x cols grid, both >= 1.
  [[nodiscard]] static Topology mesh(int rows, int cols);

  /// Full crossbar over `clusters` >= 1.
  [[nodiscard]] static Topology crossbar(int clusters);

  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] std::string_view kind_name() const { return topology_kind_name(kind_); }
  [[nodiscard]] int cluster_count() const { return clusters_; }

  /// Grid shape; 0 for non-mesh topologies.
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  /// Minimal hop count from a to b (ring: bidirectional shortest way
  /// around; mesh: Manhattan; crossbar: 0 or 1).
  [[nodiscard]] int distance(int a, int b) const;

  /// True when a == b or a segment connects the two clusters.
  [[nodiscard]] bool adjacent(int a, int b) const { return distance(a, b) <= 1; }

  /// Next cluster one hop from `a` along a shortest path toward `b`
  /// (deterministic tie-breaks: ring prefers clockwise, mesh reduces the
  /// row difference first).  Requires a != b.
  [[nodiscard]] int next_hop(int a, int b) const;

  /// Directed segments, canonically enumerated.
  [[nodiscard]] int segment_count() const;

  /// Endpoints of canonical segment `s` in [0, segment_count()).
  [[nodiscard]] Segment segment(int s) const;

  /// Canonical id of the segment src -> dst, or -1 when no single segment
  /// carries that flow (non-adjacent or src == dst).
  [[nodiscard]] int segment_between(int src, int dst) const;

  /// Diagnostic name of segment `s`: the ring keeps its historical
  /// direction names ("ring-cw[i]", "ring-ccw[i]"); mesh and crossbar name
  /// the endpoints ("mesh[a->b]", "xbar[a->b]").
  [[nodiscard]] std::string segment_name(int s) const;

 private:
  Topology(TopologyKind kind, int clusters, int rows, int cols)
      : kind_(kind), clusters_(clusters), rows_(rows), cols_(cols) {}

  TopologyKind kind_ = TopologyKind::kRing;
  int clusters_ = 1;
  int rows_ = 0;  // mesh only
  int cols_ = 0;  // mesh only
};

}  // namespace qvliw
