#include "ir/ddg.h"

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

std::string_view dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::kFlow:
      return "flow";
    case DepKind::kMemFlow:
      return "mem-flow";
    case DepKind::kMemAnti:
      return "mem-anti";
    case DepKind::kMemOutput:
      return "mem-output";
  }
  QVLIW_ASSERT(false, "bad DepKind");
}

Ddg::Ddg(int nodes) : node_count_(nodes), out_(static_cast<std::size_t>(nodes)), in_(static_cast<std::size_t>(nodes)) {
  check(nodes >= 0, "Ddg: negative node count");
}

void Ddg::add_edge(DepEdge edge) {
  check(edge.src >= 0 && edge.src < node_count_, "Ddg::add_edge: src out of range");
  check(edge.dst >= 0 && edge.dst < node_count_, "Ddg::add_edge: dst out of range");
  check(edge.latency >= 0, "Ddg::add_edge: negative latency");
  check(edge.distance >= 0, "Ddg::add_edge: negative distance");
  const int index = static_cast<int>(edges_.size());
  out_[static_cast<std::size_t>(edge.src)].push_back(index);
  in_[static_cast<std::size_t>(edge.dst)].push_back(index);
  edges_.push_back(edge);
}

const std::vector<int>& Ddg::out_edges(int node) const {
  check(node >= 0 && node < node_count_, "Ddg::out_edges: node out of range");
  return out_[static_cast<std::size_t>(node)];
}

const std::vector<int>& Ddg::in_edges(int node) const {
  check(node >= 0 && node < node_count_, "Ddg::in_edges: node out of range");
  return in_[static_cast<std::size_t>(node)];
}

Ddg Ddg::build(const Loop& loop, const LatencyModel& lat) {
  loop.validate();
  Ddg graph(loop.op_count());

  for (int u = 0; u < loop.op_count(); ++u) {
    const Op& op = loop.ops[static_cast<std::size_t>(u)];
    graph.total_latency_ += lat.of(op.opcode);
    for (std::size_t a = 0; a < op.args.size(); ++a) {
      const Operand& arg = op.args[a];
      if (!arg.is_value()) continue;
      DepEdge edge;
      edge.src = arg.value_op;
      edge.dst = u;
      edge.latency = lat.of(loop.ops[static_cast<std::size_t>(arg.value_op)].opcode);
      edge.distance = arg.distance;
      edge.kind = DepKind::kFlow;
      edge.dst_arg = static_cast<int>(a);
      graph.add_edge(edge);
    }
  }

  for (const MemDep& dep : memory_dependences(loop)) {
    DepEdge edge;
    edge.src = dep.src;
    edge.dst = dep.dst;
    edge.latency = 1;
    edge.distance = dep.distance;
    switch (dep.kind) {
      case MemDepKind::kFlow:
        edge.kind = DepKind::kMemFlow;
        break;
      case MemDepKind::kAnti:
        edge.kind = DepKind::kMemAnti;
        break;
      case MemDepKind::kOutput:
        edge.kind = DepKind::kMemOutput;
        break;
    }
    graph.add_edge(edge);
  }

  return graph;
}

}  // namespace qvliw
