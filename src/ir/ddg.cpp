#include "ir/ddg.h"

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

std::string_view dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::kFlow:
      return "flow";
    case DepKind::kMemFlow:
      return "mem-flow";
    case DepKind::kMemAnti:
      return "mem-anti";
    case DepKind::kMemOutput:
      return "mem-output";
  }
  QVLIW_ASSERT(false, "bad DepKind");
}

Ddg::Ddg(int nodes) : node_count_(nodes), out_(static_cast<std::size_t>(nodes)), in_(static_cast<std::size_t>(nodes)) {
  check(nodes >= 0, "Ddg: negative node count");
}

void Ddg::add_edge(DepEdge edge) {
  check(edge.src >= 0 && edge.src < node_count_, "Ddg::add_edge: src out of range");
  check(edge.dst >= 0 && edge.dst < node_count_, "Ddg::add_edge: dst out of range");
  check(edge.latency >= 0, "Ddg::add_edge: negative latency");
  check(edge.distance >= 0, "Ddg::add_edge: negative distance");
  const int index = static_cast<int>(edges_.size());
  out_[static_cast<std::size_t>(edge.src)].push_back(index);
  in_[static_cast<std::size_t>(edge.dst)].push_back(index);
  edges_.push_back(edge);
}

const std::vector<int>& Ddg::out_edges(int node) const {
  check(node >= 0 && node < node_count_, "Ddg::out_edges: node out of range");
  return out_[static_cast<std::size_t>(node)];
}

const std::vector<int>& Ddg::in_edges(int node) const {
  check(node >= 0 && node < node_count_, "Ddg::in_edges: node out of range");
  return in_[static_cast<std::size_t>(node)];
}

Ddg Ddg::build(const Loop& loop, const LatencyModel& lat) {
  loop.validate();
  return build_from(loop, lat, memory_dependences(loop));
}

Ddg Ddg::build_from(const Loop& loop, const LatencyModel& lat, const std::vector<MemDep>& memdeps) {
  Ddg graph(loop.op_count());
  graph.edges_.reserve(static_cast<std::size_t>(loop.value_use_count()) + memdeps.size());

  for (int u = 0; u < loop.op_count(); ++u) {
    const Op& op = loop.ops[static_cast<std::size_t>(u)];
    graph.total_latency_ += lat.of(op.opcode);
    for (std::size_t a = 0; a < op.args.size(); ++a) {
      const Operand& arg = op.args[a];
      if (!arg.is_value()) continue;
      DepEdge edge;
      edge.src = arg.value_op;
      edge.dst = u;
      edge.latency = lat.of(loop.ops[static_cast<std::size_t>(arg.value_op)].opcode);
      edge.distance = arg.distance;
      edge.kind = DepKind::kFlow;
      edge.dst_arg = static_cast<int>(a);
      graph.add_edge(edge);
    }
  }

  for (const MemDep& dep : memdeps) {
    DepEdge edge;
    edge.src = dep.src;
    edge.dst = dep.dst;
    edge.latency = 1;
    edge.distance = dep.distance;
    switch (dep.kind) {
      case MemDepKind::kFlow:
        edge.kind = DepKind::kMemFlow;
        break;
      case MemDepKind::kAnti:
        edge.kind = DepKind::kMemAnti;
        break;
      case MemDepKind::kOutput:
        edge.kind = DepKind::kMemOutput;
        break;
    }
    graph.add_edge(edge);
  }

  return graph;
}

DdgFlat DdgFlat::from(const Ddg& graph) {
  DdgFlat flat;
  flat.node_count = graph.node_count();
  const int edges = graph.edge_count();
  const std::size_t n = static_cast<std::size_t>(flat.node_count);
  const std::size_t m = static_cast<std::size_t>(edges);

  flat.src.resize(m);
  flat.dst.resize(m);
  flat.latency.resize(m);
  flat.distance.resize(m);
  flat.kind.resize(m);
  flat.dst_arg.resize(m);
  flat.out_off.assign(n + 1, 0);
  flat.in_off.assign(n + 1, 0);
  flat.out_ids.resize(m);
  flat.in_ids.resize(m);

  for (int e = 0; e < edges; ++e) {
    const DepEdge& edge = graph.edge(e);
    const std::size_t i = static_cast<std::size_t>(e);
    flat.src[i] = edge.src;
    flat.dst[i] = edge.dst;
    flat.latency[i] = edge.latency;
    flat.distance[i] = edge.distance;
    flat.kind[i] = edge.kind;
    flat.dst_arg[i] = edge.dst_arg;
    ++flat.out_off[static_cast<std::size_t>(edge.src) + 1];
    ++flat.in_off[static_cast<std::size_t>(edge.dst) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    flat.out_off[v + 1] += flat.out_off[v];
    flat.in_off[v + 1] += flat.in_off[v];
  }
  // Fill in ascending edge-id order: the per-node lists end up in the same
  // insertion order Ddg keeps in out_/in_.
  std::vector<std::int32_t> out_cursor(flat.out_off.begin(), flat.out_off.end() - 1);
  std::vector<std::int32_t> in_cursor(flat.in_off.begin(), flat.in_off.end() - 1);
  for (int e = 0; e < edges; ++e) {
    const std::size_t i = static_cast<std::size_t>(e);
    flat.out_ids[static_cast<std::size_t>(out_cursor[static_cast<std::size_t>(flat.src[i])]++)] = e;
    flat.in_ids[static_cast<std::size_t>(in_cursor[static_cast<std::size_t>(flat.dst[i])]++)] = e;
  }
  return flat;
}

}  // namespace qvliw
