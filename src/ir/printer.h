// Loop-to-DSL printing (round-trips through the parser).
#pragma once

#include <string>

#include "ir/loop.h"

namespace qvliw {

/// Renders one operand in DSL syntax ("x@1", "c0", "42", "i+3").
[[nodiscard]] std::string operand_text(const Loop& loop, const Operand& operand);

/// Renders one op as a DSL statement without the trailing ';'.
[[nodiscard]] std::string op_text(const Loop& loop, const Op& op);

/// Renders a whole loop in DSL syntax; parse_loop(to_text(l)) == l
/// structurally.
[[nodiscard]] std::string to_text(const Loop& loop);

}  // namespace qvliw
