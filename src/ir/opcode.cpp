#include "ir/opcode.h"

#include "support/diagnostics.h"

namespace qvliw {

namespace {
constexpr std::array<std::string_view, kNumOpcodes> kNames = {
    "load", "store", "add", "sub", "mul", "div",
    "fadd", "fsub", "fmul", "fdiv", "copy", "move",
};
}  // namespace

std::string_view opcode_name(Opcode opcode) {
  const auto index = static_cast<std::size_t>(opcode);
  QVLIW_ASSERT(index < kNames.size(), "bad opcode");
  return kNames[index];
}

bool parse_opcode(std::string_view text, Opcode& out) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == text) {
      out = static_cast<Opcode>(i);
      return true;
    }
  }
  return false;
}

LatencyModel LatencyModel::classic() {
  LatencyModel model;
  model.latency[static_cast<std::size_t>(Opcode::kLoad)] = 2;
  model.latency[static_cast<std::size_t>(Opcode::kStore)] = 1;
  model.latency[static_cast<std::size_t>(Opcode::kAdd)] = 1;
  model.latency[static_cast<std::size_t>(Opcode::kSub)] = 1;
  model.latency[static_cast<std::size_t>(Opcode::kMul)] = 3;
  model.latency[static_cast<std::size_t>(Opcode::kDiv)] = 8;
  model.latency[static_cast<std::size_t>(Opcode::kFAdd)] = 2;
  model.latency[static_cast<std::size_t>(Opcode::kFSub)] = 2;
  model.latency[static_cast<std::size_t>(Opcode::kFMul)] = 3;
  model.latency[static_cast<std::size_t>(Opcode::kFDiv)] = 8;
  model.latency[static_cast<std::size_t>(Opcode::kCopy)] = 1;
  model.latency[static_cast<std::size_t>(Opcode::kMove)] = 1;
  return model;
}

LatencyModel LatencyModel::unit() {
  LatencyModel model;
  model.latency.fill(1);
  return model;
}

}  // namespace qvliw
