#include "ir/graph_algos.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace qvliw {

namespace {

/// Iterative Tarjan SCC (explicit stack so deep unrolled loops are safe).
class TarjanScc {
 public:
  explicit TarjanScc(const Ddg& graph) : graph_(graph) {
    const auto n = static_cast<std::size_t>(graph.node_count());
    index_.assign(n, -1);
    low_.assign(n, 0);
    on_stack_.assign(n, false);
    component_.assign(n, -1);
  }

  std::vector<int> run() {
    for (int v = 0; v < graph_.node_count(); ++v) {
      if (index_[static_cast<std::size_t>(v)] < 0) strongconnect(v);
    }
    // Tarjan emits components in reverse topological order already.
    return component_;
  }

  [[nodiscard]] int components() const { return next_component_; }

 private:
  struct Frame {
    int node;
    std::size_t edge_cursor;
  };

  void strongconnect(int root) {
    std::vector<Frame> call_stack{{root, 0}};
    begin(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto& out = graph_.out_edges(frame.node);
      bool descended = false;
      while (frame.edge_cursor < out.size()) {
        const int w = graph_.edge(out[frame.edge_cursor]).dst;
        ++frame.edge_cursor;
        if (index_[static_cast<std::size_t>(w)] < 0) {
          begin(w);
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[static_cast<std::size_t>(w)]) {
          low_[static_cast<std::size_t>(frame.node)] =
              std::min(low_[static_cast<std::size_t>(frame.node)], index_[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;

      const int v = frame.node;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const int parent = call_stack.back().node;
        low_[static_cast<std::size_t>(parent)] =
            std::min(low_[static_cast<std::size_t>(parent)], low_[static_cast<std::size_t>(v)]);
      }
      if (low_[static_cast<std::size_t>(v)] == index_[static_cast<std::size_t>(v)]) {
        while (true) {
          const int w = node_stack_.back();
          node_stack_.pop_back();
          on_stack_[static_cast<std::size_t>(w)] = false;
          component_[static_cast<std::size_t>(w)] = next_component_;
          if (w == v) break;
        }
        ++next_component_;
      }
    }
  }

  void begin(int v) {
    index_[static_cast<std::size_t>(v)] = next_index_;
    low_[static_cast<std::size_t>(v)] = next_index_;
    ++next_index_;
    node_stack_.push_back(v);
    on_stack_[static_cast<std::size_t>(v)] = true;
  }

  const Ddg& graph_;
  std::vector<int> index_;
  std::vector<int> low_;
  std::vector<bool> on_stack_;
  std::vector<int> node_stack_;
  std::vector<int> component_;
  int next_index_ = 0;
  int next_component_ = 0;
};

}  // namespace

std::vector<int> scc_ids(const Ddg& graph) { return TarjanScc(graph).run(); }

int scc_count(const Ddg& graph) {
  TarjanScc tarjan(graph);
  tarjan.run();
  return tarjan.components();
}

bool has_positive_cycle(const Ddg& graph, int ii) {
  return has_positive_cycle_scaled(graph, ii, 1);
}

bool has_positive_cycle_scaled(const Ddg& graph, int ii, int latency_scale) {
  check(ii >= 1, "has_positive_cycle: ii must be >= 1");
  check(latency_scale >= 1, "has_positive_cycle: latency_scale must be >= 1");
  const auto n = static_cast<std::size_t>(graph.node_count());
  if (n == 0) return false;
  // Longest-path potentials from a virtual source connected to every node
  // with weight 0.  A positive cycle keeps relaxing past round n-1.
  std::vector<long long> pot(n, 0);
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const DepEdge& e : graph.edges()) {
      const long long w = static_cast<long long>(latency_scale) * e.latency -
                          static_cast<long long>(ii) * static_cast<long long>(e.distance);
      const long long candidate = pot[static_cast<std::size_t>(e.src)] + w;
      if (candidate > pot[static_cast<std::size_t>(e.dst)]) {
        pot[static_cast<std::size_t>(e.dst)] = candidate;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

int Circuit::min_ii() const {
  QVLIW_ASSERT(distance_sum > 0, "circuit with zero distance (not schedulable)");
  return (latency_sum + distance_sum - 1) / distance_sum;
}

std::vector<Circuit> elementary_circuits(const Ddg& graph, std::size_t max_circuits) {
  // Smallest-vertex anchoring: enumerate circuits whose minimum node is the
  // DFS root, visiting only nodes >= root; each elementary circuit is found
  // exactly once.
  std::vector<Circuit> circuits;
  const int n = graph.node_count();
  std::vector<bool> on_path(static_cast<std::size_t>(n), false);
  std::vector<int> path;
  std::vector<int> path_edges;

  struct Walker {
    const Ddg& graph;
    std::vector<Circuit>& circuits;
    std::size_t max_circuits;
    std::vector<bool>& on_path;
    std::vector<int>& path;
    std::vector<int>& path_edges;
    int root = 0;

    void dfs(int v) {
      if (circuits.size() >= max_circuits) return;
      on_path[static_cast<std::size_t>(v)] = true;
      path.push_back(v);
      for (int e : graph.out_edges(v)) {
        if (circuits.size() >= max_circuits) break;
        const DepEdge& edge = graph.edge(e);
        const int w = edge.dst;
        if (w < root) continue;
        if (w == root) {
          Circuit circuit;
          circuit.nodes = path;
          for (int pe : path_edges) {
            circuit.latency_sum += graph.edge(pe).latency;
            circuit.distance_sum += graph.edge(pe).distance;
          }
          circuit.latency_sum += edge.latency;
          circuit.distance_sum += edge.distance;
          circuits.push_back(std::move(circuit));
          continue;
        }
        if (on_path[static_cast<std::size_t>(w)]) continue;
        path_edges.push_back(e);
        dfs(w);
        path_edges.pop_back();
      }
      path.pop_back();
      on_path[static_cast<std::size_t>(v)] = false;
    }
  };

  Walker walker{graph, circuits, max_circuits, on_path, path, path_edges};
  for (int root = 0; root < n && circuits.size() < max_circuits; ++root) {
    walker.root = root;
    walker.dfs(root);
  }
  return circuits;
}

std::vector<int> height_priority(const Ddg& graph, int ii) {
  check(ii >= 1, "height_priority: ii must be >= 1");
  const auto n = static_cast<std::size_t>(graph.node_count());
  std::vector<int> height(n, 0);
  // Every node implicitly reaches a STOP sink with latency 0, hence the
  // clamp at zero.  Without positive cycles this converges within n rounds.
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const DepEdge& e : graph.edges()) {
      const int w = e.latency - ii * e.distance;
      const int candidate = std::max(0, height[static_cast<std::size_t>(e.dst)] + w);
      if (candidate > height[static_cast<std::size_t>(e.src)]) {
        height[static_cast<std::size_t>(e.src)] = candidate;
        changed = true;
      }
    }
    if (!changed) break;
    QVLIW_ASSERT(round < n, "height_priority on graph with positive cycle");
  }
  return height;
}

void height_priority(const DdgFlat& flat, int ii, std::vector<int>& height) {
  check(ii >= 1, "height_priority: ii must be >= 1");
  const auto n = static_cast<std::size_t>(flat.node_count);
  height.assign(n, 0);
  const int m = flat.edge_count();
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (int e = 0; e < m; ++e) {
      const auto i = static_cast<std::size_t>(e);
      const int w = flat.latency[i] - ii * flat.distance[i];
      const int candidate = std::max(0, height[static_cast<std::size_t>(flat.dst[i])] + w);
      if (candidate > height[static_cast<std::size_t>(flat.src[i])]) {
        height[static_cast<std::size_t>(flat.src[i])] = candidate;
        changed = true;
      }
    }
    if (!changed) break;
    QVLIW_ASSERT(round < n, "height_priority on graph with positive cycle");
  }
}

}  // namespace qvliw
