#include "ir/loop.h"

#include <unordered_set>

#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"

namespace qvliw {

Operand Operand::value(int op, int dist) {
  Operand out;
  out.kind = Kind::kValue;
  out.value_op = op;
  out.distance = dist;
  return out;
}

Operand Operand::invariant_ref(int inv) {
  Operand out;
  out.kind = Kind::kInvariant;
  out.invariant = inv;
  return out;
}

Operand Operand::immediate(std::int64_t value) {
  Operand out;
  out.kind = Kind::kImmediate;
  out.imm = value;
  return out;
}

Operand Operand::index(int offset) {
  Operand out;
  out.kind = Kind::kIndex;
  out.index_offset = offset;
  return out;
}

int Loop::add_op(Op op) {
  ops.push_back(std::move(op));
  return static_cast<int>(ops.size()) - 1;
}

int Loop::find_value(std::string_view value_name) const {
  for (int i = 0; i < op_count(); ++i) {
    if (ops[static_cast<std::size_t>(i)].defines_value() &&
        ops[static_cast<std::size_t>(i)].name == value_name) {
      return i;
    }
  }
  return -1;
}

int Loop::intern_array(std::string_view array_name) {
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i] == array_name) return static_cast<int>(i);
  }
  arrays.emplace_back(array_name);
  return static_cast<int>(arrays.size()) - 1;
}

int Loop::intern_invariant(std::string_view invariant_name) {
  for (std::size_t i = 0; i < invariants.size(); ++i) {
    if (invariants[i] == invariant_name) return static_cast<int>(i);
  }
  invariants.emplace_back(invariant_name);
  return static_cast<int>(invariants.size()) - 1;
}

int Loop::max_distance() const {
  int max_dist = 0;
  for (const Op& op : ops) {
    for (const Operand& arg : op.args) {
      if (arg.is_value() && arg.distance > max_dist) max_dist = arg.distance;
    }
  }
  return max_dist;
}

int Loop::value_use_count() const {
  int uses = 0;
  for (const Op& op : ops) {
    for (const Operand& arg : op.args) {
      if (arg.is_value()) ++uses;
    }
  }
  return uses;
}

int Loop::use_count(int def) const {
  int uses = 0;
  for (const Op& op : ops) {
    for (const Operand& arg : op.args) {
      if (arg.is_value() && arg.value_op == def) ++uses;
    }
  }
  return uses;
}

void serialize_loop(BlobWriter& out, const Loop& loop) {
  out.put_string(loop.name);
  out.put_i32(loop.stride);
  out.put_i32(loop.trip_hint);
  out.put_u64(loop.invariants.size());
  for (const std::string& inv : loop.invariants) out.put_string(inv);
  out.put_u64(loop.arrays.size());
  for (const std::string& arr : loop.arrays) out.put_string(arr);
  out.put_u64(static_cast<std::uint64_t>(loop.op_count()));
  for (const Op& op : loop.ops) {
    out.put_i32(static_cast<std::int32_t>(op.opcode));
    out.put_string(op.name);
    out.put_i32(op.array);
    out.put_i32(op.mem_offset);
    out.put_i32(op.init_invariant);
    out.put_u64(op.args.size());
    for (const Operand& arg : op.args) {
      out.put_i32(static_cast<std::int32_t>(arg.kind));
      out.put_i32(arg.value_op);
      out.put_i32(arg.distance);
      out.put_i32(arg.invariant);
      out.put_i64(arg.imm);
      out.put_i32(arg.index_offset);
    }
  }
}

Loop deserialize_loop(BlobReader& in) {
  Loop loop;
  loop.name = in.get_string();
  loop.stride = in.get_i32();
  loop.trip_hint = in.get_i32();
  const std::uint64_t invariants = in.get_u64();
  for (std::uint64_t i = 0; i < invariants; ++i) loop.invariants.push_back(in.get_string());
  const std::uint64_t arrays = in.get_u64();
  for (std::uint64_t i = 0; i < arrays; ++i) loop.arrays.push_back(in.get_string());
  const std::uint64_t op_count = in.get_u64();
  for (std::uint64_t i = 0; i < op_count; ++i) {
    Op op;
    op.opcode = static_cast<Opcode>(in.get_i32());
    op.name = in.get_string();
    op.array = in.get_i32();
    op.mem_offset = in.get_i32();
    op.init_invariant = in.get_i32();
    const std::uint64_t args = in.get_u64();
    for (std::uint64_t a = 0; a < args; ++a) {
      Operand arg;
      arg.kind = static_cast<Operand::Kind>(in.get_i32());
      arg.value_op = in.get_i32();
      arg.distance = in.get_i32();
      arg.invariant = in.get_i32();
      arg.imm = in.get_i64();
      arg.index_offset = in.get_i32();
      op.args.push_back(arg);
    }
    loop.ops.push_back(std::move(op));
  }
  return loop;
}

std::uint64_t Loop::content_hash() const {
  BlobWriter out;
  serialize_loop(out, *this);
  return hash_combine(hash64(0x100bULL), hash_bytes(out.take()));  // domain-tagged
}

void Loop::validate() const {
  // Hot path: validate() runs on every success of every transform, so the
  // diagnostic strings must only be materialised on the (cold) failure
  // branches — `fail(cat(...))` instead of eager `check(cond, cat(...))`.
  if (stride < 1) fail(cat("loop '", name, "': stride must be >= 1"));
  if (trip_hint < 1) fail(cat("loop '", name, "': trip_hint must be >= 1"));

  std::unordered_set<std::string_view> names;
  names.reserve(ops.size());
  for (int i = 0; i < op_count(); ++i) {
    const Op& op = ops[static_cast<std::size_t>(i)];
    const auto where = [&] {
      return cat("loop '", name, "', op #", i, " (", opcode_name(op.opcode), ")");
    };

    if (op.defines_value()) {
      if (op.name.empty()) fail(cat(where(), ": value-defining op needs a name"));
      if (!names.insert(op.name).second) {
        fail(cat(where(), ": duplicate value name '", op.name, "'"));
      }
    } else {
      if (!op.name.empty()) fail(cat(where(), ": store must not name a result"));
    }

    if (static_cast<int>(op.args.size()) != operand_count(op.opcode)) {
      fail(cat(where(), ": expected ", operand_count(op.opcode), " operands, got ",
               op.args.size()));
    }

    if (is_memory(op.opcode)) {
      if (op.array < 0 || op.array >= static_cast<int>(arrays.size())) {
        fail(cat(where(), ": memory op with invalid array index"));
      }
    } else {
      if (op.array != -1) fail(cat(where(), ": non-memory op must not reference an array"));
    }

    if (op.init_invariant < -1 || op.init_invariant >= static_cast<int>(invariants.size())) {
      fail(cat(where(), ": init_invariant out of range"));
    }

    for (std::size_t a = 0; a < op.args.size(); ++a) {
      const Operand& arg = op.args[a];
      switch (arg.kind) {
        case Operand::Kind::kValue: {
          if (arg.value_op < 0 || arg.value_op >= op_count()) {
            fail(cat(where(), ": operand ", a, " references op out of range"));
          }
          const Op& def = ops[static_cast<std::size_t>(arg.value_op)];
          if (!def.defines_value()) fail(cat(where(), ": operand ", a, " references a store"));
          if (arg.distance < 0) fail(cat(where(), ": operand ", a, " has negative distance"));
          if (arg.distance == 0 && arg.value_op >= i) {
            fail(cat(where(), ": operand ", a, " uses '", def.name,
                     "' at distance 0 before it is defined"));
          }
          break;
        }
        case Operand::Kind::kInvariant:
          if (arg.invariant < 0 || arg.invariant >= static_cast<int>(invariants.size())) {
            fail(cat(where(), ": operand ", a, " references invalid invariant"));
          }
          break;
        case Operand::Kind::kImmediate:
        case Operand::Kind::kIndex:
          break;
      }
    }
  }
}

}  // namespace qvliw
