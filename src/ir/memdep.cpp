#include "ir/memdep.h"

#include "support/diagnostics.h"

namespace qvliw {

std::vector<MemDep> memory_dependences(const Loop& loop, int max_distance) {
  std::vector<MemDep> deps;
  const int n = loop.op_count();
  for (int a = 0; a < n; ++a) {
    const Op& op_a = loop.ops[static_cast<std::size_t>(a)];
    if (!is_memory(op_a.opcode)) continue;
    for (int b = a + 1; b < n; ++b) {
      const Op& op_b = loop.ops[static_cast<std::size_t>(b)];
      if (!is_memory(op_b.opcode)) continue;
      if (op_a.array != op_b.array) continue;
      const bool a_store = op_a.opcode == Opcode::kStore;
      const bool b_store = op_b.opcode == Opcode::kStore;
      if (!a_store && !b_store) continue;  // load-load never constrains

      // stride*i1 + off_a == stride*i2 + off_b  =>  i2 - i1 = (off_a - off_b)/stride
      const int delta = op_a.mem_offset - op_b.mem_offset;
      if (delta % loop.stride != 0) continue;  // never the same element
      const int d = delta / loop.stride;

      auto kind_of = [](bool src_store, bool dst_store) {
        if (src_store && dst_store) return MemDepKind::kOutput;
        if (src_store) return MemDepKind::kFlow;
        return MemDepKind::kAnti;
      };

      if (d >= 0) {
        // op_b's touching iteration is d later than op_a's: a -> b.
        if (d <= max_distance) deps.push_back({a, b, d, kind_of(a_store, b_store)});
      } else {
        // op_a touches d iterations after op_b: b -> a.
        if (-d <= max_distance) deps.push_back({b, a, -d, kind_of(b_store, a_store)});
      }
    }
  }
  return deps;
}

}  // namespace qvliw
