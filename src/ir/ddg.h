// Data dependence graph over a loop body.
//
// Nodes are the loop's operations.  Edges constrain a modulo schedule with
// initiation interval II by
//
//     sigma(dst) >= sigma(src) + latency - II * distance
//
// where sigma is the start cycle within one iteration's schedule.
// Register flow edges come straight from operands (latency = producing
// opcode's latency); memory order edges come from memdep.h (latency 1).
#pragma once

#include <string>
#include <vector>

#include "ir/loop.h"
#include "ir/memdep.h"

namespace qvliw {

enum class DepKind : std::uint8_t {
  kFlow,       // register value flow (a queue-resident lifetime)
  kMemFlow,    // store -> load order
  kMemAnti,    // load -> store order
  kMemOutput,  // store -> store order
};

[[nodiscard]] std::string_view dep_kind_name(DepKind kind);

struct DepEdge {
  int src = 0;
  int dst = 0;
  int latency = 0;
  int distance = 0;
  DepKind kind = DepKind::kFlow;
  /// For kFlow: index of the consuming operand slot in ops[dst].args.
  int dst_arg = -1;

  [[nodiscard]] bool is_value_flow() const { return kind == DepKind::kFlow; }
};

class Ddg {
 public:
  /// Builds the complete DDG (register flow + memory order) of `loop`.
  [[nodiscard]] static Ddg build(const Loop& loop, const LatencyModel& lat);

  /// Builds the DDG from an already-validated loop and precomputed memory
  /// dependences.  Edge order is identical to build(): flow edges in
  /// (dst op, operand slot) order, then `memdeps` in the given order.
  [[nodiscard]] static Ddg build_from(const Loop& loop, const LatencyModel& lat,
                                      const std::vector<MemDep>& memdeps);

  [[nodiscard]] int node_count() const { return node_count_; }
  [[nodiscard]] int edge_count() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }
  [[nodiscard]] const DepEdge& edge(int e) const { return edges_[static_cast<std::size_t>(e)]; }

  /// Edge indices leaving / entering a node.
  [[nodiscard]] const std::vector<int>& out_edges(int node) const;
  [[nodiscard]] const std::vector<int>& in_edges(int node) const;

  /// Sum of latencies over all nodes (a safe horizon for schedules).
  [[nodiscard]] int total_latency() const { return total_latency_; }

  /// Constructs an empty DDG with `nodes` nodes (used by transforms/tests).
  explicit Ddg(int nodes = 0);

  /// Adds an edge; endpoints must be in range, latency >= 0, distance >= 0.
  void add_edge(DepEdge edge);

 private:
  int node_count_ = 0;
  int total_latency_ = 0;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

/// Structure-of-arrays mirror of a Ddg with CSR adjacency.  Edge ids are
/// identical to the source Ddg's, so `Lifetime.edge` and any diagnostic that
/// names an edge index means the same thing in both representations.  The
/// per-node id lists preserve the Ddg's insertion order (ids ascend within a
/// node).  Hot inner loops (IMS placement, cluster scoring, queue lifetime
/// extraction, FIFO verification) iterate these contiguous arrays instead of
/// chasing vector<vector<int>> + AoS DepEdge pointers.
struct DdgFlat {
  int node_count = 0;

  // Per-edge arrays, indexed by Ddg edge id.
  std::vector<std::int32_t> src;
  std::vector<std::int32_t> dst;
  std::vector<std::int32_t> latency;
  std::vector<std::int32_t> distance;
  std::vector<DepKind> kind;
  std::vector<std::int32_t> dst_arg;

  // CSR adjacency: edge ids leaving node n are out_ids[out_off[n]..out_off[n+1]).
  std::vector<std::int32_t> out_off;
  std::vector<std::int32_t> out_ids;
  std::vector<std::int32_t> in_off;
  std::vector<std::int32_t> in_ids;

  struct IdRange {
    const std::int32_t* first;
    const std::int32_t* last;
    [[nodiscard]] const std::int32_t* begin() const { return first; }
    [[nodiscard]] const std::int32_t* end() const { return last; }
  };

  [[nodiscard]] static DdgFlat from(const Ddg& graph);

  [[nodiscard]] int edge_count() const { return static_cast<int>(src.size()); }
  [[nodiscard]] IdRange out(int node) const {
    return {out_ids.data() + out_off[static_cast<std::size_t>(node)],
            out_ids.data() + out_off[static_cast<std::size_t>(node) + 1]};
  }
  [[nodiscard]] IdRange in(int node) const {
    return {in_ids.data() + in_off[static_cast<std::size_t>(node)],
            in_ids.data() + in_off[static_cast<std::size_t>(node) + 1]};
  }
  [[nodiscard]] bool is_value_flow(int e) const {
    return kind[static_cast<std::size_t>(e)] == DepKind::kFlow;
  }
};

}  // namespace qvliw
