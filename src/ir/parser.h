// Textual loop DSL.
//
// Grammar (comments start with '#'; ';' terminates statements):
//
//   file       := loop+
//   loop       := "loop" IDENT "{" stmt* "}"
//   stmt       := "invariant" IDENT ("," IDENT)* ";"
//              |  "array" IDENT ("," IDENT)* ";"
//              |  "trip" NUMBER ";"
//              |  "stride" NUMBER ";"
//              |  IDENT "=" "load" IDENT "[" index "]" ";"
//              |  "store" IDENT "[" index "]" "," operand ";"
//              |  IDENT "=" MNEMONIC operand ("," operand)* ";"
//   operand    := IDENT ("@" NUMBER)?    -- value (or invariant) reference
//              |  ("-")? NUMBER          -- immediate
//              |  "i" (("+"|"-") NUMBER)?-- loop index
//   index      := "i" (("+"|"-") NUMBER)?
//
// Example:
//   loop fir2 {
//     invariant c0, c1;
//     x0 = load X[i];
//     x1 = load X[i+1];
//     t0 = fmul x0, c0;
//     t1 = fmul x1, c1;
//     s  = fadd t0, t1;
//     acc = fadd acc@1, s;   # loop-carried accumulator
//     store Y[i], s;
//   }
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/loop.h"

namespace qvliw {

/// Parses exactly one loop; throws Error with line/column context.
[[nodiscard]] Loop parse_loop(std::string_view text);

/// Parses a file of one or more loops.
[[nodiscard]] std::vector<Loop> parse_loops(std::string_view text);

}  // namespace qvliw
