// Graph algorithms on the DDG used by MII computation and diagnostics.
#pragma once

#include <vector>

#include "ir/ddg.h"

namespace qvliw {

/// Tarjan strongly-connected components; returns component id per node.
/// Ids are assigned in reverse topological order of the condensation.
[[nodiscard]] std::vector<int> scc_ids(const Ddg& graph);

/// Number of distinct values in scc_ids(graph).
[[nodiscard]] int scc_count(const Ddg& graph);

/// True when the constraint system sigma(dst) >= sigma(src) + lat - ii*dist
/// admits no solution, i.e. some cycle has positive total (lat - ii*dist).
/// Bellman-Ford-style longest-path relaxation; O(V * E).
[[nodiscard]] bool has_positive_cycle(const Ddg& graph, int ii);

/// Generalisation under weights (latency_scale*lat - ii*dist).  With
/// latency_scale = U this decides RecMII feasibility of the U-fold
/// replica lift of `graph` (the DDG of the loop unrolled by U) without
/// materialising it: every circuit of the lifted graph projects to a
/// closed walk of the base graph whose distance sum is U times the lifted
/// one, so lifted feasibility at II is exactly "no base circuit with
/// U*latency > II*distance".
[[nodiscard]] bool has_positive_cycle_scaled(const Ddg& graph, int ii, int latency_scale);

/// An elementary circuit with its latency/distance totals.
struct Circuit {
  std::vector<int> nodes;  // in traversal order
  int latency_sum = 0;
  int distance_sum = 0;

  /// ceil(latency_sum / distance_sum): the II this circuit enforces.
  [[nodiscard]] int min_ii() const;
};

/// Enumerates elementary circuits (Johnson's algorithm), stopping after
/// `max_circuits`.  Self-loops count.  Intended for diagnostics and tests;
/// RecMII itself uses has_positive_cycle.
[[nodiscard]] std::vector<Circuit> elementary_circuits(const Ddg& graph,
                                                       std::size_t max_circuits = 4096);

/// Longest-path "height" of each node to any sink under weights
/// (lat - ii*dist), clamped at >= 0.  Requires !has_positive_cycle(graph,ii).
/// This is the height-based scheduling priority of Rau's IMS.
[[nodiscard]] std::vector<int> height_priority(const Ddg& graph, int ii);

/// Same computation over the flat SoA mirror, writing into `height`'s
/// existing storage (resized to node_count).  Edge order matches Ddg edge
/// ids, so the result is identical to the Ddg overload; this is the
/// allocation-free form the IMS searcher recomputes per II attempt.
void height_priority(const DdgFlat& flat, int ii, std::vector<int>& height);

}  // namespace qvliw
