#include "ir/parser.h"

#include <cctype>
#include <optional>
#include <unordered_map>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {
namespace {

enum class TokenKind { kIdent, kNumber, kPunct, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::int64_t number = 0;
  int line = 0;
  int column = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_space_and_comments();
    Token token;
    token.line = line_;
    token.column = column_;
    if (pos_ >= text_.size()) {
      token.kind = TokenKind::kEnd;
      return token;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        advance();
      }
      token.kind = TokenKind::kIdent;
      token.text = std::string(text_.substr(start, pos_ - start));
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) advance();
      token.kind = TokenKind::kNumber;
      token.text = std::string(text_.substr(start, pos_ - start));
      token.number = std::stoll(token.text);
      return token;
    }
    token.kind = TokenKind::kPunct;
    token.text = std::string(1, c);
    advance();
    return token;
  }

 private:
  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Operand as parsed; name references are resolved after the whole body is
/// read so that forward references at distance > 0 work.
struct PendingOperand {
  enum class Kind { kName, kImmediate, kIndex } kind = Kind::kImmediate;
  std::string name;
  int distance = 0;
  std::int64_t imm = 0;
  int index_offset = 0;
  int line = 0;
};

struct PendingOp {
  Op op;
  std::vector<PendingOperand> pending_args;
  int line = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { shift(); }

  [[nodiscard]] bool at_end() const { return current_.kind == TokenKind::kEnd; }

  Loop parse_one_loop() {
    expect_keyword("loop");
    Loop loop;
    loop.name = expect_ident("loop name");
    expect_punct("{");
    std::vector<PendingOp> body;
    while (!is_punct("}")) {
      parse_statement(loop, body);
    }
    expect_punct("}");
    resolve(loop, body);
    loop.validate();
    return loop;
  }

 private:
  [[noreturn]] void error(std::string_view message) const {
    fail(cat("parse error at line ", current_.line, ", column ", current_.column, ": ", message,
             current_.kind == TokenKind::kEnd ? " (at end of input)"
                                              : cat(" (near '", current_.text, "')")));
  }

  void shift() { current_ = lexer_.next(); }

  [[nodiscard]] bool is_punct(std::string_view p) const {
    return current_.kind == TokenKind::kPunct && current_.text == p;
  }

  [[nodiscard]] bool is_ident(std::string_view word) const {
    return current_.kind == TokenKind::kIdent && current_.text == word;
  }

  void expect_punct(std::string_view p) {
    if (!is_punct(p)) error(cat("expected '", p, "'"));
    shift();
  }

  void expect_keyword(std::string_view word) {
    if (!is_ident(word)) error(cat("expected '", word, "'"));
    shift();
  }

  std::string expect_ident(std::string_view what) {
    if (current_.kind != TokenKind::kIdent) error(cat("expected ", what));
    std::string text = current_.text;
    shift();
    return text;
  }

  std::int64_t expect_number(std::string_view what) {
    if (current_.kind != TokenKind::kNumber) error(cat("expected ", what));
    std::int64_t value = current_.number;
    shift();
    return value;
  }

  /// Parses "i", "i+3", "i-2" after the caller saw '['; stops before ']'.
  int parse_index_offset() {
    expect_keyword("i");
    int offset = 0;
    if (is_punct("+") || is_punct("-")) {
      const bool negative = current_.text == "-";
      shift();
      offset = static_cast<int>(expect_number("index offset"));
      if (negative) offset = -offset;
    }
    return offset;
  }

  PendingOperand parse_operand() {
    PendingOperand out;
    out.line = current_.line;
    if (current_.kind == TokenKind::kNumber) {
      out.kind = PendingOperand::Kind::kImmediate;
      out.imm = expect_number("immediate");
      return out;
    }
    if (is_punct("-")) {
      shift();
      out.kind = PendingOperand::Kind::kImmediate;
      out.imm = -expect_number("immediate");
      return out;
    }
    if (is_ident("i")) {
      shift();
      out.kind = PendingOperand::Kind::kIndex;
      if (is_punct("+") || is_punct("-")) {
        const bool negative = current_.text == "-";
        shift();
        int offset = static_cast<int>(expect_number("index offset"));
        out.index_offset = negative ? -offset : offset;
      }
      return out;
    }
    out.kind = PendingOperand::Kind::kName;
    out.name = expect_ident("operand");
    if (is_punct("@")) {
      shift();
      out.distance = static_cast<int>(expect_number("distance"));
    }
    return out;
  }

  void parse_statement(Loop& loop, std::vector<PendingOp>& body) {
    if (current_.kind != TokenKind::kIdent) error("expected a statement");

    if (is_ident("invariant") || is_ident("array")) {
      const bool invariant = current_.text == "invariant";
      shift();
      while (true) {
        const std::string name = expect_ident("name");
        if (invariant) {
          loop.intern_invariant(name);
        } else {
          loop.intern_array(name);
        }
        if (!is_punct(",")) break;
        shift();
      }
      expect_punct(";");
      return;
    }

    if (is_ident("trip")) {
      shift();
      loop.trip_hint = static_cast<int>(expect_number("trip count"));
      expect_punct(";");
      return;
    }

    if (is_ident("stride")) {
      shift();
      loop.stride = static_cast<int>(expect_number("stride"));
      expect_punct(";");
      return;
    }

    if (is_ident("store")) {
      shift();
      PendingOp pending;
      pending.line = current_.line;
      pending.op.opcode = Opcode::kStore;
      pending.op.array = loop.intern_array(expect_ident("array name"));
      expect_punct("[");
      pending.op.mem_offset = parse_index_offset();
      expect_punct("]");
      expect_punct(",");
      pending.pending_args.push_back(parse_operand());
      expect_punct(";");
      body.push_back(std::move(pending));
      return;
    }

    // IDENT "=" MNEMONIC ...
    PendingOp pending;
    pending.line = current_.line;
    pending.op.name = expect_ident("value name");
    if (pending.op.name == "i") error("'i' is the reserved loop index");
    expect_punct("=");
    const std::string mnemonic = expect_ident("opcode");
    Opcode opcode;
    if (!parse_opcode(mnemonic, opcode)) error(cat("unknown opcode '", mnemonic, "'"));
    if (opcode == Opcode::kStore) error("store does not define a value");
    pending.op.opcode = opcode;

    if (opcode == Opcode::kLoad) {
      pending.op.array = loop.intern_array(expect_ident("array name"));
      expect_punct("[");
      pending.op.mem_offset = parse_index_offset();
      expect_punct("]");
    } else {
      const int arity = operand_count(opcode);
      for (int a = 0; a < arity; ++a) {
        if (a != 0) expect_punct(",");
        pending.pending_args.push_back(parse_operand());
      }
    }
    expect_punct(";");
    body.push_back(std::move(pending));
  }

  /// Resolves name operands against value definitions and invariants.
  void resolve(Loop& loop, std::vector<PendingOp>& body) {
    std::unordered_map<std::string, int> defs;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i].op.defines_value()) {
        if (!defs.emplace(body[i].op.name, static_cast<int>(i)).second) {
          fail(cat("parse error at line ", body[i].line, ": duplicate value name '",
                   body[i].op.name, "'"));
        }
      }
    }
    for (auto& pending : body) {
      for (const PendingOperand& arg : pending.pending_args) {
        switch (arg.kind) {
          case PendingOperand::Kind::kImmediate:
            pending.op.args.push_back(Operand::immediate(arg.imm));
            break;
          case PendingOperand::Kind::kIndex:
            pending.op.args.push_back(Operand::index(arg.index_offset));
            break;
          case PendingOperand::Kind::kName: {
            auto def = defs.find(arg.name);
            if (def != defs.end()) {
              pending.op.args.push_back(Operand::value(def->second, arg.distance));
              break;
            }
            // Not a value: must be a declared invariant (distance illegal).
            int inv = -1;
            for (std::size_t k = 0; k < loop.invariants.size(); ++k) {
              if (loop.invariants[k] == arg.name) inv = static_cast<int>(k);
            }
            if (inv < 0) {
              fail(cat("parse error at line ", arg.line, ": use of undefined name '", arg.name,
                       "' (values must be defined in the body; invariants must be declared)"));
            }
            if (arg.distance != 0) {
              fail(cat("parse error at line ", arg.line, ": invariant '", arg.name,
                       "' cannot carry a distance"));
            }
            pending.op.args.push_back(Operand::invariant_ref(inv));
            break;
          }
        }
      }
      loop.add_op(std::move(pending.op));
    }
  }

  Lexer lexer_;
  Token current_;
};

}  // namespace

Loop parse_loop(std::string_view text) {
  Parser parser(text);
  Loop loop = parser.parse_one_loop();
  check(parser.at_end(), "parse error: trailing input after loop");
  return loop;
}

std::vector<Loop> parse_loops(std::string_view text) {
  Parser parser(text);
  std::vector<Loop> loops;
  while (!parser.at_end()) loops.push_back(parser.parse_one_loop());
  check(!loops.empty(), "parse error: no loops in input");
  return loops;
}

}  // namespace qvliw
