#include "ir/dot.h"

#include <sstream>

#include "ir/printer.h"

namespace qvliw {

std::string to_dot(const Loop& loop, const Ddg& graph) {
  std::ostringstream os;
  os << "digraph \"" << loop.name << "\" {\n";
  os << "  node [shape=box, fontname=\"monospace\"];\n";
  for (int v = 0; v < loop.op_count(); ++v) {
    const Op& op = loop.ops[static_cast<std::size_t>(v)];
    os << "  n" << v << " [label=\"#" << v << " " << op_text(loop, op) << "\"];\n";
  }
  for (const DepEdge& e : graph.edges()) {
    os << "  n" << e.src << " -> n" << e.dst << " [";
    if (e.kind != DepKind::kFlow) os << "style=dashed, ";
    os << "label=\"" << dep_kind_name(e.kind) << " l" << e.latency;
    if (e.distance != 0) os << " d" << e.distance;
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace qvliw
