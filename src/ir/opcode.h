// Operation set of the loop IR.
//
// The IR models the operation repertoire the paper's machine executes:
// memory accesses (handled by the L/S unit with implicit address
// generation), integer and floating-point arithmetic (ADD- and MUL-class
// units), and the two data-movement operations the paper introduces for
// queue register files: `copy` (one pop, up to two pushes — Section 2) and
// `move` (one pop, one push; the future-work inter-cluster transfer that
// our extension implements).
//
// Arithmetic is evaluated over int64 regardless of the nominal int/float
// flavour: the flavours exist to exercise different latencies and FU
// classes, while exact integer semantics keep simulator-vs-reference
// equivalence checks bit-precise.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace qvliw {

enum class Opcode : std::uint8_t {
  kLoad,   // r = load A[i+k]
  kStore,  // store A[i+k], v
  kAdd,    // integer add
  kSub,    // integer subtract
  kMul,    // integer multiply
  kDiv,    // integer divide (guarded: x/0 == 0)
  kFAdd,   // "float" add (int64 semantics, FP latency)
  kFSub,
  kFMul,
  kFDiv,
  kCopy,  // queue fan-out: one input value, consumable by up to two readers
  kMove,  // inter-cluster transfer: one input, one reader
};

inline constexpr int kNumOpcodes = 12;

/// Mnemonic used by the DSL and printers ("load", "fmul", ...).
[[nodiscard]] std::string_view opcode_name(Opcode opcode);

/// Parses a mnemonic; returns false when `text` is not an opcode.
[[nodiscard]] bool parse_opcode(std::string_view text, Opcode& out);

/// True for kLoad/kStore.
[[nodiscard]] constexpr bool is_memory(Opcode opcode) {
  return opcode == Opcode::kLoad || opcode == Opcode::kStore;
}

/// True for every opcode that produces a value (everything but kStore).
[[nodiscard]] constexpr bool defines_value(Opcode opcode) { return opcode != Opcode::kStore; }

/// Number of explicit operands the opcode takes.
[[nodiscard]] constexpr int operand_count(Opcode opcode) {
  switch (opcode) {
    case Opcode::kLoad:
      return 0;
    case Opcode::kStore:
    case Opcode::kCopy:
    case Opcode::kMove:
      return 1;
    default:
      return 2;
  }
}

/// Per-opcode result latency in cycles.
struct LatencyModel {
  std::array<int, kNumOpcodes> latency{};

  [[nodiscard]] int of(Opcode opcode) const {
    return latency[static_cast<std::size_t>(opcode)];
  }

  /// The model used throughout the experiments: load 2, store 1, int
  /// add/sub 1, int mul 3, div 8, FP add/sub 2, FP mul 3, FP div 8,
  /// copy/move 1 — in line with the era's VLIW literature (Rau's IMS
  /// studies and the Cydra-5 family the paper builds on).
  [[nodiscard]] static LatencyModel classic();

  /// Unit latency for every opcode (useful in tests).
  [[nodiscard]] static LatencyModel unit();
};

}  // namespace qvliw
