// Memory dependence derivation for affine array references.
//
// All memory references have the form A[stride*i + offset].  Two references
// to the same array alias when their offsets differ by a multiple of the
// stride; the multiple is the dependence distance.  References to distinct
// arrays never alias (arrays are independent storage in this IR).
//
// Memory-order edges all carry latency 1: the simulator defines a store to
// be visible to any access issued at a strictly later cycle, so a one-cycle
// separation is necessary and sufficient for every flavour (flow, anti,
// output).
#pragma once

#include <vector>

#include "ir/loop.h"

namespace qvliw {

enum class MemDepKind : std::uint8_t {
  kFlow,    // store -> load
  kAnti,    // load -> store
  kOutput,  // store -> store
};

struct MemDep {
  int src = 0;       // op index issued in the earlier (or same) iteration
  int dst = 0;       // op index `distance` iterations later
  int distance = 0;  // >= 0; 0 means program order within an iteration
  MemDepKind kind = MemDepKind::kFlow;

  friend bool operator==(const MemDep&, const MemDep&) = default;
};

/// Default dependence-distance cutoff (see memory_dependences).  Named so
/// clients reasoning about the cutoff — the incremental unroll prober's
/// exactness gate in xform/unroll.h — share one value with the analysis.
inline constexpr int kMemDepMaxDistance = 64;

/// Computes all pairwise memory dependences of `loop`.
///
/// Distances larger than `max_distance` are dropped: a dependence spanning
/// that many iterations cannot constrain a modulo schedule whose span is
/// far smaller, and dropping the bound keeps edge counts quadratic-free for
/// wide unrolled loops.  The default keeps everything relevant for the
/// paper's workloads.
[[nodiscard]] std::vector<MemDep> memory_dependences(const Loop& loop,
                                                     int max_distance = kMemDepMaxDistance);

}  // namespace qvliw
