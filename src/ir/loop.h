// Loop intermediate representation.
//
// A `Loop` is the body of a counted innermost loop in a renamed,
// SSA-flavoured form: every operation defines at most one named value, and
// operands refer to values by defining operation plus an iteration
// *distance* (`x@1` = the instance of x produced one iteration earlier).
// Memory is addressed through named arrays with affine stride-1 indices
// `A[i + offset]`; after unrolling the loop carries a `stride` so index
// `i` denotes `stride * iteration + offset`.
//
// Loop-carried register dependences are explicit via distances, so the
// register-level DDG follows directly from operands; memory-level
// dependences are derived in memdep.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.h"

namespace qvliw {

/// One operand of an operation.
struct Operand {
  enum class Kind : std::uint8_t {
    kValue,      // result of another op, `distance` iterations ago
    kInvariant,  // loop invariant (kept in a register/immediate by default)
    kImmediate,  // literal constant
    kIndex,      // loop index: stride * iteration + index_offset
  };

  Kind kind = Kind::kImmediate;
  int value_op = -1;        // kValue: index of the defining op in Loop::ops
  int distance = 0;         // kValue: iterations ago (>= 0)
  int invariant = -1;       // kInvariant: index into Loop::invariants
  std::int64_t imm = 0;     // kImmediate
  int index_offset = 0;     // kIndex

  [[nodiscard]] static Operand value(int op, int dist = 0);
  [[nodiscard]] static Operand invariant_ref(int inv);
  [[nodiscard]] static Operand immediate(std::int64_t value);
  [[nodiscard]] static Operand index(int offset = 0);

  [[nodiscard]] bool is_value() const { return kind == Kind::kValue; }

  friend bool operator==(const Operand&, const Operand&) = default;
};

/// One operation of the loop body.
struct Op {
  Opcode opcode = Opcode::kAdd;
  std::string name;            // result name; empty iff opcode == kStore
  std::vector<Operand> args;   // arity per operand_count(opcode)
  int array = -1;              // memory ops: index into Loop::arrays
  int mem_offset = 0;          // memory ops: A[stride*i + mem_offset]

  /// Live-in binding: when an operand reads this op's value from before
  /// iteration 0 (distance > iteration), the out-of-range instance is 0 by
  /// convention — unless init_invariant >= 0, in which case it is that
  /// invariant's value.  Set by the invariant-recirculation transform.
  int init_invariant = -1;

  [[nodiscard]] bool defines_value() const { return qvliw::defines_value(opcode); }
};

/// A counted innermost loop body.
class Loop {
 public:
  std::string name = "loop";
  int stride = 1;       // index stride (1 originally; U after unrolling by U)
  int trip_hint = 100;  // default trip count for dynamic analyses
  std::vector<std::string> invariants;
  std::vector<std::string> arrays;
  std::vector<Op> ops;

  /// Appends `op`, returning its index.
  int add_op(Op op);

  /// Index of the op defining `value_name`, or -1.
  [[nodiscard]] int find_value(std::string_view value_name) const;

  /// Adds (or finds) an array by name; returns its index.
  int intern_array(std::string_view array_name);

  /// Adds (or finds) an invariant by name; returns its index.
  int intern_invariant(std::string_view invariant_name);

  [[nodiscard]] int op_count() const { return static_cast<int>(ops.size()); }

  /// Largest operand distance in the body (0 when loop-independent).
  [[nodiscard]] int max_distance() const;

  /// Number of operand slots that read values (queue pops per iteration).
  [[nodiscard]] int value_use_count() const;

  /// Number of uses of the value defined by op `def` (operand instances).
  [[nodiscard]] int use_count(int def) const;

  /// Deterministic structural hash of the whole loop: hash_bytes over
  /// serialize_loop's blob, so the hash and the serialization share one
  /// schema walker (a field added to Op/Operand is either in both or in
  /// neither).  Stable across processes and platforms, so it can key
  /// persistent content-addressed artifact stores; equal hashes mean the
  /// loops are interchangeable inputs for the compilation pipeline.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Structural validation; throws Error with a description on violation.
  ///
  /// Rules: unique non-empty names for value-defining ops; stores unnamed;
  /// operand arity matches opcode; value operands reference value-defining
  /// ops with distance >= 0, and distance-0 references respect program
  /// order; memory ops carry a valid array, non-memory ops none;
  /// stride >= 1.
  void validate() const;
};

class BlobReader;
class BlobWriter;

/// Serialises `loop` into the portable blob format
/// (support/artifact_store.h) — the single schema walker shared by
/// content_hash and the persistent artifact store.
void serialize_loop(BlobWriter& out, const Loop& loop);

/// Inverse of serialize_loop; throws Error on truncation.  The result is
/// *not* validated — run Loop::validate (or Ddg::build, which does) before
/// trusting a deserialised loop.
[[nodiscard]] Loop deserialize_loop(BlobReader& in);

}  // namespace qvliw
