#include "ir/printer.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {
std::string index_text(int offset) {
  if (offset == 0) return "i";
  if (offset > 0) return cat("i+", offset);
  return cat("i-", -offset);
}
}  // namespace

std::string operand_text(const Loop& loop, const Operand& operand) {
  switch (operand.kind) {
    case Operand::Kind::kValue: {
      const Op& def = loop.ops[static_cast<std::size_t>(operand.value_op)];
      if (operand.distance == 0) return def.name;
      return cat(def.name, "@", operand.distance);
    }
    case Operand::Kind::kInvariant:
      return loop.invariants[static_cast<std::size_t>(operand.invariant)];
    case Operand::Kind::kImmediate:
      return std::to_string(operand.imm);
    case Operand::Kind::kIndex:
      return index_text(operand.index_offset);
  }
  QVLIW_ASSERT(false, "bad operand kind");
}

std::string op_text(const Loop& loop, const Op& op) {
  std::ostringstream os;
  if (op.opcode == Opcode::kStore) {
    os << "store " << loop.arrays[static_cast<std::size_t>(op.array)] << "["
       << index_text(op.mem_offset) << "], " << operand_text(loop, op.args[0]);
    return os.str();
  }
  os << op.name << " = " << opcode_name(op.opcode);
  if (op.opcode == Opcode::kLoad) {
    os << ' ' << loop.arrays[static_cast<std::size_t>(op.array)] << "[" << index_text(op.mem_offset)
       << "]";
    return os.str();
  }
  for (std::size_t a = 0; a < op.args.size(); ++a) {
    os << (a == 0 ? " " : ", ") << operand_text(loop, op.args[a]);
  }
  return os.str();
}

std::string to_text(const Loop& loop) {
  std::ostringstream os;
  os << "loop " << loop.name << " {\n";
  if (!loop.invariants.empty()) {
    os << "  invariant ";
    for (std::size_t i = 0; i < loop.invariants.size(); ++i) {
      os << (i == 0 ? "" : ", ") << loop.invariants[i];
    }
    os << ";\n";
  }
  os << "  trip " << loop.trip_hint << ";\n";
  if (loop.stride != 1) os << "  stride " << loop.stride << ";\n";
  for (const Op& op : loop.ops) {
    os << "  " << op_text(loop, op) << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace qvliw
