// Graphviz export of loops and their dependence graphs.
#pragma once

#include <string>

#include "ir/ddg.h"
#include "ir/loop.h"

namespace qvliw {

/// Renders the DDG as a `digraph`; flow edges solid, memory edges dashed,
/// loop-carried edges annotated with their distance.
[[nodiscard]] std::string to_dot(const Loop& loop, const Ddg& graph);

}  // namespace qvliw
