// Sequential reference interpreter.
//
// Executes the loop body iteration by iteration in program order — the
// golden semantics every transformed/scheduled/simulated variant must
// reproduce.  Loop-carried reads (`v@d`) before iteration d resolve to 0,
// or to the invariant's value when the defining op carries a live-in
// binding (Op::init_invariant).
#pragma once

#include <cstdint>

#include "ir/loop.h"
#include "sim/memory.h"

namespace qvliw {

struct InterpResult {
  MemoryImage memory;
  long long ops_executed = 0;
};

/// Runs `trip` iterations against a fresh memory image derived from `seed`.
[[nodiscard]] InterpResult interpret(const Loop& loop, long long trip, std::uint64_t seed);

/// Memory footprint in elements for `trip` iterations of `loop`
/// (stride * trip; unrolling-invariant).
[[nodiscard]] long long memory_elements(const Loop& loop, long long trip);

}  // namespace qvliw
