#include "sim/interp.h"

#include "sim/eval.h"
#include "support/diagnostics.h"

namespace qvliw {

long long memory_elements(const Loop& loop, long long trip) {
  return static_cast<long long>(loop.stride) * trip;
}

InterpResult interpret(const Loop& loop, long long trip, std::uint64_t seed) {
  loop.validate();
  check(trip >= 1, "interpret: trip must be >= 1");

  const int n = loop.op_count();
  const int max_dist = loop.max_distance();

  InterpResult result{
      MemoryImage(static_cast<int>(loop.arrays.size()), memory_elements(loop, trip), seed), 0};

  // history[op][d-1] = value d iterations ago (d in [1, max_dist]).
  std::vector<std::vector<std::int64_t>> history(
      static_cast<std::size_t>(n),
      std::vector<std::int64_t>(static_cast<std::size_t>(max_dist), 0));
  std::vector<std::int64_t> current(static_cast<std::size_t>(n), 0);

  auto init_value = [&](int op) -> std::int64_t {
    const int inv = loop.ops[static_cast<std::size_t>(op)].init_invariant;
    return inv >= 0 ? invariant_value(seed, inv) : 0;
  };

  for (long long j = 0; j < trip; ++j) {
    for (int v = 0; v < n; ++v) {
      const Op& op = loop.ops[static_cast<std::size_t>(v)];
      auto operand = [&](const Operand& arg) -> std::int64_t {
        switch (arg.kind) {
          case Operand::Kind::kValue: {
            if (arg.distance == 0) return current[static_cast<std::size_t>(arg.value_op)];
            if (arg.distance > j) return init_value(arg.value_op);
            return history[static_cast<std::size_t>(arg.value_op)]
                          [static_cast<std::size_t>(arg.distance - 1)];
          }
          case Operand::Kind::kInvariant:
            return invariant_value(seed, arg.invariant);
          case Operand::Kind::kImmediate:
            return arg.imm;
          case Operand::Kind::kIndex:
            return static_cast<std::int64_t>(loop.stride) * j + arg.index_offset;
        }
        QVLIW_ASSERT(false, "bad operand kind");
      };

      switch (op.opcode) {
        case Opcode::kLoad:
          current[static_cast<std::size_t>(v)] =
              result.memory.load(op.array, static_cast<long long>(loop.stride) * j + op.mem_offset);
          break;
        case Opcode::kStore:
          result.memory.store(op.array, static_cast<long long>(loop.stride) * j + op.mem_offset,
                              operand(op.args[0]));
          break;
        case Opcode::kCopy:
        case Opcode::kMove:
          current[static_cast<std::size_t>(v)] = operand(op.args[0]);
          break;
        default:
          current[static_cast<std::size_t>(v)] =
              eval_arith(op.opcode, operand(op.args[0]), operand(op.args[1]));
      }
      ++result.ops_executed;
    }
    // Age the histories.
    if (max_dist > 0) {
      for (int v = 0; v < n; ++v) {
        auto& h = history[static_cast<std::size_t>(v)];
        for (int d = max_dist - 1; d >= 1; --d) h[static_cast<std::size_t>(d)] = h[static_cast<std::size_t>(d - 1)];
        h[0] = current[static_cast<std::size_t>(v)];
      }
    }
  }
  return result;
}

}  // namespace qvliw
