// Cycle-accurate simulator of the clustered VLIW machine with queue
// register files.
//
// Executes a complete modulo schedule instance-by-instance: iteration j of
// op v issues at sigma(v) + j*II, pops one queue per value operand (FIFO,
// tag-checked), computes with the shared eval semantics, and pushes its
// result into the queue of each consuming flow edge `latency` cycles
// later.  Port discipline is enforced: at most one push and one pop per
// queue per cycle (pushes land at the start of a cycle, pops read at the
// end, so zero-residency bypass works).
//
// Loop-carried live-ins (operand distance d > iteration) are injected at
// the cycle the steady-state pattern implies ("as-if-warm" prologue),
// with the value the reference interpreter defines (0, or the bound
// invariant).  Injections are exempt from the write-port check — they
// model setup code, not kernel issue slots.
//
// Symmetrically, a lifetime of distance d leaves d tail instances with no
// consuming iteration; the epilogue of real modulo-scheduled code still
// executes those consumer reads (with their side effects predicated off),
// so the simulator issues *drain pops* at the steady-state pop cycles.
// Drain pops are tag-checked like any pop: a queue whose tail values
// blocked another lifetime's pops is still detected.
//
// The simulator is the end-to-end oracle of the library: a run is `ok`
// only if every pop returned exactly the expected producer instance and
// no port or capacity rule broke; `simulate_and_check` additionally
// demands bit-identical final memory against the sequential interpreter.
#pragma once

#include <cstdint>
#include <string>

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"
#include "qrf/queue_alloc.h"
#include "sched/schedule.h"
#include "sim/memory.h"

namespace qvliw {

struct SimOptions {
  std::uint64_t seed = 0x5eedULL;
  /// Fail when a queue's occupancy exceeds its domain's configured depth.
  bool enforce_depth = false;
};

struct SimResult {
  bool ok = false;
  std::string failure;
  MemoryImage memory = MemoryImage(0, 0, 0);
  long long cycles = 0;          // (trip-1)*II + schedule span
  long long issues = 0;          // op instances issued
  long long useful_issues = 0;   // excluding copy/move instances
  long long pushes = 0;          // queue write operations (incl. live-ins)
  long long pops = 0;            // queue read operations
  int max_queue_occupancy = 0;   // deepest queue observed
  double dynamic_ipc = 0.0;      // useful_issues / cycles
};

[[nodiscard]] SimResult simulate(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                                 const Schedule& schedule, const QueueAllocation& allocation,
                                 long long trip, const SimOptions& options = {});

struct CheckedSim {
  bool ok = false;
  std::string failure;
  SimResult sim;
};

/// Simulates and compares final memory bit-for-bit against the sequential
/// reference interpreter run with the same trip and seed.
[[nodiscard]] CheckedSim simulate_and_check(const Loop& loop, const Ddg& graph,
                                            const MachineConfig& machine,
                                            const Schedule& schedule,
                                            const QueueAllocation& allocation, long long trip,
                                            const SimOptions& options = {});

}  // namespace qvliw
