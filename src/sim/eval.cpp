#include "sim/eval.h"

#include <limits>

#include "support/diagnostics.h"
#include "support/rng.h"

namespace qvliw {

std::int64_t eval_arith(Opcode opcode, std::int64_t lhs, std::int64_t rhs) {
  const auto ul = static_cast<std::uint64_t>(lhs);
  const auto ur = static_cast<std::uint64_t>(rhs);
  switch (opcode) {
    case Opcode::kAdd:
    case Opcode::kFAdd:
      return static_cast<std::int64_t>(ul + ur);
    case Opcode::kSub:
    case Opcode::kFSub:
      return static_cast<std::int64_t>(ul - ur);
    case Opcode::kMul:
    case Opcode::kFMul:
      return static_cast<std::int64_t>(ul * ur);
    case Opcode::kDiv:
    case Opcode::kFDiv:
      if (rhs == 0) return 0;
      if (lhs == std::numeric_limits<std::int64_t>::min() && rhs == -1) return lhs;
      return lhs / rhs;
    default:
      fail("eval_arith: not an arithmetic opcode");
  }
}

std::int64_t initial_array_value(std::uint64_t seed, int array, long long index) {
  const std::uint64_t h = hash_combine(hash_combine(seed, static_cast<std::uint64_t>(array) + 1),
                                       static_cast<std::uint64_t>(index + 0x10000));
  // Keep magnitudes modest so intermediate products stay readable in dumps
  // (semantics are wrapping either way).
  return static_cast<std::int64_t>(h % 65521) - 32760;
}

std::int64_t invariant_value(std::uint64_t seed, int invariant) {
  const std::uint64_t h = hash_combine(seed ^ 0x9e3779b97f4a7c15ULL,
                                       static_cast<std::uint64_t>(invariant) + 17);
  return static_cast<std::int64_t>(h % 251) - 125;
}

}  // namespace qvliw
