#include "sim/vliwsim.h"

#include <algorithm>
#include <deque>
#include <map>

#include "sim/eval.h"
#include "sim/interp.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {

struct QueueEntry {
  int producer = -1;
  long long iteration = 0;
  std::int64_t value = 0;
};

struct PushEvent {
  int queue = -1;
  QueueEntry entry;
  bool live_in = false;
};

class Simulator {
 public:
  Simulator(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
            const Schedule& schedule, const QueueAllocation& allocation, long long trip,
            const SimOptions& options)
      : loop_(loop),
        graph_(graph),
        machine_(machine),
        schedule_(schedule),
        allocation_(allocation),
        trip_(trip),
        options_(options),
        result_{} {
    result_.memory = MemoryImage(static_cast<int>(loop.arrays.size()),
                                 memory_elements(loop, trip), options.seed);
  }

  SimResult run() {
    check(trip_ >= 1, "simulate: trip must be >= 1");
    check(schedule_.complete(), "simulate: incomplete schedule");
    check(loop_.op_count() == graph_.node_count(), "simulate: loop/DDG mismatch");

    build_edge_tables();
    schedule_live_ins();
    schedule_drain_pops();
    schedule_issues();

    queues_.assign(allocation_.queues.size(), {});
    depth_limit_.assign(allocation_.queues.size(), 0);
    for (std::size_t q = 0; q < allocation_.queues.size(); ++q) {
      const QueueDomain& domain = allocation_.queues[q].domain;
      depth_limit_[q] = domain.kind == QueueDomain::Kind::kPrivate
                            ? machine_.cluster(domain.index).queue_depth
                            : machine_.segment.queue_depth;
    }

    for (long long t = t_min_; t <= t_max_ && failure_.empty(); ++t) {
      step(t);
    }

    const LatencyModel& lat = machine_.latency;
    result_.cycles = schedule_.total_cycles(loop_, lat, trip_);
    result_.dynamic_ipc = result_.cycles > 0
                              ? static_cast<double>(result_.useful_issues) /
                                    static_cast<double>(result_.cycles)
                              : 0.0;
    result_.ok = failure_.empty();
    result_.failure = failure_;
    return std::move(result_);
  }

 private:
  void fail_sim(std::string message) {
    if (failure_.empty()) failure_ = std::move(message);
  }

  /// (dst op, dst arg) -> flow edge, and flow edge -> queue.
  void build_edge_tables() {
    edge_of_arg_.assign(static_cast<std::size_t>(graph_.node_count()), {});
    for (int v = 0; v < graph_.node_count(); ++v) {
      edge_of_arg_[static_cast<std::size_t>(v)].assign(
          loop_.ops[static_cast<std::size_t>(v)].args.size(), -1);
    }
    queue_of_edge_.assign(static_cast<std::size_t>(graph_.edge_count()), -1);
    for (std::size_t lt = 0; lt < allocation_.lifetimes.size(); ++lt) {
      const Lifetime& lifetime = allocation_.lifetimes[lt];
      queue_of_edge_[static_cast<std::size_t>(lifetime.edge)] =
          allocation_.queue_of[lt];
    }
    for (int e = 0; e < graph_.edge_count(); ++e) {
      const DepEdge& edge = graph_.edge(e);
      if (!edge.is_value_flow()) continue;
      check(queue_of_edge_[static_cast<std::size_t>(e)] >= 0,
            "simulate: flow edge without an allocated queue");
      edge_of_arg_[static_cast<std::size_t>(edge.dst)][static_cast<std::size_t>(edge.dst_arg)] = e;
    }
  }

  [[nodiscard]] std::int64_t init_value(int op) const {
    const int inv = loop_.ops[static_cast<std::size_t>(op)].init_invariant;
    return inv >= 0 ? invariant_value(options_.seed, inv) : 0;
  }

  void schedule_live_ins() {
    const int ii = schedule_.ii();
    t_min_ = 0;
    t_max_ = schedule_.total_cycles(loop_, machine_.latency, trip_);
    for (const Lifetime& lifetime : allocation_.lifetimes) {
      const DepEdge& edge = graph_.edge(lifetime.edge);
      for (int k = -edge.distance; k < 0; ++k) {
        const long long when = lifetime.push + static_cast<long long>(k) * ii;
        t_min_ = std::min(t_min_, when);
        PushEvent event;
        event.queue = queue_of_edge_[static_cast<std::size_t>(lifetime.edge)];
        event.entry = {edge.src, k, init_value(edge.src)};
        event.live_in = true;
        pending_pushes_[when].push_back(event);
      }
    }
  }

  /// Epilogue reads: consumer instances j in [trip, trip+d) pop producer
  /// instance j-d (possibly a live-in) and discard the value.
  void schedule_drain_pops() {
    const int ii = schedule_.ii();
    for (const Lifetime& lifetime : allocation_.lifetimes) {
      const DepEdge& edge = graph_.edge(lifetime.edge);
      for (long long j = trip_; j < trip_ + edge.distance; ++j) {
        const long long k = j - edge.distance;
        const long long when = lifetime.pop + k * ii;
        t_max_ = std::max(t_max_, when);
        drain_pops_[when].push_back(
            {queue_of_edge_[static_cast<std::size_t>(lifetime.edge)], edge.src, k});
      }
    }
  }

  void schedule_issues() {
    const int ii = schedule_.ii();
    for (long long j = 0; j < trip_; ++j) {
      for (int v = 0; v < loop_.op_count(); ++v) {
        issues_[schedule_.cycle(v) + j * ii].push_back({v, j});
      }
    }
  }

  void step(long long t) {
    // Pushes land at the start of the cycle.
    if (auto it = pending_pushes_.find(t); it != pending_pushes_.end()) {
      std::map<int, int> port_use;
      for (const PushEvent& event : it->second) {
        if (!event.live_in && ++port_use[event.queue] > 1) {
          fail_sim(cat("two pushes into queue ", event.queue, " at cycle ", t));
          return;
        }
        queues_[static_cast<std::size_t>(event.queue)].push_back(event.entry);
        ++result_.pushes;
        const int occupancy =
            static_cast<int>(queues_[static_cast<std::size_t>(event.queue)].size());
        result_.max_queue_occupancy = std::max(result_.max_queue_occupancy, occupancy);
        if (options_.enforce_depth &&
            occupancy > depth_limit_[static_cast<std::size_t>(event.queue)]) {
          fail_sim(cat("queue ", event.queue, " exceeded depth ",
                       depth_limit_[static_cast<std::size_t>(event.queue)], " at cycle ", t));
          return;
        }
      }
      pending_pushes_.erase(it);
    }

    // Issues pop operands at the end of the cycle and compute.
    std::map<int, int> pop_port_use;
    if (const auto issue_it = issues_.find(t); issue_it != issues_.end()) {
      for (const auto& [v, j] : issue_it->second) {
        issue(v, j, t, pop_port_use);
        if (!failure_.empty()) return;
      }
    }
    // Epilogue drain reads share the cycle's pop ports.
    if (const auto drain_it = drain_pops_.find(t); drain_it != drain_pops_.end()) {
      for (const auto& [queue, producer, iteration] : drain_it->second) {
        if (++pop_port_use[queue] > 1) {
          fail_sim(cat("two pops from queue ", queue, " at cycle ", t, " (drain)"));
          return;
        }
        auto& fifo = queues_[static_cast<std::size_t>(queue)];
        if (fifo.empty()) {
          fail_sim(cat("drain pop on empty queue ", queue, " at cycle ", t));
          return;
        }
        const QueueEntry front = fifo.front();
        fifo.pop_front();
        ++result_.pops;
        if (front.producer != producer || front.iteration != iteration) {
          fail_sim(cat("FIFO order broken in queue ", queue, " during drain at cycle ", t,
                       ": expected (", producer, ",", iteration, ") but popped (", front.producer,
                       ",", front.iteration, ")"));
          return;
        }
      }
    }
  }

  void issue(int v, long long j, long long t, std::map<int, int>& pop_port_use) {
    const Op& op = loop_.ops[static_cast<std::size_t>(v)];

    std::int64_t in[2] = {0, 0};
    for (std::size_t a = 0; a < op.args.size(); ++a) {
      const Operand& arg = op.args[a];
      switch (arg.kind) {
        case Operand::Kind::kValue: {
          const int e = edge_of_arg_[static_cast<std::size_t>(v)][a];
          QVLIW_ASSERT(e >= 0, "value operand without a flow edge");
          const int q = queue_of_edge_[static_cast<std::size_t>(e)];
          if (++pop_port_use[q] > 1) {
            fail_sim(cat("two pops from queue ", q, " at cycle ", t));
            return;
          }
          auto& fifo = queues_[static_cast<std::size_t>(q)];
          if (fifo.empty()) {
            fail_sim(cat("op ", v, " iteration ", j, " popped empty queue ", q, " at cycle ", t));
            return;
          }
          const QueueEntry front = fifo.front();
          fifo.pop_front();
          ++result_.pops;
          if (front.producer != arg.value_op || front.iteration != j - arg.distance) {
            fail_sim(cat("FIFO order broken in queue ", q, ": op ", v, " iteration ", j,
                         " expected (", arg.value_op, ",", j - arg.distance, ") but popped (",
                         front.producer, ",", front.iteration, ")"));
            return;
          }
          in[a] = front.value;
          break;
        }
        case Operand::Kind::kInvariant:
          in[a] = invariant_value(options_.seed, arg.invariant);
          break;
        case Operand::Kind::kImmediate:
          in[a] = arg.imm;
          break;
        case Operand::Kind::kIndex:
          in[a] = static_cast<std::int64_t>(loop_.stride) * j + arg.index_offset;
          break;
      }
    }

    std::int64_t value = 0;
    switch (op.opcode) {
      case Opcode::kLoad:
        value = result_.memory.load(op.array, static_cast<long long>(loop_.stride) * j + op.mem_offset);
        break;
      case Opcode::kStore:
        result_.memory.store(op.array, static_cast<long long>(loop_.stride) * j + op.mem_offset,
                             in[0]);
        break;
      case Opcode::kCopy:
      case Opcode::kMove:
        value = in[0];
        break;
      default:
        value = eval_arith(op.opcode, in[0], in[1]);
    }

    ++result_.issues;
    if (op.opcode != Opcode::kCopy && op.opcode != Opcode::kMove) ++result_.useful_issues;

    if (!op.defines_value()) return;
    const int lat = machine_.latency.of(op.opcode);
    for (int e : graph_.out_edges(v)) {
      const DepEdge& edge = graph_.edge(e);
      if (!edge.is_value_flow()) continue;
      // Only instances whose consumer exists are pushed... except live-outs
      // drain naturally; hardware pushes regardless, so we do too.
      PushEvent event;
      event.queue = queue_of_edge_[static_cast<std::size_t>(e)];
      event.entry = {v, j, value};
      pending_pushes_[t + lat].push_back(event);
    }
  }

  const Loop& loop_;
  const Ddg& graph_;
  const MachineConfig& machine_;
  const Schedule& schedule_;
  const QueueAllocation& allocation_;
  const long long trip_;
  const SimOptions options_;

  SimResult result_;
  std::string failure_;
  long long t_min_ = 0;
  long long t_max_ = 0;
  std::vector<std::vector<int>> edge_of_arg_;
  std::vector<int> queue_of_edge_;
  std::vector<std::deque<QueueEntry>> queues_;
  std::vector<int> depth_limit_;
  std::map<long long, std::vector<PushEvent>> pending_pushes_;
  std::map<long long, std::vector<std::pair<int, long long>>> issues_;
  struct DrainPop {
    int queue;
    int producer;
    long long iteration;
  };
  std::map<long long, std::vector<DrainPop>> drain_pops_;
};

}  // namespace

SimResult simulate(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                   const Schedule& schedule, const QueueAllocation& allocation, long long trip,
                   const SimOptions& options) {
  Simulator simulator(loop, graph, machine, schedule, allocation, trip, options);
  return simulator.run();
}

CheckedSim simulate_and_check(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                              const Schedule& schedule, const QueueAllocation& allocation,
                              long long trip, const SimOptions& options) {
  CheckedSim out;
  out.sim = simulate(loop, graph, machine, schedule, allocation, trip, options);
  if (!out.sim.ok) {
    out.failure = cat("simulation failed: ", out.sim.failure);
    return out;
  }
  const InterpResult reference = interpret(loop, trip, options.seed);
  if (!(reference.memory == out.sim.memory)) {
    const auto [array, index] = reference.memory.first_difference(out.sim.memory);
    out.failure = cat("memory mismatch vs reference at array ", array, " index ", index);
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace qvliw
