#include "sim/codegen.h"

#include <sstream>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

namespace {

std::string index_expr(const Loop& loop, int offset) {
  (void)loop;
  if (offset == 0) return "i";
  return offset > 0 ? cat("i+", offset) : cat("i-", -offset);
}

/// Queue feeding operand slot (dst, arg), or -1 for non-value operands.
class QueueLookup {
 public:
  QueueLookup(const Loop& loop, const Ddg& graph, const QueueAllocation& allocation) {
    queue_of_arg_.resize(static_cast<std::size_t>(loop.op_count()));
    for (int v = 0; v < loop.op_count(); ++v) {
      queue_of_arg_[static_cast<std::size_t>(v)].assign(
          loop.ops[static_cast<std::size_t>(v)].args.size(), -1);
    }
    out_queues_.resize(static_cast<std::size_t>(loop.op_count()));
    for (std::size_t lt = 0; lt < allocation.lifetimes.size(); ++lt) {
      const Lifetime& lifetime = allocation.lifetimes[lt];
      const DepEdge& edge = graph.edge(lifetime.edge);
      queue_of_arg_[static_cast<std::size_t>(edge.dst)][static_cast<std::size_t>(edge.dst_arg)] =
          allocation.queue_of[lt];
      out_queues_[static_cast<std::size_t>(edge.src)].push_back(allocation.queue_of[lt]);
    }
  }

  [[nodiscard]] int arg_queue(int op, int arg) const {
    return queue_of_arg_[static_cast<std::size_t>(op)][static_cast<std::size_t>(arg)];
  }

  [[nodiscard]] const std::vector<int>& out_queues(int op) const {
    return out_queues_[static_cast<std::size_t>(op)];
  }

 private:
  std::vector<std::vector<int>> queue_of_arg_;
  std::vector<std::vector<int>> out_queues_;
};

std::string operand_expr(const Loop& loop, const QueueLookup& queues, int op, int arg) {
  const Operand& operand = loop.ops[static_cast<std::size_t>(op)].args[static_cast<std::size_t>(arg)];
  switch (operand.kind) {
    case Operand::Kind::kValue:
      return cat("q", queues.arg_queue(op, arg));
    case Operand::Kind::kInvariant:
      return cat("%", loop.invariants[static_cast<std::size_t>(operand.invariant)]);
    case Operand::Kind::kImmediate:
      return cat("#", operand.imm);
    case Operand::Kind::kIndex:
      return index_expr(loop, operand.index_offset);
  }
  QVLIW_ASSERT(false, "bad operand kind");
}

std::string destinations(const QueueLookup& queues, int op) {
  const auto& outs = queues.out_queues(op);
  if (outs.empty()) return "(unused)";
  std::string text;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    text += (i == 0 ? "" : ", ") + cat("q", outs[i]);
  }
  return text;
}

std::string render_op(const Loop& loop, const QueueLookup& queues, int op) {
  const Op& o = loop.ops[static_cast<std::size_t>(op)];
  switch (o.opcode) {
    case Opcode::kLoad:
      return cat("load  ", loop.arrays[static_cast<std::size_t>(o.array)], "[",
                 index_expr(loop, o.mem_offset), "] -> ", destinations(queues, op));
    case Opcode::kStore:
      return cat("store ", operand_expr(loop, queues, op, 0), " -> ",
                 loop.arrays[static_cast<std::size_t>(o.array)], "[",
                 index_expr(loop, o.mem_offset), "]");
    case Opcode::kCopy:
    case Opcode::kMove:
      return cat(opcode_name(o.opcode), o.opcode == Opcode::kCopy ? "  " : "  ",
                 operand_expr(loop, queues, op, 0), " -> ", destinations(queues, op));
    default:
      return cat(opcode_name(o.opcode), std::string(6 - opcode_name(o.opcode).size(), ' '),
                 operand_expr(loop, queues, op, 0), ", ", operand_expr(loop, queues, op, 1),
                 " -> ", destinations(queues, op));
  }
}

}  // namespace

double VliwProgram::kernel_utilization(const MachineConfig& machine) const {
  int total_slots = 0;
  for (int c = 0; c < machine.cluster_count(); ++c) {
    for (int k = 0; k < kNumFuKinds; ++k) {
      total_slots += machine.fu_count(c, static_cast<FuKind>(k));
    }
  }
  total_slots *= ii;
  int filled = 0;
  for (const WideInstruction& inst : kernel) filled += static_cast<int>(inst.slots.size());
  return total_slots > 0 ? static_cast<double>(filled) / total_slots : 0.0;
}

VliwProgram generate_program(const Loop& loop, const Ddg& graph, const MachineConfig& machine,
                             const Schedule& schedule, const QueueAllocation& allocation) {
  check(schedule.complete(), "generate_program: incomplete schedule");
  (void)machine;
  const QueueLookup queues(loop, graph, allocation);

  VliwProgram program;
  program.ii = schedule.ii();
  program.stage_count = schedule.stage_count();
  const int ii = program.ii;
  const int ramp = (program.stage_count - 1) * ii;

  auto make_slot = [&](int op) {
    const Placement& p = schedule.place(op);
    SlotOp slot;
    slot.op = op;
    slot.stage = p.cycle / ii;
    slot.text = render_op(loop, queues, op);
    slot.cluster = p.cluster;
    slot.fu_kind = fu_for(loop.ops[static_cast<std::size_t>(op)].opcode);
    slot.fu = p.fu;
    return slot;
  };

  // Kernel: instruction s holds every op issued at modulo slot s.
  for (int s = 0; s < ii; ++s) {
    WideInstruction inst;
    inst.cycle = s;
    for (int op = 0; op < loop.op_count(); ++op) {
      if (schedule.cycle(op) % ii == s) inst.slots.push_back(make_slot(op));
    }
    program.kernel.push_back(std::move(inst));
  }

  // Prologue cycle t: stages <= t/II have begun.
  for (int t = 0; t < ramp; ++t) {
    WideInstruction inst;
    inst.cycle = t;
    for (int op = 0; op < loop.op_count(); ++op) {
      const int sigma = schedule.cycle(op);
      if (sigma % ii == t % ii && sigma / ii <= t / ii) inst.slots.push_back(make_slot(op));
    }
    program.prologue.push_back(std::move(inst));
  }

  // Epilogue cycle t: only stages >= t/II + 1 still drain.
  for (int t = 0; t < ramp; ++t) {
    WideInstruction inst;
    inst.cycle = t;
    for (int op = 0; op < loop.op_count(); ++op) {
      const int sigma = schedule.cycle(op);
      if (sigma % ii == t % ii && sigma / ii >= t / ii + 1) inst.slots.push_back(make_slot(op));
    }
    program.epilogue.push_back(std::move(inst));
  }

  return program;
}

std::string format_program(const VliwProgram& program, const MachineConfig& machine) {
  std::ostringstream os;
  os << "; II=" << program.ii << " SC=" << program.stage_count << " kernel-utilization="
     << fixed(program.kernel_utilization(machine) * 100.0, 1) << "%\n";
  auto section = [&](const char* name, const std::vector<WideInstruction>& instructions) {
    os << name << ":\n";
    if (instructions.empty()) {
      os << "  (empty)\n";
      return;
    }
    for (const WideInstruction& inst : instructions) {
      os << "  [" << pad_left(std::to_string(inst.cycle), 3) << "]";
      if (inst.slots.empty()) {
        os << "  nop\n";
        continue;
      }
      bool first = true;
      for (const SlotOp& slot : inst.slots) {
        if (!first) os << "       ";
        first = false;
        os << "  c" << slot.cluster << "." << fu_kind_name(slot.fu_kind) << slot.fu << ": "
           << pad_right(slot.text, 36) << " ; s" << slot.stage << "\n";
      }
    }
  };
  section("prologue", program.prologue);
  section("kernel", program.kernel);
  section("epilogue", program.epilogue);
  return os.str();
}

}  // namespace qvliw
