// Shared value semantics of the IR.
//
// All arithmetic is exact wrapping int64 (two's complement), including the
// nominally floating-point opcodes — they differ only in latency/FU class.
// Exactness lets simulator-vs-reference checks demand bit equality.
#pragma once

#include <cstdint>

#include "ir/opcode.h"

namespace qvliw {

/// Applies a two-operand arithmetic opcode (not load/store/copy/move).
/// Division is total: x/0 == 0 and INT64_MIN / -1 == INT64_MIN.
[[nodiscard]] std::int64_t eval_arith(Opcode opcode, std::int64_t lhs, std::int64_t rhs);

/// Deterministic initial array element: hash of (seed, array, index).
[[nodiscard]] std::int64_t initial_array_value(std::uint64_t seed, int array, long long index);

/// Deterministic invariant value: hash of (seed, invariant index).
[[nodiscard]] std::int64_t invariant_value(std::uint64_t seed, int invariant);

}  // namespace qvliw
