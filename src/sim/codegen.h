// Lowering a scheduled, queue-allocated loop to a VLIW program listing.
//
// The listing is what a code generator for the paper's machine would
// emit: one wide instruction per cycle with one slot per FU instance,
// each operation written with *physical queue operands* —
//
//     fmul  q3 -> q7          pop q3, push q7
//     copy  q7 -> q2, q4      the copy FU's two write ports
//     load  A0[i+2] -> q1
//     store q5 -> A1[i]
//
// Three sections are emitted, exactly as modulo-scheduled code is laid
// out: a prologue of SC-1 partial iterations (stage s omits ops of later
// stages), the steady-state kernel of II instructions, and an epilogue
// draining the last SC-1 iterations.  The listing is a faithful, human-
// checkable rendering of the same schedule the cycle-accurate simulator
// executes.
#pragma once

#include <string>
#include <vector>

#include "ir/ddg.h"
#include "ir/loop.h"
#include "machine/machine.h"
#include "qrf/queue_alloc.h"
#include "sched/schedule.h"

namespace qvliw {

/// One operation slot inside a wide instruction.
struct SlotOp {
  int op = -1;              // loop op index
  int stage = 0;            // pipeline stage of the op (cycle / II)
  std::string text;         // rendered "opcode q -> q" form
  int cluster = 0;
  FuKind fu_kind = FuKind::kAdd;
  int fu = 0;
};

/// One VLIW instruction (all slots issued in the same cycle).
struct WideInstruction {
  int cycle = 0;  // cycle within its section
  std::vector<SlotOp> slots;
};

struct VliwProgram {
  int ii = 0;
  int stage_count = 0;
  std::vector<WideInstruction> prologue;  // (SC-1)*II instructions
  std::vector<WideInstruction> kernel;    // II instructions
  std::vector<WideInstruction> epilogue;  // (SC-1)*II instructions

  /// Issue slots filled over total slots in the kernel (density).
  [[nodiscard]] double kernel_utilization(const MachineConfig& machine) const;
};

/// Lowers the schedule; every flow operand is resolved to its queue.
[[nodiscard]] VliwProgram generate_program(const Loop& loop, const Ddg& graph,
                                           const MachineConfig& machine,
                                           const Schedule& schedule,
                                           const QueueAllocation& allocation);

/// Renders the whole program as an assembly-like listing.
[[nodiscard]] std::string format_program(const VliwProgram& program,
                                         const MachineConfig& machine);

}  // namespace qvliw
