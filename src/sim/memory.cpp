#include "sim/memory.h"

#include "sim/eval.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

MemoryImage::MemoryImage(int arrays, long long elements, std::uint64_t seed)
    : elements_(elements) {
  check(arrays >= 0, "MemoryImage: negative array count");
  check(elements >= 0, "MemoryImage: negative element count");
  data_.resize(static_cast<std::size_t>(arrays));
  const auto size = static_cast<std::size_t>(elements + 2 * kPad);
  for (int a = 0; a < arrays; ++a) {
    auto& column = data_[static_cast<std::size_t>(a)];
    column.resize(size);
    for (std::size_t s = 0; s < size; ++s) {
      column[s] = initial_array_value(seed, a, static_cast<long long>(s) - kPad);
    }
  }
}

std::size_t MemoryImage::slot(int array, long long index) const {
  check(array >= 0 && array < arrays(), "MemoryImage: array out of range");
  check(index >= -kPad && index < elements_ + kPad,
        cat("MemoryImage: index ", index, " outside [-", kPad, ", ", elements_ + kPad, ")"));
  return static_cast<std::size_t>(index + kPad);
}

std::int64_t MemoryImage::load(int array, long long index) const {
  return data_[static_cast<std::size_t>(array)][slot(array, index)];
}

void MemoryImage::store(int array, long long index, std::int64_t value) {
  data_[static_cast<std::size_t>(array)][slot(array, index)] = value;
}

std::pair<int, long long> MemoryImage::first_difference(const MemoryImage& other) const {
  for (int a = 0; a < arrays() && a < other.arrays(); ++a) {
    const auto& mine = data_[static_cast<std::size_t>(a)];
    const auto& theirs = other.data_[static_cast<std::size_t>(a)];
    for (std::size_t s = 0; s < mine.size() && s < theirs.size(); ++s) {
      if (mine[s] != theirs[s]) return {a, static_cast<long long>(s) - kPad};
    }
  }
  if (arrays() != other.arrays() || elements_ != other.elements_) return {-2, 0};
  return {-1, 0};
}

}  // namespace qvliw
