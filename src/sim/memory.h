// Array memory shared by the reference interpreter and the VLIW simulator.
//
// Arrays span logical indices [-pad, elements + pad): negative offsets at
// iteration 0 and positive offsets at the last iteration land in the pad.
// `elements` should be stride * trip so that a loop and its unrolled form
// (stride*U, trip/U) address the same image.
#pragma once

#include <cstdint>
#include <vector>

namespace qvliw {

class MemoryImage {
 public:
  static constexpr long long kPad = 64;

  /// `arrays` arrays of `elements` logical elements, deterministically
  /// initialised from `seed`.
  MemoryImage(int arrays, long long elements, std::uint64_t seed);

  [[nodiscard]] std::int64_t load(int array, long long index) const;
  void store(int array, long long index, std::int64_t value);

  [[nodiscard]] int arrays() const { return static_cast<int>(data_.size()); }
  [[nodiscard]] long long elements() const { return elements_; }

  friend bool operator==(const MemoryImage&, const MemoryImage&) = default;

  /// Index of the first element differing from `other` as (array, index),
  /// or {-1, 0} when equal (diagnostics for failing equivalence checks).
  [[nodiscard]] std::pair<int, long long> first_difference(const MemoryImage& other) const;

 private:
  [[nodiscard]] std::size_t slot(int array, long long index) const;

  long long elements_ = 0;
  std::vector<std::vector<std::int64_t>> data_;
};

}  // namespace qvliw
