#include "harness/report.h"

#include "support/diagnostics.h"
#include "support/strings.h"

namespace qvliw {

void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim) {
  os << std::string(72, '=') << '\n';
  os << experiment << '\n';
  os << "paper: " << paper_claim << '\n';
  os << std::string(72, '=') << '\n';
}

std::vector<double> cumulative_fractions(const std::vector<LoopResult>& results,
                                         const std::vector<int>& bounds,
                                         const std::function<int(const LoopResult&)>& metric) {
  std::vector<double> fractions;
  fractions.reserve(bounds.size());
  std::size_t total = 0;
  for (const LoopResult& r : results) {
    if (r.ok) ++total;
  }
  for (int bound : bounds) {
    std::size_t hits = 0;
    for (const LoopResult& r : results) {
      if (r.ok && metric(r) <= bound) ++hits;
    }
    fractions.push_back(total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total));
  }
  return fractions;
}

void print_cumulative_table(std::ostream& os, const std::vector<int>& bounds,
                            const std::vector<std::string>& series_labels,
                            const std::vector<std::vector<double>>& series,
                            const std::string& bound_label) {
  check(series_labels.size() == series.size(), "labels/series mismatch");
  std::vector<std::string> headers{bound_label};
  for (const std::string& label : series_labels) headers.push_back(label);
  TextTable table(headers);
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    std::vector<Cell> row;
    row.emplace_back(static_cast<std::int64_t>(bounds[b]));
    for (const auto& column : series) {
      check(column.size() == bounds.size(), "series length mismatch");
      row.emplace_back(percent(column[b]));
    }
    table.add_row(std::move(row));
  }
  table.render(os);
}

}  // namespace qvliw
