#include "harness/sweep.h"

#include <array>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "harness/stage.h"
#include "sched/mii.h"
#include "support/diagnostics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"
#include "xform/unroll.h"

namespace qvliw {

double SweepCacheStats::hit_rate() const {
  const std::uint64_t p = probes();
  return p == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(p);
}

SweepCacheStats& SweepCacheStats::operator+=(const SweepCacheStats& other) {
  invariant_probes += other.invariant_probes;
  invariant_hits += other.invariant_hits;
  unroll_probes += other.unroll_probes;
  unroll_hits += other.unroll_hits;
  front_probes += other.front_probes;
  front_hits += other.front_hits;
  mii_probes += other.mii_probes;
  mii_hits += other.mii_hits;
  return *this;
}

double SweepResult::pipelines_per_second() const {
  return wall_seconds > 0.0 ? static_cast<double>(pipelines) / wall_seconds : 0.0;
}

double SweepResult::stage_seconds(std::string_view stage) const {
  for (const StageTotal& total : stage_totals) {
    if (total.stage == stage) return total.seconds;
  }
  return 0.0;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- prefix keys -----------------------------------------------------------
//
// A sweep point's front-end artifacts are a pure function of the options
// *prefix* (plus the machine where the prefix consults it), hashed level
// by level so points sharing a shorter prefix still share the shallower
// artifacts.

std::uint64_t invariant_key(const PipelineOptions& options) {
  return hash_combine(hash64(0x11u), hash64(static_cast<std::uint64_t>(options.invariants)));
}

std::uint64_t unroll_key(std::uint64_t k1, const PipelineOptions& options,
                         const MachineConfig& machine) {
  if (!options.unroll) return hash_combine(k1, hash64(0x22u));
  if (options.forced_unroll >= 1) {
    return hash_combine(k1, hash64(0x3300u + static_cast<std::uint64_t>(options.forced_unroll)));
  }
  // The policy factor (select_unroll_factor) consults the machine.
  return hash_combine(
      hash_combine(k1, hash64(0x4400u + static_cast<std::uint64_t>(options.max_unroll))),
      machine.signature());
}

std::uint64_t front_key(std::uint64_t k2, const PipelineOptions& options,
                        const MachineConfig& machine) {
  const std::uint64_t copies =
      options.insert_copies ? 1 + static_cast<std::uint64_t>(options.copy_shape) : 0;
  // The DDG (built with the copy-inserted loop) depends on latencies only.
  return hash_combine(hash_combine(k2, hash64(0x5500u + copies)),
                      latency_signature(machine.latency));
}

struct PointKeys {
  std::uint64_t invariant = 0;
  std::uint64_t unroll = 0;
  std::uint64_t front = 0;
  std::uint64_t machine_sig = 0;
  bool wants_mii = false;  // the moves router cannot reuse cached bounds
};

// --- per-loop artifact cache ----------------------------------------------

struct UnrollEntry {
  std::shared_ptr<const Loop> loop;
  int factor = 1;
};

struct FrontEntry {
  bool ok = false;  // false: a transform failed; points fall back to the
                    // uncached pipeline for exact failure parity
  Loop loop;        // copy-inserted scheduler input
  int copies = 0;
  int factor = 1;
  std::shared_ptr<const Ddg> graph;
  std::map<std::uint64_t, MiiInfo> mii;  // machine signature -> bounds
};

struct LoopCache {
  std::map<std::uint64_t, std::shared_ptr<const Loop>> invariant;
  std::map<std::uint64_t, UnrollEntry> unrolled;
  std::map<std::uint64_t, FrontEntry> front;
};

// Front-end wall time indexed as: invariants, unroll, copy_insert, mii.
using FrontSeconds = std::array<double, 4>;

FrontEntry& front_for(const Loop& source, const SweepPoint& point, const PointKeys& keys,
                      LoopCache& cache, SweepCacheStats& stats, FrontSeconds& seconds) {
  ++stats.front_probes;
  if (auto it = cache.front.find(keys.front); it != cache.front.end()) {
    ++stats.front_hits;
    return it->second;
  }

  FrontEntry entry;
  try {
    // Invariants.
    std::shared_ptr<const Loop> after_invariants;
    ++stats.invariant_probes;
    if (auto it = cache.invariant.find(keys.invariant); it != cache.invariant.end()) {
      ++stats.invariant_hits;
      after_invariants = it->second;
    } else {
      const Clock::time_point start = Clock::now();
      after_invariants = std::make_shared<const Loop>(
          materialize_invariants(source, point.options.invariants));
      seconds[0] += seconds_since(start);
      cache.invariant.emplace(keys.invariant, after_invariants);
    }

    // Unroll.
    UnrollEntry unrolled;
    ++stats.unroll_probes;
    if (auto it = cache.unrolled.find(keys.unroll); it != cache.unrolled.end()) {
      ++stats.unroll_hits;
      unrolled = it->second;
    } else {
      const Clock::time_point start = Clock::now();
      unrolled.loop = after_invariants;
      if (point.options.unroll) {
        unrolled.factor =
            point.options.forced_unroll >= 1
                ? point.options.forced_unroll
                : select_unroll_factor(*after_invariants, point.machine, point.options.max_unroll)
                      .factor;
        unrolled.loop = std::make_shared<const Loop>(unroll(*after_invariants, unrolled.factor));
      }
      seconds[1] += seconds_since(start);
      cache.unrolled.emplace(keys.unroll, unrolled);
    }

    // Copy insertion + the DDG.
    const Clock::time_point start = Clock::now();
    entry.factor = unrolled.factor;
    if (point.options.insert_copies) {
      CopyInsertResult copies = insert_copies(*unrolled.loop, point.options.copy_shape);
      entry.copies = copies.copies_added;
      entry.loop = std::move(copies.loop);
    } else {
      entry.loop = *unrolled.loop;
    }
    entry.graph = std::make_shared<const Ddg>(Ddg::build(entry.loop, point.machine.latency));
    entry.ok = true;
    seconds[2] += seconds_since(start);
  } catch (const Error&) {
    entry = FrontEntry{};
  }
  return cache.front.emplace(keys.front, std::move(entry)).first->second;
}

MiiInfo mii_for(FrontEntry& front, const SweepPoint& point, const PointKeys& keys,
                SweepCacheStats& stats, FrontSeconds& seconds) {
  ++stats.mii_probes;
  if (auto it = front.mii.find(keys.machine_sig); it != front.mii.end()) {
    ++stats.mii_hits;
    return it->second;
  }
  const Clock::time_point start = Clock::now();
  const MiiInfo mii = compute_mii(front.loop, *front.graph, point.machine);
  seconds[3] += seconds_since(start);
  front.mii.emplace(keys.machine_sig, mii);
  return mii;
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

SweepResult SweepRunner::run(const std::vector<Loop>& loops,
                             const std::vector<SweepPoint>& points) const {
  const Clock::time_point sweep_start = Clock::now();

  SweepResult sweep;
  sweep.by_point.assign(points.size(), std::vector<LoopResult>(loops.size()));
  sweep.pipelines = static_cast<std::uint64_t>(loops.size()) * points.size();

  std::vector<PointKeys> keys(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    keys[p].invariant = invariant_key(points[p].options);
    keys[p].unroll = unroll_key(keys[p].invariant, points[p].options, points[p].machine);
    keys[p].front = front_key(keys[p].unroll, points[p].options, points[p].machine);
    keys[p].machine_sig = points[p].machine.signature();
    keys[p].wants_mii = points[p].options.scheduler != SchedulerKind::kClusteredMoves;
  }

  std::mutex merge_mutex;
  FrontSeconds front_seconds{};

  auto run_loop = [&](std::size_t i) {
    LoopCache cache;
    SweepCacheStats local_stats;
    FrontSeconds local_seconds{};

    for (std::size_t p = 0; p < points.size(); ++p) {
      const SweepPoint& point = points[p];
      LoopResult out;
      bool produced = false;
      if (options_.use_cache) {
        try {
          FrontEntry& front =
              front_for(loops[i], point, keys[p], cache, local_stats, local_seconds);
          if (front.ok) {
            PipelineContext ctx(loops[i], point.machine, point.options);
            ctx.loop = front.loop;
            ctx.graph = front.graph;
            ctx.result.unroll_factor = front.factor;
            ctx.result.copies = front.copies;
            if (keys[p].wants_mii) {
              ctx.known_mii = mii_for(front, point, keys[p], local_stats, local_seconds);
            }
            run_stages(ctx, back_stage_plan());
            out = std::move(ctx.result);
            produced = true;
          }
        } catch (const Error&) {
          // Fall through to the uncached path for exact failure parity.
        }
      }
      if (!produced) out = run_pipeline(loops[i], point.machine, point.options);
      sweep.by_point[p][i] = std::move(out);
    }

    const std::lock_guard<std::mutex> lock(merge_mutex);
    sweep.cache += local_stats;
    for (std::size_t k = 0; k < front_seconds.size(); ++k) front_seconds[k] += local_seconds[k];
  };

  if (!points.empty()) {
    if (options_.parallel) {
      parallel_for(loops.size(), run_loop);
    } else {
      for (std::size_t i = 0; i < loops.size(); ++i) run_loop(i);
    }
  }

  // Aggregate per-stage wall time: per-run stage_times plus the front-end
  // work the cache performed outside any single run.
  std::map<std::string, double, std::less<>> totals;
  for (const std::vector<LoopResult>& results : sweep.by_point) {
    for (const LoopResult& result : results) {
      for (const StageTiming& timing : result.stage_times) totals[timing.stage] += timing.seconds;
    }
  }
  totals[std::string(kStageInvariants)] += front_seconds[0];
  totals[std::string(kStageUnroll)] += front_seconds[1];
  totals[std::string(kStageCopyInsert)] += front_seconds[2];
  if (front_seconds[3] > 0.0) totals["mii"] += front_seconds[3];
  static constexpr std::string_view kOrder[] = {kStageInvariants, kStageUnroll, kStageCopyInsert,
                                                "mii",            kStageSchedule, kStageQueueAlloc,
                                                kStageSim};
  for (std::string_view stage : kOrder) {
    if (auto it = totals.find(stage); it != totals.end()) {
      sweep.stage_totals.push_back({it->first, it->second});
      totals.erase(it);
    }
  }
  for (const auto& [stage, seconds] : totals) sweep.stage_totals.push_back({stage, seconds});

  sweep.wall_seconds = seconds_since(sweep_start);
  return sweep;
}

SweepResult SweepRunner::run(const std::vector<Loop>& loops, const MachineConfig& machine,
                             const std::vector<PipelineOptions>& options_points) const {
  std::vector<SweepPoint> points;
  points.reserve(options_points.size());
  for (std::size_t p = 0; p < options_points.size(); ++p) {
    points.push_back({cat("point-", p), machine, options_points[p]});
  }
  return run(loops, points);
}

}  // namespace qvliw
