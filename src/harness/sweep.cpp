#include "harness/sweep.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "harness/checkpoint.h"
#include "harness/shard.h"
#include "harness/stage.h"
#include "sched/mii.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"
#include "xform/unroll.h"

namespace qvliw {

double SweepCacheStats::hit_rate() const {
  const std::uint64_t p = probes();
  return p == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(p);
}

double SweepCacheStats::disk_hit_rate() const {
  return disk_probes == 0 ? 0.0
                          : static_cast<double>(disk_hits) / static_cast<double>(disk_probes);
}

double SweepCacheStats::warm_hit_rate() const {
  return warm_probes == 0 ? 0.0
                          : static_cast<double>(warm_hits) / static_cast<double>(warm_probes);
}

SweepCacheStats& SweepCacheStats::operator+=(const SweepCacheStats& other) {
  invariant_probes += other.invariant_probes;
  invariant_hits += other.invariant_hits;
  unroll_probes += other.unroll_probes;
  unroll_hits += other.unroll_hits;
  front_probes += other.front_probes;
  front_hits += other.front_hits;
  mii_probes += other.mii_probes;
  mii_hits += other.mii_hits;
  disk_probes += other.disk_probes;
  disk_hits += other.disk_hits;
  mii_disk_probes += other.mii_disk_probes;
  mii_disk_hits += other.mii_disk_hits;
  sched_disk_probes += other.sched_disk_probes;
  sched_disk_hits += other.sched_disk_hits;
  warm_probes += other.warm_probes;
  warm_hits += other.warm_hits;
  probe_factors += other.probe_factors;
  probe_fallbacks += other.probe_fallbacks;
  verify_memo_probes += other.verify_memo_probes;
  verify_memo_hits += other.verify_memo_hits;
  alloc_memo_probes += other.alloc_memo_probes;
  alloc_memo_hits += other.alloc_memo_hits;
  sched_memo_probes += other.sched_memo_probes;
  sched_memo_hits += other.sched_memo_hits;
  fallback_runs += other.fallback_runs;
  return *this;
}

CheckpointStats& CheckpointStats::operator+=(const CheckpointStats& other) {
  tasks_replayed += other.tasks_replayed;
  tasks_executed += other.tasks_executed;
  journal_bytes += other.journal_bytes;
  return *this;
}

double SweepResult::pipelines_per_second() const {
  return wall_seconds > 0.0 ? static_cast<double>(pipelines) / wall_seconds : 0.0;
}

double SweepResult::stage_seconds(std::string_view stage) const {
  for (const StageTotal& total : stage_totals) {
    if (total.stage == stage) return total.seconds;
  }
  return 0.0;
}

std::uint64_t SweepResult::verify_checked() const {
  std::uint64_t checked = 0;
  for (const auto& row : by_point) {
    for (const LoopResult& result : row) {
      if (result.verify_checked) ++checked;
    }
  }
  return checked;
}

std::uint64_t SweepResult::verify_violations() const {
  std::uint64_t violations = 0;
  for (const auto& row : by_point) {
    for (const LoopResult& result : row) {
      violations += static_cast<std::uint64_t>(result.verify_violations);
    }
  }
  return violations;
}

std::string_view sweep_verify_mode_name(SweepVerifyMode mode) {
  switch (mode) {
    case SweepVerifyMode::kOff:
      return "off";
    case SweepVerifyMode::kSample:
      return "sample";
    case SweepVerifyMode::kFull:
      return "full";
    case SweepVerifyMode::kStrict:
      return "strict";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- prefix keys -----------------------------------------------------------
//
// A sweep point's front-end artifacts are a pure function of the options
// *prefix* (plus the machine where the prefix consults it), hashed level
// by level so points sharing a shorter prefix still share the shallower
// artifacts.
//
// Every branch hashes its tag and its parameters as *separate* combine
// steps.  Additive salts (e.g. 0x3300 + factor vs 0x4400 + max_unroll)
// let one branch's parameter walk into another branch's tag range, so two
// structurally different prefixes could share one cache slot; a
// regression test drives the old aliasing pair through these keys.

std::uint64_t invariant_key(const PipelineOptions& options) {
  return hash_combine(hash64(0x11u), hash64(static_cast<std::uint64_t>(options.invariants)));
}

std::uint64_t unroll_key(std::uint64_t k1, const PipelineOptions& options,
                         const MachineConfig& machine) {
  if (!options.unroll) return hash_combine(k1, hash64(0x22u));
  if (options.forced_unroll >= 1) {
    return hash_combine(hash_combine(k1, hash64(0x33u)),
                        hash64(static_cast<std::uint64_t>(options.forced_unroll)));
  }
  // The policy factor (select_unroll_factor) consults the machine.
  return hash_combine(hash_combine(hash_combine(k1, hash64(0x44u)),
                                   hash64(static_cast<std::uint64_t>(options.max_unroll))),
                      machine.signature());
}

std::uint64_t front_key(std::uint64_t k2, const PipelineOptions& options,
                        const MachineConfig& machine) {
  const std::uint64_t copies =
      options.insert_copies ? 1 + static_cast<std::uint64_t>(options.copy_shape) : 0;
  // The DDG (built with the copy-inserted loop) depends on latencies only.
  return hash_combine(hash_combine(hash_combine(k2, hash64(0x55u)), hash64(copies)),
                      latency_signature(machine.latency));
}

// --- per-loop artifact cache ----------------------------------------------

struct UnrollEntry {
  std::shared_ptr<const Loop> loop;
  int factor = 1;
  std::shared_ptr<const Ddg> graph;  // the unrolled loop's DDG, when the
                                     // factor probe already built it
};

struct FrontEntry {
  bool ok = false;   // false: a transform failed; `failed_result` replays
                     // the canonical failing LoopResult for every point
  Loop loop;         // copy-inserted scheduler input
  int copies = 0;
  int factor = 1;
  std::shared_ptr<const Ddg> graph;
  std::map<std::uint64_t, MiiInfo> mii;  // machine signature -> bounds
  LoopResult failed_result;  // when !ok: bit-identical to what the
                             // monolithic pipeline reports (stage_times
                             // cleared; its cost is charged once)
};

struct LoopCache {
  std::map<std::uint64_t, std::shared_ptr<const Loop>> invariant;
  std::map<std::uint64_t, UnrollEntry> unrolled;
  std::map<std::uint64_t, FrontEntry> front;
};

// Front-end wall time indexed as: invariants, unroll, copy_insert, mii.
using FrontSeconds = std::array<double, 4>;

// --- on-disk persistence ---------------------------------------------------
//
// A FrontEntry is a pure function of (source loop contents, front prefix
// key); the prefix key already folds in every machine input the front end
// consults.  Entries are serialised with the portable blob format; the
// MII map is not persisted (machine-specific and trivially cheap to
// recompute).
//
// Bump the version whenever a warm store could replay entries the current
// code would not reproduce: blob-layout changes AND any behavioral change
// to a front-end transform (invariant materialisation, unroll's rewrite
// or factor policy, copy insertion) or to memory-dependence derivation.
// The key changes with the version, so stale entries are simply never
// read again.  (Loop-serialization layout changes are self-invalidating:
// Loop::content_hash is derived from the serialized bytes.)
//
// Since the store now also holds accepted *schedules*, "behavioral
// change" includes the back end: any change to a scheduler backend's
// search (IMS placement order, partitioning heuristics, budget
// semantics) must bump the version too, or a warm store replays the old
// binary's schedule — still valid, so the seed verifier accepts it, but
// no longer what the current cold search would find, breaking
// results_identical against the same invocation's cold run.
//
// v2: decoders uniformly reject trailing bytes (require_exhausted at
// every decode site), and the store gained persisted warm-start schedule
// entries; entries written by v1 code are retired wholesale rather than
// trusting v1's laxer acceptance.

constexpr std::uint64_t kStoreFormatVersion = 2;

std::uint64_t store_key(std::uint64_t loop_content_hash, std::uint64_t front_key_value) {
  return hash_combine(hash_combine(hash64(kStoreFormatVersion), loop_content_hash),
                      front_key_value);
}

// MII bounds are a pure function of (front loop, machine); the front loop
// is (source loop contents, front prefix key), so the key folds the loop
// content hash, the front key, and the machine signature, under a salt
// that keeps the MII key domain disjoint from front-entry keys.
std::uint64_t mii_store_key(std::uint64_t loop_content_hash, std::uint64_t front_key_value,
                            std::uint64_t machine_signature) {
  return hash_combine(hash_combine(hash_combine(hash64(kStoreFormatVersion), hash64(0x4d4949u)),
                                   hash_combine(loop_content_hash, front_key_value)),
                      machine_signature);
}

// Accepted warm-start schedules are a pure function of (front loop,
// machine, backend identity/options, placement budget): IMS is
// deterministic, so the entry under this key is exactly the schedule the
// point's own cold search would accept.  Seeding a point with its own
// prior accepted schedule therefore preserves bit-identical results while
// collapsing the accepting search into one verification pass — including
// for the *first* point of a ladder, which in-process chaining can never
// seed.  budget_ratio is folded explicitly because the backend cache key
// deliberately excludes the ladder axis; cross_machine_seeds is folded
// because that mode may accept better-than-cold IIs, and its entries must
// never leak into bit-identity-preserving stores.
std::uint64_t sched_store_key(std::uint64_t loop_content_hash, const SweepPrefixKeys& keys,
                              int budget_ratio, bool cross_machine) {
  const std::uint64_t identity = hash_combine(hash_combine(loop_content_hash, keys.front),
                                              hash_combine(keys.machine, keys.backend));
  return hash_combine(
      hash_combine(hash_combine(hash64(kStoreFormatVersion), hash64(0x5c4edULL)), identity),
      hash_combine(hash64(static_cast<std::uint64_t>(budget_ratio)),
                   hash64(cross_machine ? 1 : 0)));
}

std::string encode_warm_seed(const WarmStartSeed& seed) {
  BlobWriter out;
  serialize_schedule(out, seed.schedule);  // carries the II
  return out.take();
}

/// Throws Error on truncation/trailing bytes; the caller treats that as
/// a store miss.  The decoded schedule is *not* trusted: ims_schedule
/// re-verifies every seed against the exact (loop, graph, machine)
/// before installing it.
WarmStartSeed decode_warm_seed(const std::string& blob) {
  BlobReader in(blob);
  WarmStartSeed seed;
  seed.schedule = deserialize_schedule(in);
  in.require_exhausted("warm seed blob");
  seed.ii = seed.schedule.ii();
  return seed;
}

std::string encode_mii(const MiiInfo& mii) {
  BlobWriter out;
  out.put_bool(mii.feasible);
  out.put_i32(mii.res_mii);
  out.put_i32(mii.rec_mii);
  out.put_i32(mii.mii);
  return out.take();
}

/// Throws Error on truncation/trailing bytes; the caller treats that as a
/// store miss and recomputes.
MiiInfo decode_mii(const std::string& blob) {
  BlobReader in(blob);
  MiiInfo mii;
  mii.feasible = in.get_bool();
  mii.res_mii = in.get_i32();
  mii.rec_mii = in.get_i32();
  mii.mii = in.get_i32();
  in.require_exhausted("mii blob");
  return mii;
}

std::string encode_front_entry(const FrontEntry& entry) {
  BlobWriter out;
  out.put_bool(entry.ok);
  if (entry.ok) {
    serialize_loop(out, entry.loop);
    out.put_i32(entry.copies);
    out.put_i32(entry.factor);
  } else {
    const LoopResult& r = entry.failed_result;
    out.put_string(r.failure);
    out.put_string(r.failed_stage);
    out.put_i32(r.unroll_factor);
    out.put_i32(r.copies);
  }
  return out.take();
}

/// Reconstructs a FrontEntry from `blob`; throws Error on any truncation
/// or structural problem (the caller treats that as a store miss).  The
/// DDG is rebuilt from the decoded loop — Ddg::build is deterministic and
/// validates the loop, so a corrupt blob cannot smuggle in a bad input.
FrontEntry decode_front_entry(const std::string& blob, const Loop& source,
                              const MachineConfig& machine) {
  BlobReader in(blob);
  FrontEntry entry;
  entry.ok = in.get_bool();
  if (entry.ok) {
    entry.loop = deserialize_loop(in);
    entry.copies = in.get_i32();
    entry.factor = in.get_i32();
    entry.graph = std::make_shared<const Ddg>(Ddg::build(entry.loop, machine.latency));
  } else {
    LoopResult& r = entry.failed_result;
    r.name = source.name;
    r.src_ops = source.op_count();
    r.failure = in.get_string();
    r.failed_stage = in.get_string();
    r.unroll_factor = in.get_i32();
    r.copies = in.get_i32();
  }
  in.require_exhausted("front entry blob");
  return entry;
}

FrontEntry& front_for(const Loop& source, const SweepPoint& point, const SweepPrefixKeys& keys,
                      LoopCache& cache, const ArtifactStore* store, std::uint64_t disk_key,
                      SweepCacheStats& stats, FrontSeconds& seconds) {
  ++stats.front_probes;
  if (auto it = cache.front.find(keys.front); it != cache.front.end()) {
    ++stats.front_hits;
    return it->second;
  }

  // Second-level cache: the persistent store.
  if (store != nullptr) {
    ++stats.disk_probes;
    std::string blob;
    if (store->load(disk_key, blob)) {
      try {
        FrontEntry entry = decode_front_entry(blob, source, point.machine);
        ++stats.disk_hits;
        return cache.front.emplace(keys.front, std::move(entry)).first->second;
      } catch (const Error&) {
        // Corrupt or stale entry: fall through and recompute (the save
        // below overwrites it).
      }
    }
  }

  FrontEntry entry;
  try {
    // Invariants.
    std::shared_ptr<const Loop> after_invariants;
    ++stats.invariant_probes;
    if (auto it = cache.invariant.find(keys.invariant); it != cache.invariant.end()) {
      ++stats.invariant_hits;
      after_invariants = it->second;
    } else {
      const Clock::time_point start = Clock::now();
      after_invariants = std::make_shared<const Loop>(
          materialize_invariants(source, point.options.invariants));
      seconds[0] += seconds_since(start);
      cache.invariant.emplace(keys.invariant, after_invariants);
    }

    // Unroll.
    UnrollEntry unrolled;
    ++stats.unroll_probes;
    if (auto it = cache.unrolled.find(keys.unroll); it != cache.unrolled.end()) {
      ++stats.unroll_hits;
      unrolled = it->second;
    } else {
      const Clock::time_point start = Clock::now();
      unrolled.loop = after_invariants;
      if (point.options.unroll) {
        if (point.options.forced_unroll >= 1) {
          unrolled.factor = point.options.forced_unroll;
          unrolled.loop = std::make_shared<const Loop>(unroll(*after_invariants, unrolled.factor));
        } else {
          // The probe hands back the winner it already materialised (and
          // its DDG on the naive path) — nothing is unrolled twice.
          UnrollProbe probe =
              probe_unroll_factor(*after_invariants, point.machine, point.options.max_unroll);
          stats.probe_factors += static_cast<std::uint64_t>(probe.factors_probed);
          if (!probe.incremental) ++stats.probe_fallbacks;
          unrolled.factor = probe.choice.factor;
          if (probe.loop != nullptr) unrolled.loop = std::move(probe.loop);
          unrolled.graph = std::move(probe.graph);
        }
      }
      seconds[1] += seconds_since(start);
      cache.unrolled.emplace(keys.unroll, unrolled);
    }

    // Copy insertion + the DDG.
    const Clock::time_point start = Clock::now();
    entry.factor = unrolled.factor;
    if (point.options.insert_copies) {
      // Fused rewrite + incremental DDG derivation (see
      // insert_copies_with_graph): same loop and graph as the two-step
      // path, without recomputing memory dependences on the bigger loop.
      CopyInsertWithGraph fused =
          insert_copies_with_graph(*unrolled.loop, point.machine.latency, point.options.copy_shape);
      entry.copies = fused.rewrite.copies_added;
      entry.loop = std::move(fused.rewrite.loop);
      entry.graph = std::make_shared<const Ddg>(std::move(fused.graph));
    } else {
      entry.loop = *unrolled.loop;
      // No copies inserted: the probe's DDG (same loop, same latencies) is
      // the scheduler's graph already.
      entry.graph = unrolled.graph != nullptr
                        ? unrolled.graph
                        : std::make_shared<const Ddg>(Ddg::build(entry.loop, point.machine.latency));
    }
    entry.ok = true;
    seconds[2] += seconds_since(start);
  } catch (const Error&) {
    // Canonicalise the failure once by replaying the front stage plan —
    // the exact code path the monolithic pipeline takes — so every point
    // sharing this prefix replays a bit-identical LoopResult instead of
    // re-running the whole uncached pipeline.  The replay genuinely
    // re-executes the front stages (including ones the try block above
    // already ran and charged), so folding its stage times below reports
    // real CPU spent, paid once per failing prefix.
    PipelineContext failed(source, point.machine, point.options);
    run_stages(failed, front_stage_plan());
    QVLIW_ASSERT(!failed.result.ok, "front prefix failed outside the stage plan");
    for (const StageTiming& timing : failed.result.stage_times) {
      if (timing.stage == kStageInvariants) seconds[0] += timing.seconds;
      if (timing.stage == kStageUnroll) seconds[1] += timing.seconds;
      if (timing.stage == kStageCopyInsert) seconds[2] += timing.seconds;
    }
    failed.result.stage_times.clear();  // charged once via FrontSeconds
    entry = FrontEntry{};
    entry.failed_result = std::move(failed.result);
  }
  if (store != nullptr) store->save(disk_key, encode_front_entry(entry));
  return cache.front.emplace(keys.front, std::move(entry)).first->second;
}

MiiInfo mii_for(FrontEntry& front, const SweepPoint& point, const SweepPrefixKeys& keys,
                const ArtifactStore* store, std::uint64_t loop_hash, SweepCacheStats& stats,
                FrontSeconds& seconds) {
  ++stats.mii_probes;
  if (auto it = front.mii.find(keys.machine); it != front.mii.end()) {
    ++stats.mii_hits;
    return it->second;
  }

  // Second-level cache: the persistent per-machine MII map.
  const std::uint64_t disk_key =
      store != nullptr ? mii_store_key(loop_hash, keys.front, keys.machine) : 0;
  if (store != nullptr) {
    ++stats.mii_disk_probes;
    std::string blob;
    if (store->load(disk_key, blob)) {
      try {
        const MiiInfo mii = decode_mii(blob);
        ++stats.mii_disk_hits;
        front.mii.emplace(keys.machine, mii);
        return mii;
      } catch (const Error&) {
        // Corrupt or stale entry: recompute (the save below overwrites it).
      }
    }
  }

  const Clock::time_point start = Clock::now();
  const MiiInfo mii = compute_mii(front.loop, *front.graph, point.machine);
  seconds[3] += seconds_since(start);
  if (store != nullptr) store->save(disk_key, encode_mii(mii));
  front.mii.emplace(keys.machine, mii);
  return mii;
}

}  // namespace

SweepPrefixKeys sweep_prefix_keys(const SweepPoint& point) {
  SweepPrefixKeys keys;
  keys.invariant = invariant_key(point.options);
  keys.unroll = unroll_key(keys.invariant, point.options, point.machine);
  keys.front = front_key(keys.unroll, point.options, point.machine);
  keys.machine = point.machine.signature();
  const SchedulerBackend* backend =
      find_scheduler_backend(point.options.scheduler, point.options.backend);
  if (backend != nullptr) {
    keys.backend = backend->cache_key(point.options.heuristic, point.options.ims);
    keys.consumes_cached_mii = backend->consumes_cached_mii();
    keys.supports_warm_start = backend->supports_warm_start();
  } else {
    // Unknown backend override: the point fails in the schedule stage;
    // hash the name so distinct unknown names still occupy distinct slots.
    keys.backend = hash_combine(hash64(0xbadbac0deull), hash_bytes(point.options.backend));
    keys.consumes_cached_mii = false;
  }
  return keys;
}

std::vector<StageTotal> ordered_stage_totals(std::map<std::string, double, std::less<>> totals) {
  static constexpr std::string_view kOrder[] = {kStageInvariants, kStageUnroll, kStageCopyInsert,
                                                "mii",            kStageSchedule, kStageQueueAlloc,
                                                kStageSim,        kStageVerify};
  std::vector<StageTotal> out;
  for (std::string_view stage : kOrder) {
    if (auto it = totals.find(stage); it != totals.end()) {
      out.push_back({it->first, it->second});
      totals.erase(it);
    }
  }
  for (const auto& [stage, seconds] : totals) out.push_back({stage, seconds});
  return out;
}

bool shard_owns(ShardAxis axis, int shard_count, int shard_index, std::size_t loop_index,
                std::size_t point_index) {
  check(shard_count >= 1, "shard_owns: shard_count must be >= 1");
  check(shard_index >= 0 && shard_index < shard_count, "shard_owns: shard_index out of range");
  const std::size_t owner = axis == ShardAxis::kLoops
                                ? loop_index % static_cast<std::size_t>(shard_count)
                                : point_index % static_cast<std::size_t>(shard_count);
  return owner == static_cast<std::size_t>(shard_index);
}

std::string_view shard_axis_name(ShardAxis axis) {
  return axis == ShardAxis::kLoops ? "loops" : "points";
}

std::vector<SweepTask> sweep_tasks(const SweepOptions& options, std::size_t loops,
                                   std::size_t points) {
  check(options.shard_count >= 1, "sweep_tasks: shard_count must be >= 1");
  check(options.shard_index >= 0 && options.shard_index < options.shard_count,
        "sweep_tasks: shard_index out of range");
  std::vector<SweepTask> tasks;
  for (std::size_t i = 0; i < loops; ++i) {
    SweepTask task;
    task.loop_index = i;
    for (std::size_t p = 0; p < points; ++p) {
      if (shard_owns(options.shard_axis, options.shard_count, options.shard_index, i, p)) {
        task.point_indices.push_back(p);
      }
    }
    if (!task.point_indices.empty()) tasks.push_back(std::move(task));
  }
  return tasks;
}

int resolved_sweep_workers(const SweepOptions& options) {
  if (!options.parallel) return 1;
  if (options.pool != nullptr) return static_cast<int>(options.pool->workers());
  if (options.workers > 0) return options.workers;
  return static_cast<int>(worker_count());
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

SweepResult SweepRunner::run(const std::vector<Loop>& loops,
                             const std::vector<SweepPoint>& points) const {
  const Clock::time_point sweep_start = Clock::now();

  check(options_.shard_count >= 1, "SweepRunner: shard_count must be >= 1");
  check(options_.shard_index >= 0 && options_.shard_index < options_.shard_count,
        "SweepRunner: shard_index out of range");

  SweepResult sweep;
  sweep.by_point.assign(points.size(), std::vector<LoopResult>(loops.size()));

  // The explicit work queue: one task per loop with owned cells under the
  // shard partition (every loop with all points when unsharded).  Cells no
  // task owns stay default LoopResults for merge_sweep_shards to fill
  // from their owner.
  const std::vector<SweepTask> tasks = sweep_tasks(options_, loops.size(), points.size());
  sweep.pipelines = 0;
  for (const SweepTask& task : tasks) sweep.pipelines += task.point_indices.size();

  std::vector<SweepPrefixKeys> keys(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) keys[p] = sweep_prefix_keys(points[p]);

  const bool persist = options_.use_cache && !options_.store_dir.empty();
  const ArtifactStore disk_store(options_.store_dir);
  const ArtifactStore* store = persist ? &disk_store : nullptr;
  // Record the key-domain version this writer uses, so store maintenance
  // (ArtifactStore::stats) can report a shared directory's version mix.
  if (persist) disk_store.mark_version(kStoreFormatVersion);

  // Warm-start chains: points sharing (front prefix, machine, backend
  // cache key) form a ladder, executed in ascending budget_ratio order so
  // each point can seed the next with its accepted schedule.  The
  // execution order is a permutation only — results still land at their
  // original point index.  With warm_start off the original order is
  // kept, so cold sweeps are untouched.
  const bool warm = options_.use_cache && options_.warm_start;
  std::vector<std::size_t> exec_order(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) exec_order[p] = p;
  std::vector<int> chain_of(points.size(), -1);  // chain id; -1 = not chained
  int chain_count = 0;
  if (warm) {
    std::map<std::uint64_t, int> chain_ids;
    std::vector<std::vector<std::size_t>> members;
    for (std::size_t p = 0; p < points.size(); ++p) {
      const SchedulerBackend* backend =
          find_scheduler_backend(points[p].options.scheduler, points[p].options.backend);
      if (backend == nullptr || !backend->supports_warm_start()) continue;
      const std::uint64_t chain_key =
          hash_combine(hash_combine(keys[p].front, keys[p].machine), keys[p].backend);
      const auto [it, added] = chain_ids.emplace(chain_key, chain_count);
      if (added) {
        ++chain_count;
        members.emplace_back();
      }
      chain_of[p] = it->second;
      members[static_cast<std::size_t>(it->second)].push_back(p);
    }
    // Permute each chain's members (ascending budget) among the execution
    // slots they already occupy; everything else stays put.  Equal-budget
    // points are ordered by original point index — a fully specified key,
    // so seed provenance (which point warm-starts which) is identical
    // run-to-run even when a ladder repeats a budget (regression test:
    // WarmStartDeterministicWithDuplicateBudgets).
    for (const std::vector<std::size_t>& chain : members) {
      std::vector<std::size_t> sorted = chain;
      std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
        const int ba = points[a].options.ims.budget_ratio;
        const int bb = points[b].options.ims.budget_ratio;
        return ba != bb ? ba < bb : a < b;
      });
      for (std::size_t j = 0; j < chain.size(); ++j) exec_order[chain[j]] = sorted[j];
    }
  }

  // Persisted warm-start schedules: each warm-eligible point consults the
  // store for its own previously accepted schedule before scheduling, and
  // records its accepted schedule afterwards — the cross-process /
  // cross-invocation leg of warm starting.
  const bool persist_sched = warm && persist;
  const bool cross_machine = warm && options_.cross_machine_seeds;

  // Merged on the committer thread (workers > 1) or inline (serial) —
  // never touched by two threads at once.
  FrontSeconds front_seconds{};

  // Checkpoint ledger: open (or resume) this runner's journal, replay the
  // tasks it already holds, and queue only the remainder.
  std::unique_ptr<TaskJournal> journal;
  std::vector<const SweepTask*> pending;
  pending.reserve(tasks.size());
  if (!options_.checkpoint_dir.empty()) {
    JournalHeader header;
    header.config_hash = sweep_config_hash(loops, points);
    // Verification strictness changes what a cell can report (strict
    // fails loops on violations), so a resumed sweep must verify exactly
    // as the crashed one did; journals written with verify off keep
    // their pre-verifier hashes.
    if (options_.verify_mode != SweepVerifyMode::kOff) {
      header.config_hash = hash_combine(header.config_hash, hash64(0x7e81f7ULL));
      header.config_hash = hash_combine(
          header.config_hash, hash64(static_cast<std::uint64_t>(options_.verify_mode)));
      if (options_.verify_mode == SweepVerifyMode::kSample) {
        header.config_hash = hash_combine(
            header.config_hash, hash64(static_cast<std::uint64_t>(options_.verify_sample_rate)));
      }
    }
    header.shard_count = options_.shard_count;
    header.shard_index = options_.shard_index;
    header.axis = options_.shard_axis;
    header.loops = loops.size();
    header.points = points.size();
    journal = std::make_unique<TaskJournal>(
        checkpoint_journal_path(options_.checkpoint_dir, header), header);
  }
  for (const SweepTask& task : tasks) {
    bool replayed = false;
    if (journal != nullptr) {
      if (auto it = journal->completed().find(task.loop_index);
          it != journal->completed().end()) {
        try {
          TaskPayload payload = decode_task_payload(it->second);
          QVLIW_ASSERT(payload.loop_index == task.loop_index,
                       "journal payload filed under the wrong task id");
          for (const auto& [p, result] : payload.cells) {
            check(p < points.size(), "journal payload: point index out of range");
          }
          for (auto& [p, result] : payload.cells) {
            sweep.by_point[p][task.loop_index] = std::move(result);
          }
          sweep.cache += payload.stats;
          for (std::size_t k = 0; k < front_seconds.size(); ++k) {
            front_seconds[k] += payload.front_seconds[k];
          }
          ++sweep.checkpoint.tasks_replayed;
          replayed = true;
        } catch (const Error&) {
          // The record checksum makes this near-impossible, but a payload
          // that fails to decode is simply re-executed; the fresh record
          // appended below supersedes it on the next replay.
        }
      }
    }
    if (!replayed) pending.push_back(&task);
  }

  // Effective per-cell verify policy: the sweep mode can only strengthen
  // what the point itself asked for.  The kSample subset hashes the cell
  // coordinates, so it is identical at every worker count, shard
  // partition, and resume.
  auto verify_policy_for = [&](std::size_t loop_index, std::size_t point_index,
                               VerifyPolicy base) -> VerifyPolicy {
    switch (options_.verify_mode) {
      case SweepVerifyMode::kOff:
        return base;
      case SweepVerifyMode::kSample: {
        const std::uint64_t rate =
            static_cast<std::uint64_t>(std::max(1, options_.verify_sample_rate));
        const std::uint64_t cell = hash_combine(hash64(static_cast<std::uint64_t>(loop_index)),
                                                hash64(static_cast<std::uint64_t>(point_index)));
        return cell % rate == 0 ? std::max(base, VerifyPolicy::kAudit) : base;
      }
      case SweepVerifyMode::kFull:
        return std::max(base, VerifyPolicy::kAudit);
      case SweepVerifyMode::kStrict:
        return VerifyPolicy::kStrict;
    }
    return base;
  };

  // Executes one task and returns its commit record.  Runs on any worker
  // thread: everything it touches is either task-local (LoopCache,
  // stats, seconds, warm-start chain seeds), read-only sweep state (keys,
  // exec_order, the store's striped index), or this task's own by_point
  // cells — disjoint from every other task's.
  auto execute_task = [&](const SweepTask& task) -> TaskCommit {
    const std::size_t i = task.loop_index;
    std::vector<char> owned(points.size(), 0);
    for (const std::size_t p : task.point_indices) owned[p] = 1;
    LoopCache cache;
    TaskMemo memo;  // back-end artifact memo: one verify/alloc per unique bundle
    SweepCacheStats local_stats;
    FrontSeconds local_seconds{};
    const std::uint64_t loop_hash = loops[i].content_hash();
    std::vector<std::unique_ptr<WarmStartSeed>> chain_seed(
        static_cast<std::size_t>(chain_count));
    // Most recent accepted schedule per (front prefix, backend) across
    // *all* machines of this loop, offered to seedless ladder starts when
    // cross_machine_seeds is on.
    std::map<std::uint64_t, WarmStartSeed> cross_seeds;

    for (std::size_t o = 0; o < exec_order.size(); ++o) {
      const std::size_t p = exec_order[o];
      if (owned[p] == 0) continue;
      const SweepPoint& point = points[p];
      // The override copy must outlive the PipelineContext referencing it.
      const VerifyPolicy cell_policy = verify_policy_for(i, p, point.options.verify);
      PipelineOptions verified_options;
      const PipelineOptions* cell_options = &point.options;
      if (cell_policy != point.options.verify) {
        verified_options = point.options;
        verified_options.verify = cell_policy;
        cell_options = &verified_options;
      }
      LoopResult out;
      bool produced = false;
      if (options_.use_cache) {
        try {
          const std::uint64_t disk_key = persist ? store_key(loop_hash, keys[p].front) : 0;
          FrontEntry& front = front_for(loops[i], point, keys[p], cache, store, disk_key,
                                        local_stats, local_seconds);
          if (front.ok) {
            PipelineContext ctx(loops[i], point.machine, *cell_options);
            ctx.memo = &memo;
            ctx.loop = front.loop;
            ctx.graph = front.graph;
            ctx.result.unroll_factor = front.factor;
            ctx.result.copies = front.copies;
            if (keys[p].consumes_cached_mii) {
              ctx.known_mii =
                  mii_for(front, point, keys[p], store, loop_hash, local_stats, local_seconds);
            }
            const int chain = chain_of[p];
            const std::uint64_t cross_key = hash_combine(keys[p].front, keys[p].backend);
            // MII-optimality short-circuit: a sibling budget-ladder point
            // of this task already proved an II == MII schedule for the
            // same (loop, front prefix, machine, budget-less backend key).
            // Any point with at least the publisher's budget installs it —
            // the cold search at MII is deterministic and completes within
            // the publisher's budget, so installing is bit-identical to
            // searching.  Probed before the disk tier: a hit saves the
            // store round trip as well as the search.
            const std::uint64_t sched_memo_key =
                hash_combine(hash_combine(hash64(loop_hash), keys[p].front),
                             hash_combine(keys[p].machine, keys[p].backend));
            WarmStartSeed memo_seed;
            bool memo_seeded = false;
            if (keys[p].supports_warm_start) {
              ++memo.sched_probes;
              if (auto it = memo.sched.find(sched_memo_key);
                  it != memo.sched.end() &&
                  point.options.ims.budget_ratio >= it->second.budget_ratio) {
                memo_seed.schedule = it->second.schedule;
                memo_seed.ii = it->second.ii;
                ctx.seed = &memo_seed;
                memo_seeded = true;
              }
            }
            std::unique_ptr<WarmStartSeed> disk_seed;
            bool disk_seed_installed = false;
            if (!memo_seeded && chain >= 0) {
              // Seed preference: the point's own persisted schedule (an
              // exact answer — installing it is bit-identical to the cold
              // search), then the in-process ladder predecessor, then —
              // opt-in — another machine's ladder over the same front.
              if (persist_sched) {
                ++local_stats.sched_disk_probes;
                std::string blob;
                if (store->load(sched_store_key(loop_hash, keys[p],
                                                point.options.ims.budget_ratio, cross_machine),
                                blob)) {
                  try {
                    disk_seed = std::make_unique<WarmStartSeed>(decode_warm_seed(blob));
                    ++local_stats.sched_disk_hits;
                  } catch (const Error&) {
                    // Corrupt or stale entry: fall back to in-process
                    // seeding (the save below overwrites it).
                  }
                }
              }
              if (disk_seed != nullptr) {
                ctx.seed = disk_seed.get();
              } else if (chain_seed[static_cast<std::size_t>(chain)] != nullptr) {
                ctx.seed = chain_seed[static_cast<std::size_t>(chain)].get();
              } else if (cross_machine) {
                if (auto it = cross_seeds.find(cross_key); it != cross_seeds.end()) {
                  ctx.seed = &it->second;
                }
              }
              if (ctx.seed != nullptr) ++local_stats.warm_probes;
            }
            run_stages(ctx, back_stage_plan());
            if (ctx.result.warm_started) {
              if (memo_seeded) {
                ++memo.sched_hits;
              } else {
                ++local_stats.warm_hits;
                if (ctx.seed == disk_seed.get() && disk_seed != nullptr) {
                  disk_seed_installed = true;
                }
              }
            }
            // Publish a proven-optimal accepted schedule (II == MII, post
            // queue-fit escalation) for this task's later ladder siblings,
            // keeping the smallest budget that proved it.
            if (keys[p].supports_warm_start && ctx.sched.ok && ctx.sched.stats.mii_optimal) {
              auto [entry, added] = memo.sched.try_emplace(sched_memo_key);
              if (added || point.options.ims.budget_ratio < entry->second.budget_ratio) {
                entry->second.schedule = ctx.sched.schedule;
                entry->second.ii = ctx.sched.ii;
                entry->second.budget_ratio = point.options.ims.budget_ratio;
              }
            }
            if (chain >= 0 && ctx.sched.ok) {
              // The accepted schedule (post queue-fit escalation) seeds
              // the chain's next, larger-budget point.
              chain_seed[static_cast<std::size_t>(chain)] = std::make_unique<WarmStartSeed>(
                  WarmStartSeed{ctx.sched.schedule, ctx.sched.ii});
              if (cross_machine) {
                cross_seeds[cross_key] = *chain_seed[static_cast<std::size_t>(chain)];
              }
              // Persist the accepted schedule unless the store already
              // holds exactly it (it was just installed from there).
              if (persist_sched && !disk_seed_installed) {
                store->save(sched_store_key(loop_hash, keys[p], point.options.ims.budget_ratio,
                                            cross_machine),
                            encode_warm_seed(*chain_seed[static_cast<std::size_t>(chain)]));
              }
            }
            out = std::move(ctx.result);
          } else {
            // The canonical failing result, computed once for the prefix.
            out = front.failed_result;
          }
          produced = true;
        } catch (const Error&) {
          // Fall through to the uncached path for exact failure parity.
        }
        if (!produced) ++local_stats.fallback_runs;
      }
      if (!produced) out = run_pipeline(loops[i], point.machine, *cell_options);
      sweep.by_point[p][i] = std::move(out);
    }

    // Fold the memo counters into the task's stats *before* the journal
    // payload is built, so checkpoint replay restores identical accounting.
    local_stats.verify_memo_probes += memo.verify_probes;
    local_stats.verify_memo_hits += memo.verify_hits;
    local_stats.alloc_memo_probes += memo.alloc_probes;
    local_stats.alloc_memo_hits += memo.alloc_hits;
    local_stats.sched_memo_probes += memo.sched_probes;
    local_stats.sched_memo_hits += memo.sched_hits;

    TaskCommit commit;
    commit.task_id = i;
    commit.stats = local_stats;
    commit.front_seconds = local_seconds;
    if (journal != nullptr) {
      // The journal record: this task's cells plus the accounting deltas,
      // so a replay restores both exactly.
      TaskPayload payload;
      payload.loop_index = i;
      payload.cells.reserve(task.point_indices.size());
      for (const std::size_t p : task.point_indices) {
        payload.cells.emplace_back(p, sweep.by_point[p][i]);
      }
      payload.stats = local_stats;
      payload.front_seconds = local_seconds;
      commit.payload = encode_task_payload(payload);
    }
    return commit;
  };

  // Merges one commit into the sweep.  Single-threaded by construction:
  // the committer thread is its only caller in the threaded path, the
  // executing thread in the serial one.
  auto apply_commit = [&](const TaskCommit& commit) {
    sweep.cache += commit.stats;
    for (std::size_t k = 0; k < front_seconds.size(); ++k) {
      front_seconds[k] += commit.front_seconds[k];
    }
    if (journal != nullptr) {
      ++sweep.checkpoint.tasks_executed;
      if (options_.on_task_committed) options_.on_task_committed(sweep.checkpoint.tasks_executed);
    }
  };

  const int workers = resolved_sweep_workers(options_);
  if (!pending.empty()) {
    if (workers <= 1) {
      // Serial: execute, append, merge inline — a hook exception aborts
      // between tasks with exactly the committed prefix journaled.
      for (const SweepTask* task : pending) {
        TaskCommit commit = execute_task(*task);
        if (journal != nullptr) {
          journal->append_task(commit.task_id, commit.payload);
          journal->append_heartbeat();
        }
        apply_commit(commit);
      }
    } else {
      // Threaded: workers execute tasks and submit commits; the committer
      // thread serialises journal appends + merges.  Channel capacity
      // 2x workers bounds the completed-but-uncommitted backlog while
      // keeping the journal fed.
      TaskCommitter committer(
          journal.get(), static_cast<std::size_t>(workers) * 2,
          [&](const TaskCommit& commit, std::uint64_t) { apply_commit(commit); });
      ThreadPool* pool = options_.pool;
      std::unique_ptr<ThreadPool> private_pool;
      if (pool == nullptr) {
        if (options_.workers > 0) {
          // An explicit count means exactly that many threads, even
          // above the core count — determinism tests depend on it.
          private_pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(workers));
          pool = private_pool.get();
        } else {
          pool = &ThreadPool::shared();
        }
      }
      // Grain 1: tasks are whole loops (many pipeline runs each), so
      // per-claim overhead is noise and load balancing wins.
      parallel_for_on(*pool, pending.size(), 1,
                      [&](std::size_t t) { committer.submit(execute_task(*pending[t])); });
      committer.finish();  // rethrows the first journal/hook error
    }
  }
  if (journal != nullptr) sweep.checkpoint.journal_bytes = journal->bytes();

  // Aggregate per-stage wall time: per-run stage_times plus the front-end
  // work the cache performed outside any single run.
  std::map<std::string, double, std::less<>> totals;
  for (const std::vector<LoopResult>& results : sweep.by_point) {
    for (const LoopResult& result : results) {
      for (const StageTiming& timing : result.stage_times) totals[timing.stage] += timing.seconds;
    }
  }
  totals[std::string(kStageInvariants)] += front_seconds[0];
  totals[std::string(kStageUnroll)] += front_seconds[1];
  totals[std::string(kStageCopyInsert)] += front_seconds[2];
  if (front_seconds[3] > 0.0) totals["mii"] += front_seconds[3];
  sweep.stage_totals = ordered_stage_totals(std::move(totals));

  sweep.wall_seconds = seconds_since(sweep_start);
  return sweep;
}

SweepResult SweepRunner::run(const std::vector<Loop>& loops, const MachineConfig& machine,
                             const std::vector<PipelineOptions>& options_points) const {
  std::vector<SweepPoint> points;
  points.reserve(options_points.size());
  for (std::size_t p = 0; p < options_points.size(); ++p) {
    points.push_back({cat("point-", p), machine, options_points[p]});
  }
  return run(loops, points);
}

}  // namespace qvliw
