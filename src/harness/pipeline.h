// The canonical compilation pipeline of the experiments.
//
// source loop
//   -> invariant strategy (immediate | recirculating queues)
//   -> loop unrolling (off | policy-selected | forced factor)
//   -> copy insertion (fan-out trees for the QRF)
//   -> modulo scheduling (single cluster | partitioned | partitioned+moves)
//   -> queue allocation (+ conventional-RF register baseline)
//   -> optional cycle-accurate simulation checked against the reference
//      interpreter
//
// Every paper experiment is a sweep of this pipeline under different
// options; benches only aggregate LoopResult records.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/partition.h"
#include "ir/loop.h"
#include "machine/machine.h"
#include "sched/backend.h"
#include "sched/ims.h"
#include "xform/copy_insert.h"
#include "xform/invariants.h"

namespace qvliw {

/// How the pipeline's VerifyStage treats the independent legality checker
/// (src/verify): off, audit (record violation counts, keep the result), or
/// strict (a violation fails the loop like any other stage failure).
/// Ordered so std::max picks the stronger of two policies.
enum class VerifyPolicy : std::uint8_t { kOff = 0, kAudit = 1, kStrict = 2 };

[[nodiscard]] std::string_view verify_policy_name(VerifyPolicy policy);

struct PipelineOptions {
  InvariantStrategy invariants = InvariantStrategy::kImmediate;

  bool unroll = false;
  int forced_unroll = 0;  // 0 = policy choice; >= 1 = exact factor
  int max_unroll = 8;

  bool insert_copies = true;
  CopyTreeShape copy_shape = CopyTreeShape::kBalanced;

  SchedulerKind scheduler = SchedulerKind::kSingleCluster;

  /// Registry name of the scheduler backend (sched/backend.h); empty
  /// selects the built-in backend of `scheduler`.  Unknown names fail the
  /// schedule stage with a diagnostic listing the registered backends.
  std::string backend;

  ClusterHeuristic heuristic = ClusterHeuristic::kAffinity;
  ImsOptions ims;

  bool simulate = false;
  long long sim_trip = 0;  // 0 = the (unrolled) loop's trip_hint
  std::uint64_t seed = 0x5eedULL;

  /// When true, the schedule must also *fit the machine's queues* (counts
  /// and depths).  A larger II shortens the per-iteration overlap of
  /// lifetimes, so the pipeline escalates the II until the allocation
  /// fits or `queue_fit_attempts` retries are exhausted — the scheduling-
  /// side alternative to the spill code the paper mentions for finite
  /// QRFs.
  bool enforce_queue_limits = false;
  int queue_fit_attempts = 16;

  /// Translation validation of the emitted artifacts (DDG, schedule,
  /// routing, queue allocation) by the independent verifier.
  VerifyPolicy verify = VerifyPolicy::kOff;
};

/// Wall time spent in one pipeline stage (see harness/stage.h).
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

struct LoopResult {
  std::string name;
  bool ok = false;
  std::string failure;
  /// Stage that reported the failure (empty when ok).  Stage names are the
  /// canonical ones from harness/stage.h: "invariants", "unroll",
  /// "copy_insert", "schedule", "queue_alloc", "sim".
  std::string failed_stage;

  // Shape.
  int src_ops = 0;    // operations in the source loop
  int sched_ops = 0;  // operations actually scheduled (replicas + copies + moves)
  int copies = 0;
  int moves = 0;
  int unroll_factor = 1;

  // Bounds and schedule.
  int res_mii = 0;
  int rec_mii = 0;
  int mii = 0;
  int ii = 0;
  int stage_count = 0;
  double ii_per_source = 0.0;  // ii / unroll_factor

  // Issue rates (useful ops only; copies/moves are plumbing).
  double ipc_static = 0.0;
  double ipc_dynamic = 0.0;

  // Queue demand.
  int total_queues = 0;
  int max_private_queues = 0;
  int max_segment_queues = 0;
  int max_positions = 0;

  // Conventional-RF register baseline for the same schedule.
  int registers = 0;

  // Queue-capacity enforcement (when requested).
  bool fits_machine_queues = false;  // true when capacity_violations() is empty
  int queue_fit_retries = 0;         // II escalations spent to fit

  // Simulation (when requested).
  bool sim_ok = false;
  long long sim_cycles = 0;

  // Translation validation (when requested).
  bool verify_checked = false;  // the verify stage ran the legality passes
  int verify_violations = 0;    // diagnostics found (0 on a legal artifact set)

  ImsStats sched_stats;

  /// Registry name of the backend that scheduled this loop (empty when
  /// the run failed before the schedule stage).
  std::string backend;

  /// True when the accepted schedule came from a warm-start seed instead
  /// of a search (see sched/ims.h).  Like stage_times, this records how
  /// the result was obtained, not what it is, and is excluded from
  /// result-equivalence comparisons.
  bool warm_started = false;

  /// Per-stage wall time of this run, in execution order.  Stages skipped
  /// via a SweepRunner cache hit do not appear (their cost was paid once by
  /// the run that populated the cache).  Excluded from result-equivalence
  /// comparisons: timing is measurement, not outcome.
  std::vector<StageTiming> stage_times;
};

/// Runs the full pipeline on one loop.  Failures (loop does not fit the
/// machine within the II ladder, simulation mismatch, ...) are reported in
/// ok/failure, never thrown.
[[nodiscard]] LoopResult run_pipeline(const Loop& loop, const MachineConfig& machine,
                                      const PipelineOptions& options = {});

}  // namespace qvliw
