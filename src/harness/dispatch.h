// Process-level dispatcher for sharded sweeps.
//
// PR 4 made sweeps shardable (harness/shard.h) but left launching the
// shards to hand-run commands and CI scripting.  The dispatcher closes
// that gap on one machine: it forks N worker processes over a shared
// artifact store — one shard each, using the same shard-file protocol as
// `sweep_shard run` — monitors their liveness through checkpoint-journal
// growth (harness/checkpoint.h), kills workers whose journal stops
// growing past a deadline, requeues their shard onto a *different*
// worker slot (the failed assignment is excluded, in the spirit of a
// scheduler's excluded-runner set), and merges the surviving shard files
// through merge_sweep_shards.  Because every worker checkpoints, a
// requeued attempt replays the killed attempt's completed tasks from the
// journal instead of recomputing them — straggler retry costs only the
// unfinished work.
//
// Workers are forked, not exec'd: the worker body is a ShardWorker
// closure run in the child, which must never touch the parent's thread
// pool (its threads do not survive the fork).  make_sweep_worker
// therefore gives each child its *own* pool when worker_threads asks for
// one — the dispatcher's parallelism composes as N processes x M threads,
// capped by the resolved_worker_threads oversubscription guard.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/shard.h"

namespace qvliw {

struct ShardWorkerContext {
  int shard_index = 0;
  int attempt = 0;      // 0 = first launch, >0 = requeued
  int worker_slot = 0;  // dense id in [0, workers)
};

/// The body run in the forked worker process: produce the shard file at
/// dispatch_shard_path(checkpoint_dir, shard_index) and return the
/// process exit code (0 = success).  Runs in a child — side effects on
/// parent memory are invisible to the dispatcher.
using ShardWorker = std::function<int(const ShardWorkerContext&)>;

struct DispatchOptions {
  int shard_count = 2;
  int max_workers = 0;  // concurrent worker processes; 0 = shard_count
  ShardAxis axis = ShardAxis::kLoops;

  /// Worker *threads* per forked worker process (SweepOptions::workers in
  /// the child — each child builds its own pool after the fork; the
  /// parent's threads never survive into it).  Capped by the
  /// procs x threads oversubscription guard resolved_worker_threads(), so
  /// N processes of M threads never exceed the machine; <= 1 keeps the
  /// historical single-threaded worker.
  int worker_threads = 1;

  /// Required: journals and shard files live here.  Also the resume seam:
  /// re-dispatching with the same directory replays every completed task
  /// from the per-shard journals (shard files themselves are regenerated).
  std::string checkpoint_dir;

  /// Shared artifact store handed to every worker ("" = none).
  std::string store_dir;
  bool warm_start = false;

  /// A worker whose journal has not grown for this long (and whose shard
  /// file has not appeared) is a straggler: killed and requeued.
  double straggler_deadline_seconds = 30.0;
  double poll_interval_seconds = 0.02;

  /// Launches allowed per shard, counting the first.  Exhausting them
  /// fails the dispatch with the accumulated failure log.
  int max_attempts = 3;

  /// Journal path per shard index, used for liveness monitoring.
  /// dispatch_sweep fills this in from the sweep's config hash; custom
  /// dispatch_shards callers may leave it empty, degrading straggler
  /// detection to "no shard file within the deadline of launch".
  std::function<std::string(int shard_index)> journal_path;

  /// Test/CI hook run in the worker process after its sweep completes,
  /// before the shard file is written — the seam for injecting
  /// stragglers: sleep here and the dispatcher sees a complete journal
  /// but no shard file, kills the worker past the deadline, and the
  /// requeued attempt replays every task from the journal.  Only
  /// make_sweep_worker honours it.
  std::function<void(const ShardWorkerContext&)> before_emit;
};

/// Provenance of one worker launch (the dispatcher's failure log).
struct DispatchAttempt {
  int shard_index = 0;
  int attempt = 0;
  int worker_slot = 0;
  bool killed = false;    // straggler: killed by the dispatcher
  int exit_code = 0;      // meaningful when !killed
  bool completed = false; // shard file produced
  double seconds = 0.0;   // launch-to-reap wall time
};

struct DispatchReport {
  SweepResult merged;
  int shards = 0;
  int launches = 0;  // worker processes spawned in total
  int requeues = 0;  // shards reassigned after a kill or a failed exit
  std::vector<DispatchAttempt> attempts;
};

/// Canonical shard-file path under `dir`: shard-<index>.qshard.
[[nodiscard]] std::string dispatch_shard_path(std::string_view dir, int shard_index);

/// The procs x threads oversubscription guard: the worker-thread count a
/// child process may actually use, given `requested` threads and
/// `processes` concurrent workers.  Clamps to the machine's per-process
/// share (hardware threads / processes), never below 1 — so
/// processes x result never exceeds the core count (unless the core
/// count is below the process count, where each process still gets its
/// mandatory 1).  requested <= 1 is always 1: single-threaded workers
/// are never inflated.
[[nodiscard]] int resolved_worker_threads(int requested, int processes);

/// Dispatches `worker` over every shard index and merges the resulting
/// shard files.  Throws Error when a shard exhausts max_attempts (the
/// message carries the per-attempt failure log) or a shard file fails to
/// decode/merge.  Any still-running workers are killed before the error
/// propagates.
[[nodiscard]] DispatchReport dispatch_shards(const DispatchOptions& options,
                                             const ShardWorker& worker);

/// The worker dispatch_sweep uses: a checkpointed, store-sharing
/// SweepRunner over (loops, points) — worker_threads threads on a pool
/// built inside the child, after the guard — that emits its shard file
/// atomically.  Exposed so drivers can decorate it.
[[nodiscard]] ShardWorker make_sweep_worker(const std::vector<Loop>& loops,
                                            const std::vector<SweepPoint>& points,
                                            const DispatchOptions& options);

/// The multi-process equivalent of SweepRunner::run on one machine:
/// dispatches make_sweep_worker over options.shard_count shards and
/// merges — bit-identical to the single-process sweep per
/// sweep_result_fingerprint, straggler retries included.
[[nodiscard]] DispatchReport dispatch_sweep(const std::vector<Loop>& loops,
                                            const std::vector<SweepPoint>& points,
                                            const DispatchOptions& options);

}  // namespace qvliw
