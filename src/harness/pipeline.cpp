#include "harness/pipeline.h"

#include "harness/stage.h"

namespace qvliw {

std::string_view verify_policy_name(VerifyPolicy policy) {
  switch (policy) {
    case VerifyPolicy::kOff:
      return "off";
    case VerifyPolicy::kAudit:
      return "audit";
    case VerifyPolicy::kStrict:
      return "strict";
  }
  return "unknown";
}

LoopResult run_pipeline(const Loop& source, const MachineConfig& machine,
                        const PipelineOptions& options) {
  PipelineContext ctx(source, machine, options);
  run_stages(ctx, full_stage_plan());
  return std::move(ctx.result);
}

}  // namespace qvliw
