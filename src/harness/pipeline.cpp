#include "harness/pipeline.h"

#include "harness/stage.h"

namespace qvliw {

LoopResult run_pipeline(const Loop& source, const MachineConfig& machine,
                        const PipelineOptions& options) {
  PipelineContext ctx(source, machine, options);
  run_stages(ctx, full_stage_plan());
  return std::move(ctx.result);
}

}  // namespace qvliw
