#include "harness/pipeline.h"

#include <algorithm>

#include "cluster/route.h"
#include "ir/ddg.h"
#include "qrf/queue_alloc.h"
#include "qrf/rf_alloc.h"
#include "sim/vliwsim.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "xform/unroll.h"

namespace qvliw {

LoopResult run_pipeline(const Loop& source, const MachineConfig& machine,
                        const PipelineOptions& options) {
  LoopResult result;
  result.name = source.name;
  result.src_ops = source.op_count();

  try {
    Loop loop = materialize_invariants(source, options.invariants);

    if (options.unroll) {
      result.unroll_factor =
          options.forced_unroll >= 1
              ? options.forced_unroll
              : select_unroll_factor(loop, machine, options.max_unroll).factor;
      loop = unroll(loop, result.unroll_factor);
    }

    if (options.insert_copies) {
      CopyInsertResult copies = insert_copies(loop, options.copy_shape);
      result.copies = copies.copies_added;
      loop = std::move(copies.loop);
    }

    Ddg graph = Ddg::build(loop, machine.latency);

    // One scheduling attempt; kClusteredMoves may rewrite loop+graph.
    auto schedule_once = [&](int start_ii) -> ImsResult {
      ImsOptions ims = options.ims;
      ims.start_ii = std::max(ims.start_ii, start_ii);
      switch (options.scheduler) {
        case SchedulerKind::kSingleCluster:
          return ims_schedule(loop, graph, machine, ims);
        case SchedulerKind::kClustered: {
          PartitionOptions popts;
          popts.heuristic = options.heuristic;
          popts.ims = ims;
          return partition_schedule(loop, graph, machine, popts);
        }
        case SchedulerKind::kClusteredMoves: {
          PartitionOptions popts;
          popts.heuristic = options.heuristic;
          popts.ims = ims;
          RouteResult routed = partition_with_moves(loop, machine, popts);
          if (!routed.ok) {
            ImsResult failed;
            failed.failure = routed.failure;
            return failed;
          }
          result.moves = routed.moves_added;
          loop = std::move(routed.loop);
          graph = Ddg::build(loop, machine.latency);
          return std::move(routed.ims);
        }
      }
      QVLIW_ASSERT(false, "bad SchedulerKind");
      return ImsResult{};
    };

    ImsResult sched = schedule_once(0);
    result.sched_ops = loop.op_count();
    result.res_mii = sched.mii.res_mii;
    result.rec_mii = sched.mii.rec_mii;
    result.mii = sched.mii.mii;
    result.sched_stats = sched.stats;
    if (!sched.ok) {
      result.failure = sched.failure;
      return result;
    }

    QueueAllocation allocation = allocate_queues(loop, graph, machine, sched.schedule);
    result.fits_machine_queues = allocation.capacity_violations(machine).empty();
    if (options.enforce_queue_limits) {
      // Escalate the II until the allocation fits the machine's queues.
      while (!result.fits_machine_queues &&
             result.queue_fit_retries < options.queue_fit_attempts) {
        ++result.queue_fit_retries;
        ImsResult retry = schedule_once(sched.ii + 1);
        if (!retry.ok) {
          result.failure = cat("queue-fit retry failed: ", retry.failure);
          return result;
        }
        sched = std::move(retry);
        allocation = allocate_queues(loop, graph, machine, sched.schedule);
        result.fits_machine_queues = allocation.capacity_violations(machine).empty();
      }
      if (!result.fits_machine_queues) {
        result.failure = cat("allocation does not fit machine queues after ",
                             result.queue_fit_retries, " II escalations");
        return result;
      }
      result.sched_stats = sched.stats;
    }

    result.sched_ops = loop.op_count();  // retries may have added moves
    result.ii = sched.ii;
    result.stage_count = sched.schedule.stage_count();
    result.ii_per_source = static_cast<double>(sched.ii) / result.unroll_factor;
    result.ipc_static = static_ipc(loop, sched.schedule);
    const long long trip = std::max(1, loop.trip_hint);
    result.ipc_dynamic = dynamic_ipc(loop, machine.latency, sched.schedule, trip);
    result.total_queues = allocation.total_queues();
    result.max_private_queues = allocation.max_private_queues();
    result.max_ring_queues = allocation.max_ring_queues();
    result.max_positions = allocation.max_positions();
    result.registers = register_requirement(loop, graph, machine.latency, sched.schedule);

    if (options.simulate) {
      SimOptions sim_options;
      sim_options.seed = options.seed;
      const long long sim_trip = options.sim_trip > 0 ? options.sim_trip : trip;
      const CheckedSim checked =
          simulate_and_check(loop, graph, machine, sched.schedule, allocation, sim_trip,
                             sim_options);
      result.sim_ok = checked.ok;
      result.sim_cycles = checked.sim.cycles;
      if (!checked.ok) {
        result.failure = checked.failure;
        return result;
      }
    }

    result.ok = true;
  } catch (const Error& error) {
    result.failure = cat("pipeline error: ", error.what());
  }
  return result;
}

}  // namespace qvliw
