// Suite-level experiment driver.
#pragma once

#include <functional>
#include <vector>

#include "harness/pipeline.h"

namespace qvliw {

/// Runs the pipeline over every loop (parallel across worker threads);
/// results are index-aligned with `loops`.
[[nodiscard]] std::vector<LoopResult> run_suite(const std::vector<Loop>& loops,
                                                const MachineConfig& machine,
                                                const PipelineOptions& options = {});

/// Fraction of results with ok == true.
[[nodiscard]] double fraction_ok(const std::vector<LoopResult>& results);

/// Fraction of *scheduled* loops satisfying `predicate` (failed loops are
/// excluded from numerator and denominator).
[[nodiscard]] double fraction_of_scheduled(const std::vector<LoopResult>& results,
                                           const std::function<bool(const LoopResult&)>& predicate);

/// Mean of a metric over scheduled loops.
[[nodiscard]] double mean_of_scheduled(const std::vector<LoopResult>& results,
                                       const std::function<double(const LoopResult&)>& metric);

}  // namespace qvliw
