#include "harness/checkpoint.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "harness/shard.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"

namespace qvliw {

namespace fs = std::filesystem;

namespace {

// Magic + layout version of the journal.  Bump on any change to the
// header/record framing AND alongside kShardMagic whenever the shared
// LoopResult / cache-stats record layout (harness/shard.h) changes: a
// stale journal replayed under a new layout would resurrect results the
// current build cannot have produced.
// v2: LoopResult gained verify_checked/verify_violations (kShardMagic v4).
// v3: SweepCacheStats gained the verify/alloc memo counters (kShardMagic v5).
// v4: sched_stats search telemetry + sched-memo counters (kShardMagic v6).
constexpr std::uint64_t kJournalMagic = 0x514a524e4c000004ULL;  // "QJRNL" + v4

constexpr std::int32_t kTaskRecord = 1;
constexpr std::int32_t kHeartbeatRecord = 2;

// header fields: magic u64, config u64, count i32, index i32, axis bool,
// loops u64, points u64.
constexpr std::size_t kHeaderBytes = 8 + 8 + 4 + 4 + 1 + 8 + 8;

// Caps protecting the replay path from a corrupt length field that the
// bounds checks alone would accept (a record cannot plausibly exceed
// these at paper-suite scale).
constexpr std::uint64_t kMaxPayloadBytes = 1u << 30;
constexpr std::uint64_t kMaxCells = 1u << 24;

std::string hex16(std::uint64_t v) {
  char out[17];
  std::snprintf(out, sizeof out, "%016llx", static_cast<unsigned long long>(v));
  return std::string(out, 16);
}

std::uint64_t record_checksum(std::int32_t kind, std::string_view payload) {
  return hash_combine(hash64(static_cast<std::uint64_t>(kind)), hash_bytes(payload));
}

void encode_header(BlobWriter& out, const JournalHeader& h) {
  out.put_u64(kJournalMagic);
  out.put_u64(h.config_hash);
  out.put_i32(h.shard_count);
  out.put_i32(h.shard_index);
  out.put_bool(h.axis == ShardAxis::kPoints);
  out.put_u64(h.loops);
  out.put_u64(h.points);
}

/// Throws Error on a bad magic/version; truncation cannot happen (the
/// caller only decodes files of at least kHeaderBytes).
JournalHeader decode_header(BlobReader& in) {
  check(in.get_u64() == kJournalMagic,
        "checkpoint journal: bad magic/version (written by another build?)");
  JournalHeader h;
  h.config_hash = in.get_u64();
  h.shard_count = in.get_i32();
  h.shard_index = in.get_i32();
  h.axis = in.get_bool() ? ShardAxis::kPoints : ShardAxis::kLoops;
  h.loops = in.get_u64();
  h.points = in.get_u64();
  return h;
}

bool same_identity(const JournalHeader& a, const JournalHeader& b) {
  return a.config_hash == b.config_hash && a.shard_count == b.shard_count &&
         a.shard_index == b.shard_index && a.axis == b.axis && a.loops == b.loops &&
         a.points == b.points;
}

struct ParsedJournal {
  JournalHeader header;
  std::map<std::uint64_t, std::string> tasks;  // task id -> payload
  std::uint64_t heartbeats = 0;
  std::int64_t last_heartbeat_micros = 0;
  std::size_t valid_end = 0;  // offset just past the last intact record
};

/// Walks header + records; stops (without throwing) at the first torn or
/// corrupt record — everything from there on is the tail a killed writer
/// left behind.  Requires bytes.size() >= kHeaderBytes; throws only on a
/// bad magic/version.
ParsedJournal parse_journal(std::string_view bytes) {
  ParsedJournal parsed;
  BlobReader in(bytes);
  parsed.header = decode_header(in);
  parsed.valid_end = in.cursor();
  while (!in.exhausted()) {
    try {
      const std::int32_t kind = in.get_i32();
      const std::string payload = in.get_string();
      if (payload.size() > kMaxPayloadBytes) break;
      if (in.get_u64() != record_checksum(kind, payload)) break;
      if (kind == kTaskRecord) {
        BlobReader id_reader(payload);
        parsed.tasks[id_reader.get_u64()] = payload;  // later record wins
      } else if (kind == kHeartbeatRecord) {
        BlobReader hb(payload);
        parsed.last_heartbeat_micros = hb.get_i64();
        (void)hb.get_u64();  // tasks-done count; informational
        hb.require_exhausted("journal heartbeat record");
        ++parsed.heartbeats;
      } else {
        break;  // unknown kind: a future format's tail, not ours to parse
      }
      parsed.valid_end = in.cursor();
    } catch (const Error&) {
      break;  // torn tail
    }
  }
  return parsed;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

std::int64_t unix_micros_now() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string checkpoint_journal_path(std::string_view dir, const JournalHeader& header) {
  return cat(dir, "/journal-", hex16(header.config_hash), "-", shard_axis_name(header.axis), "-",
             header.shard_count, "-", header.shard_index, ".qjournal");
}

std::string encode_task_payload(const TaskPayload& payload) {
  BlobWriter out;
  out.put_u64(payload.loop_index);
  out.put_u64(payload.cells.size());
  for (const auto& [point, result] : payload.cells) {
    out.put_u64(point);
    serialize_loop_result(out, result, /*provenance=*/true);
  }
  serialize_cache_stats(out, payload.stats);
  for (const double seconds : payload.front_seconds) out.put_f64(seconds);
  return out.take();
}

TaskPayload decode_task_payload(const std::string& blob) {
  BlobReader in(blob);
  TaskPayload payload;
  payload.loop_index = in.get_u64();
  const std::uint64_t cells = in.get_u64();
  check(cells <= kMaxCells, "task payload: implausible cell count");
  payload.cells.reserve(cells);
  for (std::uint64_t c = 0; c < cells; ++c) {
    const std::uint64_t point = in.get_u64();
    payload.cells.emplace_back(point, deserialize_loop_result(in));
  }
  payload.stats = deserialize_cache_stats(in);
  for (double& seconds : payload.front_seconds) seconds = in.get_f64();
  in.require_exhausted("task payload");
  return payload;
}

TaskJournal::TaskJournal(std::string path, const JournalHeader& header)
    : path_(std::move(path)), header_(header) {
  std::error_code ec;
  fs::create_directories(fs::path(path_).parent_path(), ec);

  const std::string bytes = read_file(path_);
  bool fresh = true;
  if (bytes.size() >= kHeaderBytes) {
    ParsedJournal parsed = parse_journal(bytes);  // throws on foreign magic
    check(same_identity(parsed.header, header_),
          cat("checkpoint journal ", path_,
              ": header disagrees with this sweep (config hash, shard identity, or "
              "dimensions) — the file belongs to a different sweep; remove it or point "
              "checkpoint_dir elsewhere"));
    completed_ = std::move(parsed.tasks);
    if (parsed.valid_end < bytes.size()) {
      truncated_ = bytes.size() - parsed.valid_end;
      fs::resize_file(path_, parsed.valid_end, ec);
      check(!ec, cat("cannot truncate torn checkpoint journal ", path_));
    }
    bytes_ = parsed.valid_end;
    fresh = false;
  }
  // An absent file, or one shorter than the header, means nothing was
  // ever committed (the header is written first, in one flush): start
  // over.
  if (fresh) {
    BlobWriter out;
    encode_header(out, header_);
    const std::string head = out.take();
    std::ofstream create(path_, std::ios::binary | std::ios::trunc);
    create.write(head.data(), static_cast<std::streamsize>(head.size()));
    create.flush();
    check(create.good(), cat("cannot create checkpoint journal ", path_));
    bytes_ = head.size();
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  check(out_.good(), cat("cannot open checkpoint journal ", path_, " for append"));
}

void TaskJournal::append_record(std::int32_t kind, std::string_view payload) {
  BlobWriter out;
  out.put_i32(kind);
  out.put_string(payload);
  out.put_u64(record_checksum(kind, payload));
  const std::string bytes = out.take();
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  check(out_.good(), cat("checkpoint journal ", path_,
                         ": append failed (disk full?) — a ledger that cannot record "
                         "completed tasks cannot guarantee a restart"));
  bytes_ += bytes.size();
}

void TaskJournal::append_task(std::uint64_t task_id, std::string_view payload) {
  QVLIW_ASSERT(payload.size() >= 8, "task payload shorter than its id");
  BlobReader id_reader(payload);
  QVLIW_ASSERT(id_reader.get_u64() == task_id, "task payload id disagrees with task_id");
  append_record(kTaskRecord, payload);
  ++appended_tasks_;
}

void TaskJournal::append_heartbeat() {
  BlobWriter payload;
  payload.put_i64(unix_micros_now());
  payload.put_u64(completed_.size() + appended_tasks_);
  const std::string bytes = payload.take();
  append_record(kHeartbeatRecord, bytes);
}

TaskCommitter::TaskCommitter(TaskJournal* journal, std::size_t capacity, Sink sink)
    : journal_(journal), sink_(std::move(sink)), channel_(capacity) {
  thread_ = std::thread(&TaskCommitter::commit_loop, this);
}

TaskCommitter::~TaskCommitter() {
  try {
    finish();
  } catch (...) {
    // An unwind is already in flight (or the caller never checked);
    // the error was reported through finish() if anyone asked.
  }
}

void TaskCommitter::commit_loop() {
  TaskCommit commit;
  while (channel_.pop(commit)) {
    if (error_) continue;  // drain + discard: producers must never block
    try {
      if (journal_ != nullptr && !commit.payload.empty()) {
        journal_->append_task(commit.task_id, commit.payload);
        journal_->append_heartbeat();
      }
      ++committed_;
      if (sink_) sink_(commit, committed_);
    } catch (...) {
      error_ = std::current_exception();
    }
  }
}

void TaskCommitter::submit(TaskCommit commit) { channel_.push(std::move(commit)); }

void TaskCommitter::finish() {
  if (!finished_) {
    finished_ = true;
    channel_.close();
    if (thread_.joinable()) thread_.join();
  }
  if (error_) std::rethrow_exception(error_);
}

JournalStatus read_journal_status(const std::string& path) {
  JournalStatus status;
  const std::string bytes = read_file(path);
  std::error_code ec;
  if (bytes.empty() && !fs::exists(path, ec)) return status;
  status.exists = true;
  if (bytes.size() < kHeaderBytes) return status;
  try {
    ParsedJournal parsed = parse_journal(bytes);
    status.valid = true;
    status.header = parsed.header;
    status.tasks_done = parsed.tasks.size();
    status.heartbeats = parsed.heartbeats;
    status.last_heartbeat_micros = parsed.last_heartbeat_micros;
    status.bytes = parsed.valid_end;
  } catch (const Error&) {
    // Foreign magic: exists, not a journal we can read.
  }
  return status;
}

}  // namespace qvliw
