// Figure-shaped reporting helpers shared by the bench binaries.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "support/table.h"

namespace qvliw {

/// Prints a bench banner with the experiment id and the paper's claim.
void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim);

/// Cumulative fraction of scheduled loops whose `metric` is <= each bound
/// (Fig. 3's "% of loops vs number of queues" series).
[[nodiscard]] std::vector<double> cumulative_fractions(
    const std::vector<LoopResult>& results, const std::vector<int>& bounds,
    const std::function<int(const LoopResult&)>& metric);

/// Renders one row per bound from several labelled series.
void print_cumulative_table(std::ostream& os, const std::vector<int>& bounds,
                            const std::vector<std::string>& series_labels,
                            const std::vector<std::vector<double>>& series,
                            const std::string& bound_label);

}  // namespace qvliw
