#include "harness/shard.h"

#include <map>
#include <utility>

#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"

namespace qvliw {

namespace {

// Magic + layout version of the shard file.  Bump on any codec change:
// a shard file is exchanged between processes that are expected to run
// the same build, so version skew is an error, not a silent miss.
// v3: CheckpointStats joined the result accounting.
// v4: verify_checked/verify_violations joined LoopResult's semantic fields.
// v5: verify/alloc artifact-memo counters joined SweepCacheStats.
// v6: search telemetry (forced/budget_spent/mii_optimal) joined the
//     sched_stats provenance; sched-memo counters joined SweepCacheStats.
constexpr std::uint64_t kShardMagic = 0x5153484152440006ULL;  // "QSHARD" + v6

}  // namespace

void serialize_loop_result(BlobWriter& out, const LoopResult& r, bool provenance) {
  out.put_string(r.name);
  out.put_bool(r.ok);
  out.put_string(r.failure);
  out.put_string(r.failed_stage);
  out.put_i32(r.src_ops);
  out.put_i32(r.sched_ops);
  out.put_i32(r.copies);
  out.put_i32(r.moves);
  out.put_i32(r.unroll_factor);
  out.put_i32(r.res_mii);
  out.put_i32(r.rec_mii);
  out.put_i32(r.mii);
  out.put_i32(r.ii);
  out.put_i32(r.stage_count);
  out.put_f64(r.ii_per_source);
  out.put_f64(r.ipc_static);
  out.put_f64(r.ipc_dynamic);
  out.put_i32(r.total_queues);
  out.put_i32(r.max_private_queues);
  out.put_i32(r.max_segment_queues);
  out.put_i32(r.max_positions);
  out.put_i32(r.registers);
  out.put_bool(r.fits_machine_queues);
  out.put_i32(r.queue_fit_retries);
  out.put_bool(r.sim_ok);
  out.put_i64(r.sim_cycles);
  out.put_bool(r.verify_checked);
  out.put_i32(r.verify_violations);
  out.put_string(r.backend);
  if (!provenance) return;
  out.put_i32(r.sched_stats.placements);
  out.put_i32(r.sched_stats.evictions);
  out.put_i32(r.sched_stats.ii_attempts);
  out.put_i32(r.sched_stats.forced);
  out.put_i32(r.sched_stats.budget_spent);
  out.put_bool(r.sched_stats.mii_optimal);
  out.put_bool(r.warm_started);
  out.put_u64(r.stage_times.size());
  for (const StageTiming& t : r.stage_times) {
    out.put_string(t.stage);
    out.put_f64(t.seconds);
  }
}

LoopResult deserialize_loop_result(BlobReader& in) {
  LoopResult r;
  r.name = in.get_string();
  r.ok = in.get_bool();
  r.failure = in.get_string();
  r.failed_stage = in.get_string();
  r.src_ops = in.get_i32();
  r.sched_ops = in.get_i32();
  r.copies = in.get_i32();
  r.moves = in.get_i32();
  r.unroll_factor = in.get_i32();
  r.res_mii = in.get_i32();
  r.rec_mii = in.get_i32();
  r.mii = in.get_i32();
  r.ii = in.get_i32();
  r.stage_count = in.get_i32();
  r.ii_per_source = in.get_f64();
  r.ipc_static = in.get_f64();
  r.ipc_dynamic = in.get_f64();
  r.total_queues = in.get_i32();
  r.max_private_queues = in.get_i32();
  r.max_segment_queues = in.get_i32();
  r.max_positions = in.get_i32();
  r.registers = in.get_i32();
  r.fits_machine_queues = in.get_bool();
  r.queue_fit_retries = in.get_i32();
  r.sim_ok = in.get_bool();
  r.sim_cycles = in.get_i64();
  r.verify_checked = in.get_bool();
  r.verify_violations = in.get_i32();
  r.backend = in.get_string();
  r.sched_stats.placements = in.get_i32();
  r.sched_stats.evictions = in.get_i32();
  r.sched_stats.ii_attempts = in.get_i32();
  r.sched_stats.forced = in.get_i32();
  r.sched_stats.budget_spent = in.get_i32();
  r.sched_stats.mii_optimal = in.get_bool();
  r.warm_started = in.get_bool();
  const std::uint64_t timings = in.get_u64();
  check(timings <= 1u << 20, "shard blob: implausible stage_times count");
  r.stage_times.reserve(timings);
  for (std::uint64_t t = 0; t < timings; ++t) {
    StageTiming timing;
    timing.stage = in.get_string();
    timing.seconds = in.get_f64();
    r.stage_times.push_back(std::move(timing));
  }
  return r;
}

void serialize_cache_stats(BlobWriter& out, const SweepCacheStats& c) {
  for (const std::uint64_t v :
       {c.invariant_probes, c.invariant_hits, c.unroll_probes, c.unroll_hits, c.front_probes,
        c.front_hits, c.mii_probes, c.mii_hits, c.disk_probes, c.disk_hits, c.mii_disk_probes,
        c.mii_disk_hits, c.sched_disk_probes, c.sched_disk_hits, c.warm_probes, c.warm_hits,
        c.probe_factors, c.probe_fallbacks, c.verify_memo_probes, c.verify_memo_hits,
        c.alloc_memo_probes, c.alloc_memo_hits, c.sched_memo_probes, c.sched_memo_hits,
        c.fallback_runs}) {
    out.put_u64(v);
  }
}

SweepCacheStats deserialize_cache_stats(BlobReader& in) {
  SweepCacheStats c;
  for (std::uint64_t* v :
       {&c.invariant_probes, &c.invariant_hits, &c.unroll_probes, &c.unroll_hits,
        &c.front_probes, &c.front_hits, &c.mii_probes, &c.mii_hits, &c.disk_probes,
        &c.disk_hits, &c.mii_disk_probes, &c.mii_disk_hits, &c.sched_disk_probes,
        &c.sched_disk_hits, &c.warm_probes, &c.warm_hits, &c.probe_factors, &c.probe_fallbacks,
        &c.verify_memo_probes, &c.verify_memo_hits, &c.alloc_memo_probes, &c.alloc_memo_hits,
        &c.sched_memo_probes, &c.sched_memo_hits, &c.fallback_runs}) {
    *v = in.get_u64();
  }
  return c;
}

std::uint64_t sweep_config_hash(const std::vector<Loop>& loops,
                                const std::vector<SweepPoint>& points) {
  std::uint64_t h = hash64(0xc0f16ULL);
  h = hash_combine(h, hash64(loops.size()));
  for (const Loop& loop : loops) h = hash_combine(h, loop.content_hash());
  h = hash_combine(h, hash64(points.size()));
  for (const SweepPoint& point : points) {
    const SweepPrefixKeys keys = sweep_prefix_keys(point);
    h = hash_combine(h, hash_bytes(point.label));
    h = hash_combine(h, hash_combine(keys.front, hash_combine(keys.machine, keys.backend)));
    h = hash_combine(h, hash64(static_cast<std::uint64_t>(point.options.ims.budget_ratio)));
  }
  return h;
}

std::string encode_sweep_shard(const SweepShard& shard) {
  BlobWriter out;
  out.put_u64(kShardMagic);
  out.put_i32(shard.header.shard_count);
  out.put_i32(shard.header.shard_index);
  out.put_bool(shard.header.axis == ShardAxis::kPoints);
  out.put_u64(shard.header.loops);
  out.put_u64(shard.header.points);
  out.put_u64(shard.header.config_hash);

  const SweepResult& r = shard.result;
  serialize_cache_stats(out, r.cache);
  out.put_u64(r.checkpoint.tasks_replayed);
  out.put_u64(r.checkpoint.tasks_executed);
  out.put_u64(r.checkpoint.journal_bytes);
  out.put_u64(r.stage_totals.size());
  for (const StageTotal& total : r.stage_totals) {
    out.put_string(total.stage);
    out.put_f64(total.seconds);
  }
  out.put_f64(r.wall_seconds);
  out.put_u64(r.pipelines);
  out.put_u64(r.by_point.size());
  for (const std::vector<LoopResult>& results : r.by_point) {
    out.put_u64(results.size());
    for (const LoopResult& result : results) {
      serialize_loop_result(out, result, /*provenance=*/true);
    }
  }
  return out.take();
}

SweepShard decode_sweep_shard(const std::string& blob) {
  BlobReader in(blob);
  check(in.get_u64() == kShardMagic, "shard blob: bad magic/version (rebuilt with another format?)");
  SweepShard shard;
  shard.header.shard_count = in.get_i32();
  shard.header.shard_index = in.get_i32();
  shard.header.axis = in.get_bool() ? ShardAxis::kPoints : ShardAxis::kLoops;
  shard.header.loops = in.get_u64();
  shard.header.points = in.get_u64();
  shard.header.config_hash = in.get_u64();
  check(shard.header.shard_count >= 1, "shard blob: shard_count < 1");
  check(shard.header.shard_index >= 0 && shard.header.shard_index < shard.header.shard_count,
        "shard blob: shard_index out of range");

  SweepResult& r = shard.result;
  r.cache = deserialize_cache_stats(in);
  r.checkpoint.tasks_replayed = in.get_u64();
  r.checkpoint.tasks_executed = in.get_u64();
  r.checkpoint.journal_bytes = in.get_u64();
  const std::uint64_t totals = in.get_u64();
  check(totals <= 1u << 20, "shard blob: implausible stage-total count");
  for (std::uint64_t t = 0; t < totals; ++t) {
    StageTotal total;
    total.stage = in.get_string();
    total.seconds = in.get_f64();
    r.stage_totals.push_back(std::move(total));
  }
  r.wall_seconds = in.get_f64();
  r.pipelines = in.get_u64();
  const std::uint64_t point_count = in.get_u64();
  check(point_count == shard.header.points, "shard blob: by_point size disagrees with header");
  r.by_point.resize(point_count);
  for (std::uint64_t p = 0; p < point_count; ++p) {
    const std::uint64_t loop_count = in.get_u64();
    check(loop_count == shard.header.loops, "shard blob: loop count disagrees with header");
    r.by_point[p].reserve(loop_count);
    for (std::uint64_t i = 0; i < loop_count; ++i) {
      r.by_point[p].push_back(deserialize_loop_result(in));
    }
  }
  in.require_exhausted("shard blob");
  return shard;
}

SweepResult merge_sweep_shards(std::vector<SweepShard> shards) {
  check(!shards.empty(), "merge_sweep_shards: no shards");
  const ShardHeader& first = shards.front().header;
  check(static_cast<std::size_t>(first.shard_count) == shards.size(),
        cat("merge_sweep_shards: header says ", first.shard_count, " shard(s), got ",
            shards.size()));
  std::vector<bool> seen(shards.size(), false);
  for (const SweepShard& shard : shards) {
    const ShardHeader& h = shard.header;
    check(h.shard_count == first.shard_count && h.axis == first.axis && h.loops == first.loops &&
              h.points == first.points,
          "merge_sweep_shards: shards disagree on dimensions or partition");
    check(h.config_hash == first.config_hash,
          "merge_sweep_shards: config hashes disagree — shards were cut from different sweeps");
    // Range-check before using the index anywhere (decoded shards are
    // already validated, but in-memory shard sets arrive unchecked).
    check(h.shard_index >= 0 && h.shard_index < h.shard_count,
          cat("merge_sweep_shards: shard_index ", h.shard_index, " out of range for ",
              h.shard_count, " shard(s)"));
    check(!seen[static_cast<std::size_t>(h.shard_index)],
          cat("merge_sweep_shards: duplicate shard index ", h.shard_index));
    seen[static_cast<std::size_t>(h.shard_index)] = true;
  }

  SweepResult merged;
  merged.by_point.assign(first.points, std::vector<LoopResult>(first.loops));
  std::map<std::string, double, std::less<>> totals;
  for (SweepShard& shard : shards) {
    // Overlap validation: a shard must hold results for exactly the cells
    // its partition slice owns.  A shard that ran more than its slice
    // (e.g. an unsharded run relabelled as a slice, or a worker launched
    // with the wrong shard_index) would silently double-count cache
    // stats, stage totals and pipelines when summed below — reject it
    // with a diagnostic instead.
    check(shard.result.by_point.size() == first.points,
          cat("merge_sweep_shards: shard ", shard.header.shard_index,
              " result dimensions disagree with its header"));
    for (const std::vector<LoopResult>& row : shard.result.by_point) {
      check(row.size() == first.loops,
            cat("merge_sweep_shards: shard ", shard.header.shard_index,
                " result dimensions disagree with its header"));
    }
    std::uint64_t owned = 0;
    for (std::uint64_t p = 0; p < first.points; ++p) {
      for (std::uint64_t i = 0; i < first.loops; ++i) {
        if (shard_owns(first.axis, shard.header.shard_count, shard.header.shard_index, i, p)) {
          ++owned;
          continue;
        }
        const LoopResult& cell = shard.result.by_point[p][i];
        check(cell.name.empty() && !cell.ok,
              cat("merge_sweep_shards: shard ", shard.header.shard_index,
                  " holds a result at (loop ", i, ", point ", p,
                  ") outside its partition slice — overlapping shards would double-count"));
      }
    }
    check(owned == shard.result.pipelines,
          cat("merge_sweep_shards: shard ", shard.header.shard_index, " reports ",
              shard.result.pipelines, " pipelines but its slice owns ", owned,
              " cells — overlapping or mis-partitioned shard set would double-count"));

    merged.cache += shard.result.cache;
    merged.checkpoint += shard.result.checkpoint;
    merged.wall_seconds += shard.result.wall_seconds;
    merged.pipelines += shard.result.pipelines;
    for (const StageTotal& total : shard.result.stage_totals) {
      totals[total.stage] += total.seconds;
    }
    for (std::uint64_t p = 0; p < first.points; ++p) {
      for (std::uint64_t i = 0; i < first.loops; ++i) {
        if (!shard_owns(first.axis, shard.header.shard_count, shard.header.shard_index, i, p)) {
          continue;
        }
        merged.by_point[p][i] = std::move(shard.result.by_point[p][i]);
      }
    }
  }
  merged.stage_totals = ordered_stage_totals(std::move(totals));
  check(merged.pipelines == first.loops * first.points,
        "merge_sweep_shards: merged cell count does not cover the cross product");
  return merged;
}

std::string sweep_result_fingerprint(const SweepResult& result) {
  BlobWriter out;
  out.put_u64(result.by_point.size());
  for (const std::vector<LoopResult>& results : result.by_point) {
    out.put_u64(results.size());
    for (const LoopResult& r : results) serialize_loop_result(out, r, /*provenance=*/false);
  }
  return out.take();
}

}  // namespace qvliw
