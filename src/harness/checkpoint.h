// Checkpoint ledger for restartable sweeps.
//
// A sweep's execution is an explicit work queue of SweepTasks
// (harness/sweep.h); the ledger is an append-only *task journal* on disk
// recording every completed task — its owned cells' LoopResults plus the
// cache-stats and front-end-seconds deltas the task accumulated.  On a
// restart (same inputs, same shard identity) the runner replays the
// journaled tasks and executes only the remainder, producing a result
// bit-identical to an uninterrupted run per sweep_result_fingerprint,
// with identical cache accounting.
//
// File layout (one journal per (sweep config hash, shard identity),
// named by checkpoint_journal_path so shards sharing a directory never
// collide):
//
//   header:  magic+version u64, config_hash u64, shard_count i32,
//            shard_index i32, axis bool, loops u64, points u64
//   records: kind i32, payload string, checksum u64  (repeated)
//
// Records are appended with one flushed write each, so a killed worker
// can leave at most one torn record at the tail; reopening validates
// checksums, drops the torn tail by truncating the file at the last
// intact record boundary, and resumes appending.  A torn *header* means
// nothing was ever committed — the journal is recreated.  A header whose
// identity disagrees with the caller's sweep is an error (the file
// belongs to a different sweep), as is a bad magic/version: journals are
// exchanged between runs of the same build, so version skew is an error,
// not a silent miss — the same discipline as shard files.
//
// Two record kinds exist: completed tasks, and *heartbeats* (wall-clock
// micros + tasks done), appended after every task commit.  The dispatcher
// (harness/dispatch.h) watches raw journal *growth* (file size) as its
// liveness signal for straggler detection; read_journal_status is the
// richer read-only probe — record counts, heartbeat timestamps — for
// tests today and for a networked monitor that cannot share a steady
// clock with the worker.  Every decode site ends in
// BlobReader::require_exhausted.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "harness/sweep.h"
#include "support/parallel.h"

namespace qvliw {

/// Identity of one journal: which shard of which sweep it checkpoints.
struct JournalHeader {
  std::uint64_t config_hash = 0;  // sweep_config_hash of the inputs
  int shard_count = 1;
  int shard_index = 0;
  ShardAxis axis = ShardAxis::kLoops;
  std::uint64_t loops = 0;  // full cross-product dimensions
  std::uint64_t points = 0;
};

/// Canonical journal file name under `dir`:
/// journal-<16-hex config hash>-<axis>-<count>-<index>.qjournal.
[[nodiscard]] std::string checkpoint_journal_path(std::string_view dir,
                                                  const JournalHeader& header);

/// Everything one completed SweepTask contributes to the sweep: the
/// LoopResults of its owned cells (with provenance), plus the cache-stats
/// and front-end-seconds deltas it accumulated — so a replayed task
/// restores results *and* accounting exactly as if it had run.
struct TaskPayload {
  std::uint64_t loop_index = 0;  // == the task id
  std::vector<std::pair<std::uint64_t, LoopResult>> cells;  // (point index, result)
  SweepCacheStats stats;
  /// Front-end wall seconds the task's cache work performed outside any
  /// single run's stage_times, indexed invariants/unroll/copy_insert/mii.
  std::array<double, 4> front_seconds{};
};

[[nodiscard]] std::string encode_task_payload(const TaskPayload& payload);

/// Inverse of encode_task_payload; throws Error on truncation, trailing
/// bytes, or implausible counts.
[[nodiscard]] TaskPayload decode_task_payload(const std::string& blob);

/// The append-only task journal.  Single-writer by contract: the
/// dispatcher never runs two workers against one journal at a time, and
/// SweepRunner serialises appends under its merge lock.
class TaskJournal {
 public:
  /// Opens (creating parent directories as needed) the journal at `path`
  /// for the sweep identified by `header`.  An existing journal is
  /// replayed into completed() — torn tail truncated — after verifying
  /// its header matches `header` exactly; a mismatch or a bad
  /// magic/version throws Error.  Append failures (full disk, bad
  /// permissions) also throw: a ledger that cannot record is an operator
  /// error, unlike the artifact store's best-effort cache writes.
  TaskJournal(std::string path, const JournalHeader& header);

  TaskJournal(const TaskJournal&) = delete;
  TaskJournal& operator=(const TaskJournal&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const JournalHeader& header() const { return header_; }

  /// Task id -> encoded TaskPayload, as found at open time (appends made
  /// through this object are not folded back in — the writer already has
  /// those results).  A task appended twice keeps the later record.
  [[nodiscard]] const std::map<std::uint64_t, std::string>& completed() const {
    return completed_;
  }

  /// Current journal size in bytes (header + intact records + appends).
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  /// Torn-tail bytes dropped when the journal was opened (0 normally).
  [[nodiscard]] std::uint64_t truncated_bytes() const { return truncated_; }

  /// Appends one completed task.  `payload` must be encode_task_payload
  /// output whose loop_index equals `task_id`.
  void append_task(std::uint64_t task_id, std::string_view payload);

  /// Appends a heartbeat record (wall-clock micros + tasks done so far).
  void append_heartbeat();

 private:
  void append_record(std::int32_t kind, std::string_view payload);

  std::string path_;
  JournalHeader header_;
  std::map<std::uint64_t, std::string> completed_;
  std::ofstream out_;
  std::uint64_t bytes_ = 0;
  std::uint64_t truncated_ = 0;
  std::uint64_t appended_tasks_ = 0;
};

/// One completed task en route to the committer: the accounting deltas
/// the sweep merges (cache-stats counters, front-end seconds) plus —
/// when a journal is attached — the encoded TaskPayload to append.  The
/// executing worker fills it from task-local state, so nothing in it is
/// shared until the committer thread takes ownership.
struct TaskCommit {
  std::uint64_t task_id = 0;
  /// encode_task_payload output; empty when the sweep runs unjournaled
  /// (the committer then only merges accounting).
  std::string payload;
  SweepCacheStats stats;
  std::array<double, 4> front_seconds{};
};

/// The single serialization point of a multi-threaded sweep: one
/// dedicated thread drains a bounded channel of TaskCommits, appends each
/// to the journal (task record + heartbeat, exactly the serial runner's
/// cadence — the append-only checksum format and replay semantics are
/// untouched), and then runs the caller's sink.  Workers submit() from
/// any thread; the bounded channel back-pressures them when the journal
/// is the bottleneck.
///
/// Error contract: the first journal-append or sink exception is
/// captured, every later commit is drained but *discarded* (producers
/// never block on a dead committer, and a ledger that failed once appends
/// nothing more), and finish() rethrows it on the caller.  finish() must
/// be called before the results are used; the destructor finishes too but
/// swallows the rethrow — only for unwinds already in flight.
class TaskCommitter {
 public:
  /// Runs on the committer thread after the journal append, once per
  /// commit in submission order; `committed` counts commits so far
  /// (1-based).  Never concurrent with itself.
  using Sink = std::function<void(const TaskCommit& commit, std::uint64_t committed)>;

  /// `journal` may be null (accounting-only committer); it must outlive
  /// this object and receives appends from the committer thread only.
  TaskCommitter(TaskJournal* journal, std::size_t capacity, Sink sink);
  ~TaskCommitter();

  TaskCommitter(const TaskCommitter&) = delete;
  TaskCommitter& operator=(const TaskCommitter&) = delete;

  /// Enqueues one completed task; blocks while the channel is full.
  /// Thread-safe.  Safe (a no-op beyond the drain) after an error.
  void submit(TaskCommit commit);

  /// Closes the channel, joins the committer thread, and rethrows the
  /// first captured error.  Idempotent (later calls just rethrow again).
  void finish();

  /// Commits applied so far; stable only after finish().
  [[nodiscard]] std::uint64_t committed() const { return committed_; }

 private:
  void commit_loop();

  TaskJournal* journal_;
  Sink sink_;
  BoundedChannel<TaskCommit> channel_;
  std::exception_ptr error_;       // committer-thread-only until joined
  std::uint64_t committed_ = 0;    // committer-thread-only until joined
  bool finished_ = false;
  std::thread thread_;
};

/// Read-only probe of a journal file — the dispatcher's liveness view.
/// Never modifies the file (no torn-tail truncation); a missing file
/// reports exists == false, an unreadable or foreign one valid == false.
struct JournalStatus {
  bool exists = false;
  bool valid = false;  // header decoded with the expected magic/version
  JournalHeader header;
  std::uint64_t tasks_done = 0;   // distinct completed task ids
  std::uint64_t heartbeats = 0;
  std::uint64_t bytes = 0;        // header + intact records (torn tail excluded)
  std::int64_t last_heartbeat_micros = 0;  // unix micros of the newest heartbeat
};

[[nodiscard]] JournalStatus read_journal_status(const std::string& path);

}  // namespace qvliw
