#include "harness/dispatch.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "harness/checkpoint.h"
#include "support/diagnostics.h"
#include "support/parallel.h"
#include "support/strings.h"

namespace qvliw {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t file_bytes(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

bool write_file_atomic(const std::string& path, const std::string& bytes) {
  std::error_code ec;
  const fs::path target(path);
  fs::create_directories(target.parent_path(), ec);
  const fs::path temp = target.parent_path() /
                        (target.filename().string() + ".tmp." + std::to_string(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      fs::remove(temp, ec);
      return false;
    }
  }
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

struct ShardState {
  int attempts = 0;              // launches so far
  std::set<int> excluded_slots;  // slots whose attempt on this shard failed
  bool done = false;
};

struct ActiveWorker {
  pid_t pid = -1;
  int shard = -1;
  int attempt = 0;
  int slot = -1;
  Clock::time_point started{};
  Clock::time_point last_progress{};
  std::uint64_t last_journal_bytes = 0;
  bool had_shard_file = false;
};

}  // namespace

std::string dispatch_shard_path(std::string_view dir, int shard_index) {
  return cat(dir, "/shard-", shard_index, ".qshard");
}

int resolved_worker_threads(int requested, int processes) {
  if (requested <= 1) return 1;
  const int procs = std::max(1, processes);
  const int share = static_cast<int>(worker_count()) / procs;
  return std::max(1, std::min(requested, share));
}

DispatchReport dispatch_shards(const DispatchOptions& options, const ShardWorker& worker) {
  check(options.shard_count >= 1, "dispatch_shards: shard_count must be >= 1");
  check(options.max_workers >= 0, "dispatch_shards: max_workers must be >= 0");
  check(options.max_attempts >= 1, "dispatch_shards: max_attempts must be >= 1");
  check(!options.checkpoint_dir.empty(),
        "dispatch_shards: checkpoint_dir is required (journals and shard files live there)");
  check(worker != nullptr, "dispatch_shards: no worker body");
  const int workers = options.max_workers > 0 ? options.max_workers : options.shard_count;

  std::error_code ec;
  fs::create_directories(options.checkpoint_dir, ec);
  check(!ec, cat("dispatch_shards: cannot create checkpoint_dir ", options.checkpoint_dir));
  // Shard files are regenerated each dispatch (workers resume from their
  // journals, so regeneration replays rather than recomputes); a stale
  // file would otherwise satisfy the completion check before its worker
  // ran.
  for (int s = 0; s < options.shard_count; ++s) {
    fs::remove(dispatch_shard_path(options.checkpoint_dir, s), ec);
  }

  DispatchReport report;
  report.shards = options.shard_count;
  std::vector<ShardState> states(static_cast<std::size_t>(options.shard_count));
  std::deque<int> queue;
  for (int s = 0; s < options.shard_count; ++s) queue.push_back(s);
  std::vector<ActiveWorker> active;
  std::vector<bool> slot_busy(static_cast<std::size_t>(workers), false);
  std::vector<std::string> failures;
  int done = 0;

  auto journal_bytes_of = [&](int shard) -> std::uint64_t {
    return options.journal_path ? file_bytes(options.journal_path(shard)) : 0;
  };

  // Prefer a free slot the shard has never failed on; fall back to an
  // excluded slot only when no worker is active that could free another
  // (with one slot there is no spare to requeue onto).  -1 = wait.
  auto pick_slot = [&](int shard) -> int {
    int fallback = -1;
    for (int s = 0; s < workers; ++s) {
      if (slot_busy[static_cast<std::size_t>(s)]) continue;
      if (states[static_cast<std::size_t>(shard)].excluded_slots.count(s) == 0) return s;
      if (fallback < 0) fallback = s;
    }
    return active.empty() ? fallback : -1;
  };

  auto spawn = [&](int shard, int slot) {
    ShardWorkerContext ctx;
    ctx.shard_index = shard;
    ctx.attempt = states[static_cast<std::size_t>(shard)].attempts;
    ctx.worker_slot = slot;
    ++states[static_cast<std::size_t>(shard)].attempts;
    const pid_t pid = ::fork();
    check(pid >= 0, "dispatch_shards: fork failed");
    if (pid == 0) {
      // Worker process.  _exit (not exit): the child must not run the
      // parent's atexit handlers or flush its inherited streams.  A
      // throwing worker reports its cause on the inherited stderr before
      // dying — the dispatcher's failure log only sees the exit code.
      int code = 125;
      try {
        code = worker(ctx);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "dispatch worker (shard %d attempt %d): %s\n", ctx.shard_index,
                     ctx.attempt, e.what());
        code = 124;
      } catch (...) {
        code = 124;
      }
      ::_exit(code);
    }
    slot_busy[static_cast<std::size_t>(slot)] = true;
    ActiveWorker aw;
    aw.pid = pid;
    aw.shard = shard;
    aw.attempt = ctx.attempt;
    aw.slot = slot;
    aw.started = aw.last_progress = Clock::now();
    aw.last_journal_bytes = journal_bytes_of(shard);
    aw.had_shard_file = false;
    active.push_back(aw);
    ++report.launches;
  };

  auto requeue = [&](const ActiveWorker& aw, const std::string& why) {
    failures.push_back(cat("shard ", aw.shard, " attempt ", aw.attempt, " on worker ", aw.slot,
                           ": ", why));
    states[static_cast<std::size_t>(aw.shard)].excluded_slots.insert(aw.slot);
    if (states[static_cast<std::size_t>(aw.shard)].attempts >= options.max_attempts) {
      std::ostringstream log;
      for (const std::string& line : failures) log << "\n  " << line;
      fail(cat("dispatch_shards: shard ", aw.shard, " failed after ",
               states[static_cast<std::size_t>(aw.shard)].attempts, " attempt(s):", log.str()));
    }
    ++report.requeues;
    queue.push_back(aw.shard);
  };

  auto finish = [&](ActiveWorker& aw, bool killed, int exit_code) {
    const bool produced = fs::exists(dispatch_shard_path(options.checkpoint_dir, aw.shard));
    DispatchAttempt attempt;
    attempt.shard_index = aw.shard;
    attempt.attempt = aw.attempt;
    attempt.worker_slot = aw.slot;
    attempt.killed = killed;
    attempt.exit_code = exit_code;
    attempt.completed = produced;
    attempt.seconds = seconds_since(aw.started);
    report.attempts.push_back(attempt);
    slot_busy[static_cast<std::size_t>(aw.slot)] = false;
    if (produced) {
      states[static_cast<std::size_t>(aw.shard)].done = true;
      ++done;
    } else if (killed) {
      requeue(aw, cat("no journal progress for ", fixed(options.straggler_deadline_seconds, 1),
                      "s — killed and requeued"));
    } else {
      requeue(aw, cat("exited ", exit_code, " without a shard file"));
    }
  };

  try {
    while (done < options.shard_count) {
      // Launch as many queued shards as slots allow.
      while (!queue.empty()) {
        const int slot = pick_slot(queue.front());
        if (slot < 0) break;
        const int shard = queue.front();
        queue.pop_front();
        spawn(shard, slot);
      }
      QVLIW_ASSERT(!active.empty(), "dispatcher stalled with incomplete shards and no workers");

      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_interval_seconds));

      // Reap exits.
      for (std::size_t w = 0; w < active.size();) {
        int status = 0;
        const pid_t r = ::waitpid(active[w].pid, &status, WNOHANG);
        if (r == active[w].pid) {
          const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
          finish(active[w], /*killed=*/false, code);
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(w));
        } else {
          ++w;
        }
      }

      // Straggler detection: journal growth (or the shard file appearing)
      // is progress; a worker past the deadline without either is killed
      // and its shard requeued — onto a different slot, its journal
      // intact, so the retry replays the completed tasks.
      for (std::size_t w = 0; w < active.size();) {
        ActiveWorker& aw = active[w];
        const std::uint64_t bytes = journal_bytes_of(aw.shard);
        const bool produced = fs::exists(dispatch_shard_path(options.checkpoint_dir, aw.shard));
        if (bytes != aw.last_journal_bytes || produced != aw.had_shard_file) {
          aw.last_journal_bytes = bytes;
          aw.had_shard_file = produced;
          aw.last_progress = Clock::now();
        }
        if (seconds_since(aw.last_progress) <= options.straggler_deadline_seconds) {
          ++w;
          continue;
        }
        ::kill(aw.pid, SIGKILL);
        int status = 0;
        ::waitpid(aw.pid, &status, 0);
        finish(aw, /*killed=*/true, 0);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(w));
      }
    }
  } catch (...) {
    // Leave no orphans behind a thrown Error (exhausted attempts, fork
    // failure): the workers' shard files are regenerated next dispatch
    // anyway, and their journals survive for the resume.
    for (const ActiveWorker& aw : active) {
      ::kill(aw.pid, SIGKILL);
      int status = 0;
      ::waitpid(aw.pid, &status, 0);
    }
    throw;
  }

  // Merge the surviving shard files.
  std::vector<SweepShard> shards;
  shards.reserve(static_cast<std::size_t>(options.shard_count));
  for (int s = 0; s < options.shard_count; ++s) {
    const std::string path = dispatch_shard_path(options.checkpoint_dir, s);
    std::ifstream in(path, std::ios::binary);
    check(static_cast<bool>(in), cat("dispatch_shards: cannot read shard file ", path));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    shards.push_back(decode_sweep_shard(std::move(buffer).str()));
  }
  report.merged = merge_sweep_shards(std::move(shards));
  return report;
}

ShardWorker make_sweep_worker(const std::vector<Loop>& loops,
                              const std::vector<SweepPoint>& points,
                              const DispatchOptions& options) {
  return [&loops, &points, options](const ShardWorkerContext& ctx) -> int {
    SweepOptions sweep_options;
    sweep_options.shard_count = options.shard_count;
    sweep_options.shard_index = ctx.shard_index;
    sweep_options.shard_axis = options.axis;
    sweep_options.store_dir = options.store_dir;
    sweep_options.checkpoint_dir = options.checkpoint_dir;
    sweep_options.warm_start = options.warm_start;
    // Forked child: the parent's thread pool did not survive the fork, so
    // the child must build its own.  An explicit SweepOptions::workers
    // count does exactly that (a fresh private pool); worker_threads <= 1
    // keeps the historical serial worker where the dispatcher's
    // parallelism is its N processes alone.  The oversubscription guard
    // keeps procs x threads within the machine.
    const int processes = options.max_workers > 0 ? options.max_workers : options.shard_count;
    const int threads = resolved_worker_threads(options.worker_threads, processes);
    sweep_options.parallel = threads > 1;
    sweep_options.workers = threads;
    SweepResult result = SweepRunner(sweep_options).run(loops, points);

    if (options.before_emit) options.before_emit(ctx);

    SweepShard shard;
    shard.header.shard_count = options.shard_count;
    shard.header.shard_index = ctx.shard_index;
    shard.header.axis = options.axis;
    shard.header.loops = loops.size();
    shard.header.points = points.size();
    shard.header.config_hash = sweep_config_hash(loops, points);
    shard.result = std::move(result);
    return write_file_atomic(dispatch_shard_path(options.checkpoint_dir, ctx.shard_index),
                             encode_sweep_shard(shard))
               ? 0
               : 1;
  };
}

DispatchReport dispatch_sweep(const std::vector<Loop>& loops,
                              const std::vector<SweepPoint>& points,
                              const DispatchOptions& options) {
  DispatchOptions resolved = options;
  if (!resolved.journal_path) {
    JournalHeader base;
    base.config_hash = sweep_config_hash(loops, points);
    base.shard_count = resolved.shard_count;
    base.axis = resolved.axis;
    base.loops = loops.size();
    base.points = points.size();
    resolved.journal_path = [dir = resolved.checkpoint_dir, base](int shard) {
      JournalHeader header = base;
      header.shard_index = shard;
      return checkpoint_journal_path(dir, header);
    };
  }
  return dispatch_shards(resolved, make_sweep_worker(loops, points, resolved));
}

}  // namespace qvliw
