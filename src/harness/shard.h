// Sweep sharding: serialised shard results and the merge that stitches
// them back together.
//
// A sharded sweep runs the same (loop x point) cross product as a
// single-process sweep, but each process computes only the cells its
// shard owns under the deterministic `shard_owns` partition
// (harness/sweep.h), all of them sharing one artifact-store directory as
// the persistence seam.  Each process serialises its SweepResult through
// the portable blob codec into a *shard file*; `merge_sweep_shards`
// validates that the shards belong to one sweep (same dimensions, same
// partition, same config hash, complete index coverage) and reassembles
// the single-process SweepResult — bit-identical results, summed
// cache/stage accounting (a golden test enforces the former).
//
// `sweep_result_fingerprint` is the canonical byte string of a sweep's
// *outcomes* — every semantic LoopResult field, excluding wall times and
// scheduling-effort/provenance fields (stage_times, ImsStats,
// warm_started), which record how results were obtained, not what they
// are.  Two sweeps are result-identical iff their fingerprints are equal
// bytes; the shard-merge and warm-store golden tests compare exactly
// this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.h"
#include "support/artifact_store.h"

namespace qvliw {

/// One LoopResult through the blob codec, every field in declaration
/// order.  `provenance` selects whether the how-it-was-obtained fields
/// (ImsStats, warm_started, stage_times) are included: shard files and
/// checkpoint journals carry them, the result fingerprint deliberately
/// does not.  The decoder always reads the full (provenance) layout —
/// only complete records are ever decoded.  Any layout change here must
/// bump BOTH the shard file magic and the checkpoint journal magic
/// (harness/checkpoint.cpp): the two formats share this record.
void serialize_loop_result(BlobWriter& out, const LoopResult& result, bool provenance);
[[nodiscard]] LoopResult deserialize_loop_result(BlobReader& in);

/// SweepCacheStats through the blob codec (shared by shard files and
/// checkpoint journals; same bump-both-magics rule as above).
void serialize_cache_stats(BlobWriter& out, const SweepCacheStats& stats);
[[nodiscard]] SweepCacheStats deserialize_cache_stats(BlobReader& in);

/// Identity of one emitted shard: which slice of which sweep it holds.
struct ShardHeader {
  int shard_count = 1;
  int shard_index = 0;
  ShardAxis axis = ShardAxis::kLoops;
  std::uint64_t loops = 0;   // full cross-product dimensions, not the slice
  std::uint64_t points = 0;
  /// Caller-supplied hash of the sweep's inputs (see sweep_config_hash);
  /// merging refuses shards whose hashes disagree — they were cut from
  /// different sweeps.
  std::uint64_t config_hash = 0;
};

struct SweepShard {
  ShardHeader header;
  SweepResult result;
};

/// Identity hash of a sweep's inputs: every loop's content hash plus
/// every point's label, option-prefix keys, backend contribution and
/// budget.  Equal hashes mean the shards were cut from interchangeable
/// invocations.
[[nodiscard]] std::uint64_t sweep_config_hash(const std::vector<Loop>& loops,
                                              const std::vector<SweepPoint>& points);

/// Serialises header + full SweepResult (including timing and effort
/// accounting) through the portable blob format, under a magic/version
/// prefix.
[[nodiscard]] std::string encode_sweep_shard(const SweepShard& shard);

/// Inverse of encode_sweep_shard; throws Error on a bad magic/version,
/// any truncation, or trailing bytes.
[[nodiscard]] SweepShard decode_sweep_shard(const std::string& blob);

/// Reassembles the single-process SweepResult from one complete shard
/// set: every cell is taken from the shard owning it, cache/checkpoint
/// stats and stage totals are summed, wall time is summed (aggregate
/// compute, not elapsed).  Throws Error when the shards disagree on
/// dimensions, partition, or config hash, do not cover every shard index
/// exactly once, or *overlap* — a shard whose index is out of range,
/// whose cell count disagrees with its slice of the partition, or that
/// holds results outside the cells it owns is rejected with a diagnostic
/// rather than silently double-counting.
[[nodiscard]] SweepResult merge_sweep_shards(std::vector<SweepShard> shards);

/// Canonical bytes of the sweep's outcomes (see file comment).
[[nodiscard]] std::string sweep_result_fingerprint(const SweepResult& result);

}  // namespace qvliw
