// The compile pipeline as an explicit stage graph.
//
//   InvariantStage -> UnrollStage -> CopyInsertStage ->          (front end)
//   ScheduleStage -> QueueAllocStage -> SimStage -> VerifyStage  (back end)
//
// A `PipelineContext` carries the typed artifacts between stages: the
// working Loop after each transform, the DDG, the schedule, the queue
// allocation — plus the `LoopResult` being assembled.  Each stage is
// stateless (all state lives in the context), reports its wall time into
// `LoopResult::stage_times`, and records failure provenance in
// `LoopResult::failed_stage`.
//
// The front/back split is the caching seam: every artifact a front-end
// stage produces is a pure function of (source loop, options prefix,
// machine signature), so the sweep runner (harness/sweep.h) computes it
// once per distinct prefix and replays only the back end per sweep point.
// `run_pipeline` is the degenerate case: full plan, no injected artifacts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "harness/pipeline.h"
#include "ir/ddg.h"
#include "qrf/queue_alloc.h"
#include "sched/mii.h"

namespace qvliw {

/// Content-hash memo of back-end artifacts, owned by one sweep task (one
/// loop, all its owned sweep points).  Queue allocation and verification are
/// pure functions of the artifact bundle, so each unique
/// (loop, machine, schedule) — plus the verify flags — is computed once per
/// task; repeats (e.g. budget-ladder points that accept the same schedule)
/// replay the memoized outcome.  The probe/hit counters fold into
/// SweepCacheStats before the task commits to the journal, keeping
/// checkpoint-replay accounting identical to live execution.
struct TaskMemo {
  struct VerifyOutcome {
    int violations = 0;
    std::string summary;  // non-empty only when violations > 0
  };
  /// A schedule a sibling budget-ladder point accepted at II == MII,
  /// keyed by (loop content hash, front prefix, machine signature,
  /// backend key *excluding* the budget axis).  An MII schedule cannot be
  /// beaten, so any same-key point whose budget is at least the
  /// publisher's installs it outright instead of re-searching — the cold
  /// attempt at MII is deterministic and completes within the publisher's
  /// (smaller) budget, so the installed schedule is bit-identical to what
  /// the skipped search would have produced.
  struct SchedEntry {
    Schedule schedule;
    int ii = 0;
    int budget_ratio = 0;  // smallest budget that proved the MII schedule
  };
  std::unordered_map<std::uint64_t, QueueAllocation> alloc;
  std::unordered_map<std::uint64_t, VerifyOutcome> verify;
  std::unordered_map<std::uint64_t, SchedEntry> sched;
  std::uint64_t alloc_probes = 0;
  std::uint64_t alloc_hits = 0;
  std::uint64_t verify_probes = 0;
  std::uint64_t verify_hits = 0;
  std::uint64_t sched_probes = 0;
  std::uint64_t sched_hits = 0;
};

/// Artifact bundle flowing through the stage graph for one loop + one
/// sweep point.
struct PipelineContext {
  PipelineContext(const Loop& source_loop, const MachineConfig& machine_config,
                  const PipelineOptions& pipeline_options);

  const Loop* source;
  const MachineConfig* machine;
  const PipelineOptions* options;

  // --- artifacts, populated stage by stage --------------------------------
  Loop loop;                         // working loop (post the latest transform)
  std::shared_ptr<const Ddg> graph;  // built by CopyInsertStage (or injected)
  MiiInfo known_mii;                 // injected by the sweep cache; feasible
                                     // == false means "compute it"
  const WarmStartSeed* seed = nullptr;  // injected by the sweep runner's
                                        // budget-ladder chaining (may be null)
  ImsResult sched;
  QueueAllocation allocation;

  /// Optional per-task artifact memo (set by the sweep runner's cached
  /// path).  When present, QueueAllocStage computes `artifact_key` — the
  /// content hash of (loop, machine, schedule) for the accepted schedule —
  /// and both allocation and verification consult the memo before
  /// recomputing.
  TaskMemo* memo = nullptr;
  std::uint64_t artifact_key = 0;

  LoopResult result;
};

/// One pipeline stage.  Stages are stateless singletons: `run` reads and
/// writes only the context.  Returning false stops the pipeline; the stage
/// has then filled ctx.result.failure.
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual bool run(PipelineContext& ctx) = 0;
};

// Canonical stage names (also the keys of StageTiming/failed_stage).
inline constexpr std::string_view kStageInvariants = "invariants";
inline constexpr std::string_view kStageUnroll = "unroll";
inline constexpr std::string_view kStageCopyInsert = "copy_insert";
inline constexpr std::string_view kStageSchedule = "schedule";
inline constexpr std::string_view kStageQueueAlloc = "queue_alloc";
inline constexpr std::string_view kStageSim = "sim";
inline constexpr std::string_view kStageVerify = "verify";

/// Applies the loop-invariant strategy to ctx.loop.
class InvariantStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return kStageInvariants; }
  bool run(PipelineContext& ctx) override;
};

/// Unrolls ctx.loop (policy-selected or forced factor) when requested.
class UnrollStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return kStageUnroll; }
  bool run(PipelineContext& ctx) override;
};

/// Restores queue fan-out legality with copy trees, then builds the DDG
/// (the artifact every back-end stage consumes).
class CopyInsertStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return kStageCopyInsert; }
  bool run(PipelineContext& ctx) override;
};

/// Modulo-schedules ctx.loop through the scheduler-backend registry
/// (options.backend when set, else the built-in backend of
/// options.scheduler).  A rewriting backend (clustered-moves inserts
/// relay ops) replaces ctx.loop/ctx.graph with its rewritten versions.
class ScheduleStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return kStageSchedule; }
  bool run(PipelineContext& ctx) override;
};

/// Allocates lifetimes to queues; under enforce_queue_limits escalates the
/// II (re-entering the scheduler) until the machine's queues fit.  Fills
/// the schedule/queue metric fields of the result.
class QueueAllocStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return kStageQueueAlloc; }
  bool run(PipelineContext& ctx) override;
};

/// Cycle-accurate simulation checked against the reference interpreter.
class SimStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return kStageSim; }
  bool run(PipelineContext& ctx) override;
};

/// Translation validation of the emitted artifacts by the independent
/// static verifier (src/verify), governed by PipelineOptions::verify:
/// audit records verify_checked/verify_violations and keeps the result;
/// strict additionally fails the loop on the first violation.
class VerifyStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return kStageVerify; }
  bool run(PipelineContext& ctx) override;
};

/// The full seven-stage plan, and its two halves around the caching seam.
[[nodiscard]] const std::vector<Stage*>& full_stage_plan();
[[nodiscard]] const std::vector<Stage*>& front_stage_plan();
[[nodiscard]] const std::vector<Stage*>& back_stage_plan();

/// Runs `stages` over ctx in order: times every stage into
/// result.stage_times, stops at the first failure (recording
/// result.failed_stage), converts a thrown Error into the monolithic
/// pipeline's "pipeline error: ..." failure, and sets result.ok when every
/// stage passed.
void run_stages(PipelineContext& ctx, const std::vector<Stage*>& stages);

/// One scheduling attempt starting at `start_ii` (0 = from MII), exactly
/// the monolith's schedule_once: shared by ScheduleStage and the queue-fit
/// escalation in QueueAllocStage.
[[nodiscard]] ImsResult schedule_attempt(PipelineContext& ctx, int start_ii);

}  // namespace qvliw
