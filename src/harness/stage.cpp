#include "harness/stage.h"

#include <algorithm>
#include <chrono>

#include "cluster/route.h"
#include "qrf/rf_alloc.h"
#include "sim/vliwsim.h"
#include "support/artifact_store.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/strings.h"
#include "verify/verify.h"
#include "xform/copy_insert.h"
#include "xform/unroll.h"

namespace qvliw {

PipelineContext::PipelineContext(const Loop& source_loop, const MachineConfig& machine_config,
                                 const PipelineOptions& pipeline_options)
    : source(&source_loop), machine(&machine_config), options(&pipeline_options) {
  result.name = source_loop.name;
  result.src_ops = source_loop.op_count();
}

// --- stages ----------------------------------------------------------------

bool InvariantStage::run(PipelineContext& ctx) {
  ctx.loop = materialize_invariants(*ctx.source, ctx.options->invariants);
  return true;
}

bool UnrollStage::run(PipelineContext& ctx) {
  if (!ctx.options->unroll) return true;
  if (ctx.options->forced_unroll >= 1) {
    ctx.result.unroll_factor = ctx.options->forced_unroll;
    ctx.loop = unroll(ctx.loop, ctx.result.unroll_factor);
    return true;
  }
  // The probe already materialised the winning factor's loop; a null loop
  // means factor 1 (the working loop is the winner as-is).
  UnrollProbe probe = probe_unroll_factor(ctx.loop, *ctx.machine, ctx.options->max_unroll);
  ctx.result.unroll_factor = probe.choice.factor;
  if (probe.loop != nullptr) ctx.loop = *probe.loop;
  return true;
}

bool CopyInsertStage::run(PipelineContext& ctx) {
  if (ctx.options->insert_copies) {
    // Fused rewrite + incremental DDG derivation: the post-copy graph is
    // built from the pre-copy memory dependences mapped through op_map,
    // skipping both the quadratic memdep recomputation and the redundant
    // revalidation of the rewritten loop.
    CopyInsertWithGraph fused =
        insert_copies_with_graph(ctx.loop, ctx.machine->latency, ctx.options->copy_shape);
    ctx.result.copies = fused.rewrite.copies_added;
    ctx.loop = std::move(fused.rewrite.loop);
    ctx.graph = std::make_shared<const Ddg>(std::move(fused.graph));
  } else {
    ctx.graph = std::make_shared<const Ddg>(Ddg::build(ctx.loop, ctx.machine->latency));
  }
  return true;
}

ImsResult schedule_attempt(PipelineContext& ctx, int start_ii) {
  // Unknown backend names throw Error here; run_stages converts that into
  // the canonical "pipeline error: ..." failure with the registry's
  // known-names diagnostic.
  const SchedulerBackend& backend =
      ctx.options->backend.empty() ? scheduler_backend(ctx.options->scheduler)
                                   : SchedulerRegistry::instance().require(ctx.options->backend);

  ScheduleRequest request;
  request.loop = &ctx.loop;
  request.graph = ctx.graph.get();
  request.machine = ctx.machine;
  request.ims = ctx.options->ims;
  request.ims.start_ii = std::max(request.ims.start_ii, start_ii);
  if (backend.consumes_cached_mii()) request.ims.known_mii = ctx.known_mii;
  request.heuristic = ctx.options->heuristic;
  if (backend.supports_warm_start()) request.seed = ctx.seed;

  ScheduleOutcome outcome = backend.schedule(request);
  ctx.result.backend = backend.name();
  if (outcome.rewrote) {
    ctx.result.moves = outcome.moves_added;
    ctx.loop = std::move(outcome.rewritten_loop);
    ctx.graph = std::move(outcome.rewritten_graph);
    ctx.known_mii = MiiInfo{};  // cached bounds no longer apply to the rewrite
  }
  return std::move(outcome.ims);
}

bool ScheduleStage::run(PipelineContext& ctx) {
  ctx.sched = schedule_attempt(ctx, 0);
  ctx.result.warm_started = ctx.sched.warm_started;
  ctx.result.sched_ops = ctx.loop.op_count();
  ctx.result.res_mii = ctx.sched.mii.res_mii;
  ctx.result.rec_mii = ctx.sched.mii.rec_mii;
  ctx.result.mii = ctx.sched.mii.mii;
  ctx.result.sched_stats = ctx.sched.stats;
  if (!ctx.sched.ok) {
    ctx.result.failure = ctx.sched.failure;
    return false;
  }
  return true;
}

namespace {

/// Content hash of the artifact bundle the back end is about to commit to:
/// the working loop, the machine (its signature already folds the latency
/// model), and the schedule bytes.  Queue allocation and verification are
/// pure functions of this bundle, so it is the memo key for both.
std::uint64_t artifact_hash(const PipelineContext& ctx) {
  BlobWriter out;
  serialize_schedule(out, ctx.sched.schedule);
  std::uint64_t key = hash_combine(hash64(0xa27fULL), ctx.loop.content_hash());
  key = hash_combine(key, ctx.machine->signature());
  return hash_combine(key, hash_bytes(out.take()));
}

/// allocate_queues through the task memo (when one is attached); records
/// the bundle's content hash in ctx.artifact_key as a side effect, so the
/// last call — the accepted schedule — leaves the key VerifyStage needs.
QueueAllocation memoized_allocate(PipelineContext& ctx) {
  if (ctx.memo == nullptr) {
    return allocate_queues(ctx.loop, *ctx.graph, *ctx.machine, ctx.sched.schedule);
  }
  ctx.artifact_key = artifact_hash(ctx);
  ++ctx.memo->alloc_probes;
  if (auto it = ctx.memo->alloc.find(ctx.artifact_key); it != ctx.memo->alloc.end()) {
    ++ctx.memo->alloc_hits;
    return it->second;
  }
  QueueAllocation allocation =
      allocate_queues(ctx.loop, *ctx.graph, *ctx.machine, ctx.sched.schedule);
  ctx.memo->alloc.emplace(ctx.artifact_key, allocation);
  return allocation;
}

}  // namespace

bool QueueAllocStage::run(PipelineContext& ctx) {
  LoopResult& result = ctx.result;
  ctx.allocation = memoized_allocate(ctx);
  result.fits_machine_queues = ctx.allocation.capacity_violations(*ctx.machine).empty();
  if (ctx.options->enforce_queue_limits) {
    // Escalate the II until the allocation fits the machine's queues.
    while (!result.fits_machine_queues &&
           result.queue_fit_retries < ctx.options->queue_fit_attempts) {
      ++result.queue_fit_retries;
      ImsResult retry = schedule_attempt(ctx, ctx.sched.ii + 1);
      if (!retry.ok) {
        result.failure = cat("queue-fit retry failed: ", retry.failure);
        return false;
      }
      ctx.sched = std::move(retry);
      // Provenance tracks the accepted schedule: a retry that searched
      // replaces a warm install (and vice versa).
      ctx.result.warm_started = ctx.sched.warm_started;
      ctx.allocation = memoized_allocate(ctx);
      result.fits_machine_queues = ctx.allocation.capacity_violations(*ctx.machine).empty();
    }
    if (!result.fits_machine_queues) {
      result.failure = cat("allocation does not fit machine queues after ",
                           result.queue_fit_retries, " II escalations");
      return false;
    }
    result.sched_stats = ctx.sched.stats;
  }

  result.sched_ops = ctx.loop.op_count();  // retries may have added moves
  result.ii = ctx.sched.ii;
  result.stage_count = ctx.sched.schedule.stage_count();
  result.ii_per_source = static_cast<double>(ctx.sched.ii) / result.unroll_factor;
  result.ipc_static = static_ipc(ctx.loop, ctx.sched.schedule);
  const long long trip = std::max(1, ctx.loop.trip_hint);
  result.ipc_dynamic = dynamic_ipc(ctx.loop, ctx.machine->latency, ctx.sched.schedule, trip);
  result.total_queues = ctx.allocation.total_queues();
  result.max_private_queues = ctx.allocation.max_private_queues();
  result.max_segment_queues = ctx.allocation.max_segment_queues();
  result.max_positions = ctx.allocation.max_positions();
  result.registers =
      register_requirement(ctx.loop, *ctx.graph, ctx.machine->latency, ctx.sched.schedule);
  return true;
}

bool SimStage::run(PipelineContext& ctx) {
  if (!ctx.options->simulate) return true;
  SimOptions sim_options;
  sim_options.seed = ctx.options->seed;
  const long long trip = std::max(1, ctx.loop.trip_hint);
  const long long sim_trip = ctx.options->sim_trip > 0 ? ctx.options->sim_trip : trip;
  const CheckedSim checked = simulate_and_check(ctx.loop, *ctx.graph, *ctx.machine,
                                                ctx.sched.schedule, ctx.allocation, sim_trip,
                                                sim_options);
  ctx.result.sim_ok = checked.ok;
  ctx.result.sim_cycles = checked.sim.cycles;
  if (!checked.ok) {
    ctx.result.failure = checked.failure;
    return false;
  }
  return true;
}

bool VerifyStage::run(PipelineContext& ctx) {
  if (ctx.options->verify == VerifyPolicy::kOff) return true;
  // Earlier-stage failures stop the plan before this stage, so a complete
  // artifact set (loop, graph, schedule, allocation) is guaranteed here.
  // `must_fit` verifies the producer's capacity *claim*: only when the
  // pipeline reported a fitting allocation must queues/depths check out.
  const bool check_fanout = ctx.options->insert_copies;
  const bool must_fit = ctx.result.fits_machine_queues;
  int violations = 0;
  std::string summary;
  const auto run_verifier = [&] {
    const VerifyReport report = verify_artifacts(ctx.loop, *ctx.graph, *ctx.machine,
                                                 ctx.sched.schedule, &ctx.allocation, check_fanout,
                                                 must_fit);
    violations = report.violations();
    if (violations > 0) summary = report.summary();
  };
  if (ctx.memo != nullptr) {
    // The allocation is a pure function of the bundle QueueAllocStage
    // hashed into artifact_key, so (key, flags) fully determines the
    // verdict — replay it instead of re-simulating the FIFOs.
    const std::uint64_t key = hash_combine(
        ctx.artifact_key, hash64((check_fanout ? 0x2ULL : 0x0ULL) | (must_fit ? 0x1ULL : 0x0ULL)));
    ++ctx.memo->verify_probes;
    if (auto it = ctx.memo->verify.find(key); it != ctx.memo->verify.end()) {
      ++ctx.memo->verify_hits;
      violations = it->second.violations;
      summary = it->second.summary;
    } else {
      run_verifier();
      ctx.memo->verify.emplace(key, TaskMemo::VerifyOutcome{violations, summary});
    }
  } else {
    run_verifier();
  }
  ctx.result.verify_checked = true;
  ctx.result.verify_violations = violations;
  if (violations > 0 && ctx.options->verify == VerifyPolicy::kStrict) {
    ctx.result.failure = cat("legality verification failed: ", summary);
    return false;
  }
  return true;
}

// --- plans and the runner --------------------------------------------------

namespace {

InvariantStage invariant_stage;
UnrollStage unroll_stage;
CopyInsertStage copy_insert_stage;
ScheduleStage schedule_stage;
QueueAllocStage queue_alloc_stage;
SimStage sim_stage;
VerifyStage verify_stage;

}  // namespace

const std::vector<Stage*>& front_stage_plan() {
  static const std::vector<Stage*> plan = {&invariant_stage, &unroll_stage, &copy_insert_stage};
  return plan;
}

const std::vector<Stage*>& back_stage_plan() {
  static const std::vector<Stage*> plan = {&schedule_stage, &queue_alloc_stage, &sim_stage,
                                           &verify_stage};
  return plan;
}

const std::vector<Stage*>& full_stage_plan() {
  static const std::vector<Stage*> plan = [] {
    std::vector<Stage*> all = front_stage_plan();
    all.insert(all.end(), back_stage_plan().begin(), back_stage_plan().end());
    return all;
  }();
  return plan;
}

void run_stages(PipelineContext& ctx, const std::vector<Stage*>& stages) {
  using Clock = std::chrono::steady_clock;
  for (Stage* stage : stages) {
    const Clock::time_point start = Clock::now();
    bool passed = false;
    try {
      passed = stage->run(ctx);
    } catch (const Error& error) {
      ctx.result.failure = cat("pipeline error: ", error.what());
    }
    ctx.result.stage_times.push_back(
        {std::string(stage->name()), std::chrono::duration<double>(Clock::now() - start).count()});
    if (!passed) {
      ctx.result.failed_stage = stage->name();
      return;
    }
  }
  ctx.result.ok = true;
}

}  // namespace qvliw
