#include "harness/experiment.h"

#include "harness/sweep.h"

namespace qvliw {

std::vector<LoopResult> run_suite(const std::vector<Loop>& loops, const MachineConfig& machine,
                                  const PipelineOptions& options) {
  // One point: nothing for the prefix cache to share, so run it uncached.
  SweepOptions sweep_options;
  sweep_options.use_cache = false;
  SweepResult sweep = SweepRunner(sweep_options).run(loops, machine, {options});
  return std::move(sweep.by_point.front());
}

double fraction_ok(const std::vector<LoopResult>& results) {
  if (results.empty()) return 0.0;
  std::size_t ok = 0;
  for (const LoopResult& r : results) {
    if (r.ok) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(results.size());
}

double fraction_of_scheduled(const std::vector<LoopResult>& results,
                             const std::function<bool(const LoopResult&)>& predicate) {
  std::size_t scheduled = 0;
  std::size_t hits = 0;
  for (const LoopResult& r : results) {
    if (!r.ok) continue;
    ++scheduled;
    if (predicate(r)) ++hits;
  }
  return scheduled == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(scheduled);
}

double mean_of_scheduled(const std::vector<LoopResult>& results,
                         const std::function<double(const LoopResult&)>& metric) {
  std::size_t scheduled = 0;
  double total = 0.0;
  for (const LoopResult& r : results) {
    if (!r.ok) continue;
    ++scheduled;
    total += metric(r);
  }
  return scheduled == 0 ? 0.0 : total / static_cast<double>(scheduled);
}

}  // namespace qvliw
