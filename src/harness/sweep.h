// Sweep-level execution with prefix-artifact caching.
//
// Every figure of the paper is the same pipeline swept over ~1258 loops
// under varying options/machines.  `SweepRunner` executes the full
// (loop x sweep point) cross product, fanning loops across the worker
// pool, and exploits the stage graph's front/back split (harness/stage.h):
// sweep points that share an options *prefix* — same invariant strategy,
// same unroll choice, same copy insertion — reuse the cached
// post-transform loop, its DDG, and the MII bounds instead of recomputing
// them, and only the back end (schedule, queue allocation, simulation)
// runs per point.
//
// Caching is per loop and lives on the worker that owns the loop, so it
// needs no locks; results are bit-identical with the cache on or off (a
// golden-equivalence test enforces this).  With SweepOptions::workers
// tasks run on a thread pool (support/parallel.h) and every completed
// task is handed to a single committer thread (harness/checkpoint.h
// TaskCommitter) that owns journal appends, accounting merges, and the
// on_task_committed hook — results and cache accounting stay
// sweep_result_fingerprint-identical at every worker count.
//
// With SweepOptions::warm_start the back end is cached across *budget
// ladders* too: points sharing (front prefix, machine, scheduler-backend
// cache key) run in ascending budget_ratio order, each seeding the next
// with its accepted schedule; the scheduler verifies the seed and skips
// the search that would rediscover it (see sched/ims.h WarmStartSeed).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness/pipeline.h"

namespace qvliw {

class ThreadPool;  // support/parallel.h

/// One point of a sweep: a machine plus pipeline options, with a label
/// for reporting.
struct SweepPoint {
  std::string label;
  MachineConfig machine;
  PipelineOptions options;
};

/// Hit accounting per cached prefix level.  A "probe" is one lookup by
/// one (loop, point) pair; misses (probes - hits) are the computations
/// actually performed.
struct SweepCacheStats {
  std::uint64_t invariant_probes = 0, invariant_hits = 0;
  std::uint64_t unroll_probes = 0, unroll_hits = 0;
  std::uint64_t front_probes = 0, front_hits = 0;  // copy-inserted loop + DDG
  std::uint64_t mii_probes = 0, mii_hits = 0;

  /// On-disk artifact store tier (consulted on an in-memory front miss
  /// when SweepOptions::store_dir is set).  Kept out of probes()/hits():
  /// the store is a second-level cache, and folding it in would make the
  /// in-memory hit rate incomparable across runs with and without a store.
  std::uint64_t disk_probes = 0, disk_hits = 0;

  /// Persistent MII-map tier: per-(loop, front prefix, machine) bounds
  /// consulted in the store on an in-memory MII miss.  Separate from the
  /// front-entry disk counters for the same comparability reason.
  std::uint64_t mii_disk_probes = 0, mii_disk_hits = 0;

  /// Persistent warm-start schedule tier: accepted (schedule, II) entries
  /// consulted in the store per warm-eligible point (see
  /// SweepOptions::warm_start + store_dir).  A hit seeds the point with
  /// its *own* previously accepted schedule, so the II search collapses
  /// into a verification pass even for the first point of a ladder — the
  /// cross-process/cross-invocation warm start.
  std::uint64_t sched_disk_probes = 0, sched_disk_hits = 0;

  /// Warm-start accounting: points offered a neighbouring budget-ladder
  /// point's accepted schedule as a seed, and points whose final schedule
  /// was installed from that seed (the skipped search is the back-end
  /// speedup BENCH_pipeline.json reports).
  std::uint64_t warm_probes = 0, warm_hits = 0;

  /// Unroll-policy prober accounting: candidate factors examined, and how
  /// many probes had to fall back to the naive materialise-and-measure
  /// path because the incremental fast path could not be exact.
  std::uint64_t probe_factors = 0, probe_fallbacks = 0;

  /// Back-end artifact memo (harness/stage.h TaskMemo): queue allocation
  /// and verification keyed by the content hash of the accepted
  /// (loop, machine, schedule) bundle, scoped to one task.  A verify hit
  /// means an identical artifact bundle was verified earlier in the same
  /// task (typically budget-ladder points accepting the same schedule) and
  /// the verdict was replayed instead of re-simulating the FIFOs.
  std::uint64_t verify_memo_probes = 0, verify_memo_hits = 0;
  std::uint64_t alloc_memo_probes = 0, alloc_memo_hits = 0;

  /// MII-optimality short-circuit (TaskMemo::sched): per warm-capable
  /// point, one probe of the task-local map of schedules a sibling
  /// budget-ladder point already accepted at II == MII; a hit means the
  /// point installed that proven-optimal schedule instead of re-searching.
  /// Distinct from warm_probes/warm_hits — those count chain/disk/cross
  /// seeds; a memo-served point contributes here and nowhere else.
  std::uint64_t sched_memo_probes = 0, sched_memo_hits = 0;

  /// Cached runs that abandoned the cached path entirely and re-ran the
  /// monolithic pipeline (exception escape hatch; 0 in normal operation —
  /// cached front-end *failures* are replayed from the cache, not re-run).
  std::uint64_t fallback_runs = 0;

  [[nodiscard]] std::uint64_t probes() const {
    return invariant_probes + unroll_probes + front_probes + mii_probes;
  }
  [[nodiscard]] std::uint64_t hits() const {
    return invariant_hits + unroll_hits + front_hits + mii_hits;
  }
  [[nodiscard]] double hit_rate() const;       // hits/probes; 0 when no probes
  [[nodiscard]] double disk_hit_rate() const;  // disk_hits/disk_probes; 0 when no probes
  [[nodiscard]] double warm_hit_rate() const;  // warm_hits/warm_probes; 0 when no probes

  SweepCacheStats& operator+=(const SweepCacheStats& other);
};

/// Checkpoint-ledger accounting of one run (see
/// SweepOptions::checkpoint_dir; all zero when checkpointing is off).
/// Like stage times, this is provenance — how the results were obtained —
/// and is excluded from sweep_result_fingerprint; merge_sweep_shards sums
/// it across shards.
struct CheckpointStats {
  std::uint64_t tasks_replayed = 0;  // completed tasks restored from the journal
  std::uint64_t tasks_executed = 0;  // tasks run (and journaled) by this process
  std::uint64_t journal_bytes = 0;   // journal size after the run; 0 without one

  CheckpointStats& operator+=(const CheckpointStats& other);
};

/// Wall time summed over every pipeline run of the sweep, per stage.
/// Front-end stages computed once per cache miss are charged once; "mii"
/// appears as its own entry when the runner pre-computes bounds for the
/// back end.
struct StageTotal {
  std::string stage;
  double seconds = 0.0;
};

/// Canonical ordering of aggregated per-stage seconds: the pipeline
/// stages in execution order first, any other stage alphabetically
/// after.  Shared by the sweep runner and the shard merger so merged and
/// single-process results order stage_totals identically.
[[nodiscard]] std::vector<StageTotal> ordered_stage_totals(
    std::map<std::string, double, std::less<>> totals);

/// Which axis of the (loop x point) cross product a sharded sweep
/// partitions (see SweepOptions::shard_count).
enum class ShardAxis {
  /// Round-robin over loops: shard s owns every point of loop i iff
  /// i % shard_count == s.  The default — per-loop caches and warm-start
  /// ladders live entirely inside one shard, so a merged sharded sweep is
  /// bit-identical to the single-process sweep *including* cache and
  /// warm-start provenance.
  kLoops,
  /// Round-robin over points: shard s owns point p of every loop iff
  /// p % shard_count == s.  Results are still bit-identical (sharding
  /// never changes outcomes), but points of one budget ladder may land in
  /// different shards, so warm-start hit counts can be lower than the
  /// single-process run's.
  kPoints,
};

/// Sweep-level translation validation (see PipelineOptions::verify).
/// Applied on top of each point's own verify policy — a mode can only
/// ever *strengthen* what the point asked for, never weaken it.
enum class SweepVerifyMode : std::uint8_t {
  kOff,     // leave every point's own policy untouched
  kSample,  // audit a deterministic 1-in-verify_sample_rate cell sample
  kFull,    // audit every cell
  kStrict,  // verify every cell; a violation fails the loop
};

[[nodiscard]] std::string_view sweep_verify_mode_name(SweepVerifyMode mode);

struct SweepOptions {
  bool use_cache = true;  // prefix-artifact caching across points
  bool parallel = true;   // false forces serial regardless of `workers`

  /// Worker threads executing SweepTasks inside this process.  0 = auto
  /// (one per hardware thread, on the shared pool); 1 = serial; N > 1 =
  /// exactly N threads on a private pool, even when the machine has fewer
  /// cores (how tests exercise real concurrency on small runners).
  /// Composes with process sharding: a dispatcher running P worker
  /// processes of W threads each should keep P*W near the core count —
  /// resolved_worker_threads (harness/dispatch.h) is that guard.
  ///
  /// Determinism: a task (one loop, its owned points) is the unit of
  /// scheduling, and everything order-sensitive — per-loop caches,
  /// warm-start ladders — lives inside one task, so results are
  /// sweep_result_fingerprint-identical at every worker count.  The
  /// worker count is deliberately *not* part of sweep_config_hash: a
  /// checkpointed sweep may resume under a different count.
  int workers = 0;

  /// Optional externally-owned pool to run tasks on (its size then wins
  /// over `workers`).  Null = pick per `workers` above.  The pool must
  /// outlive run().
  ThreadPool* pool = nullptr;

  /// Process-sharded execution: this runner computes only the cells of
  /// the (loop x point) cross product that `shard_index` owns under the
  /// deterministic `shard_axis` partition; every other cell of
  /// SweepResult::by_point is left default-constructed.  All shards of
  /// one sweep share `store_dir` (the artifact store is the persistence
  /// seam between processes), and merge_sweep_shards (harness/shard.h)
  /// stitches the emitted shards back into the single-process result.
  /// shard_count == 1 is the unsharded sweep, byte-for-byte.
  int shard_count = 1;
  int shard_index = 0;
  ShardAxis shard_axis = ShardAxis::kLoops;

  /// Root directory of the persistent content-addressed artifact store
  /// (support/artifact_store.h); empty disables persistence.  Keyed by
  /// Loop::content_hash plus the front prefix key, so repeated invocations
  /// — including across processes and bench runs — warm-start the front
  /// end instead of recomputing it.  Also persists per-machine MII maps
  /// (keyed by Loop::content_hash + front prefix + MachineConfig
  /// signature).  Requires use_cache.
  std::string store_dir;

  /// Warm-start the back end across budget ladders: points sharing a
  /// front prefix, machine, and scheduler-backend cache key are executed
  /// in ascending budget_ratio order, each receiving the previous point's
  /// accepted schedule as a WarmStartSeed.  IMS verifies the seed and
  /// uses it to cap the II ladder, so final IIs are never worse than cold
  /// scheduling — on such ladders they are identical, with the accepting
  /// search skipped.  LoopResults differ from a cold sweep only in
  /// ImsStats/warm_started (provenance, not outcome).  Requires
  /// use_cache.
  ///
  /// With store_dir also set, every warm-eligible point's *accepted*
  /// schedule is persisted in the artifact store (keyed by loop content
  /// hash + front prefix + machine signature + backend cache key + budget
  /// + store format version), and consulted before scheduling: a hit is
  /// the point's own prior accepted schedule, which IMS verifies and
  /// installs, so ladders warm across processes and bench invocations
  /// with bit-identical results.
  bool warm_start = false;

  /// Directory of the checkpoint ledger (harness/checkpoint.h); empty
  /// disables checkpointing.  Every completed SweepTask appends its
  /// LoopResults and accounting deltas to an append-only task journal
  /// keyed by the sweep's config hash and this runner's shard identity
  /// (shards sharing one checkpoint_dir never collide).  On a restart,
  /// completed tasks replay from the journal and only unfinished tasks
  /// execute — bit-identical to an uninterrupted run per
  /// sweep_result_fingerprint, with identical cache accounting.
  std::string checkpoint_dir;

  /// Instrumentation/test hook: invoked right after each executed task
  /// commits to the journal (never for replays; only fires when
  /// checkpoint_dir is set), with the number of tasks this run has
  /// committed so far.  Threading contract: with workers <= 1 it runs
  /// inline on the executing thread, right after the journal append; with
  /// workers > 1 it runs on the *committer thread* only (never on a task
  /// worker, never concurrently with itself), serialised with — and
  /// ordered identically to — the journal appends.  Keep it cheap: it
  /// stalls the commit pipeline, not the workers.  An exception aborts
  /// the sweep (serial: immediately; threaded: no further tasks commit,
  /// and run() rethrows once in-flight tasks drain).  The SIGKILL-resume
  /// tests and the dispatcher's straggler injection are the intended
  /// users.
  std::function<void(std::uint64_t committed)> on_task_committed;

  /// Additionally seed the *first* point of a warm-start ladder with the
  /// most recent accepted schedule of another machine's ladder over the
  /// same (loop, front prefix, backend) — the cross-machine chaining the
  /// ROADMAP left open.  The seed verifier makes foreign seeds safe: a
  /// schedule that does not fit the new machine is silently ignored, and
  /// one that does can only ever *cap* the II ladder, so final IIs are
  /// never worse than cold — but they can be better (the seed may prove
  /// an II the point's own budget would have given up on), so results are
  /// no longer guaranteed bit-identical to a cold sweep.  Off by default
  /// for exactly that reason.  Requires warm_start.
  bool cross_machine_seeds = false;

  /// Sweep-level translation validation.  kSample audits a deterministic
  /// 1-in-verify_sample_rate subset of cells, chosen by hashing (loop
  /// index, point index) so the sample is identical at every worker
  /// count, shard partition, and resume — verification never perturbs
  /// determinism contracts.  kFull/kStrict cover every cell.  The mode is
  /// folded into the checkpoint journal's config hash: a resumed sweep
  /// must re-verify (or not) exactly as the crashed one did.
  SweepVerifyMode verify_mode = SweepVerifyMode::kOff;
  int verify_sample_rate = 16;  // kSample: 1 cell in N is audited
};

/// The worker-thread count SweepRunner::run will actually use under
/// `options`: 1 when parallel is false, the pool's size when one is
/// supplied, `workers` when explicit, hardware concurrency otherwise.
/// This (not SweepOptions::workers) is what benches report as their
/// `workers` field.
[[nodiscard]] int resolved_sweep_workers(const SweepOptions& options);

/// Level-by-level option-prefix hashes of one sweep point.  Derived once
/// per point by the runner; exposed so tests can assert key-domain
/// separation (distinct option prefixes must never share a key).
struct SweepPrefixKeys {
  std::uint64_t invariant = 0;
  std::uint64_t unroll = 0;
  std::uint64_t front = 0;
  std::uint64_t machine = 0;  // machine signature (MII cache key)

  /// The resolved scheduler backend's cache-key contribution
  /// (SchedulerBackend::cache_key): folded into every slot holding one of
  /// its schedules — the warm-start chain key today — so backends with
  /// different contributions never alias.  For an unknown backend name
  /// the contribution hashes the name itself (the point fails in the
  /// schedule stage either way).
  std::uint64_t backend = 0;

  /// Whether precomputed MII bounds may be injected into the point's
  /// scheduler (SchedulerBackend::consumes_cached_mii; replaces the old
  /// hard-coded wants_mii special case).
  bool consumes_cached_mii = false;

  /// Whether the backend accepts WarmStartSeed injection
  /// (SchedulerBackend::supports_warm_start).  Gates both the warm-start
  /// seeding tiers and the task-local MII-optimality short-circuit.
  bool supports_warm_start = false;
};

[[nodiscard]] SweepPrefixKeys sweep_prefix_keys(const SweepPoint& point);

/// The deterministic shard partition: whether shard `shard_index` of
/// `shard_count` owns cell (loop_index, point_index) under `axis`.  Every
/// cell is owned by exactly one shard (a test enforces this); the sweep
/// runner and the shard merger share this one definition.
[[nodiscard]] bool shard_owns(ShardAxis axis, int shard_count, int shard_index,
                              std::size_t loop_index, std::size_t point_index);

/// "loops" / "points" (used by shard files and CLI flags).
[[nodiscard]] std::string_view shard_axis_name(ShardAxis axis);

/// One unit of the sweep's work queue: a loop plus the point indices this
/// runner owns for it under the shard partition.  The loop index is the
/// task id — stable across restarts because the checkpoint journal's
/// config hash pins the exact (loops, points) inputs.  A task matches the
/// runner's per-loop execution granularity: the per-loop artifact cache
/// and every warm-start ladder live entirely inside one task, so a task
/// is also the natural unit of checkpoint replay.
struct SweepTask {
  std::size_t loop_index = 0;
  std::vector<std::size_t> point_indices;  // owned, ascending point order
};

/// The work queue of one runner: a task per loop with at least one owned
/// cell, in ascending loop order.  Shared by SweepRunner::run and tests.
[[nodiscard]] std::vector<SweepTask> sweep_tasks(const SweepOptions& options, std::size_t loops,
                                                 std::size_t points);

struct SweepResult {
  /// results[point][loop], index-aligned with the inputs.
  std::vector<std::vector<LoopResult>> by_point;
  SweepCacheStats cache;
  CheckpointStats checkpoint;
  std::vector<StageTotal> stage_totals;
  double wall_seconds = 0.0;
  std::uint64_t pipelines = 0;  // loops x points executed

  [[nodiscard]] double pipelines_per_second() const;
  [[nodiscard]] double stage_seconds(std::string_view stage) const;

  /// Translation-validation roll-up over by_point: cells whose verify
  /// stage ran, and the summed violation count (0 on a legal sweep).
  [[nodiscard]] std::uint64_t verify_checked() const;
  [[nodiscard]] std::uint64_t verify_violations() const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Executes the cross product of `loops` and `points`.
  [[nodiscard]] SweepResult run(const std::vector<Loop>& loops,
                                const std::vector<SweepPoint>& points) const;

  /// Cross product of `loops` with several options on one machine
  /// (labels are the point indices).
  [[nodiscard]] SweepResult run(const std::vector<Loop>& loops, const MachineConfig& machine,
                                const std::vector<PipelineOptions>& options_points) const;

 private:
  SweepOptions options_;
};

}  // namespace qvliw
