// Sweep-level execution with prefix-artifact caching.
//
// Every figure of the paper is the same pipeline swept over ~1258 loops
// under varying options/machines.  `SweepRunner` executes the full
// (loop x sweep point) cross product, fanning loops across the worker
// pool, and exploits the stage graph's front/back split (harness/stage.h):
// sweep points that share an options *prefix* — same invariant strategy,
// same unroll choice, same copy insertion — reuse the cached
// post-transform loop, its DDG, and the MII bounds instead of recomputing
// them, and only the back end (schedule, queue allocation, simulation)
// runs per point.
//
// Caching is per loop and lives on the worker that owns the loop, so it
// needs no locks; results are bit-identical with the cache on or off (a
// golden-equivalence test enforces this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/pipeline.h"

namespace qvliw {

/// One point of a sweep: a machine plus pipeline options, with a label
/// for reporting.
struct SweepPoint {
  std::string label;
  MachineConfig machine;
  PipelineOptions options;
};

/// Hit accounting per cached prefix level.  A "probe" is one lookup by
/// one (loop, point) pair; misses (probes - hits) are the computations
/// actually performed.
struct SweepCacheStats {
  std::uint64_t invariant_probes = 0, invariant_hits = 0;
  std::uint64_t unroll_probes = 0, unroll_hits = 0;
  std::uint64_t front_probes = 0, front_hits = 0;  // copy-inserted loop + DDG
  std::uint64_t mii_probes = 0, mii_hits = 0;

  [[nodiscard]] std::uint64_t probes() const {
    return invariant_probes + unroll_probes + front_probes + mii_probes;
  }
  [[nodiscard]] std::uint64_t hits() const {
    return invariant_hits + unroll_hits + front_hits + mii_hits;
  }
  [[nodiscard]] double hit_rate() const;  // hits/probes; 0 when no probes

  SweepCacheStats& operator+=(const SweepCacheStats& other);
};

/// Wall time summed over every pipeline run of the sweep, per stage.
/// Front-end stages computed once per cache miss are charged once; "mii"
/// appears as its own entry when the runner pre-computes bounds for the
/// back end.
struct StageTotal {
  std::string stage;
  double seconds = 0.0;
};

struct SweepOptions {
  bool use_cache = true;  // prefix-artifact caching across points
  bool parallel = true;   // fan loops across the worker pool
};

struct SweepResult {
  /// results[point][loop], index-aligned with the inputs.
  std::vector<std::vector<LoopResult>> by_point;
  SweepCacheStats cache;
  std::vector<StageTotal> stage_totals;
  double wall_seconds = 0.0;
  std::uint64_t pipelines = 0;  // loops x points executed

  [[nodiscard]] double pipelines_per_second() const;
  [[nodiscard]] double stage_seconds(std::string_view stage) const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Executes the cross product of `loops` and `points`.
  [[nodiscard]] SweepResult run(const std::vector<Loop>& loops,
                                const std::vector<SweepPoint>& points) const;

  /// Cross product of `loops` with several options on one machine
  /// (labels are the point indices).
  [[nodiscard]] SweepResult run(const std::vector<Loop>& loops, const MachineConfig& machine,
                                const std::vector<PipelineOptions>& options_points) const;

 private:
  SweepOptions options_;
};

}  // namespace qvliw
